//! Scaling benchmark of the distributed campaign service: the same SP
//! register-file campaign run single-process and then sharded across 1,
//! 2 and 4 in-process workers over real TCP.
//!
//! A dependency-free harness (`harness = false`), timed with
//! `std::time::Instant` and printed as one-line summaries.  Run with
//! `cargo bench --bench distributed`.  Results land in
//! `BENCH_distributed.json` at the repository root.
//!
//! Two acceptance figures, machine-dependent:
//! * on a multi-core host, ≥ 1.7x the serial rate at 2 workers;
//! * on a single-core host (where workers cannot overlap), the 1-worker
//!   dispatch overhead — leases, TCP round-trips, merge — stays ≤ 10 %
//!   of the serial wall time.

use gpufi_core::{
    profile, run_campaign, run_worker, CampaignConfig, Coordinator, JobSpec, ServeOptions,
    WorkerOptions,
};
use gpufi_faults::{CampaignSpec, Structure};
use gpufi_sim::GpuConfig;
use std::thread;
use std::time::Instant;

const BENCH: &str = "SP";
const RUNS: usize = 240;
const SEED: u64 = 9;

fn resolver(name: &str) -> Option<Box<dyn gpufi_core::Workload>> {
    gpufi_workloads::by_name(name)
}

/// Steady-state dispatch of `job` over `n` workers: the first (untimed)
/// job pays worker golden-run profiling and checkpoint recording, the
/// second measures the sweep-rate a long campaign sees — leases, TCP
/// round trips and merging on top of the engine.
fn dispatch(job: &JobSpec, n: usize) -> f64 {
    let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.addr().to_string();
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || run_worker(&addr, &WorkerOptions::default(), &resolver))
        })
        .collect();
    coordinator.run(job, &ServeOptions::default()).unwrap(); // warm
    let start = Instant::now();
    let result = coordinator.run(job, &ServeOptions::default()).unwrap();
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(result.records.len(), RUNS);
    coordinator.shutdown();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    wall
}

fn main() {
    let workload = resolver(BENCH).unwrap();
    let card = GpuConfig::rtx2060();
    let cfg =
        CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), RUNS, SEED).with_threads(1);
    let golden = profile(workload.as_ref(), &card).unwrap();
    let job = JobSpec::from_config(BENCH, "rtx2060", &cfg);

    // Serial baseline: the single-process engine, one thread (the unit a
    // worker process contributes).
    let serial = run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap();
    run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap(); // warm
    let start = Instant::now();
    let serial2 = run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap();
    let serial_wall = start.elapsed().as_secs_f64();
    assert_eq!(serial.records, serial2.records);
    let serial_rate = RUNS as f64 / serial_wall;
    println!(
        "{:<44} {:>8.1} runs/s  ({serial_wall:.2} s wall)",
        "serial_sp_rf_240_1thread", serial_rate
    );

    let mut rows = Vec::new();
    let cores = thread::available_parallelism().map_or(1, usize::from);
    for n in [1usize, 2, 4] {
        let wall = dispatch(&job, n);
        let rate = RUNS as f64 / wall;
        let speedup = serial_wall / wall;
        let efficiency = speedup / n as f64;
        println!(
            "{:<44} {rate:>8.1} runs/s  ({wall:.2} s wall, {speedup:.2}x serial, {:.0} % efficiency)",
            format!("distributed_sp_rf_240_{n}_workers"),
            100.0 * efficiency
        );
        rows.push(format!(
            "{{\n      \"workers\": {n},\n      \"wall_s\": {wall:.3},\n      \
             \"runs_per_sec\": {rate:.2},\n      \"speedup_vs_serial\": {speedup:.3},\n      \
             \"scaling_efficiency\": {efficiency:.3}\n    }}"
        ));
        if n == 1 {
            let overhead = wall / serial_wall - 1.0;
            println!(
                "{:<44} {:>7.1} %  (leases + TCP + merge on top of the engine)",
                "dispatch_overhead_1_worker",
                100.0 * overhead
            );
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"distributed_sp_rf_240\",\n  \"workload\": \"{BENCH}\",\n  \
         \"runs\": {RUNS},\n  \"seed\": {SEED},\n  \"host_cores\": {cores},\n  \
         \"serial_wall_s\": {serial_wall:.3},\n  \"serial_runs_per_sec\": {serial_rate:.2},\n  \
         \"dispatches\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_distributed.json");
    std::fs::write(path, json).expect("write BENCH_distributed.json");
    println!("results written to BENCH_distributed.json");
}
