//! Criterion benches exercising the full regeneration path of every table
//! and figure (miniature campaign sizes, so `cargo bench` stays fast).
//!
//! For real reproduction runs use the `repro` binary, which shares the
//! same code paths at configurable campaign sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use gpufi_bench::{figures, run_suite, tables, ReproConfig};

fn tiny_cfg() -> ReproConfig {
    ReproConfig {
        runs: 2,
        seed: 7,
        threads: 1,
    }
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_memory_sizes", |b| b.iter(tables::table1));
    c.bench_function("table2_memory_spaces", |b| b.iter(tables::table2));
    c.bench_function("table4_target_structures", |b| b.iter(tables::table4));
    c.bench_function("table5_microarch_params", |b| b.iter(tables::table5));
}

fn bench_figures(c: &mut Criterion) {
    // One miniature sweep shared by all figure renderers (the expensive
    // part); each figure then renders from it.
    let suite = run_suite(&tiny_cfg());
    c.bench_function("fig1_rf_breakdown_render", |b| b.iter(|| figures::fig1(&suite)));
    c.bench_function("fig2_structure_shares_render", |b| b.iter(|| figures::fig2(&suite)));
    c.bench_function("fig3_wavf_occupancy_render", |b| b.iter(|| figures::fig3(&suite)));
    c.bench_function("fig4_performance_share_render", |b| b.iter(|| figures::fig4(&suite)));
    c.bench_function("fig5_triple_bit_render", |b| b.iter(|| figures::fig5(&suite)));
    c.bench_function("fig6_single_vs_triple_render", |b| b.iter(|| figures::fig6(&suite)));
    c.bench_function("fig7_fit_render", |b| b.iter(|| figures::fig7(&suite)));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tables, bench_figures
}
criterion_main!(benches);
