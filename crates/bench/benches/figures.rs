//! Benchmarks exercising the full regeneration path of every table and
//! figure (miniature campaign sizes, so `cargo bench` stays fast).
//!
//! A dependency-free harness (`harness = false`) timed with
//! `std::time::Instant`.  For real reproduction runs use the `repro`
//! binary, which shares the same code paths at configurable campaign
//! sizes.

use gpufi_bench::{figures, run_suite, tables, ReproConfig};
use std::time::Instant;

fn tiny_cfg() -> ReproConfig {
    ReproConfig {
        runs: 2,
        seed: 7,
        threads: 1,
    }
}

/// Times `iters` calls of `f` (after one warm-up call) and prints the
/// per-iteration mean.
fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed().as_secs_f64();
    println!(
        "{label:<36} {:>12.3} ms/iter  ({iters} iters)",
        total / f64::from(iters) * 1e3
    );
}

fn main() {
    time("table1_memory_sizes", 100, tables::table1);
    time("table2_memory_spaces", 100, tables::table2);
    time("table4_target_structures", 100, tables::table4);
    time("table5_microarch_params", 100, tables::table5);

    // One miniature sweep shared by all figure renderers (the expensive
    // part); each figure then renders from it.
    let suite = run_suite(&tiny_cfg());
    time("fig1_rf_breakdown_render", 100, || figures::fig1(&suite));
    time("fig2_structure_shares_render", 100, || {
        figures::fig2(&suite)
    });
    time("fig3_wavf_occupancy_render", 100, || figures::fig3(&suite));
    time("fig4_performance_share_render", 100, || {
        figures::fig4(&suite)
    });
    time("fig5_triple_bit_render", 100, || figures::fig5(&suite));
    time("fig6_single_vs_triple_render", 100, || {
        figures::fig6(&suite)
    });
    time("fig7_fit_render", 100, || figures::fig7(&suite));
}
