//! Micro-benchmarks of the interpreter hot path: kernel predecode,
//! single-launch issue rate, golden-application throughput, and the
//! headline no-checkpoint campaign rate the predecode + SoA overhaul is
//! measured by.
//!
//! A dependency-free harness (`harness = false`), timed with
//! `std::time::Instant` and printed as one-line summaries.  Run with
//! `cargo bench --bench interp`.  Results land in `BENCH_interp.json` at
//! the repository root (same convention as `BENCH_campaign.json`).
//!
//! The headline baseline is the pre-overhaul engine — per-instruction
//! operand decode, array-of-structs register files, per-lane ACE
//! bookkeeping, and an O(lines) L1 flush after every launch — which
//! sustained 47.5 runs/s on the 300-run GE register-file campaign below
//! (single thread, checkpoints off).  The overhaul's acceptance bar is
//! 3x that rate on the same configuration.

use gpufi_core::{profile, run_campaign, CampaignConfig, Workload};
use gpufi_faults::{CampaignSpec, Structure};
use gpufi_isa::{Module, Predecoded};
use gpufi_sim::{Gpu, GpuConfig, LaunchDims};
use gpufi_workloads::Gaussian;
use std::time::Instant;

/// Pre-overhaul engine rate on `campaign_300_ge_regfile_no_ckpt`
/// (single-threaded, measured on the commit before the predecode + SoA
/// interpreter landed).
const BASELINE_RUNS_PER_SEC: f64 = 47.5;

const KERNEL: &str = r#"
.kernel saxpy
.params 4
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R4, R5, R6, R4
    ISETP.GE P0, R4, R3
@P0 EXIT
    SHL  R5, R4, 2
    IADD R6, R0, R5
    LDG  R7, [R6]
    IADD R8, R1, R5
    LDG  R9, [R8]
    FFMA R7, R7, 2.0f, R9
    IADD R10, R2, R5
    STG  [R10], R7
    EXIT
"#;

/// Times `iters` calls of `f` (after one warm-up call) and prints the
/// per-iteration mean; returns the total wall seconds.
fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed().as_secs_f64();
    println!(
        "{label:<44} {:>12.3} ms/iter  ({iters} iters)",
        total / f64::from(iters) * 1e3
    );
    total
}

/// Predecode throughput: the once-per-launch cost the micro-op array
/// moved out of the issue loop.  It must stay trivially cheap next to
/// even the smallest launch.
fn bench_predecode() -> f64 {
    let module = Module::assemble(KERNEL).unwrap();
    let kernel = module.kernel("saxpy").unwrap();
    let t = time("predecode_saxpy_module", 10_000, || {
        Predecoded::from_kernel(std::hint::black_box(kernel))
    });
    t / 10_000.0 * 1e6 // µs per predecode
}

/// Single-launch rate through the predecoded micro-op path: one 4096-
/// thread saxpy launch on a cold GPU, construction included (the campaign
/// engine pays both per run).
fn bench_launch() -> f64 {
    let module = Module::assemble(KERNEL).unwrap();
    let kernel = module.kernel("saxpy").unwrap();
    let t = time("launch_saxpy_4096_rtx2060", 50, || {
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let x = gpu.malloc(4096 * 4).unwrap();
        let y = gpu.malloc(4096 * 4).unwrap();
        let z = gpu.malloc(4096 * 4).unwrap();
        gpu.launch(kernel, LaunchDims::new(32, 128), &[x, y, z, 4096])
            .unwrap()
    });
    t / 50.0 * 1e3 // ms per launch
}

/// Whole-application golden run: GE's 64 pivot launches back to back —
/// the unit of work every non-early-exit campaign run repeats.
fn bench_golden_ge() -> f64 {
    let ge = Gaussian::default();
    let card = GpuConfig::rtx2060();
    let t = time("golden_profile_ge_64_launches", 5, || {
        profile(&ge, &card).unwrap()
    });
    t / 5.0 * 1e3 // ms per golden run
}

/// Headline: the 300-run GE register-file campaign, single-threaded,
/// checkpoints off (`gpufi campaign --bench GE --structure rf --runs 300
/// --seed 11 --no-checkpoints`).  Checkpoints are disabled so the rate
/// measures the interpreter itself, not fork placement.
fn bench_headline_campaign() -> String {
    let ge = Gaussian::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&ge, &card).unwrap();
    let runs = 300;
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, 11)
        .with_threads(1)
        .no_checkpoints();

    time("campaign_300_ge_regfile_no_ckpt", 3, || {
        run_campaign(&ge, &card, &cfg, &golden).unwrap()
    });
    let r = run_campaign(&ge, &card, &cfg, &golden).unwrap();
    let s = &r.stats;
    let speedup = s.runs_per_sec / BASELINE_RUNS_PER_SEC;
    println!(
        "interp engine: {:.1} runs/s on {} threads ({:.2}x the {:.1} runs/s pre-overhaul baseline)",
        s.runs_per_sec, s.threads, speedup, BASELINE_RUNS_PER_SEC
    );
    format!(
        "{{\n    \"benchmark\": \"campaign_300_ge_regfile_no_ckpt\",\n    \
         \"workload\": \"{}\",\n    \"runs\": {runs},\n    \"seed\": 11,\n    \
         \"golden_cycles\": {},\n    \"baseline_runs_per_sec\": {BASELINE_RUNS_PER_SEC},\n    \
         \"runs_per_sec\": {:.2},\n    \"speedup_vs_baseline\": {speedup:.3},\n    \
         \"early_exit_rate\": {:.3},\n    \"applied_rate\": {:.3},\n    \"threads\": {}\n  }}",
        ge.name(),
        golden.total_cycles(),
        s.runs_per_sec,
        s.early_exit_rate,
        s.applied_rate,
        s.threads,
    )
}

fn main() {
    let predecode_us = bench_predecode();
    let launch_ms = bench_launch();
    let golden_ms = bench_golden_ge();
    let headline = bench_headline_campaign();
    let json = format!(
        "{{\n  \"predecode_saxpy_us\": {predecode_us:.3},\n  \
         \"launch_saxpy_4096_ms\": {launch_ms:.3},\n  \
         \"golden_ge_ms\": {golden_ms:.3},\n  \"headline\": {headline}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
    std::fs::write(path, json).expect("write BENCH_interp.json");
    println!("results written to BENCH_interp.json");
}
