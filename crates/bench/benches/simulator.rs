//! Micro-benchmarks of the simulator substrate: assembler, cache,
//! end-to-end kernel execution and injection-campaign throughput.
//!
//! A dependency-free harness (`harness = false`): each benchmark is timed
//! with `std::time::Instant` and printed as a one-line summary.  Run with
//! `cargo bench --bench simulator`.  The headline comparison at the end
//! measures the fault-lifetime early-exit engine against full simulation
//! on a register-file campaign.

use gpufi_core::{profile, run_campaign, CampaignConfig, Workload};
use gpufi_faults::{CampaignSpec, Structure};
use gpufi_isa::Module;
use gpufi_sim::{CacheConfig, Gpu, GpuConfig, LaunchDims};
use gpufi_workloads::{Gaussian, HotSpot, NeedlemanWunsch, VectorAdd};
use std::time::Instant;

const KERNEL: &str = r#"
.kernel saxpy
.params 4
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R4, R5, R6, R4
    ISETP.GE P0, R4, R3
@P0 EXIT
    SHL  R5, R4, 2
    IADD R6, R0, R5
    LDG  R7, [R6]
    IADD R8, R1, R5
    LDG  R9, [R8]
    FFMA R7, R7, 2.0f, R9
    IADD R10, R2, R5
    STG  [R10], R7
    EXIT
"#;

/// Times `iters` calls of `f` (after one warm-up call) and prints the
/// per-iteration mean; returns the total wall seconds.
fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed().as_secs_f64();
    println!(
        "{label:<44} {:>12.3} ms/iter  ({iters} iters)",
        total / f64::from(iters) * 1e3
    );
    total
}

fn bench_assembler() {
    time("assemble_saxpy_module", 200, || {
        Module::assemble(std::hint::black_box(KERNEL)).unwrap()
    });
}

fn bench_cache() {
    let cfg = CacheConfig::with_capacity(64 * 1024, 4, 128);
    time("cache_fill_read_64k", 200, || {
        let mut cache = gpufi_sim::mem::Cache::new(cfg);
        let line = vec![0u8; 128];
        let mut buf = [0u8; 4];
        for la in 0..512u64 {
            cache.fill(la, &line, false);
            cache.read(la, 0, &mut buf);
        }
        cache
    });
}

fn bench_kernel_execution() {
    let module = Module::assemble(KERNEL).unwrap();
    let kernel = module.kernel("saxpy").unwrap();
    time("launch_saxpy_4096_rtx2060", 20, || {
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let x = gpu.malloc(4096 * 4).unwrap();
        let y = gpu.malloc(4096 * 4).unwrap();
        let z = gpu.malloc(4096 * 4).unwrap();
        gpu.launch(kernel, LaunchDims::new(32, 128), &[x, y, z, 4096])
            .unwrap()
    });
}

fn bench_workload_golden() {
    let hs = HotSpot::default();
    let card = GpuConfig::rtx2060();
    time("golden_profile_hotspot", 5, || profile(&hs, &card).unwrap());
}

fn bench_injection_campaign() {
    let va = VectorAdd::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&va, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 4, 7).with_threads(1);
    time("campaign_4_runs_va_regfile", 10, || {
        run_campaign(&va, &card, &cfg, &golden).unwrap()
    });
    // Baseline: the same 4 executions without any injection machinery.
    time("baseline_4_runs_va_no_injection", 10, || {
        for _ in 0..4 {
            let mut gpu = Gpu::new(card.clone());
            va.run(&mut gpu).unwrap();
        }
    });
}

/// Headline: a whole-application register-file campaign with
/// fault-lifetime early exit and work-stealing workers versus the same
/// campaign forced through full simulation (the seed engine's only mode).
///
/// Gaussian elimination launches `fan1`/`fan2` once per pivot, so a fault
/// whose taint dies inside launch `k` lets the engine skip the remaining
/// `2n - k` launches — the multi-kernel shape the paper's campaigns
/// actually have.  (A single-wave kernel like VectorAdd bounds the win:
/// dead-register taints only clear at lane exit, near the natural end.)
fn bench_early_exit_speedup() {
    let ge = Gaussian::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&ge, &card).unwrap();
    let runs = 300;
    // Checkpoints off in both modes: this comparison isolates early exit.
    let fast =
        CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, 11).no_checkpoints();
    let full = fast.clone().no_early_exit();

    let t_full = time("campaign_300_ge_regfile_full_sim", 3, || {
        run_campaign(&ge, &card, &full, &golden).unwrap()
    });
    let t_fast = time("campaign_300_ge_regfile_early_exit", 3, || {
        run_campaign(&ge, &card, &fast, &golden).unwrap()
    });

    let r_fast = run_campaign(&ge, &card, &fast, &golden).unwrap();
    let r_full = run_campaign(&ge, &card, &full, &golden).unwrap();
    assert_eq!(
        r_fast.tally, r_full.tally,
        "early exit must not change classifications"
    );
    println!(
        "early-exit engine: {:.1} runs/s on {} threads, {:.1}% runs cut short, \
         {:.1}% faults applied",
        r_fast.stats.runs_per_sec,
        r_fast.stats.threads,
        r_fast.stats.early_exit_rate * 100.0,
        r_fast.stats.applied_rate * 100.0,
    );
    println!(
        "full-sim engine:   {:.1} runs/s on {} threads",
        r_full.stats.runs_per_sec, r_full.stats.threads,
    );
    println!("speedup (wall): {:.2}x", t_full / t_fast);
}

/// Headline: checkpoint-and-fork versus cold starts (the PR 1 engine) on a
/// late-injection-heavy campaign — injections restricted to the last third
/// of the golden window, where forking skips the most golden prefix.  Both
/// modes keep taint early exit on; the delta is purely the forking.
/// Returns the JSON fragment `main` folds into `BENCH_campaign.json`.
fn bench_checkpoint_speedup() -> String {
    let ge = Gaussian::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&ge, &card).unwrap();
    let total = golden.total_cycles();
    let (win_lo, win_hi) = (total * 2 / 3, total);
    let runs = 300;
    let forked = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, 11)
        .with_cycle_window(win_lo, win_hi);
    let cold = forked.clone().no_checkpoints();

    let t_cold = time("campaign_300_ge_late_third_cold_start", 3, || {
        run_campaign(&ge, &card, &cold, &golden).unwrap()
    });
    let t_forked = time("campaign_300_ge_late_third_checkpointed", 3, || {
        run_campaign(&ge, &card, &forked, &golden).unwrap()
    });

    let r_forked = run_campaign(&ge, &card, &forked, &golden).unwrap();
    let r_cold = run_campaign(&ge, &card, &cold, &golden).unwrap();
    assert_eq!(
        r_forked.tally, r_cold.tally,
        "checkpoint forking must not change classifications"
    );
    for (i, (a, b)) in r_forked.records.iter().zip(&r_cold.records).enumerate() {
        assert_eq!(a.effect, b.effect, "run {i}: effect");
        assert_eq!(a.cycles, b.cycles, "run {i}: cycles");
        assert_eq!(a.applied, b.applied, "run {i}: applied");
    }
    let speedup = t_cold / t_forked;
    let s = &r_forked.stats;
    println!(
        "checkpoint engine: {:.1} runs/s, {} snapshots ({:.1} MiB), \
         {:.1}% runs forked, {:.0} mean cycles skipped",
        s.runs_per_sec,
        s.checkpoints,
        s.checkpoint_bytes as f64 / (1024.0 * 1024.0),
        100.0 * s.restores as f64 / runs as f64,
        s.mean_skipped_cycles,
    );
    println!("cold-start engine: {:.1} runs/s", r_cold.stats.runs_per_sec);
    println!("speedup (wall): {speedup:.2}x");

    format!(
        "{{\n    \"benchmark\": \"campaign_300_ge_late_third\",\n    \"workload\": \"{}\",\n    \
         \"runs\": {runs},\n    \"cycle_window\": [{win_lo}, {win_hi}],\n    \
         \"golden_cycles\": {total},\n    \"iters\": 3,\n    \
         \"cold_runs_per_sec\": {:.2},\n    \"checkpoint_runs_per_sec\": {:.2},\n    \
         \"speedup\": {speedup:.3},\n    \"checkpoints\": {},\n    \
         \"checkpoint_bytes\": {},\n    \"restore_rate\": {:.3},\n    \
         \"mean_skipped_cycles\": {:.1},\n    \"early_exit_rate\": {:.3},\n    \
         \"threads\": {}\n  }}",
        ge.name(),
        r_cold.stats.runs_per_sec,
        s.runs_per_sec,
        s.checkpoints,
        s.checkpoint_bytes,
        s.restores as f64 / runs as f64,
        s.mean_skipped_cycles,
        s.early_exit_rate,
        s.threads,
    )
}

/// ACE-style static pruning versus full simulation on Needleman-Wunsch,
/// whose `nw_diagonal` kernel allocates 22 registers but never reads
/// R5/R13/R14 — about one in seven register-file draws lands in provably
/// dead state and is classified Masked without forking a run.  Early exit
/// and checkpoints stay on in both modes; the delta is purely the prune.
/// Returns the JSON fragment `main` folds into `BENCH_campaign.json`.
fn bench_static_prune_speedup() -> String {
    let nw = NeedlemanWunsch::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&nw, &card).unwrap();
    let runs = 300;
    let pruned_cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, 11);
    let full_cfg = pruned_cfg.clone().no_static_prune();

    let t_full = time("campaign_300_nw_regfile_no_static_prune", 3, || {
        run_campaign(&nw, &card, &full_cfg, &golden).unwrap()
    });
    let t_pruned = time("campaign_300_nw_regfile_static_prune", 3, || {
        run_campaign(&nw, &card, &pruned_cfg, &golden).unwrap()
    });

    let r_pruned = run_campaign(&nw, &card, &pruned_cfg, &golden).unwrap();
    let r_full = run_campaign(&nw, &card, &full_cfg, &golden).unwrap();
    assert_eq!(
        r_pruned.tally, r_full.tally,
        "static pruning must not change classifications"
    );
    for (i, (a, b)) in r_pruned.records.iter().zip(&r_full.records).enumerate() {
        assert_eq!(a.effect, b.effect, "run {i}: effect");
        assert_eq!(a.cycles, b.cycles, "run {i}: cycles");
    }
    let speedup = t_full / t_pruned;
    let s = &r_pruned.stats;
    println!(
        "static-prune engine: {:.1} runs/s, {} run(s) pruned ({:.1}%)",
        s.runs_per_sec,
        s.static_pruned,
        100.0 * s.static_pruned_rate,
    );
    println!(
        "full-sim engine:     {:.1} runs/s",
        r_full.stats.runs_per_sec
    );
    println!("speedup (wall): {speedup:.2}x");
    format!(
        "{{\n    \"benchmark\": \"campaign_300_nw_regfile\",\n    \"workload\": \"{}\",\n    \
         \"runs\": {runs},\n    \"golden_cycles\": {},\n    \"iters\": 3,\n    \
         \"full_runs_per_sec\": {:.2},\n    \"pruned_runs_per_sec\": {:.2},\n    \
         \"speedup\": {speedup:.3},\n    \"static_pruned\": {},\n    \
         \"static_pruned_rate\": {:.3},\n    \"threads\": {}\n  }}",
        nw.name(),
        golden.total_cycles(),
        r_full.stats.runs_per_sec,
        s.runs_per_sec,
        s.static_pruned,
        s.static_pruned_rate,
        s.threads,
    )
}

fn main() {
    bench_assembler();
    bench_cache();
    bench_kernel_execution();
    bench_workload_golden();
    bench_injection_campaign();
    bench_early_exit_speedup();
    let checkpoint = bench_checkpoint_speedup();
    let static_prune = bench_static_prune_speedup();
    let json =
        format!("{{\n  \"checkpoint\": {checkpoint},\n  \"static_prune\": {static_prune}\n}}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, json).expect("write BENCH_campaign.json");
    println!("results written to BENCH_campaign.json");
}
