//! Criterion micro-benchmarks of the simulator substrate: assembler,
//! cache, end-to-end kernel execution and injection-campaign overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpufi_core::{profile, run_campaign, CampaignConfig, Workload};
use gpufi_faults::{CampaignSpec, Structure};
use gpufi_isa::Module;
use gpufi_sim::{CacheConfig, Gpu, GpuConfig, LaunchDims};
use gpufi_workloads::{HotSpot, VectorAdd};

const KERNEL: &str = r#"
.kernel saxpy
.params 4
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R4, R5, R6, R4
    ISETP.GE P0, R4, R3
@P0 EXIT
    SHL  R5, R4, 2
    IADD R6, R0, R5
    LDG  R7, [R6]
    IADD R8, R1, R5
    LDG  R9, [R8]
    FFMA R7, R7, 2.0f, R9
    IADD R10, R2, R5
    STG  [R10], R7
    EXIT
"#;

fn bench_assembler(c: &mut Criterion) {
    c.bench_function("assemble_saxpy_module", |b| {
        b.iter(|| Module::assemble(std::hint::black_box(KERNEL)).unwrap())
    });
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig::with_capacity(64 * 1024, 4, 128);
    c.bench_function("cache_fill_read_64k", |b| {
        b.iter_batched(
            || gpufi_sim::mem::Cache::new(cfg),
            |mut cache| {
                let line = vec![0u8; 128];
                let mut buf = [0u8; 4];
                for la in 0..512u64 {
                    cache.fill(la, &line, false);
                    cache.read(la, 0, &mut buf);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kernel_execution(c: &mut Criterion) {
    let module = Module::assemble(KERNEL).unwrap();
    let kernel = module.kernel("saxpy").unwrap();
    c.bench_function("launch_saxpy_4096_rtx2060", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::rtx2060());
            let x = gpu.malloc(4096 * 4).unwrap();
            let y = gpu.malloc(4096 * 4).unwrap();
            let z = gpu.malloc(4096 * 4).unwrap();
            gpu.launch(kernel, LaunchDims::new(32, 128), &[x, y, z, 4096])
                .unwrap()
        })
    });
}

fn bench_workload_golden(c: &mut Criterion) {
    let hs = HotSpot::default();
    let card = GpuConfig::rtx2060();
    c.bench_function("golden_profile_hotspot", |b| {
        b.iter(|| profile(&hs, &card).unwrap())
    });
}

fn bench_injection_campaign(c: &mut Criterion) {
    let va = VectorAdd::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&va, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 4, 7)
        .with_threads(1);
    c.bench_function("campaign_4_runs_va_regfile", |b| {
        b.iter(|| run_campaign(&va, &card, &cfg, &golden).unwrap())
    });
    // Baseline: the same 4 executions without any injection machinery.
    c.bench_function("baseline_4_runs_va_no_injection", |b| {
        b.iter(|| {
            for _ in 0..4 {
                let mut gpu = Gpu::new(card.clone());
                va.run(&mut gpu).unwrap();
            }
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_assembler, bench_cache, bench_kernel_execution,
              bench_workload_golden, bench_injection_campaign
}
criterion_main!(benches);
