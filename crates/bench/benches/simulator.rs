//! Micro-benchmarks of the simulator substrate: assembler, cache,
//! end-to-end kernel execution and injection-campaign throughput.
//!
//! A dependency-free harness (`harness = false`): each benchmark is timed
//! with `std::time::Instant` and printed as a one-line summary.  Run with
//! `cargo bench --bench simulator`.  The headline comparison at the end
//! measures the fault-lifetime early-exit engine against full simulation
//! on a register-file campaign.

use gpufi_core::{profile, run_campaign, CampaignConfig, Workload};
use gpufi_faults::{CampaignSpec, Structure};
use gpufi_isa::Module;
use gpufi_sim::{CacheConfig, Gpu, GpuConfig, LaunchDims};
use gpufi_workloads::{Gaussian, HotSpot, VectorAdd};
use std::time::Instant;

const KERNEL: &str = r#"
.kernel saxpy
.params 4
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R4, R5, R6, R4
    ISETP.GE P0, R4, R3
@P0 EXIT
    SHL  R5, R4, 2
    IADD R6, R0, R5
    LDG  R7, [R6]
    IADD R8, R1, R5
    LDG  R9, [R8]
    FFMA R7, R7, 2.0f, R9
    IADD R10, R2, R5
    STG  [R10], R7
    EXIT
"#;

/// Times `iters` calls of `f` (after one warm-up call) and prints the
/// per-iteration mean; returns the total wall seconds.
fn time<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed().as_secs_f64();
    println!(
        "{label:<44} {:>12.3} ms/iter  ({iters} iters)",
        total / f64::from(iters) * 1e3
    );
    total
}

fn bench_assembler() {
    time("assemble_saxpy_module", 200, || {
        Module::assemble(std::hint::black_box(KERNEL)).unwrap()
    });
}

fn bench_cache() {
    let cfg = CacheConfig::with_capacity(64 * 1024, 4, 128);
    time("cache_fill_read_64k", 200, || {
        let mut cache = gpufi_sim::mem::Cache::new(cfg);
        let line = vec![0u8; 128];
        let mut buf = [0u8; 4];
        for la in 0..512u64 {
            cache.fill(la, &line, false);
            cache.read(la, 0, &mut buf);
        }
        cache
    });
}

fn bench_kernel_execution() {
    let module = Module::assemble(KERNEL).unwrap();
    let kernel = module.kernel("saxpy").unwrap();
    time("launch_saxpy_4096_rtx2060", 20, || {
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let x = gpu.malloc(4096 * 4).unwrap();
        let y = gpu.malloc(4096 * 4).unwrap();
        let z = gpu.malloc(4096 * 4).unwrap();
        gpu.launch(kernel, LaunchDims::new(32, 128), &[x, y, z, 4096])
            .unwrap()
    });
}

fn bench_workload_golden() {
    let hs = HotSpot::default();
    let card = GpuConfig::rtx2060();
    time("golden_profile_hotspot", 5, || profile(&hs, &card).unwrap());
}

fn bench_injection_campaign() {
    let va = VectorAdd::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&va, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 4, 7).with_threads(1);
    time("campaign_4_runs_va_regfile", 10, || {
        run_campaign(&va, &card, &cfg, &golden).unwrap()
    });
    // Baseline: the same 4 executions without any injection machinery.
    time("baseline_4_runs_va_no_injection", 10, || {
        for _ in 0..4 {
            let mut gpu = Gpu::new(card.clone());
            va.run(&mut gpu).unwrap();
        }
    });
}

/// Headline: a whole-application register-file campaign with
/// fault-lifetime early exit and work-stealing workers versus the same
/// campaign forced through full simulation (the seed engine's only mode).
///
/// Gaussian elimination launches `fan1`/`fan2` once per pivot, so a fault
/// whose taint dies inside launch `k` lets the engine skip the remaining
/// `2n - k` launches — the multi-kernel shape the paper's campaigns
/// actually have.  (A single-wave kernel like VectorAdd bounds the win:
/// dead-register taints only clear at lane exit, near the natural end.)
fn bench_early_exit_speedup() {
    let ge = Gaussian::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&ge, &card).unwrap();
    let runs = 300;
    let fast = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, 11);
    let full = fast.clone().no_early_exit();

    let t_full = time("campaign_300_ge_regfile_full_sim", 3, || {
        run_campaign(&ge, &card, &full, &golden).unwrap()
    });
    let t_fast = time("campaign_300_ge_regfile_early_exit", 3, || {
        run_campaign(&ge, &card, &fast, &golden).unwrap()
    });

    let r_fast = run_campaign(&ge, &card, &fast, &golden).unwrap();
    let r_full = run_campaign(&ge, &card, &full, &golden).unwrap();
    assert_eq!(
        r_fast.tally, r_full.tally,
        "early exit must not change classifications"
    );
    println!(
        "early-exit engine: {:.1} runs/s on {} threads, {:.1}% runs cut short, \
         {:.1}% faults applied",
        r_fast.stats.runs_per_sec,
        r_fast.stats.threads,
        r_fast.stats.early_exit_rate * 100.0,
        r_fast.stats.applied_rate * 100.0,
    );
    println!(
        "full-sim engine:   {:.1} runs/s on {} threads",
        r_full.stats.runs_per_sec, r_full.stats.threads,
    );
    println!("speedup (wall): {:.2}x", t_full / t_fast);
}

fn main() {
    bench_assembler();
    bench_cache();
    bench_kernel_execution();
    bench_workload_golden();
    bench_injection_campaign();
    bench_early_exit_speedup();
}
