//! Ablation studies of the reproduction's design choices (DESIGN.md §6):
//! warp-scheduler policy and the `df_reg` derating factor.

use crate::suite::ReproConfig;
use gpufi_core::{profile, run_campaign, CampaignConfig};
use gpufi_faults::{CampaignSpec, Structure};
use gpufi_metrics::df_reg;
use gpufi_sim::{GpuConfig, SchedulerPolicy};
use std::fmt::Write as _;

/// Runs both ablations and renders a report.
pub fn ablation(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ABLATION 1. Warp scheduler: GTO vs round-robin (golden cycles, RTX 2060)."
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>8}",
        "bench", "GTO", "RR", "RR/GTO"
    );
    for w in gpufi_workloads::paper_suite() {
        let gto = {
            let card = GpuConfig::rtx2060();
            profile(w.as_ref(), &card).expect("golden").total_cycles()
        };
        let rr = {
            let mut card = GpuConfig::rtx2060();
            card.scheduler = SchedulerPolicy::RoundRobin;
            profile(w.as_ref(), &card).expect("golden").total_cycles()
        };
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>8.3}",
            w.name(),
            gto,
            rr,
            rr as f64 / gto as f64
        );
    }

    let _ = writeln!(
        out,
        "\nABLATION 2. df_reg derating (paper \u{00a7}V.A): raw vs derated register-file FR."
    );
    let _ = writeln!(
        out,
        "{:<8} {:>9} {:>8} {:>12}  (RTX 2060, {} runs)",
        "bench", "raw FR", "df_reg", "derated FR", cfg.runs
    );
    let card = GpuConfig::rtx2060();
    for name in ["HS", "LUD", "VA"] {
        let w = gpufi_workloads::by_name(name).expect("paper benchmark");
        let golden = profile(w.as_ref(), &card).expect("golden");
        let ccfg = CampaignConfig::new(
            CampaignSpec::new(Structure::RegisterFile),
            cfg.runs,
            cfg.seed,
        )
        .with_threads(cfg.threads);
        let r = run_campaign(w.as_ref(), &card, &ccfg, &golden).expect("campaign");
        eprintln!(
            "  [{name}] {:.1} runs/s on {} threads, {:.0}% early exits",
            r.stats.runs_per_sec,
            r.stats.threads,
            100.0 * r.stats.early_exit_rate
        );
        // Whole-application campaign: use the cycle-dominant kernel's df.
        let kernel = golden
            .app
            .static_kernels()
            .into_iter()
            .max_by_key(|k| golden.app.cycles_of(k))
            .expect("at least one kernel");
        let df = df_reg(
            golden.fault_spaces[&kernel].regs_per_thread,
            golden.mean_threads_of(&kernel),
            card.registers_per_sm,
        );
        let fr = r.tally.failure_ratio();
        let _ = writeln!(out, "{:<8} {:>9.4} {:>8.4} {:>12.5}", name, fr, df, fr * df);
    }
    let _ = writeln!(
        out,
        "\nWithout derating, per-thread register-file injection overstates the\n\
         physical register file's AVF by the inverse occupancy factor — the\n\
         GPGPU-Sim modelling issue \u{00a7}V.A corrects for."
    );
    out
}
