//! `repro` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! repro [--runs N] [--seed S] [--threads T] [--out DIR] <target>...
//! targets: table1 table2 table4 table5 fig1 ... fig7 raw all
//! ```

use gpufi_bench::{figures, run_suite, tables, ReproConfig, SuiteResults};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const TARGETS: [&str; 14] = [
    "table1", "table2", "table4", "table5", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "raw", "ablation", "all",
];

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ReproConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.runs = v,
                None => return usage("--runs needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage("--seed needs a number"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.threads = v,
                None => return usage("--threads needs a number"),
            },
            "--out" => match it.next() {
                Some(v) => out_dir = Some(PathBuf::from(v)),
                None => return usage("--out needs a directory"),
            },
            t if TARGETS.contains(&t) => targets.push(t.to_string()),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if targets.is_empty() {
        return usage("no target given");
    }
    if targets.iter().any(|t| t == "all") {
        targets = TARGETS[..TARGETS.len() - 1]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    // Static tables need no campaigns; figures share one sweep.
    let needs_suite = targets.iter().any(|t| t.starts_with("fig") || t == "raw");
    let suite: Option<SuiteResults> = if needs_suite {
        eprintln!(
            "running campaign sweep: {} injections per kernel x structure (seed {})",
            cfg.runs, cfg.seed
        );
        Some(run_suite(&cfg))
    } else {
        None
    };

    for t in &targets {
        let text = match t.as_str() {
            "table1" => tables::table1(),
            "table2" => tables::table2(),
            "table4" => tables::table4(),
            "table5" => tables::table5(),
            "ablation" => gpufi_bench::ablation::ablation(&cfg),
            other => {
                let suite = suite.as_ref().expect("suite computed for figures");
                match other {
                    "fig1" => figures::fig1(suite),
                    "fig2" => figures::fig2(suite),
                    "fig3" => figures::fig3(suite),
                    "fig4" => figures::fig4(suite),
                    "fig5" => figures::fig5(suite),
                    "fig6" => figures::fig6(suite),
                    "fig7" => figures::fig7(suite),
                    "raw" => figures::raw_dump(suite),
                    _ => unreachable!("validated target"),
                }
            }
        };
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let path = dir.join(format!("{t}.txt"));
            if let Err(e) = fs::write(&path, &text) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: repro [--runs N] [--seed S] [--threads T] [--out DIR] <target>...");
    eprintln!("targets: {}", TARGETS.join(" "));
    ExitCode::FAILURE
}
