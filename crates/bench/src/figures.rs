//! Renderers for Figures 1–7, producing paper-style textual tables.

use crate::suite::{CardResults, SuiteResults};
use gpufi_core::AppAnalysis;
use gpufi_faults::Structure;
use gpufi_metrics::FaultEffect;
use std::fmt::Write as _;

fn pct(v: f64) -> String {
    format!("{:6.3}", 100.0 * v)
}

/// A small ASCII bar for at-a-glance magnitude comparison.
fn bar(v: f64, scale: f64) -> String {
    let width = ((v / scale).clamp(0.0, 1.0) * 30.0).round() as usize;
    "#".repeat(width)
}

fn rf_breakdown_table(out: &mut String, card: &CardResults) {
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>7} {:>7} {:>8}  (derated %, register file)",
        "bench", "SDC", "Crash", "Timeout", "AVF(RF)"
    );
    for b in &card.benchmarks {
        if let Some(rf) = b.structure(Structure::RegisterFile) {
            let _ = writeln!(
                out,
                "{:<8} {:>7} {:>7} {:>7} {:>8} {}",
                b.benchmark,
                pct(rf.rates.sdc),
                pct(rf.rates.crash),
                pct(rf.rates.timeout),
                pct(rf.rates.failure_rate()),
                bar(rf.rates.failure_rate(), 0.3),
            );
        }
    }
}

/// Fig. 1 — register-file fault-effect breakdown, single-bit, all three
/// cards × twelve benchmarks.
pub fn fig1(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 1. Register-file fault effects, single-bit faults."
    );
    for card in &suite.single {
        let _ = writeln!(out, "\n--- {} ---", card.card);
        rf_breakdown_table(&mut out, card);
    }
    out
}

/// Fig. 2 — per-structure share of the total AVF for SRAD2 and HS
/// (RTX 2060).
pub fn fig2(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 2. Hardware-structure contribution to total AVF (RTX 2060)."
    );
    for target in ["SRAD2", "HS"] {
        let Some(b) = suite.single[0]
            .benchmarks
            .iter()
            .find(|b| b.benchmark == target)
        else {
            continue;
        };
        let _ = writeln!(out, "\n--- {target} ---");
        let shares = b.avf_shares();
        if shares.is_empty() {
            let _ = writeln!(out, "  (zero AVF — no structure contributed failures)");
        }
        for (s, share) in shares {
            let _ = writeln!(
                out,
                "  {:<18} {:>7} % {}",
                s.name(),
                pct(share),
                bar(share, 1.0)
            );
        }
    }
    out
}

/// Fig. 3 — total chip wAVF and occupancy per card × benchmark,
/// single-bit.
pub fn fig3(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 3. Total GPU chip AVF (single-bit) and warp occupancy."
    );
    for card in &suite.single {
        let _ = writeln!(out, "\n--- {} ---", card.card);
        let _ = writeln!(out, "{:<8} {:>9} {:>10}", "bench", "wAVF %", "occupancy");
        for b in &card.benchmarks {
            let _ = writeln!(
                out,
                "{:<8} {:>9} {:>10.3} {}",
                b.benchmark,
                pct(b.wavf),
                b.occupancy,
                bar(b.wavf, 0.10),
            );
        }
    }
    out
}

/// Fig. 4 — Performance fault effects as a share of functionally masked
/// faults (RTX 2060), aggregated over the on-chip structures.
pub fn fig4(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 4. Performance faults as % of functionally masked faults (RTX 2060)."
    );
    let _ = writeln!(out, "{:<8} {:>9}", "bench", "perf %");
    let mut total_share = 0.0;
    let mut n = 0usize;
    for b in &suite.single[0].benchmarks {
        let tally = b
            .structures
            .iter()
            .fold(gpufi_metrics::Tally::default(), |acc, s| acc + s.tally);
        let share = tally.performance_share_of_masked();
        total_share += share;
        n += 1;
        let _ = writeln!(
            out,
            "{:<8} {:>9} {}",
            b.benchmark,
            pct(share),
            bar(share, 0.10)
        );
    }
    if n > 0 {
        let _ = writeln!(out, "{:<8} {:>9}", "mean", pct(total_share / n as f64));
    }
    out
}

/// Fig. 5 — register-file fault-effect breakdown for triple-bit faults
/// (RTX 2060).
pub fn fig5(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 5. Register-file fault effects, triple-bit faults (RTX 2060)."
    );
    let card = CardResults {
        card: "RTX 2060".to_string(),
        benchmarks: suite.triple_rtx.clone(),
    };
    rf_breakdown_table(&mut out, &card);
    out
}

/// Fig. 6 — wAVF, single-bit vs triple-bit (RTX 2060).
pub fn fig6(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "FIG. 6. wAVF single-bit vs triple-bit (RTX 2060).");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>7}",
        "bench", "1-bit %", "3-bit %", "ratio"
    );
    for (s, t) in suite.single[0].benchmarks.iter().zip(&suite.triple_rtx) {
        let ratio = if s.wavf > 0.0 {
            t.wavf / s.wavf
        } else {
            f64::NAN
        };
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>10} {:>7.2}",
            s.benchmark,
            pct(s.wavf),
            pct(t.wavf),
            ratio
        );
    }
    out
}

/// Fig. 7 — total chip FIT rates for the three cards and twelve
/// benchmarks.
pub fn fig7(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIG. 7. Total FIT rates (failures per 10^9 device-hours)."
    );
    let _ = write!(out, "{:<8}", "bench");
    for card in &suite.single {
        let _ = write!(out, "{:>16}", card.card);
    }
    let _ = writeln!(out);
    let n = suite.single[0].benchmarks.len();
    for i in 0..n {
        let _ = write!(out, "{:<8}", suite.single[0].benchmarks[i].benchmark);
        for card in &suite.single {
            let _ = write!(out, "{:>16.4}", card.benchmarks[i].fit);
        }
        let _ = writeln!(out);
    }
    out
}

/// Per-class per-structure dump used by EXPERIMENTS.md (not a paper
/// figure, but the raw numbers behind the shape checks).
pub fn raw_dump(suite: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "RAW per-structure tallies (single-bit).");
    for card in &suite.single {
        for b in &card.benchmarks {
            dump_one(&mut out, &card.card, b);
        }
    }
    let _ = writeln!(out, "\nRAW per-structure tallies (triple-bit, RTX 2060).");
    for b in &suite.triple_rtx {
        dump_one(&mut out, "RTX 2060", b);
    }
    out
}

fn dump_one(out: &mut String, card: &str, b: &AppAnalysis) {
    for s in &b.structures {
        let t = &s.tally;
        let _ = writeln!(
            out,
            "{card:<14} {:<7} {:<18} total={:<5} masked={:<5} sdc={:<4} crash={:<4} timeout={:<4} perf={:<4}",
            b.benchmark,
            s.structure.name(),
            t.total(),
            t.count(FaultEffect::Masked),
            t.count(FaultEffect::Sdc),
            t.count(FaultEffect::Crash),
            t.count(FaultEffect::Timeout),
            t.count(FaultEffect::Performance),
        );
    }
}
