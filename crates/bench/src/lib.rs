//! # gpufi-bench — regenerating every table and figure of the paper
//!
//! The evaluation section of gpuFI-4 contains five tables and seven
//! figures.  This crate regenerates each of them against the Rust
//! reproduction:
//!
//! * **Tables I, II, IV, V** derive from the chip configurations and the
//!   injector's capability matrix ([`tables`]).
//! * **Figures 1–7** come from full injection-campaign sweeps
//!   ([`suite::run_suite`] + [`figures`]): single-bit campaigns over all
//!   five on-chip structures × 12 benchmarks × 3 cards, plus triple-bit
//!   campaigns on the RTX 2060.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro [--runs N] [--seed S] [--threads T] [--out DIR] <target>
//! target: table1 table2 table4 table5 fig1 fig2 fig3 fig4 fig5 fig6 fig7 all
//! ```
//!
//! Campaign sizes default to `GPUFI_RUNS` (or 120) injections per
//! (kernel × structure) campaign; the paper uses 3 000, which is one flag
//! away (`--runs 3000`) at proportionally longer wall-clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod suite;
pub mod tables;

pub use suite::{run_suite, CardResults, ReproConfig, SuiteResults};
