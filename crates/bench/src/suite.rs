//! The full campaign sweep behind Figures 1–7.

use gpufi_core::{analyze_with_golden, profile, AnalysisConfig, AppAnalysis};
use gpufi_sim::GpuConfig;

/// Configuration of a reproduction sweep.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Injection runs per (kernel × structure) campaign (paper: 3 000).
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = autodetect).
    pub threads: usize,
}

impl Default for ReproConfig {
    /// Reads `GPUFI_RUNS` (default 120) so CI and the full-scale paper
    /// setting use the same binary.
    fn default() -> Self {
        let runs = std::env::var("GPUFI_RUNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120);
        ReproConfig {
            runs,
            seed: 2022,
            threads: 0,
        }
    }
}

/// All per-benchmark analyses for one card.
#[derive(Debug, Clone)]
pub struct CardResults {
    /// Card name.
    pub card: String,
    /// One analysis per benchmark, in the paper's benchmark order.
    pub benchmarks: Vec<AppAnalysis>,
}

/// Everything Figures 1–7 need.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// Single-bit sweeps for RTX 2060, Quadro GV100 and GTX Titan.
    pub single: Vec<CardResults>,
    /// Triple-bit sweep for the RTX 2060 (Figs. 5–6).
    pub triple_rtx: Vec<AppAnalysis>,
}

/// Runs the single-bit sweep for one card.
pub fn run_card(cfg: &ReproConfig, card: &GpuConfig, bits: u32) -> CardResults {
    let mut analysis_cfg = AnalysisConfig::new(cfg.runs, cfg.seed).bits(bits);
    analysis_cfg.threads = cfg.threads;
    let mut benchmarks = Vec::new();
    for w in gpufi_workloads::paper_suite() {
        eprintln!("  [{}] {} ({}-bit)...", card.name, w.name(), bits);
        let golden = profile(w.as_ref(), card)
            .unwrap_or_else(|e| panic!("golden run of {} failed: {e}", w.name()));
        benchmarks.push(analyze_with_golden(
            w.as_ref(),
            card,
            &analysis_cfg,
            &golden,
        ));
    }
    CardResults {
        card: card.name.clone(),
        benchmarks,
    }
}

/// Runs the entire sweep: single-bit × 3 cards plus triple-bit × RTX 2060.
pub fn run_suite(cfg: &ReproConfig) -> SuiteResults {
    let single = GpuConfig::paper_cards()
        .iter()
        .map(|card| run_card(cfg, card, 1))
        .collect();
    let triple_rtx = run_card(cfg, &GpuConfig::rtx2060(), 3).benchmarks;
    SuiteResults { single, triple_rtx }
}
