//! Tables I, II, IV and V — derived from the chip configurations and the
//! injector capability matrix, not hard-coded prose.

use gpufi_faults::Structure;
use gpufi_sim::GpuConfig;
use std::fmt::Write as _;

fn fmt_size(bits: u64) -> String {
    let bytes = bits as f64 / 8.0;
    if bytes >= 1024.0 * 1024.0 {
        format!("{:.2} MB", bytes / (1024.0 * 1024.0))
    } else {
        format!("{:.2} KB", bytes / 1024.0)
    }
}

/// Table I — memory structure sizes across generations (tag bits
/// included for the caches, as in the paper).
pub fn table1() -> String {
    let cards = GpuConfig::paper_cards();
    let mut out = String::new();
    let _ = writeln!(out, "TABLE I. MEMORY STRUCTURES SIZES ACROSS GENERATIONS.");
    let _ = write!(out, "{:<22}", "");
    for c in &cards {
        let _ = write!(out, "{:>16}", c.name);
    }
    let _ = writeln!(out);
    type SizeFn = fn(&GpuConfig) -> u64;
    let rows: [(&str, SizeFn); 6] = [
        ("Register File", GpuConfig::regfile_bits_total),
        ("Shared Memory", GpuConfig::smem_bits_total),
        ("L1 data cache", GpuConfig::l1d_bits_total),
        ("L1 texture cache", GpuConfig::l1t_bits_total),
        ("L1 constant cache", GpuConfig::l1c_bits_total),
        ("L2 cache", GpuConfig::l2_bits_total),
    ];
    for (name, f) in rows {
        let _ = write!(out, "{name:<22}");
        for c in &cards {
            let bits = f(c);
            let cell = if bits == 0 {
                "N/A".to_string()
            } else {
                fmt_size(bits)
            };
            let _ = write!(out, "{cell:>16}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Table II — which on-chip memory services which memory-space access
/// (encoded in the simulator's `AccessKind` routing).
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE II. CUDA SUPPORTED MEMORY SPACES IN THE SIMULATOR."
    );
    let _ = writeln!(out, "{:<28} Accesses serviced", "Core Memory");
    let rows = [
        (
            "Shared memory (R/W)",
            "shared memory accesses only (LDS/STS)",
        ),
        (
            "Data cache (R/W)",
            "global (evict-on-write) and local (writeback) accesses (LDG/STG, LDL/STL)",
        ),
        ("Texture cache (Read Only)", "texture accesses only (LDT)"),
        ("L2 cache (R/W)", "all device-memory requests"),
    ];
    for (mem, acc) in rows {
        let _ = writeln!(out, "{mem:<28} {acc}");
    }
    out
}

/// Table IV — the injector's target hardware structures and supported
/// modes, generated from the capability matrix the code actually
/// implements.
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE IV. GPUFI TARGET HARDWARE STRUCTURES.");
    for s in Structure::ALL {
        let support = match s {
            Structure::RegisterFile => {
                "single/multiple bit-flips in a register of one thread, or of every thread of a warp"
            }
            Structure::LocalMemory => "single/multiple bit-flips in the local memory of a thread",
            Structure::SharedMemory => {
                "single/multiple bit-flips in the shared memory of one or more active CTAs"
            }
            Structure::L1Data => {
                "single/multiple bit-flips (tag or data) in the L1D of one or more SIMT cores"
            }
            Structure::L1Tex => {
                "single/multiple bit-flips (tag or data) in the L1T of one or more SIMT cores"
            }
            Structure::L1Const => {
                "single/multiple bit-flips (tag or data) in the L1C of one or more SIMT cores (extension; paper future work)"
            }
            Structure::L2 => "single/multiple bit-flips (tag or data) across the flat L2 line space",
        };
        let _ = writeln!(out, "{:<18} {support}", s.name());
    }
    out
}

/// Table V — microarchitectural parameters of the three cards, with the
/// starred tag-inclusive cache sizes of the paper.
pub fn table5() -> String {
    let cards = GpuConfig::paper_cards();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE V. MICROARCHITECTURAL PARAMETERS (* = with {} tag bits per line).",
        gpufi_sim::TAG_BITS
    );
    let _ = write!(out, "{:<34}", "");
    for c in &cards {
        let _ = write!(out, "{:>16}", c.name);
    }
    let _ = writeln!(out);
    let mut row = |label: &str, f: &dyn Fn(&GpuConfig) -> String| {
        let _ = write!(out, "{label:<34}");
        for c in &cards {
            let _ = write!(out, "{:>16}", f(c));
        }
        let _ = writeln!(out);
    };
    row("SMs", &|c| c.num_sms.to_string());
    row("Warp size", &|_| gpufi_sim::WARP_SIZE.to_string());
    row("Maximum Threads per SM", &|c| {
        c.max_threads_per_sm.to_string()
    });
    row("Maximum CTAs per SM", &|c| c.max_ctas_per_sm.to_string());
    row("Registers per SM (4 bytes each)", &|c| {
        c.registers_per_sm.to_string()
    });
    row("Shared Memory per SM", &|c| {
        format!("{} KB", c.smem_per_sm / 1024)
    });
    row("L1 data cache per SM", &|c| match c.l1d {
        Some(l1) => format!("{} KB", l1.data_bytes() / 1024),
        None => "N/A".to_string(),
    });
    row("L1 data cache per SM *", &|c| match c.l1d {
        Some(l1) => fmt_size(l1.total_bits()),
        None => "N/A".to_string(),
    });
    row("L1 texture cache per SM", &|c| {
        format!("{} KB", c.l1t.data_bytes() / 1024)
    });
    row("L1 texture cache per SM *", &|c| {
        fmt_size(c.l1t.total_bits())
    });
    row("L1 constant cache per SM", &|c| {
        format!("{} KB", c.l1c.data_bytes() / 1024)
    });
    row("L1 constant cache per SM *", &|c| {
        fmt_size(c.l1c.total_bits())
    });
    row("L2 cache size", &|c| {
        fmt_size(u64::from(c.l2.data_bytes()) * 8)
    });
    row("L2 cache size *", &|c| fmt_size(c.l2.total_bits()));
    row("L2 banks (memory partitions)", &|c| {
        c.num_l2_banks.to_string()
    });
    row("Process (nm)", &|c| c.process_nm.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_headline_numbers() {
        let t = table1();
        assert!(t.contains("7.50 MB"), "RTX 2060 register file:\n{t}");
        assert!(t.contains("20.00 MB"), "GV100 register file:\n{t}");
        assert!(t.contains("3.17 MB"), "RTX 2060 L2 with tags:\n{t}");
        assert!(t.contains("N/A"), "Titan L1D:\n{t}");
    }

    #[test]
    fn table5_contains_cards_and_starred_sizes() {
        let t = table5();
        for name in ["RTX 2060", "Quadro GV100", "GTX Titan"] {
            assert!(t.contains(name));
        }
        assert!(t.contains("67.56 KB"), "tagged 64 KB L1D:\n{t}");
    }

    #[test]
    fn table4_covers_all_six_structures() {
        let t = table4();
        for s in Structure::ALL {
            assert!(t.contains(s.name()));
        }
    }

    #[test]
    fn table2_mentions_all_paths() {
        let t = table2();
        for needle in ["Shared", "Data cache", "Texture", "L2"] {
            assert!(t.contains(needle));
        }
    }
}
