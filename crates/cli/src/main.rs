//! `gpufi` — the command-line front-end of the gpuFI-4 reproduction.
//!
//! Mirrors the paper's bash front-end (§III.C): it profiles a benchmark
//! fault-free, runs parameterised injection campaigns, and aggregates the
//! results into the paper's metrics.
//!
//! ```text
//! gpufi list
//! gpufi profile  --bench VA [--card rtx2060]
//! gpufi campaign --bench VA --structure rf [--runs 120] [--bits 1]
//!                [--kernel vec_add] [--scope warp] [--spread] [--seed 1]
//! gpufi analyze  --bench VA [--card gv100] [--runs 60] [--bits 3]
//! gpufi lint     [--bench VA] [--json]
//! ```

use gpufi_core::{
    analyze_with_golden, profile, run_campaign, run_campaign_with_hook, AnalysisConfig,
    CampaignConfig,
};
use gpufi_faults::{CampaignSpec, MultiBitMode, Structure};
use gpufi_metrics::{margin_of_error, FaultEffect};
use gpufi_sim::{GpuConfig, Scope};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  gpufi list
  gpufi profile  --bench <NAME> [--card <CARD> | --config <FILE>]
  gpufi campaign --bench <NAME> --structure <S> [--card <CARD>] [--runs N]
                 [--bits K] [--kernel <K>] [--scope thread|warp] [--spread]
                 [--seed S] [--threads T] [--no-early-exit] [--no-checkpoints]
                 [--checkpoint-interval C] [--oracle-check] [--no-static-prune]
                 [--csv FILE] [--journal FILE] [--journal-commit N]
                 [--no-journal] [--resume]
                 [--max-run-seconds S] [--inject-panic-run I]
  gpufi serve    --bench <NAME> --structure <S> | --matrix
                 [--benches A,B] [--structures rf,l2] [--card <CARD>]
                 [--runs N] [--seed S] [--bits K] [--workers W]
                 [--worker-threads T] [--listen HOST:PORT] [--chunk C]
                 [--lease-timeout SECS] [--csv FILE] [--out-dir DIR]
                 [--journal FILE] [--journal-commit N] [--no-journal]
                 [--resume] (campaign flags: --scope/--spread/--kernel/
                 --no-early-exit/--no-checkpoints/--checkpoint-interval/
                 --no-static-prune/--max-run-seconds)
  gpufi worker   --connect HOST:PORT [--threads T] [--fail-after-results N]
  gpufi analyze  --bench <NAME> [--card <CARD>] [--runs N] [--bits K] [--seed S]
  gpufi fuzz     [--kernels N] [--seed S] [--traps T]
  gpufi lint     [--bench <NAME>] [--json]

cards:      rtx2060 (default) | gv100 | titan, or --config <FILE> with a
            gpgpusim.config-style `key = value` chip description
structures: rf | local | shared | l1d | l1t | l1c | l2

campaigns abort each run as soon as every injected fault's lifetime has
provably ended (classified Masked at the golden cycle count), and fork
each run from a golden-run checkpoint at its first injection cycle;
--no-early-exit forces full simulation of every run and --no-checkpoints
forces cold starts from cycle 0 (validation modes);
--checkpoint-interval sets the snapshot stride in cycles (0 = auto);
--oracle-check runs the golden pass in lockstep with the functional
reference interpreter and fully simulates every run early exit would
classify Masked, confirming the oracle-predicted final state;
fuzz runs N random SASS-lite kernels through both engines (sim == oracle)
and statically lints every generated kernel; --traps additionally runs T
kernels built to fault through corrupted-address shapes (bases near
u32::MAX, wrapping negative offsets, null pages), pinning that both
engines raise the same trap kind;
lint runs the SASS-lite static analyzer (CFG, dominators, liveness) over
one benchmark or the whole paper suite: uninitialized-register reads,
divergent barriers, shared-memory races between barrier intervals,
unreachable code, write-never-read registers and malformed SSY
reconvergence points; --json emits machine-readable findings;
register-file campaigns consult the same liveness analysis to pre-classify
runs whose faults land only in statically dead (never-read) registers as
Masked without simulating them (detail=static_dead); --no-static-prune
forces full simulation of every run (validation mode)

fault tolerance: every run executes under a supervisor that catches
simulator panics, retries each panicked run once and records reproduced
panics as Crash (detail=sim_panic) without losing sibling runs; with
--csv (or --journal) every completed run is fsync'd to an append-only
journal (<csv>.journal.jsonl by default, --no-journal disables) and
--resume restarts an interrupted campaign from it, re-running only the
missing runs with bit-identical results; --max-run-seconds S adds a
per-run wall-clock watchdog (classified Timeout, detail=wall_watchdog)
on top of the 2x-golden-cycles cycle watchdog; --inject-panic-run I
panics run I on both attempts (supervisor self-test);
--journal-commit N groups journal fsyncs in batches of N lines (default
16; 1 = fsync every record) — lines are still written through on every
record, so a crash loses at most buffered *syncs*, never records

distribution: `serve` binds a coordinator (default 127.0.0.1:0), hands
out run-index range leases to connected `worker` processes (spawned
locally with --workers, or started by hand on other hosts pointing
--connect at the printed address) and merges their streamed records into
the same canonical CSV a single-process campaign writes, byte for byte;
leases whose worker dies or stalls past --lease-timeout are reissued to
the survivors with no loss (runs are keyed and re-drawn by index);
--matrix sweeps benches x structures (defaults: the paper suite x
rf,local,shared,l1d,l1t,l2) writing one CSV per cell into --out-dir;
worker --fail-after-results N drops the connection after N results
(chaos switch for reissue testing)";

/// Minimal `--flag value` parser over the argument list.
struct Args<'a> {
    argv: &'a [String],
}

impl<'a> Args<'a> {
    fn value(&self, flag: &str) -> Option<&'a str> {
        self.argv
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }

    fn parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for {flag}: `{v}`")),
        }
    }

    /// Rejects any argument that is not a known `--flag value` pair or a
    /// known boolean `--flag` — a typo like `--run 50` must fail loudly
    /// instead of silently running 120 default runs.
    fn reject_unknown(&self, value_flags: &[&str], bool_flags: &[&str]) -> Result<(), String> {
        let mut i = 0;
        while i < self.argv.len() {
            let a = self.argv[i].as_str();
            if value_flags.contains(&a) {
                if self.argv.get(i + 1).is_none() {
                    return Err(format!("{a} needs a value"));
                }
                i += 2;
            } else if bool_flags.contains(&a) {
                i += 1;
            } else {
                return Err(format!("unknown flag `{a}`"));
            }
        }
        Ok(())
    }
}

/// Resolves the target chip: `--config FILE` (a gpgpusim.config-style
/// description) wins over `--card PRESET`.
fn card_of(args: &Args<'_>) -> Result<GpuConfig, String> {
    if let Some(path) = args.value("--config") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read config `{path}`: {e}"))?;
        return GpuConfig::from_config_text(&text).map_err(|e| e.to_string());
    }
    let name = args.value("--card").unwrap_or("rtx2060");
    GpuConfig::preset(name).ok_or_else(|| format!("unknown card `{name}`"))
}

fn structure_of(name: &str) -> Result<Structure, String> {
    match name.to_ascii_lowercase().as_str() {
        "rf" | "regfile" | "register-file" => Ok(Structure::RegisterFile),
        "local" | "lmem" => Ok(Structure::LocalMemory),
        "shared" | "smem" => Ok(Structure::SharedMemory),
        "l1d" => Ok(Structure::L1Data),
        "l1t" | "tex" => Ok(Structure::L1Tex),
        "l1c" | "const" => Ok(Structure::L1Const),
        "l2" => Ok(Structure::L2),
        other => Err(format!("unknown structure `{other}`")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing command".into());
    };
    let args = Args { argv: &argv[1..] };
    match cmd.as_str() {
        "list" => {
            println!("benchmarks:");
            for w in gpufi_workloads::paper_suite() {
                println!("  {}", w.name());
            }
            println!("cards: rtx2060, gv100, titan");
            Ok(())
        }
        "profile" => cmd_profile(&args),
        "campaign" => cmd_campaign(&args),
        "serve" => cmd_serve(&args),
        "worker" => cmd_worker(&args),
        "analyze" => cmd_analyze(&args),
        "fuzz" => cmd_fuzz(&args),
        "lint" => cmd_lint(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn workload_of(args: &Args<'_>) -> Result<Box<dyn gpufi_core::Workload>, String> {
    let name = args.value("--bench").ok_or("--bench is required")?;
    gpufi_workloads::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))
}

fn cmd_profile(args: &Args<'_>) -> Result<(), String> {
    args.reject_unknown(&["--bench", "--card", "--config"], &[])?;
    let workload = workload_of(args)?;
    let card = card_of(args)?;
    let golden = profile(workload.as_ref(), &card).map_err(|e| e.to_string())?;
    println!("benchmark: {}  card: {}", workload.name(), card.name);
    println!("fault-free cycles: {}", golden.total_cycles());
    println!("output bytes: {}", golden.output.len());
    println!("launches: {}", golden.app.launches.len());
    println!();
    println!(
        "{:<16} {:>6} {:>10} {:>8} {:>6} {:>6} {:>6} {:>8} {:>8}",
        "static kernel", "invoc", "cycles", "occup", "regs", "smem", "lmem", "L1D hit", "L2 hit"
    );
    for k in golden.app.static_kernels() {
        let space = &golden.fault_spaces[&k];
        let invocations = golden.app.windows_of(&k).len();
        let (mut l1d, mut l2) = (
            gpufi_sim::CacheStats::default(),
            gpufi_sim::CacheStats::default(),
        );
        for l in golden.app.launches.iter().filter(|l| l.kernel == k) {
            l1d.hits += l.l1d_stats.hits;
            l1d.misses += l.l1d_stats.misses;
            l2.hits += l.l2_stats.hits;
            l2.misses += l.l2_stats.misses;
        }
        println!(
            "{:<16} {:>6} {:>10} {:>8.3} {:>6} {:>6} {:>6} {:>7.1}% {:>7.1}%",
            k,
            invocations,
            golden.app.cycles_of(&k),
            golden.app.occupancy_of(&k),
            space.regs_per_thread,
            space.smem_bits / 8,
            space.lmem_bits / 8,
            100.0 * l1d.hit_ratio(),
            100.0 * l2.hit_ratio(),
        );
    }
    Ok(())
}

fn cmd_campaign(args: &Args<'_>) -> Result<(), String> {
    args.reject_unknown(
        &[
            "--bench",
            "--card",
            "--config",
            "--structure",
            "--runs",
            "--seed",
            "--bits",
            "--threads",
            "--scope",
            "--kernel",
            "--checkpoint-interval",
            "--csv",
            "--journal",
            "--journal-commit",
            "--max-run-seconds",
            "--inject-panic-run",
        ],
        &[
            "--spread",
            "--no-early-exit",
            "--no-checkpoints",
            "--oracle-check",
            "--no-static-prune",
            "--resume",
            "--no-journal",
        ],
    )?;
    let workload = workload_of(args)?;
    let card = card_of(args)?;
    let structure = structure_of(args.value("--structure").ok_or("--structure is required")?)?;
    let runs: usize = args.parse("--runs", 120)?;
    let seed: u64 = args.parse("--seed", 1)?;
    let bits: u32 = args.parse("--bits", 1)?;
    let threads: usize = args.parse("--threads", 0)?;
    let mut spec = CampaignSpec::new(structure).bits(bits);
    if args.flag("--spread") {
        spec = spec.mode(MultiBitMode::Spread);
    }
    if let Some(scope) = args.value("--scope") {
        spec.scope = match scope {
            "thread" => Scope::Thread,
            "warp" => Scope::Warp,
            other => return Err(format!("unknown scope `{other}`")),
        };
    }
    let golden = profile(workload.as_ref(), &card).map_err(|e| e.to_string())?;
    let mut cfg = CampaignConfig::new(spec, runs, seed).with_threads(threads);
    if args.flag("--no-early-exit") {
        cfg = cfg.no_early_exit();
    }
    if args.flag("--no-checkpoints") {
        cfg = cfg.no_checkpoints();
    }
    let ckpt_interval: u64 = args.parse("--checkpoint-interval", 0)?;
    if ckpt_interval > 0 {
        cfg = cfg.with_checkpoint_interval(ckpt_interval);
    }
    if args.flag("--oracle-check") {
        cfg = cfg.with_oracle_check();
    }
    if args.flag("--no-static-prune") {
        cfg = cfg.no_static_prune();
    }
    if let Some(kernel) = args.value("--kernel") {
        cfg = cfg.for_kernel(kernel);
    }
    // Journal path: explicit --journal wins; otherwise derived from --csv
    // unless --no-journal opts out.
    let journal_path: Option<String> = if args.flag("--no-journal") {
        if args.value("--journal").is_some() {
            return Err("--no-journal conflicts with --journal".into());
        }
        None
    } else if let Some(j) = args.value("--journal") {
        Some(j.to_string())
    } else {
        args.value("--csv").map(|c| format!("{c}.journal.jsonl"))
    };
    if args.flag("--resume") && journal_path.is_none() {
        return Err("--resume needs --journal (or --csv, to derive the journal path)".into());
    }
    if let Some(p) = journal_path {
        cfg = cfg.with_journal(p);
    }
    let journal_commit: usize =
        args.parse("--journal-commit", gpufi_core::DEFAULT_JOURNAL_COMMIT)?;
    cfg = cfg.with_journal_commit(journal_commit);
    if args.flag("--resume") {
        cfg = cfg.with_resume();
    }
    let max_run_seconds: u64 = args.parse("--max-run-seconds", 0)?;
    if max_run_seconds > 0 {
        cfg = cfg.with_max_run_ms(max_run_seconds.saturating_mul(1000));
    }
    let panic_run: Option<usize> = args
        .value("--inject-panic-run")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("bad value for --inject-panic-run: `{v}`"))
        })
        .transpose()?;
    let result = match panic_run {
        None => run_campaign(workload.as_ref(), &card, &cfg, &golden),
        Some(poison) => {
            let hook = move |run: usize, _attempt: u32| {
                if run == poison {
                    panic!("injected poison run {run} (--inject-panic-run)");
                }
            };
            run_campaign_with_hook(workload.as_ref(), &card, &cfg, &golden, Some(&hook))
        }
    }
    .map_err(|e| e.to_string())?;
    print_campaign_result(
        workload.name(),
        &card.name,
        &structure.to_string(),
        bits,
        &result,
    )?;
    if let Some(path) = args.value("--csv") {
        let csv = gpufi_core::campaign_csv(&result);
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  per-run records written to {path}");
    }
    Ok(())
}

/// The tally + stats block `campaign` and `serve` both print.
fn print_campaign_result(
    bench: &str,
    card: &str,
    structure: &str,
    bits: u32,
    result: &gpufi_core::CampaignResult,
) -> Result<(), String> {
    let runs = result.records.len();
    println!(
        "benchmark: {bench}  card: {card}  structure: {structure}  bits/fault: {bits}  runs: {runs}"
    );
    let t = &result.tally;
    for effect in FaultEffect::ALL {
        println!(
            "  {:<12} {:>6}  ({:>6.2} %)",
            effect.name(),
            t.count(effect),
            100.0 * t.fraction(effect)
        );
    }
    println!("  failure ratio (eq. 1): {:.4}", t.failure_ratio());
    println!(
        "  error margin at 99% confidence: ±{:.2} %",
        100.0 * margin_of_error(0.99, runs.max(1) as u64, u64::MAX)
    );
    let s = &result.stats;
    if s.workers > 1 {
        println!(
            "  engine: {:.1} runs/s on {} threads across {} workers ({:.0} ms wall)",
            s.runs_per_sec, s.threads, s.workers, s.wall_ms
        );
    } else {
        println!(
            "  engine: {:.1} runs/s on {} threads ({:.0} ms wall)",
            s.runs_per_sec, s.threads, s.wall_ms
        );
    }
    println!(
        "  faults applied: {} ({:.1} %)   early exits: {} ({:.1} %)",
        s.applied,
        100.0 * s.applied_rate,
        s.early_exits,
        100.0 * s.early_exit_rate
    );
    if s.checkpoints > 0 || s.restores > 0 {
        println!(
            "  checkpoints: {} ({:.1} MiB)   restores: {}   mean cycles skipped: {:.0}",
            s.checkpoints,
            s.checkpoint_bytes as f64 / (1024.0 * 1024.0),
            s.restores,
            s.mean_skipped_cycles
        );
    }
    if s.static_pruned > 0 {
        println!(
            "  static prune: {} run(s) in dead registers pre-classified Masked ({:.1} %)",
            s.static_pruned,
            100.0 * s.static_pruned_rate
        );
    }
    if s.panics > 0 || s.retries > 0 {
        println!(
            "  supervisor: {} panic(s) caught, {} quarantined run(s) retried once",
            s.panics, s.retries
        );
    }
    if s.lease_reissues > 0 {
        println!(
            "  leases: {} reissued after worker death or stall (no runs lost)",
            s.lease_reissues
        );
    }
    if s.resumed > 0 {
        println!(
            "  resume: {} run(s) loaded from the journal, {} executed",
            s.resumed,
            runs.saturating_sub(s.resumed)
        );
    }
    if s.journal_bytes > 0 {
        println!(
            "  journal: {} bytes in {} fsync(s) ({:.0} ms)",
            s.journal_bytes, s.journal_syncs, s.journal_ms
        );
    }
    if s.oracle_checked > 0 {
        println!(
            "  oracle: {} runs checked, {} early-exit verdicts verified, {} mismatches",
            s.oracle_checked, s.oracle_verified, s.oracle_mismatches
        );
        if s.oracle_mismatches > 0 {
            return Err(format!(
                "{} run(s) the early-exit engine would classify Masked did not \
                 end in the oracle-predicted state",
                s.oracle_mismatches
            ));
        }
    }
    Ok(())
}

/// One job of a `serve` dispatch: what to run and where its CSV goes.
struct ServeJob {
    job: gpufi_core::JobSpec,
    structure: Structure,
    bits: u32,
    csv: Option<String>,
}

/// `gpufi serve`: bind the coordinator, optionally spawn local worker
/// processes, dispatch one campaign (or a `--matrix` sweep) across them
/// and merge the streamed results into canonical CSVs.
fn cmd_serve(args: &Args<'_>) -> Result<(), String> {
    args.reject_unknown(
        &[
            "--bench",
            "--benches",
            "--card",
            "--structure",
            "--structures",
            "--runs",
            "--seed",
            "--bits",
            "--scope",
            "--kernel",
            "--checkpoint-interval",
            "--max-run-seconds",
            "--workers",
            "--worker-threads",
            "--listen",
            "--chunk",
            "--lease-timeout",
            "--csv",
            "--journal",
            "--journal-commit",
            "--out-dir",
        ],
        &[
            "--spread",
            "--no-early-exit",
            "--no-checkpoints",
            "--no-static-prune",
            "--resume",
            "--no-journal",
            "--matrix",
        ],
    )?;
    let card_key = args.value("--card").unwrap_or("rtx2060");
    let card_name = GpuConfig::preset(card_key)
        .ok_or_else(|| {
            format!("unknown card `{card_key}` (serve dispatches presets only, not --config files)")
        })?
        .name;
    let runs: usize = args.parse("--runs", 120)?;
    let seed: u64 = args.parse("--seed", 1)?;
    let bits: u32 = args.parse("--bits", 1)?;

    // Turn the flags into one CampaignConfig per (bench, structure) cell.
    let make_cfg = |structure: Structure| -> Result<CampaignConfig, String> {
        let mut spec = CampaignSpec::new(structure).bits(bits);
        if args.flag("--spread") {
            spec = spec.mode(MultiBitMode::Spread);
        }
        if let Some(scope) = args.value("--scope") {
            spec.scope = match scope {
                "thread" => Scope::Thread,
                "warp" => Scope::Warp,
                other => return Err(format!("unknown scope `{other}`")),
            };
        }
        let mut cfg = CampaignConfig::new(spec, runs, seed);
        if args.flag("--no-early-exit") {
            cfg = cfg.no_early_exit();
        }
        if args.flag("--no-checkpoints") {
            cfg = cfg.no_checkpoints();
        }
        if args.flag("--no-static-prune") {
            cfg = cfg.no_static_prune();
        }
        let ckpt_interval: u64 = args.parse("--checkpoint-interval", 0)?;
        if ckpt_interval > 0 {
            cfg = cfg.with_checkpoint_interval(ckpt_interval);
        }
        if let Some(kernel) = args.value("--kernel") {
            cfg = cfg.for_kernel(kernel);
        }
        let max_run_seconds: u64 = args.parse("--max-run-seconds", 0)?;
        if max_run_seconds > 0 {
            cfg = cfg.with_max_run_ms(max_run_seconds.saturating_mul(1000));
        }
        Ok(cfg)
    };
    let canonical_bench = |name: &str| -> Result<String, String> {
        gpufi_workloads::by_name(name)
            .map(|w| w.name().to_string())
            .ok_or_else(|| format!("unknown benchmark `{name}`"))
    };

    let journal_commit: usize =
        args.parse("--journal-commit", gpufi_core::DEFAULT_JOURNAL_COMMIT)?;
    let lease_timeout_s: u64 = args.parse("--lease-timeout", 30)?;
    let chunk: usize = args.parse("--chunk", 0)?;
    let base_opts = gpufi_core::ServeOptions {
        chunk,
        lease_timeout_ms: lease_timeout_s.saturating_mul(1000).max(1),
        journal: None,
        journal_commit,
        resume: args.flag("--resume"),
    };

    let mut jobs: Vec<ServeJob> = Vec::new();
    if args.flag("--matrix") {
        // The paper-scale sweep: every bench × structure cell, one CSV
        // (and merge journal) per cell under --out-dir.
        let out_dir = args.value("--out-dir").unwrap_or("serve-out").to_string();
        std::fs::create_dir_all(&out_dir)
            .map_err(|e| format!("cannot create --out-dir `{out_dir}`: {e}"))?;
        let benches: Vec<String> = match args.value("--benches") {
            Some(list) => list
                .split(',')
                .map(|b| canonical_bench(b.trim()))
                .collect::<Result<_, _>>()?,
            None => gpufi_workloads::paper_suite()
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
        };
        let structures: Vec<Structure> = match args.value("--structures") {
            Some(list) => list
                .split(',')
                .map(|s| structure_of(s.trim()))
                .collect::<Result<_, _>>()?,
            None => Structure::PAPER.to_vec(),
        };
        for bench in &benches {
            for &structure in &structures {
                let cfg = make_cfg(structure)?;
                let code = structure_code_of(structure);
                jobs.push(ServeJob {
                    job: gpufi_core::JobSpec::from_config(bench, card_key, &cfg),
                    structure,
                    bits,
                    csv: Some(format!("{out_dir}/{bench}_{code}_{runs}_s{seed}.csv")),
                });
            }
        }
    } else {
        let bench = canonical_bench(
            args.value("--bench")
                .ok_or("--bench is required (or --matrix)")?,
        )?;
        let structure = structure_of(args.value("--structure").ok_or("--structure is required")?)?;
        let cfg = make_cfg(structure)?;
        jobs.push(ServeJob {
            job: gpufi_core::JobSpec::from_config(&bench, card_key, &cfg),
            structure,
            bits,
            csv: args.value("--csv").map(str::to_string),
        });
    }

    let listen = args.value("--listen").unwrap_or("127.0.0.1:0");
    let mut coordinator = gpufi_core::Coordinator::bind(listen).map_err(|e| e.to_string())?;
    let addr = coordinator.addr();
    println!("serve: listening on {addr}");

    // Local worker pool: each worker is its own OS process (panic/SIGKILL
    // isolation), connecting back over TCP like a remote one would.
    let workers: usize = args.parse("--workers", 0)?;
    let worker_threads: usize = args.parse("--worker-threads", 1)?;
    let mut children = Vec::new();
    if workers > 0 {
        let exe =
            std::env::current_exe().map_err(|e| format!("cannot find own executable: {e}"))?;
        for _ in 0..workers {
            let child = std::process::Command::new(&exe)
                .args([
                    "worker",
                    "--connect",
                    &addr.to_string(),
                    "--threads",
                    &worker_threads.to_string(),
                ])
                .stdout(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("cannot spawn worker: {e}"))?;
            children.push(child);
        }
        println!("serve: spawned {workers} local worker(s) x {worker_threads} thread(s)");
    }

    let outcome = (|| -> Result<(), String> {
        let total = jobs.len();
        for (k, sj) in jobs.iter().enumerate() {
            let mut opts = base_opts.clone();
            // Merge journal: explicit --journal (single job), derived
            // from the CSV path otherwise, --no-journal opts out.
            opts.journal = if args.flag("--no-journal") {
                if args.value("--journal").is_some() {
                    return Err("--no-journal conflicts with --journal".into());
                }
                None
            } else if let Some(j) = args.value("--journal") {
                if total > 1 {
                    return Err("--journal is ambiguous with --matrix; use per-cell \
                                journals derived from --out-dir (the default)"
                        .into());
                }
                Some(j.to_string())
            } else {
                sj.csv.as_ref().map(|c| format!("{c}.journal.jsonl"))
            };
            if opts.resume && opts.journal.is_none() {
                return Err(
                    "--resume needs --journal (or --csv, to derive the journal path)".into(),
                );
            }
            if total > 1 {
                println!(
                    "serve: job {}/{total}: {} {}",
                    k + 1,
                    sj.job.bench,
                    structure_code_of(sj.structure)
                );
            }
            let result = coordinator.run(&sj.job, &opts).map_err(|e| e.to_string())?;
            print_campaign_result(
                &sj.job.bench,
                &card_name,
                &sj.structure.to_string(),
                sj.bits,
                &result,
            )?;
            if let Some(path) = &sj.csv {
                let csv = gpufi_core::campaign_csv(&result);
                std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("  per-run records written to {path}");
            }
        }
        Ok(())
    })();
    coordinator.shutdown();
    for mut c in children {
        let _ = c.wait();
    }
    outcome
}

/// Short structure code for matrix CSV file names (inverse of
/// [`structure_of`]).
fn structure_code_of(s: Structure) -> &'static str {
    match s {
        Structure::RegisterFile => "rf",
        Structure::LocalMemory => "local",
        Structure::SharedMemory => "shared",
        Structure::L1Data => "l1d",
        Structure::L1Tex => "l1t",
        Structure::L1Const => "l1c",
        Structure::L2 => "l2",
    }
}

/// `gpufi worker`: connect to a coordinator and execute leases until it
/// says shutdown.  `--fail-after-results` is a chaos-testing switch that
/// silently drops the connection after N streamed results, emulating a
/// worker killed mid-lease.
fn cmd_worker(args: &Args<'_>) -> Result<(), String> {
    args.reject_unknown(&["--connect", "--threads", "--fail-after-results"], &[])?;
    let addr = args.value("--connect").ok_or("--connect is required")?;
    let threads: usize = args.parse("--threads", 1)?;
    let fail_after: Option<usize> = args
        .value("--fail-after-results")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("bad value for --fail-after-results: `{v}`"))
        })
        .transpose()?;
    let opts = gpufi_core::WorkerOptions {
        threads,
        fail_after_results: fail_after,
    };
    let report = gpufi_core::run_worker(addr, &opts, &|name| gpufi_workloads::by_name(name))
        .map_err(|e| e.to_string())?;
    println!(
        "worker: served {} job(s), {} lease(s), {} run(s)",
        report.jobs, report.leases, report.runs
    );
    Ok(())
}

/// Differential fuzzing from the command line: N seeded random SASS-lite
/// kernels, each executed on both the cycle-level simulator and the
/// functional reference interpreter; the first divergence aborts with the
/// full report and the generated kernel source.
fn cmd_fuzz(args: &Args<'_>) -> Result<(), String> {
    args.reject_unknown(&["--kernels", "--seed", "--traps"], &[])?;
    let count: u32 = args.parse("--kernels", 100)?;
    let seed: u64 = args.parse("--seed", 1)?;
    let traps: u32 = args.parse("--traps", 0)?;
    for i in 0..count {
        let case = gpufi_sim::oracle::fuzz::gen_case(seed.wrapping_add(u64::from(i)));
        // Generation post-check: the generator promises well-formedness
        // (initialized registers, convergent barriers, race-free shared
        // accesses), so any static-lint finding is a generator bug —
        // report it with the repro source before running the case.
        let module = gpufi_isa::Module::assemble(&case.source).map_err(|e| {
            format!(
                "seed {}: generated source does not assemble: {e}",
                case.seed
            )
        })?;
        let findings = gpufi_isa::analysis::lint_module(&module);
        if !findings.is_empty() {
            let report: Vec<String> = findings
                .iter()
                .map(|(k, f)| format!("  {k}: [{}] {f}", f.kind()))
                .collect();
            return Err(format!(
                "seed {} generated a kernel the static analyzer rejects:\n{}\nsource:\n{}",
                case.seed,
                report.join("\n"),
                case.source
            ));
        }
        if let Err(report) = gpufi_sim::oracle::fuzz::run_case(&case) {
            return Err(format!(
                "seed {} diverged after {i} clean kernels:\n{report}\nsource:\n{}",
                case.seed, case.source
            ));
        }
    }
    println!(
        "fuzz: {count} random kernels from seed {seed}, lint-clean and sim == oracle on every one"
    );
    // Trap corpus: kernels built to fault through corrupted-address shapes
    // (near-`u32::MAX` bases, wrapping negative offsets, null pages); both
    // engines must raise the same trap *kind* on every one.
    for i in 0..traps {
        let case = gpufi_sim::oracle::fuzz::gen_trap_case(seed.wrapping_add(u64::from(i)));
        if let Err(report) = gpufi_sim::oracle::fuzz::run_trap_case(&case) {
            return Err(format!(
                "trap seed {} diverged after {i} agreeing trap kernels:\n{report}\nsource:\n{}",
                case.seed, case.source
            ));
        }
    }
    if traps > 0 {
        println!(
            "fuzz: {traps} trap kernels from seed {seed}, identical trap kind on both engines"
        );
    }
    Ok(())
}

/// Escapes one JSON string (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Static analysis from the command line: runs the SASS-lite analyzer
/// (CFG, dominators/post-dominators, liveness and all lint passes) over
/// one benchmark — or the whole paper suite — and reports every finding.
/// Exits nonzero when any kernel is dirty, so CI can gate on it.
fn cmd_lint(args: &Args<'_>) -> Result<(), String> {
    args.reject_unknown(&["--bench"], &["--json"])?;
    let workloads: Vec<Box<dyn gpufi_core::Workload>> =
        match args.value("--bench") {
            Some(name) => vec![gpufi_workloads::by_name(name)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))?],
            None => gpufi_workloads::paper_suite(),
        };
    let mut kernels = 0usize;
    let mut findings: Vec<(&'static str, String, gpufi_isa::analysis::Finding)> = Vec::new();
    for w in &workloads {
        kernels += w.module().kernels().len();
        for (kernel, f) in gpufi_isa::analysis::lint_module(w.module()) {
            findings.push((w.name(), kernel, f));
        }
    }
    if args.flag("--json") {
        let rows: Vec<String> = findings
            .iter()
            .map(|(w, k, f)| {
                format!(
                    "{{\"workload\":{},\"kernel\":{},\"instr\":{},\"kind\":{},\"message\":{}}}",
                    json_str(w),
                    json_str(k),
                    f.instr(),
                    json_str(f.kind()),
                    json_str(&f.to_string())
                )
            })
            .collect();
        println!(
            "{{\"workloads\":{},\"kernels\":{},\"findings\":[{}]}}",
            workloads.len(),
            kernels,
            rows.join(",")
        );
    } else {
        for (w, k, f) in &findings {
            println!("{w}/{k} #{} [{}] {f}", f.instr(), f.kind());
        }
        println!(
            "lint: {} kernel(s) in {} workload(s), {} finding(s)",
            kernels,
            workloads.len(),
            findings.len()
        );
    }
    if findings.is_empty() {
        Ok(())
    } else {
        Err(format!("{} lint finding(s)", findings.len()))
    }
}

fn cmd_analyze(args: &Args<'_>) -> Result<(), String> {
    args.reject_unknown(
        &[
            "--bench",
            "--card",
            "--config",
            "--runs",
            "--seed",
            "--bits",
            "--threads",
            "--csv",
        ],
        &[],
    )?;
    let workload = workload_of(args)?;
    let card = card_of(args)?;
    let runs: usize = args.parse("--runs", 60)?;
    let seed: u64 = args.parse("--seed", 1)?;
    let bits: u32 = args.parse("--bits", 1)?;
    let threads: usize = args.parse("--threads", 0)?;
    let mut cfg = AnalysisConfig::new(runs, seed).bits(bits);
    cfg.threads = threads;
    let golden = profile(workload.as_ref(), &card).map_err(|e| e.to_string())?;
    let analysis = analyze_with_golden(workload.as_ref(), &card, &cfg, &golden);
    println!(
        "benchmark: {}  card: {}  ({} runs per kernel x structure, {}-bit faults)",
        analysis.benchmark, analysis.card, analysis.runs_per_campaign, analysis.bits_per_fault
    );
    println!(
        "{:<18} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "structure", "size (bits)", "SDC", "Crash", "Timeout", "Perf"
    );
    for s in &analysis.structures {
        println!(
            "{:<18} {:>14} {:>10.5} {:>10.5} {:>10.5} {:>10.5}",
            s.structure.name(),
            s.size_bits,
            s.rates.sdc,
            s.rates.crash,
            s.rates.timeout,
            s.rates.performance
        );
    }
    println!();
    println!("wAVF (eq. 3):      {:.6}", analysis.wavf);
    println!("occupancy:         {:.4}", analysis.occupancy);
    println!("chip FIT (\u{00a7}VI.F): {:.4}", analysis.fit);
    if let Some(path) = args.value("--csv") {
        let csv = gpufi_core::analysis_csv(&analysis);
        std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("per-structure table written to {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parser() {
        let argv = args(&["--bench", "VA", "--runs", "50", "--spread"]);
        let a = Args { argv: &argv };
        assert_eq!(a.value("--bench"), Some("VA"));
        assert_eq!(a.parse("--runs", 10usize).unwrap(), 50);
        assert_eq!(a.parse("--seed", 7u64).unwrap(), 7);
        assert!(a.flag("--spread"));
        assert!(!a.flag("--missing"));
        assert!(a.parse::<usize>("--bench", 0).is_err());
    }

    #[test]
    fn structure_aliases() {
        assert_eq!(structure_of("rf").unwrap(), Structure::RegisterFile);
        assert_eq!(structure_of("L1D").unwrap(), Structure::L1Data);
        assert_eq!(structure_of("const").unwrap(), Structure::L1Const);
        assert!(structure_of("dram").is_err());
    }

    #[test]
    fn card_resolution() {
        let argv = args(&["--card", "titan"]);
        let a = Args { argv: &argv };
        assert_eq!(card_of(&a).unwrap().name, "GTX Titan");
        let argv = args(&[]);
        let a = Args { argv: &argv };
        assert_eq!(card_of(&a).unwrap().name, "RTX 2060");
        let argv = args(&["--card", "amd"]);
        let a = Args { argv: &argv };
        assert!(card_of(&a).is_err());
        let argv = args(&["--config", "/nonexistent/x.config"]);
        let a = Args { argv: &argv };
        assert!(card_of(&a).unwrap_err().contains("cannot read"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["list"])).is_ok());
        assert!(
            run(&args(&["campaign", "--bench", "VA"])).is_err(),
            "missing --structure"
        );
    }

    #[test]
    fn unknown_flags_are_rejected() {
        // A typo like `--run` must not silently fall back to the default.
        let err = run(&args(&[
            "campaign",
            "--bench",
            "VA",
            "--structure",
            "rf",
            "--run",
            "5",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown flag `--run`"), "{err}");
        let err = run(&args(&["profile", "--bench", "VA", "--oracle-check"])).unwrap_err();
        assert!(err.contains("unknown flag `--oracle-check`"), "{err}");
        let err = run(&args(&["fuzz", "--bench", "VA"])).unwrap_err();
        assert!(err.contains("unknown flag `--bench`"), "{err}");
        // A value flag at the end of the line is missing its value.
        let err = run(&args(&["fuzz", "--kernels"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn runs_defaults_when_absent() {
        let argv = args(&["--bench", "VA"]);
        let a = Args { argv: &argv };
        assert_eq!(a.parse("--runs", 120usize).unwrap(), 120);
        let argv = args(&["--bench", "VA", "--runs", "37"]);
        let a = Args { argv: &argv };
        assert_eq!(a.parse("--runs", 120usize).unwrap(), 37);
        let argv = args(&["--runs", "not-a-number"]);
        let a = Args { argv: &argv };
        assert!(a.parse::<usize>("--runs", 120).is_err());
    }

    #[test]
    fn config_takes_precedence_over_card() {
        // When both are given, --config wins: the unreadable file errors
        // even though the --card preset is valid.
        let argv = args(&["--config", "/nonexistent/x.config", "--card", "titan"]);
        let a = Args { argv: &argv };
        assert!(card_of(&a).unwrap_err().contains("cannot read"));
        // A readable config file resolves to its own chip, not the preset.
        let dir = std::env::temp_dir().join("gpufi-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("precedence.config");
        std::fs::write(&path, "base = rtx2060\nname = Config File Chip\n").unwrap();
        let path_s = path.to_str().unwrap().to_string();
        let argv = args(&["--config", path_s.as_str(), "--card", "titan"]);
        let a = Args { argv: &argv };
        assert_eq!(card_of(&a).unwrap().name, "Config File Chip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fuzz_smoke_runs_clean() {
        assert!(run(&args(&["fuzz", "--kernels", "5", "--seed", "99"])).is_ok());
    }

    #[test]
    fn lint_smoke_suite_is_clean() {
        assert!(run(&args(&["lint"])).is_ok());
        assert!(run(&args(&["lint", "--bench", "VA"])).is_ok());
        assert!(run(&args(&["lint", "--bench", "VA", "--json"])).is_ok());
        assert!(run(&args(&["lint", "--bench", "nope"])).is_err());
        let err = run(&args(&["lint", "--card", "titan"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
    }
}
