//! Process-level smoke tests of `gpufi serve` / `gpufi worker`: real
//! binaries, real TCP, a real SIGKILL.  The in-process protocol tests live
//! in the workspace-root `tests/distributed.rs`; these check the CLI
//! plumbing end to end — argument parsing, worker spawning, address
//! printing, CSV output — and that killing a worker process outright
//! loses no runs.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn gpufi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gpufi"))
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("gpufi-cli-distributed");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
        .to_str()
        .unwrap()
        .to_string()
}

/// Runs the serial campaign and returns its CSV bytes.
fn serial_csv(runs: &str, seed: &str) -> Vec<u8> {
    let path = tmp("serial.csv");
    let out = gpufi()
        .args([
            "campaign",
            "--bench",
            "SP",
            "--structure",
            "rf",
            "--runs",
            runs,
            "--seed",
            seed,
            "--csv",
            &path,
            "--no-journal",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "serial campaign failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read(&path).unwrap()
}

/// Starts `gpufi serve` with stdout piped and reads the listen address off
/// its first line.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = gpufi()
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let first = lines.next().unwrap().unwrap();
    let addr = first
        .strip_prefix("serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first}"))
        .to_string();
    // Drain the rest of stdout in the background so the child never
    // blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn spawn_worker(addr: &str) -> Child {
    gpufi()
        .args(["worker", "--connect", addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

fn wait_with_deadline(child: &mut Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what} did not finish in time");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Two self-spawned worker processes produce the byte-identical CSV of the
/// serial campaign.
#[test]
fn serve_with_spawned_workers_matches_serial() {
    let serial = serial_csv("48", "9");
    let csv = tmp("spawned.csv");
    let mut serve = gpufi()
        .args([
            "serve",
            "--bench",
            "SP",
            "--structure",
            "rf",
            "--runs",
            "48",
            "--seed",
            "9",
            "--workers",
            "2",
            "--csv",
            &csv,
            "--no-journal",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    wait_with_deadline(&mut serve, "serve");
    assert_eq!(
        std::fs::read(&csv).unwrap(),
        serial,
        "distributed CSV differs from serial"
    );
}

/// SIGKILL one of two external worker processes mid-campaign: the
/// coordinator reissues its leases and the merged CSV is still
/// byte-identical — no run lost, none double-counted.
#[test]
fn sigkilled_worker_loses_no_runs() {
    let serial = serial_csv("120", "9");
    let csv = tmp("sigkill.csv");
    let (mut serve, addr) = spawn_serve(&[
        "serve",
        "--bench",
        "SP",
        "--structure",
        "rf",
        "--runs",
        "120",
        "--seed",
        "9",
        "--csv",
        &csv,
        "--no-journal",
        "--lease-timeout",
        "10",
    ]);
    let mut victim = spawn_worker(&addr);
    let mut survivor = spawn_worker(&addr);
    // Let the victim take a lease or two, then kill -9 it.
    std::thread::sleep(Duration::from_millis(400));
    victim.kill().unwrap();
    victim.wait().unwrap();
    wait_with_deadline(&mut serve, "serve");
    let _ = survivor.wait();
    assert_eq!(
        std::fs::read(&csv).unwrap(),
        serial,
        "CSV after worker SIGKILL differs from serial"
    );
}

/// The `--matrix` sweep writes one canonical CSV per (bench, structure)
/// cell, each with a merge journal next to it.
#[test]
fn matrix_sweep_writes_one_csv_per_cell() {
    let out_dir = tmp("matrix-out");
    let mut serve = gpufi()
        .args([
            "serve",
            "--matrix",
            "--benches",
            "VA",
            "--structures",
            "rf,l1d",
            "--runs",
            "12",
            "--seed",
            "3",
            "--workers",
            "1",
            "--out-dir",
            &out_dir,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    wait_with_deadline(&mut serve, "serve --matrix");
    for cell in ["VA_rf_12_s3", "VA_l1d_12_s3"] {
        let csv = format!("{out_dir}/{cell}.csv");
        let journal = format!("{csv}.journal.jsonl");
        let body = std::fs::read_to_string(&csv)
            .unwrap_or_else(|e| panic!("missing matrix CSV {csv}: {e}"));
        assert_eq!(body.lines().count(), 13, "{cell}: 12 records + header");
        assert!(
            std::fs::metadata(&journal).is_ok(),
            "missing merge journal {journal}"
        );
    }
}
