//! Whole-application analysis: every kernel × structure campaign, folded
//! into the paper's metrics (Figs. 1–7).

use crate::campaign::{run_campaign, CampaignConfig, CampaignError};
use crate::profile::{profile, GoldenProfile};
use crate::workload::{Workload, WorkloadError};
use gpufi_faults::{CampaignSpec, MultiBitMode, Structure};
use gpufi_metrics::{
    chip_fit, df_reg, df_smem, raw_fit_per_bit, wavf, FaultEffect, KernelAvf, StructureResult,
    Tally,
};
use gpufi_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a whole-application analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Injection runs per (kernel × structure) campaign.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Bits flipped per fault (1 = single, 3 = the paper's triple-bit).
    pub bits_per_fault: u32,
    /// Multi-bit placement.
    pub multi_bit: MultiBitMode,
    /// Structures to campaign over (defaults to the five on-chip ones).
    pub structures: Vec<Structure>,
    /// Worker threads (0 = autodetect).
    pub threads: usize,
}

impl AnalysisConfig {
    /// A single-bit analysis over the five on-chip structures.
    pub fn new(runs: usize, seed: u64) -> Self {
        AnalysisConfig {
            runs,
            seed,
            bits_per_fault: 1,
            multi_bit: MultiBitMode::SameEntry,
            structures: Structure::ON_CHIP.to_vec(),
            threads: 0,
        }
    }

    /// Sets the number of bits per fault.
    pub fn bits(mut self, k: u32) -> Self {
        self.bits_per_fault = k;
        self
    }

    /// Restricts the analysis to the given structures.
    pub fn structures(mut self, s: &[Structure]) -> Self {
        self.structures = s.to_vec();
        self
    }
}

/// Cycle-weighted, derated per-class rates of one structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EffectRates {
    /// SDC rate.
    pub sdc: f64,
    /// Crash rate.
    pub crash: f64,
    /// Timeout rate.
    pub timeout: f64,
    /// Performance-only rate.
    pub performance: f64,
}

impl EffectRates {
    /// The AVF contribution: SDC + Crash + Timeout (Performance excluded,
    /// §V.B).
    pub fn failure_rate(&self) -> f64 {
        self.sdc + self.crash + self.timeout
    }
}

/// Aggregated result for one structure across all kernels of an
/// application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureOutcome {
    /// The structure.
    pub structure: Structure,
    /// Raw fault-effect counts summed over kernels (underated).
    pub tally: Tally,
    /// Cycle-weighted, derated class rates.
    pub rates: EffectRates,
    /// Chip-wide size in bits (Table I).
    pub size_bits: u64,
}

impl StructureOutcome {
    /// This structure's share of the chip AVF numerator.
    pub fn avf_weight(&self) -> f64 {
        self.rates.failure_rate() * self.size_bits as f64
    }
}

/// The complete analysis of one benchmark on one card.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppAnalysis {
    /// Benchmark name.
    pub benchmark: String,
    /// Card name.
    pub card: String,
    /// Injection runs per campaign.
    pub runs_per_campaign: usize,
    /// Bits per fault.
    pub bits_per_fault: u32,
    /// Per-structure outcomes.
    pub structures: Vec<StructureOutcome>,
    /// The application wAVF — equation (3).
    pub wavf: f64,
    /// Cycle-weighted warp occupancy (the red dots of Fig. 3).
    pub occupancy: f64,
    /// Chip FIT rate (§VI.F).
    pub fit: f64,
    /// Total fault-free cycles.
    pub golden_cycles: u64,
}

impl AppAnalysis {
    /// The outcome for one structure, if it was campaigned.
    pub fn structure(&self, s: Structure) -> Option<&StructureOutcome> {
        self.structures.iter().find(|o| o.structure == s)
    }

    /// Per-structure shares of the total AVF (the paper's Fig. 2 pies).
    /// Empty when the AVF is zero.
    pub fn avf_shares(&self) -> Vec<(Structure, f64)> {
        let total: f64 = self
            .structures
            .iter()
            .map(StructureOutcome::avf_weight)
            .sum();
        if total <= 0.0 {
            return Vec::new();
        }
        self.structures
            .iter()
            .map(|o| (o.structure, o.avf_weight() / total))
            .collect()
    }
}

/// Chip-wide size of `structure` in bits (Table I values).
fn structure_size_bits(card: &GpuConfig, s: Structure) -> u64 {
    match s {
        Structure::RegisterFile => card.regfile_bits_total(),
        Structure::SharedMemory => card.smem_bits_total(),
        Structure::L1Data => card.l1d_bits_total(),
        Structure::L1Tex => card.l1t_bits_total(),
        Structure::L1Const => card.l1c_bits_total(),
        Structure::L2 => card.l2_bits_total(),
        Structure::LocalMemory => 0, // off-chip, excluded from chip AVF
    }
}

/// Runs the full kernel × structure campaign sweep for one benchmark on
/// one card and folds the results into the paper's metrics.
///
/// # Errors
///
/// Propagates golden-run failures ([`WorkloadError`]) — an injection-run
/// failure is a classification, not an error.
pub fn analyze(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &AnalysisConfig,
) -> Result<AppAnalysis, WorkloadError> {
    let golden = profile(workload, card)?;
    Ok(analyze_with_golden(workload, card, cfg, &golden))
}

/// [`analyze`] with a pre-computed golden profile (lets callers reuse one
/// profile across single-/multi-bit sweeps).
pub fn analyze_with_golden(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &AnalysisConfig,
    golden: &GoldenProfile,
) -> AppAnalysis {
    let kernels = golden.app.static_kernels();
    let total_cycles = golden.total_cycles().max(1);

    let mut structures = Vec::new();
    let mut kernel_avfs: Vec<KernelAvf> = vec![
        KernelAvf {
            avf: 0.0,
            cycles: 0
        };
        kernels.len()
    ];
    for (ki, k) in kernels.iter().enumerate() {
        kernel_avfs[ki].cycles = golden.app.cycles_of(k);
    }

    for &s in &cfg.structures {
        let size_bits = structure_size_bits(card, s);
        let mut tally = Tally::default();
        let mut rates = EffectRates::default();
        let mut per_kernel: Vec<(usize, f64, Tally)> = Vec::new();

        for (ki, k) in kernels.iter().enumerate() {
            let derate = derate_for(golden, card, k, s);
            let spec = CampaignSpec {
                structure: s,
                scope: gpufi_sim::Scope::Thread,
                bits_per_fault: cfg.bits_per_fault,
                multi_bit: cfg.multi_bit,
                replicate: 1,
            };
            let ccfg = CampaignConfig::new(spec, cfg.runs, seed_for(cfg.seed, ki, s))
                .for_kernel(k.clone())
                .with_threads(cfg.threads);
            match run_campaign(workload, card, &ccfg, golden) {
                Ok(res) => {
                    tally = tally + res.tally;
                    per_kernel.push((ki, derate, res.tally));
                }
                // Empty structure for this kernel (no shared/local memory,
                // no L1D on this chip): failure ratio is zero by
                // construction.
                Err(CampaignError::Draw(_)) => per_kernel.push((ki, 0.0, Tally::default())),
                Err(CampaignError::UnknownKernel(_)) => unreachable!("kernels from golden"),
                Err(e @ CampaignError::OracleDivergence(_)) => {
                    unreachable!("analysis campaigns never set oracle_check: {e}")
                }
                Err(e @ CampaignError::Journal(_)) => {
                    unreachable!("analysis campaigns never set a journal: {e}")
                }
                Err(CampaignError::Internal(missing)) => {
                    unreachable!("supervisor lost run indices {missing:?}")
                }
            }
        }

        // Cycle-weighted derated class rates across kernels.
        for (ki, derate, t) in &per_kernel {
            let w = kernel_avfs[*ki].cycles as f64 / total_cycles as f64;
            rates.sdc += t.fraction(FaultEffect::Sdc) * derate * w;
            rates.crash += t.fraction(FaultEffect::Crash) * derate * w;
            rates.timeout += t.fraction(FaultEffect::Timeout) * derate * w;
            rates.performance += t.fraction(FaultEffect::Performance) * derate * w;
        }

        // Feed the per-kernel AVF (equation 2): accumulate numerators now,
        // divide by the total size once all structures are in.
        for (ki, derate, t) in &per_kernel {
            kernel_avfs[*ki].avf += t.failure_ratio() * derate * size_bits as f64;
        }

        structures.push(StructureOutcome {
            structure: s,
            tally,
            rates,
            size_bits,
        });
    }

    // Equation (2): divide each kernel's accumulated numerator by the total
    // structure size.
    let total_size: u64 = structures.iter().map(|s| s.size_bits).sum();
    if total_size > 0 {
        for ka in &mut kernel_avfs {
            ka.avf /= total_size as f64;
        }
    }

    let wavf_value = wavf(&kernel_avfs);

    // Chip FIT from the cycle-weighted structure rates.
    let raw = raw_fit_per_bit(card.process_nm);
    let fit_structs: Vec<StructureResult> = structures
        .iter()
        .map(|o| StructureResult {
            structure: o.structure.name().to_string(),
            tally: synthetic_tally(o.rates.failure_rate()),
            size_bits: o.size_bits,
            derate: 1.0,
        })
        .collect();
    let fit = chip_fit(&fit_structs, raw);

    // Cycle-weighted occupancy across static kernels.
    let occupancy = kernels
        .iter()
        .map(|k| golden.app.occupancy_of(k) * golden.app.cycles_of(k) as f64)
        .sum::<f64>()
        / total_cycles as f64;

    AppAnalysis {
        benchmark: workload.name().to_string(),
        card: card.name.clone(),
        runs_per_campaign: cfg.runs,
        bits_per_fault: cfg.bits_per_fault,
        structures,
        wavf: wavf_value,
        occupancy,
        fit,
        golden_cycles: golden.total_cycles(),
    }
}

/// A tally whose failure ratio equals `fr` (used to feed pre-weighted
/// rates into the FIT helpers, which expect tallies).
fn synthetic_tally(fr: f64) -> Tally {
    const SCALE: u64 = 1_000_000_000;
    let failures = (fr.clamp(0.0, 1.0) * SCALE as f64).round() as u64;
    Tally {
        masked: SCALE - failures,
        sdc: failures,
        crash: 0,
        timeout: 0,
        performance: 0,
    }
}

fn derate_for(golden: &GoldenProfile, card: &GpuConfig, kernel: &str, s: Structure) -> f64 {
    match s {
        Structure::RegisterFile => {
            let regs = golden
                .fault_spaces
                .get(kernel)
                .map_or(0, |sp| sp.regs_per_thread);
            df_reg(regs, golden.mean_threads_of(kernel), card.registers_per_sm)
        }
        Structure::SharedMemory => {
            let smem = golden
                .app
                .launches
                .iter()
                .find(|l| l.kernel == kernel)
                .map_or(0, |l| l.smem_per_cta);
            df_smem(smem, golden.mean_ctas_of(kernel), card.smem_per_sm)
        }
        _ => 1.0,
    }
}

fn seed_for(base: u64, kernel_idx: usize, s: Structure) -> u64 {
    let sid = match s {
        Structure::RegisterFile => 1u64,
        Structure::LocalMemory => 2,
        Structure::SharedMemory => 3,
        Structure::L1Data => 4,
        Structure::L1Tex => 5,
        Structure::L2 => 6,
        Structure::L1Const => 7,
    };
    base ^ (kernel_idx as u64).wrapping_mul(0x5851_f42d_4c95_7f2d)
        ^ sid.wrapping_mul(0x1405_7b7e_f767_814f)
}
