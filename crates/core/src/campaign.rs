//! The injection-campaign controller (the paper's front-end loop, §V.B).

use crate::classify::classify;
use crate::profile::GoldenProfile;
use crate::workload::Workload;
use gpufi_faults::{CampaignSpec, DrawError, MaskGenerator};
use gpufi_metrics::{FaultEffect, Tally};
use gpufi_sim::{Gpu, GpuConfig, KernelWindow};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Configuration of one injection campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// The fault shape (structure, bits, scope, …).
    pub spec: CampaignSpec,
    /// Number of injection runs (the paper uses 3 000 per campaign).
    pub runs: usize,
    /// Campaign seed; each run derives its own generator seed from it.
    pub seed: u64,
    /// Target static kernel, or `None` to sample the whole application.
    pub kernel: Option<String>,
    /// Worker threads (0 = autodetect).
    pub threads: usize,
}

impl CampaignConfig {
    /// A whole-application campaign with the given fault shape.
    pub fn new(spec: CampaignSpec, runs: usize, seed: u64) -> Self {
        CampaignConfig {
            spec,
            runs,
            seed,
            kernel: None,
            threads: 0,
        }
    }

    /// Restricts injections to all invocations of one static kernel.
    pub fn for_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.kernel = Some(kernel.into());
        self
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// The outcome of one injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The classified fault effect.
    pub effect: FaultEffect,
    /// Total cycles of the (possibly aborted) run.
    pub cycles: u64,
    /// Whether the fault actually changed state (e.g. cache flips on
    /// invalid lines change nothing).
    pub applied: bool,
}

/// The aggregated result of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The fault shape that was injected.
    pub spec: CampaignSpec,
    /// The targeted kernel (`None` = whole application).
    pub kernel: Option<String>,
    /// Aggregated fault-effect counts.
    pub tally: Tally,
    /// Per-run records, in run order.
    pub records: Vec<RunRecord>,
}

/// Why a campaign could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The mask generator could not draw a fault (empty structure or
    /// windows).
    Draw(DrawError),
    /// The targeted kernel never executed in the golden run.
    UnknownKernel(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Draw(e) => write!(f, "cannot draw fault: {e}"),
            CampaignError::UnknownKernel(k) => write!(f, "kernel `{k}` not in golden profile"),
        }
    }
}

impl Error for CampaignError {}

impl From<DrawError> for CampaignError {
    fn from(e: DrawError) -> Self {
        CampaignError::Draw(e)
    }
}

/// Executes one injection run and classifies it.
fn one_run(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &CampaignConfig,
    golden: &GoldenProfile,
    run_idx: u64,
) -> Result<RunRecord, CampaignError> {
    // Derive a per-run generator so results are independent of the thread
    // interleaving.
    let mut gen = MaskGenerator::new(cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ run_idx);

    // Pick the window set and the fault space of the kernel it belongs to.
    let windows: Vec<KernelWindow> = golden.windows(cfg.kernel.as_deref());
    if windows.is_empty() {
        return Err(match &cfg.kernel {
            Some(k) => CampaignError::UnknownKernel(k.clone()),
            None => CampaignError::Draw(DrawError::EmptyWindows),
        });
    }
    // For whole-application campaigns, the per-kernel fault space follows
    // the drawn cycle's kernel; approximate by drawing the window first.
    let (window, space) = match &cfg.kernel {
        Some(k) => {
            let space = golden
                .fault_spaces
                .get(k)
                .ok_or_else(|| CampaignError::UnknownKernel(k.clone()))?;
            (windows, *space)
        }
        None => {
            let w = pick_weighted(&mut gen, &windows);
            let space = golden
                .fault_spaces
                .get(&w.kernel)
                .ok_or_else(|| CampaignError::UnknownKernel(w.kernel.clone()))?;
            (vec![w.clone()], *space)
        }
    };

    let plan = gen.draw(&cfg.spec, &space, &window)?;

    let mut gpu = Gpu::new(card.clone());
    gpu.arm_faults(plan);
    gpu.set_watchdog(golden.total_cycles() * 2);
    let result = workload.run(&mut gpu);
    let cycles = gpu.stats().total_cycles().max(gpu.cycle());
    let applied = gpu.injection_records().iter().any(|r| r.applied);
    let effect = classify(&result, cycles, golden);
    Ok(RunRecord { effect, cycles, applied })
}

/// Picks one window with probability proportional to its length.
fn pick_weighted<'a>(gen: &mut MaskGenerator, windows: &'a [KernelWindow]) -> &'a KernelWindow {
    // Reuse the generator's bit source through distinct_bits for a cheap
    // uniform draw over the total span.
    let total: u64 = windows.iter().map(|w| w.end - w.start).sum();
    let mut r = gen.distinct_bits(1, total.max(1))[0];
    for w in windows {
        let len = w.end - w.start;
        if r < len {
            return w;
        }
        r -= len;
    }
    windows.last().expect("non-empty windows")
}

/// Runs a full campaign: `cfg.runs` independent injection runs of
/// `workload` on `card`, classified against `golden`.
///
/// Runs execute on `cfg.threads` worker threads; the result is identical
/// regardless of thread count because every run derives its own RNG from
/// the campaign seed and the run index.
///
/// # Errors
///
/// Returns [`CampaignError`] when the fault space is empty for this
/// kernel/chip (e.g. L1 data cache on GTX Titan) or the kernel is unknown.
pub fn run_campaign(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &CampaignConfig,
    golden: &GoldenProfile,
) -> Result<CampaignResult, CampaignError> {
    let threads = cfg.effective_threads().clamp(1, cfg.runs.max(1));
    let mut records: Vec<Option<RunRecord>> = vec![None; cfg.runs];

    if threads <= 1 {
        for (i, slot) in records.iter_mut().enumerate() {
            *slot = Some(one_run(workload, card, cfg, golden, i as u64)?);
        }
    } else {
        let chunk = cfg.runs.div_ceil(threads);
        let results: Vec<Result<Vec<RunRecord>, CampaignError>> =
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(cfg.runs);
                    if lo >= hi {
                        continue;
                    }
                    handles.push(scope.spawn(move |_| {
                        (lo..hi)
                            .map(|i| one_run(workload, card, cfg, golden, i as u64))
                            .collect::<Result<Vec<_>, _>>()
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            })
            .expect("campaign scope");
        let mut idx = 0;
        for r in results {
            for rec in r? {
                records[idx] = Some(rec);
                idx += 1;
            }
        }
    }

    let records: Vec<RunRecord> = records.into_iter().map(|r| r.expect("all runs filled")).collect();
    let tally: Tally = records.iter().map(|r| r.effect).collect();
    Ok(CampaignResult {
        spec: cfg.spec.clone(),
        kernel: cfg.kernel.clone(),
        tally,
        records,
    })
}
