//! The injection-campaign controller (the paper's front-end loop, §V.B).

use crate::classify::{classify, detail_of, RunDetail};
use crate::profile::GoldenProfile;
use crate::supervisor::{campaign_fingerprint, catch_run, RunJournal};
use crate::workload::{Workload, WorkloadError};
use gpufi_faults::{CampaignSpec, DrawError, MaskGenerator};
use gpufi_isa::analysis::dead_registers;
use gpufi_metrics::{FaultEffect, Tally};
use gpufi_sim::{
    CheckpointStore, FaultSpace, FaultTarget, Gpu, GpuConfig, InjectionPlan, KernelWindow, Trap,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default memory budget for the checkpoint store (the recorder doubles
/// its stride rather than exceed this).
pub const DEFAULT_CHECKPOINT_BUDGET: usize = 256 * 1024 * 1024;

/// Auto-sizing target: with `checkpoint_interval == 0` the stride is the
/// golden cycle count divided by this, so a full-length store holds about
/// this many snapshots (fewer once the budget bites).
const AUTO_CHECKPOINT_TARGET: u64 = 24;

/// Default journal group-commit threshold: fsync every this many appended
/// lines (or 100 ms, whichever comes first).  Process death loses nothing
/// at any threshold — lines are written through to the OS per append —
/// only the power-loss window widens.
pub const DEFAULT_JOURNAL_COMMIT: usize = 16;

/// Configuration of one injection campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// The fault shape (structure, bits, scope, …).
    pub spec: CampaignSpec,
    /// Number of injection runs (the paper uses 3 000 per campaign).
    pub runs: usize,
    /// Campaign seed; each run derives its own generator seed from it.
    pub seed: u64,
    /// Target static kernel, or `None` to sample the whole application.
    pub kernel: Option<String>,
    /// Worker threads (0 = autodetect).
    pub threads: usize,
    /// Abort a run as soon as every planned fault's lifetime has provably
    /// ended (classifying it **Masked** with the golden cycle count).
    /// Disable to force full simulation of every run — the validation mode
    /// behind `--no-early-exit`.
    pub early_exit: bool,
    /// Fork each run from the nearest golden-run checkpoint at or before
    /// its first injection cycle instead of cold-starting at cycle 0.
    /// Disable to force cold starts — the validation mode behind
    /// `--no-checkpoints`.
    pub checkpoints: bool,
    /// Checkpoint stride in cycles; `0` auto-sizes from the golden cycle
    /// count and the memory budget.
    pub checkpoint_interval: u64,
    /// Memory budget for the checkpoint store, in bytes; the recorder
    /// drops every other snapshot and doubles its stride rather than
    /// exceed it.
    pub checkpoint_budget: usize,
    /// Restrict injection cycles to `[start, end)` (intersected with the
    /// kernel windows); `None` samples the whole golden run.
    pub cycle_window: Option<(u64, u64)>,
    /// Differential-oracle validation mode (`--oracle-check`): the golden
    /// run executes in lockstep with the functional reference interpreter
    /// (any divergence aborts the campaign), and every injection run that
    /// fault-lifetime early exit *would* classify as Masked is instead
    /// simulated to completion and its final global-memory image compared
    /// against the oracle's prediction.  Forces full simulation (implies
    /// `--no-early-exit` semantics for the run loop) while keeping run
    /// records identical to the optimized engine's.
    #[serde(default)]
    pub oracle_check: bool,
    /// Path of the crash-safe run journal (`<out>.journal.jsonl`): one
    /// fsync'd JSON line per completed run, written incrementally by the
    /// workers.  `None` disables journaling.
    #[serde(default)]
    pub journal: Option<String>,
    /// Resume from an existing journal at [`CampaignConfig::journal`]:
    /// validate its fingerprint, load the completed records and schedule
    /// only the missing run indices.  The resumed campaign's records and
    /// `Tally` are bit-identical to an uninterrupted run's.  When the
    /// journal file does not exist the campaign simply starts fresh.
    #[serde(default)]
    pub resume: bool,
    /// Pre-classify register-file runs whose every fault targets a
    /// **statically dead** register — one no reachable instruction of the
    /// faulted kernel ever reads — as Masked at the golden cycle count,
    /// without forking a simulation (ACE-style pruning over the liveness
    /// analysis in `gpufi_isa::analysis`).  Disable to force full
    /// simulation of every run — the validation mode behind
    /// `--no-static-prune`.  Ignored (off) under `oracle_check`, which
    /// exists to validate exactly such shortcuts.
    pub static_prune: bool,
    /// Per-run wall-clock watchdog in milliseconds (`0` = off): a run
    /// whose *real* time exceeds this aborts with a wall-clock trap and
    /// classifies **Timeout**, complementing the 2×-golden-cycles cycle
    /// watchdog for flips that livelock the simulator inside a cycle.
    #[serde(default)]
    pub max_run_ms: u64,
    /// Journal group-commit threshold: fsync after this many appended
    /// lines (and at least every 100 ms) instead of once per line.  `0`
    /// and `1` both mean per-line fsync — the pre-group-commit behaviour.
    /// Excluded from the campaign fingerprint: it changes durability
    /// latency, never a record.
    #[serde(default)]
    pub journal_commit: usize,
}

impl CampaignConfig {
    /// A whole-application campaign with the given fault shape.
    pub fn new(spec: CampaignSpec, runs: usize, seed: u64) -> Self {
        CampaignConfig {
            spec,
            runs,
            seed,
            kernel: None,
            threads: 0,
            early_exit: true,
            checkpoints: true,
            checkpoint_interval: 0,
            checkpoint_budget: DEFAULT_CHECKPOINT_BUDGET,
            cycle_window: None,
            oracle_check: false,
            journal: None,
            resume: false,
            static_prune: true,
            max_run_ms: 0,
            journal_commit: DEFAULT_JOURNAL_COMMIT,
        }
    }

    /// Restricts injections to all invocations of one static kernel.
    pub fn for_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.kernel = Some(kernel.into());
        self
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Disables fault-lifetime early exit (full-simulation validation mode).
    pub fn no_early_exit(mut self) -> Self {
        self.early_exit = false;
        self
    }

    /// Disables checkpoint forking (cold-start validation mode).
    pub fn no_checkpoints(mut self) -> Self {
        self.checkpoints = false;
        self
    }

    /// Disables static dead-register pruning (full-simulation validation
    /// mode; see [`CampaignConfig::static_prune`]).
    pub fn no_static_prune(mut self) -> Self {
        self.static_prune = false;
        self
    }

    /// Enables differential-oracle validation (see
    /// [`CampaignConfig::oracle_check`]).
    pub fn with_oracle_check(mut self) -> Self {
        self.oracle_check = true;
        self
    }

    /// Sets the checkpoint stride in cycles (`0` = auto-size).
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Enables the crash-safe run journal at `path`.
    pub fn with_journal(mut self, path: impl Into<String>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Resumes from the journal configured via [`CampaignConfig::with_journal`].
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Sets the per-run wall-clock watchdog (`0` = off).
    pub fn with_max_run_ms(mut self, ms: u64) -> Self {
        self.max_run_ms = ms;
        self
    }

    /// Sets the journal group-commit threshold (`1` = fsync per line).
    pub fn with_journal_commit(mut self, lines: usize) -> Self {
        self.journal_commit = lines;
        self
    }

    /// Restricts injection cycles to `[start, end)`.
    pub fn with_cycle_window(mut self, start: u64, end: u64) -> Self {
        self.cycle_window = Some((start, end));
        self
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// The outcome of one injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord {
    /// The classified fault effect.
    pub effect: FaultEffect,
    /// Total cycles of the (possibly aborted) run.
    pub cycles: u64,
    /// Whether the fault actually changed state (e.g. cache flips on
    /// invalid lines change nothing).
    pub applied: bool,
    /// Whether the run was cut short because every fault's lifetime ended
    /// (always classified **Masked** with the golden cycle count).
    pub early_exit: bool,
    /// Golden-run cycles skipped by forking from a checkpoint instead of
    /// cold-starting (`0` = cold start).
    pub ckpt_skipped_cycles: u64,
    /// Sub-classification of the outcome: which trap kind a Crash was,
    /// which watchdog a Timeout was, or [`RunDetail::SimPanic`] for a run
    /// the supervisor quarantined after a reproducible simulator panic.
    #[serde(default)]
    pub detail: RunDetail,
}

/// Wall-clock throughput and fault-behaviour statistics of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CampaignStats {
    /// Total wall-clock time of the campaign, in milliseconds.
    pub wall_ms: f64,
    /// Injection runs completed per second of wall-clock time.  In a
    /// merged distributed result this is runs over the **coordinator's**
    /// wall clock — the user-visible end-to-end rate — never a single
    /// worker's local figure.
    pub runs_per_sec: f64,
    /// Worker threads that executed the campaign.  In a merged
    /// distributed result: the **aggregate** thread count over every
    /// worker process that joined the campaign.
    pub threads: usize,
    /// Worker processes that executed the campaign (`1` for an in-process
    /// run; the number of connected workers for a distributed one).
    #[serde(default)]
    pub workers: usize,
    /// Runs whose fault actually changed machine state.
    pub applied: usize,
    /// `applied / runs`.
    pub applied_rate: f64,
    /// Runs cut short by fault-lifetime early exit.
    pub early_exits: usize,
    /// `early_exits / runs`.
    pub early_exit_rate: f64,
    /// Snapshots held in the checkpoint store (0 = checkpoints disabled).
    pub checkpoints: usize,
    /// Approximate resident bytes of the checkpoint store.
    pub checkpoint_bytes: usize,
    /// Runs that forked from a checkpoint instead of cold-starting.
    pub restores: usize,
    /// Mean golden-run cycles skipped per run by checkpoint forking.
    pub mean_skipped_cycles: f64,
    /// Runs executed under the differential oracle (`--oracle-check`).
    #[serde(default)]
    pub oracle_checked: usize,
    /// Oracle-checked runs that early exit would have cut short, fully
    /// simulated and confirmed to end in the oracle-predicted state.
    #[serde(default)]
    pub oracle_verified: usize,
    /// Oracle-checked runs where the early-exit verdict was *wrong*: the
    /// fully simulated run did not end Masked at the golden cycle count
    /// with the oracle's global-memory image.  Must be zero.
    #[serde(default)]
    pub oracle_mismatches: usize,
    /// Run attempts that ended in a simulator-internal panic (caught and
    /// isolated by the supervisor; a run that panics on both its first
    /// attempt and its retry counts twice).
    #[serde(default)]
    pub panics: usize,
    /// Panicked runs the supervisor re-executed once from the quarantine
    /// queue, to distinguish deterministic poison runs from incidental
    /// failures.
    #[serde(default)]
    pub retries: usize,
    /// Runs pre-classified Masked by the static dead-register prune and
    /// never simulated (see [`CampaignConfig::static_prune`]).
    #[serde(default)]
    pub static_pruned: usize,
    /// `static_pruned / runs`.
    #[serde(default)]
    pub static_pruned_rate: f64,
    /// Completed runs loaded from the journal instead of executed
    /// (`--resume`).
    #[serde(default)]
    pub resumed: usize,
    /// Bytes appended to the run journal by this campaign (0 = journaling
    /// off).
    #[serde(default)]
    pub journal_bytes: u64,
    /// Wall-clock milliseconds spent writing and fsyncing journal lines —
    /// the journal's overhead, reported so regressions are visible.
    #[serde(default)]
    pub journal_ms: f64,
    /// `fsync` calls the journal issued; with group commit this is the
    /// observable batching factor (`journal lines / journal_syncs`).
    #[serde(default)]
    pub journal_syncs: u64,
    /// Range leases a distributed coordinator reissued after a worker
    /// died or stalled past its lease deadline (0 = in-process, or no
    /// failures).
    #[serde(default)]
    pub lease_reissues: usize,
}

/// The aggregated result of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The fault shape that was injected.
    pub spec: CampaignSpec,
    /// The targeted kernel (`None` = whole application).
    pub kernel: Option<String>,
    /// Aggregated fault-effect counts.
    pub tally: Tally,
    /// Per-run records, in run order.
    pub records: Vec<RunRecord>,
    /// Throughput and fault-behaviour statistics (excluded from equality:
    /// two identical campaigns differ in wall-clock time).
    pub stats: CampaignStats,
}

impl PartialEq for CampaignResult {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.kernel == other.kernel
            && self.tally == other.tally
            && self.records == other.records
    }
}

/// Why a campaign could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The mask generator could not draw a fault (empty structure or
    /// windows).
    Draw(DrawError),
    /// The targeted kernel never executed in the golden run.
    UnknownKernel(String),
    /// The lockstep golden run diverged from the reference interpreter —
    /// the simulator itself (not an injection) is functionally wrong.
    OracleDivergence(String),
    /// The run journal could not be created, read or appended, or the
    /// journal on disk belongs to a different campaign (fingerprint or
    /// run-count mismatch).
    Journal(String),
    /// A supervisor invariant broke: the workers finished without
    /// producing a record for these run indices.  Reported instead of
    /// panicking so the caller sees *which* runs went missing.
    Internal(Vec<usize>),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Draw(e) => write!(f, "cannot draw fault: {e}"),
            CampaignError::UnknownKernel(k) => write!(f, "kernel `{k}` not in golden profile"),
            CampaignError::OracleDivergence(d) => write!(f, "oracle check failed: {d}"),
            CampaignError::Journal(e) => write!(f, "run journal: {e}"),
            CampaignError::Internal(missing) => write!(
                f,
                "internal supervisor error: no record for run indices {missing:?}"
            ),
        }
    }
}

impl Error for CampaignError {}

impl From<DrawError> for CampaignError {
    fn from(e: DrawError) -> Self {
        CampaignError::Draw(e)
    }
}

/// Derives the per-run generator seed: the `run_idx`-th output of a
/// splitmix64 stream started at `seed`.  The full-avalanche finalizer keeps
/// every (seed, run) pair distinct — unlike the previous
/// `seed * C ^ run_idx` mix, which collapsed all runs of seed 0 onto the
/// bare run index (and made seed 0 share masks with seed 1).
fn mix_seed(seed: u64, run_idx: u64) -> u64 {
    let mut z = seed.wrapping_add(run_idx.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One pre-drawn injection run: its fault plan, the cycle of its earliest
/// fault (the fork point bound), and the static kernel the faults land in
/// (the dead-register prune's lookup key).
#[derive(Debug, Clone)]
pub(crate) struct RunPlan {
    plan: InjectionPlan,
    first_cycle: u64,
    kernel: String,
}

/// Intersects kernel windows with an optional cycle range, dropping
/// windows the range empties.
fn clamp_windows(windows: Vec<KernelWindow>, range: Option<(u64, u64)>) -> Vec<KernelWindow> {
    let Some((lo, hi)) = range else {
        return windows;
    };
    windows
        .into_iter()
        .filter_map(|w| {
            let start = w.start.max(lo);
            let end = w.end.min(hi);
            (start < end).then_some(KernelWindow {
                kernel: w.kernel,
                start,
                end,
            })
        })
        .collect()
}

/// The reusable per-campaign execution context: everything `run_campaign`
/// sets up once and then applies to many run indices — the clamped window
/// set, the per-kernel fault-space lookup, the statically-dead register
/// table and (optionally) the golden-run checkpoint store.
///
/// The engine executes **any subset of run indices** with results
/// bit-identical to a full in-process campaign: each run's RNG derives
/// from `(campaign seed, run index)` alone, so a distributed worker
/// executing a leased range `[a, b)` produces exactly the records the
/// single-process engine would have placed at those indices.  This is the
/// primitive `gpufi serve` / `gpufi worker` shard campaigns with.
pub(crate) struct CampaignEngine<'a> {
    workload: &'a dyn Workload,
    card: &'a GpuConfig,
    cfg: &'a CampaignConfig,
    golden: &'a GoldenProfile,
    windows: Vec<KernelWindow>,
    kernel_space: Option<&'a FaultSpace>,
    /// Statically-dead registers per kernel; empty when pruning is off.
    dead: BTreeMap<String, Vec<u8>>,
    store: Option<Arc<CheckpointStore>>,
}

/// What [`CampaignEngine::execute`] produced for one batch of indices.
pub(crate) struct ExecOutcome {
    /// `(run index, record, oracle verdict)`, in completion order.
    pub results: Vec<(usize, RunRecord, OracleVerdict)>,
    /// Run attempts that ended in a caught simulator panic.
    pub panics: usize,
    /// Quarantined runs re-executed once.
    pub retries: usize,
}

/// Streaming observer invoked for every completed record (static-pruned,
/// executed, or poison-retry verdict) as it is produced — the journal
/// appender in-process, the TCP result stream on a distributed worker.
pub(crate) type RunSink<'s> = &'s (dyn Fn(usize, &RunRecord) + Sync);

impl<'a> CampaignEngine<'a> {
    /// Validates the campaign's window set and fault-space lookups and
    /// builds the dead-register table.  Cheap — the expensive checkpoint
    /// recording pass is deferred to [`CampaignEngine::build_store`] so a
    /// fully-resumed campaign never pays it.
    pub(crate) fn prepare(
        workload: &'a dyn Workload,
        card: &'a GpuConfig,
        cfg: &'a CampaignConfig,
        golden: &'a GoldenProfile,
    ) -> Result<CampaignEngine<'a>, CampaignError> {
        let windows: Vec<KernelWindow> =
            clamp_windows(golden.windows(cfg.kernel.as_deref()), cfg.cycle_window);
        if windows.is_empty() {
            return Err(match &cfg.kernel {
                Some(k) => CampaignError::UnknownKernel(k.clone()),
                None => CampaignError::Draw(DrawError::EmptyWindows),
            });
        }
        let kernel_space = match &cfg.kernel {
            Some(k) => Some(
                golden
                    .fault_spaces
                    .get(k)
                    .ok_or_else(|| CampaignError::UnknownKernel(k.clone()))?,
            ),
            None => None,
        };
        // `--oracle-check` exists to validate shortcuts like the static
        // prune, so it bypasses them.
        let dead = if cfg.static_prune && !cfg.oracle_check {
            dead_reg_table(workload)
        } else {
            BTreeMap::new()
        };
        Ok(CampaignEngine {
            workload,
            card,
            cfg,
            golden,
            windows,
            kernel_space,
            dead,
            store: None,
        })
    }

    /// Runs the golden checkpoint-recording pass (once per campaign/job)
    /// if checkpoints are enabled; a no-op otherwise.
    pub(crate) fn build_store(&mut self) {
        if self.cfg.checkpoints && self.store.is_none() {
            self.store = record_store(self.workload, self.card, self.cfg, self.golden);
        }
    }

    /// The checkpoint store, for observability.
    pub(crate) fn store(&self) -> Option<&Arc<CheckpointStore>> {
        self.store.as_ref()
    }

    /// Draws the injection plan of run `run_idx` — a pure function of
    /// `(campaign seed, run index)`, independent of which process, thread
    /// or execution order evaluates it.
    fn draw_plan(&self, run_idx: u64) -> Result<RunPlan, CampaignError> {
        let cfg = self.cfg;
        let mut gen = MaskGenerator::new(mix_seed(cfg.seed, run_idx));
        // For whole-application campaigns, the per-kernel fault space
        // follows the drawn cycle's kernel; approximate by drawing the
        // window first.
        let (plan, kernel) = match self.kernel_space {
            Some(space) => (
                gen.draw(&cfg.spec, space, &self.windows)?,
                cfg.kernel.clone().expect("kernel_space implies a kernel"),
            ),
            None => {
                let w = pick_weighted(&mut gen, &self.windows)?;
                let space = self
                    .golden
                    .fault_spaces
                    .get(&w.kernel)
                    .ok_or_else(|| CampaignError::UnknownKernel(w.kernel.clone()))?;
                (
                    gen.draw(&cfg.spec, space, std::slice::from_ref(w))?,
                    w.kernel.clone(),
                )
            }
        };
        let first_cycle = plan.faults.iter().map(|f| f.cycle).min().unwrap_or(0);
        Ok(RunPlan {
            plan,
            first_cycle,
            kernel,
        })
    }

    /// Draws the plans of `indices` (aligned with the input), surfacing
    /// any draw error before simulation starts.
    pub(crate) fn draw_plans(&self, indices: &[usize]) -> Result<Vec<RunPlan>, CampaignError> {
        indices.iter().map(|&i| self.draw_plan(i as u64)).collect()
    }

    /// Whether this plan is pre-classified Masked by the static
    /// dead-register prune (always `false` when pruning is disabled).
    pub(crate) fn is_static_dead(&self, plan: &RunPlan) -> bool {
        plan_is_static_dead(&plan.plan, self.dead.get(&plan.kernel))
    }

    /// The record a statically-pruned run gets: exactly what the
    /// fault-lifetime early exit records for a never-read register, so
    /// pruned and unpruned campaigns stay diffable — a dead-register flip
    /// is applied state the machine provably never reads back.
    pub(crate) fn pruned_record(&self) -> RunRecord {
        RunRecord {
            effect: FaultEffect::Masked,
            cycles: self.golden.total_cycles(),
            applied: true,
            early_exit: false,
            ckpt_skipped_cycles: 0,
            detail: RunDetail::StaticDead,
        }
    }

    /// Executes one batch of pre-drawn runs on `threads` worker threads
    /// (work stealing over the batch sorted by first injection cycle, so
    /// neighbouring runs fork from the same hot snapshot), with per-run
    /// panic isolation and one quarantine retry per panicked run.  `sink`
    /// observes every record as it completes.
    pub(crate) fn execute(
        &self,
        work: &[(usize, RunPlan)],
        threads: usize,
        hook: Option<&FaultHook>,
        oracle_img: Option<&[u8]>,
        sink: Option<RunSink<'_>>,
    ) -> ExecOutcome {
        let mut order: Vec<usize> = (0..work.len()).collect();
        order.sort_by_key(|&k| work[k].1.first_cycle);

        let panics = AtomicUsize::new(0);
        // Positions in `work` whose first attempt panicked, awaiting
        // their single retry.
        let quarantine: Mutex<Vec<usize>> = Mutex::new(Vec::new());

        // One supervised attempt of work position `k`: any panic inside
        // the simulator is caught and returned as a message.
        let attempt = |k: usize, n: u32| -> Result<(RunRecord, OracleVerdict), String> {
            let (i, plan) = &work[k];
            catch_run(|| {
                if let Some(h) = hook {
                    h(*i, n);
                }
                one_run(
                    self.workload,
                    self.card,
                    self.cfg,
                    self.golden,
                    plan,
                    self.store.as_ref(),
                    oracle_img,
                )
            })
        };
        // First attempt, executed by the workers: stream a completed run
        // to the sink immediately (crash safety), quarantine a panic.
        let run_one = |k: usize| -> Option<(usize, RunRecord, OracleVerdict)> {
            match attempt(k, 0) {
                Ok((rec, verdict)) => {
                    let i = work[k].0;
                    if let Some(s) = sink {
                        s(i, &rec);
                    }
                    Some((i, rec, verdict))
                }
                Err(_msg) => {
                    panics.fetch_add(1, Ordering::Relaxed);
                    quarantine.lock().expect("quarantine lock poisoned").push(k);
                    None
                }
            }
        };

        let mut results: Vec<(usize, RunRecord, OracleVerdict)> = Vec::with_capacity(work.len());
        if threads <= 1 {
            for &k in &order {
                if let Some(out) = run_one(k) {
                    results.push(out);
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let done: Vec<Vec<(usize, RunRecord, OracleVerdict)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let n = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&k) = order.get(n) else { break };
                                if let Some(out) = run_one(k) {
                                    local.push(out);
                                }
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Run panics are caught inside `run_one`; a worker can
                    // only die from a supervisor-infrastructure bug, which
                    // must not be masked.
                    .map(|h| h.join().expect("supervisor worker died outside a run"))
                    .collect()
            });
            results.extend(done.into_iter().flatten());
        }

        // Quarantine retry: each panicked run is re-executed exactly once,
        // in run order, to tell deterministic poison runs from incidental
        // failures.  A reproduced panic becomes the poison verdict —
        // Crash, `sim_panic` — with deterministic placeholder fields, so a
        // resumed campaign reproduces it bit for bit.
        let mut retried: Vec<usize> = quarantine.into_inner().expect("quarantine lock poisoned");
        retried.sort_unstable_by_key(|&k| work[k].0);
        let retries = retried.len();
        for &k in &retried {
            let (rec, verdict) = match attempt(k, 1) {
                Ok(out) => out,
                Err(_msg) => {
                    panics.fetch_add(1, Ordering::Relaxed);
                    (
                        RunRecord {
                            effect: FaultEffect::Crash,
                            cycles: 0,
                            applied: true,
                            early_exit: false,
                            ckpt_skipped_cycles: 0,
                            detail: RunDetail::SimPanic,
                        },
                        OracleVerdict::default(),
                    )
                }
            };
            let i = work[k].0;
            if let Some(s) = sink {
                s(i, &rec);
            }
            results.push((i, rec, verdict));
        }
        ExecOutcome {
            results,
            panics: panics.into_inner(),
            retries,
        }
    }
}

/// Per-kernel statically-dead register sets — registers no reachable
/// instruction of the kernel ever reads — computed once per campaign from
/// the workload's module (the liveness analysis in
/// `gpufi_isa::analysis`).
fn dead_reg_table(workload: &dyn Workload) -> BTreeMap<String, Vec<u8>> {
    workload
        .module()
        .kernels()
        .iter()
        .map(|k| (k.name().to_string(), dead_registers(k)))
        .collect()
}

/// Whether every fault of `plan` is a register-file flip landing in a
/// register of `dead` — in which case no reachable instruction can ever
/// observe the flipped bits, the architecturally-correct-execution
/// argument holds unconditionally, and the run is Masked at the golden
/// cycle count without simulating it.  Registers are zero-reinitialized at
/// every launch, so a dead flip cannot leak into a later kernel either.
fn plan_is_static_dead(plan: &InjectionPlan, dead: Option<&Vec<u8>>) -> bool {
    let Some(dead) = dead else { return false };
    !plan.faults.is_empty()
        && plan.faults.iter().all(|f| match &f.target {
            FaultTarget::RegisterFile { reg, .. } => {
                u8::try_from(*reg).is_ok_and(|r| dead.contains(&r))
            }
            _ => false,
        })
}

/// Re-runs the golden execution once with the checkpoint recorder armed
/// and publishes the store for the workers.  Returns `None` (cold starts
/// for everyone) if the recording pass fails — it should not, since
/// profiling already succeeded.
fn record_store(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &CampaignConfig,
    golden: &GoldenProfile,
) -> Option<Arc<CheckpointStore>> {
    let interval = match cfg.checkpoint_interval {
        0 => (golden.total_cycles() / AUTO_CHECKPOINT_TARGET).max(1),
        n => n,
    };
    let mut gpu = Gpu::new(card.clone());
    gpu.record_checkpoints(interval, cfg.checkpoint_budget);
    workload.run(&mut gpu).ok()?;
    Some(Arc::new(gpu.finish_checkpoint_recording()))
}

/// Runs the workload once with the differential oracle attached,
/// verifying the simulator's golden execution instruction-semantics-level
/// against the functional reference interpreter, and returns the oracle's
/// final global-memory image (the state every Masked run must land on).
fn oracle_golden_image(
    workload: &dyn Workload,
    card: &GpuConfig,
) -> Result<Vec<u8>, CampaignError> {
    let mut gpu = Gpu::new(card.clone());
    gpu.attach_oracle();
    let result = workload.run(&mut gpu);
    if let Some(d) = gpu.oracle_divergence() {
        return Err(CampaignError::OracleDivergence(d.to_string()));
    }
    result
        .map_err(|e| CampaignError::OracleDivergence(format!("lockstep golden run failed: {e}")))?;
    Ok(gpu.oracle_global_image().expect("oracle attached above"))
}

/// `one_run`'s oracle verdict (all `false` outside `--oracle-check`).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OracleVerdict {
    /// The run executed under the early-exit probe.
    checked: bool,
    /// Early exit would have fired and the full simulation confirmed it:
    /// Masked, golden cycle count, oracle-predicted memory image.
    verified: bool,
    /// Early exit would have fired but the full simulation disagreed.
    mismatch: bool,
}

/// Executes one pre-drawn injection run and classifies it.
fn one_run(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &CampaignConfig,
    golden: &GoldenProfile,
    run: &RunPlan,
    store: Option<&Arc<CheckpointStore>>,
    oracle_img: Option<&[u8]>,
) -> (RunRecord, OracleVerdict) {
    let mut gpu = Gpu::new(card.clone());
    // Fork from the nearest checkpoint at or before the first injection
    // cycle — state up to that cycle is bit-identical to the golden run's,
    // so the head of the run need not be re-simulated.
    let mut ckpt_skipped_cycles = 0;
    if let Some(store) = store {
        if let Some(idx) = store.nearest_at_or_before(run.first_cycle) {
            gpu.resume_from(store, idx);
            ckpt_skipped_cycles = store.snapshot_cycle(idx);
        }
    }
    gpu.arm_faults(run.plan.clone());
    gpu.set_watchdog(golden.total_cycles() * 2);
    if cfg.max_run_ms > 0 {
        gpu.set_wall_watchdog(Duration::from_millis(cfg.max_run_ms));
    }
    // Oracle check replaces the early-exit abort with a probe: the exit
    // predicate is still evaluated, but the run completes so its final
    // state can be compared against the oracle's prediction.
    gpu.set_early_exit(cfg.early_exit && oracle_img.is_none());
    gpu.set_early_exit_probe(oracle_img.is_some());
    let result = workload.run(&mut gpu);
    let applied = gpu.injection_records().iter().any(|r| r.applied);
    if matches!(&result, Err(WorkloadError::Trap(Trap::FaultsExpired))) {
        // Every fault's lifetime ended with the machine state equal to the
        // golden run's, so the remaining execution is the golden execution:
        // Masked, at the golden cycle count.
        let rec = RunRecord {
            effect: FaultEffect::Masked,
            cycles: golden.total_cycles(),
            applied,
            early_exit: true,
            ckpt_skipped_cycles,
            detail: RunDetail::None,
        };
        return (rec, OracleVerdict::default());
    }
    let cycles = gpu.stats().total_cycles().max(gpu.cycle());
    let effect = classify(&result, cycles, golden);
    let detail = detail_of(&result);
    if let Some(img) = oracle_img {
        let mut verdict = OracleVerdict {
            checked: true,
            ..OracleVerdict::default()
        };
        if gpu.would_early_exit() {
            // Early exit would have recorded Masked at the golden cycle
            // count; the fully simulated run must agree *and* its memory
            // must match the reference interpreter bit for bit.
            let confirmed = effect == FaultEffect::Masked
                && cycles == golden.total_cycles()
                && gpu.mem().global_image() == img;
            if confirmed {
                verdict.verified = true;
                // Record exactly what the optimized engine records, so the
                // two campaigns' CSVs are directly diffable.
                let rec = RunRecord {
                    effect: FaultEffect::Masked,
                    cycles: golden.total_cycles(),
                    applied,
                    early_exit: true,
                    ckpt_skipped_cycles,
                    detail: RunDetail::None,
                };
                return (rec, verdict);
            }
            verdict.mismatch = true;
        }
        let rec = RunRecord {
            effect,
            cycles,
            applied,
            early_exit: false,
            ckpt_skipped_cycles,
            detail,
        };
        return (rec, verdict);
    }
    let rec = RunRecord {
        effect,
        cycles,
        applied,
        early_exit: false,
        ckpt_skipped_cycles,
        detail,
    };
    (rec, OracleVerdict::default())
}

/// Picks one window with probability proportional to its length.
///
/// # Errors
///
/// Returns [`DrawError::EmptyWindows`] when every window is empty (zero
/// total cycles), instead of the old behaviour of underflowing on a window
/// with `end < start`.
fn pick_weighted<'a>(
    gen: &mut MaskGenerator,
    windows: &'a [KernelWindow],
) -> Result<&'a KernelWindow, DrawError> {
    let total: u64 = windows.iter().map(|w| w.end.saturating_sub(w.start)).sum();
    if total == 0 {
        return Err(DrawError::EmptyWindows);
    }
    let mut r = gen.uniform(total);
    for w in windows {
        let len = w.end.saturating_sub(w.start);
        if r < len {
            return Ok(w);
        }
        r -= len;
    }
    unreachable!("uniform draw below the total window length")
}

/// A test-only fault hook the supervisor invokes at the start of every
/// supervised run attempt, with the run index and the attempt number
/// (`0` = first attempt, `1` = the quarantine retry).  A hook that panics
/// emulates a fault corrupting simulator invariants; panic-isolation tests
/// and the CLI's `--inject-panic-run` use it to prove the campaign
/// survives poison runs.
pub type FaultHook = dyn Fn(usize, u32) + Sync + std::panic::RefUnwindSafe;

/// Runs a full campaign: `cfg.runs` independent injection runs of
/// `workload` on `card`, classified against `golden`.
///
/// Every run's fault plan is drawn up front (so draw errors surface before
/// any simulation), then — unless `cfg.checkpoints` is off — one extra
/// golden pass records a [`CheckpointStore`] and each run forks from the
/// nearest snapshot at or before its first injection cycle, simulating only
/// `[nearest_checkpoint, fault_death)` once taint early exit also fires.
///
/// Runs execute on `cfg.threads` worker threads pulling from a shared
/// counter (work stealing) over the runs *sorted by first injection cycle*,
/// so neighbouring runs fork from the same snapshot while it is hot in
/// cache.  The result is identical regardless of thread count and execution
/// order because every run derives its own RNG from the campaign seed and
/// the run index, and records are placed by original run index.
///
/// The campaign is **supervised**: each run executes under
/// `std::panic::catch_unwind`, so a simulator-internal panic is captured
/// per run, quarantined, retried once, and — if it reproduces — recorded
/// as **Crash** with [`RunDetail::SimPanic`] while every sibling run
/// completes normally.  With [`CampaignConfig::journal`] set, each
/// completed run is also appended (fsync'd) to a crash-safe journal that
/// [`CampaignConfig::resume`] can restart from after process death.
///
/// # Errors
///
/// Returns [`CampaignError`] when the fault space is empty for this
/// kernel/chip (e.g. L1 data cache on GTX Titan), the kernel is unknown,
/// or the journal cannot be written / does not belong to this campaign.
pub fn run_campaign(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &CampaignConfig,
    golden: &GoldenProfile,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_with_hook(workload, card, cfg, golden, None)
}

/// [`run_campaign`] with a [`FaultHook`] injected into every supervised
/// run attempt (`None` behaves exactly like [`run_campaign`]).
pub fn run_campaign_with_hook(
    workload: &dyn Workload,
    card: &GpuConfig,
    cfg: &CampaignConfig,
    golden: &GoldenProfile,
    hook: Option<&FaultHook>,
) -> Result<CampaignResult, CampaignError> {
    let start = Instant::now();
    let mut engine = CampaignEngine::prepare(workload, card, cfg, golden)?;
    let all: Vec<usize> = (0..cfg.runs).collect();
    let plans = engine.draw_plans(&all)?;

    // Journal / resume: load completed records first, so a resumed
    // campaign schedules (and pays for) only the missing run indices.
    let mut slots: Vec<Option<(RunRecord, OracleVerdict)>> = vec![None; cfg.runs];
    let mut resumed = 0usize;
    let journal: Option<RunJournal> = match &cfg.journal {
        None => None,
        Some(path) => {
            let fp = campaign_fingerprint(workload.name(), &card.name, cfg);
            let j = if cfg.resume && std::path::Path::new(path).exists() {
                let (j, loaded) =
                    RunJournal::resume(path, fp, cfg.runs).map_err(CampaignError::Journal)?;
                for (i, rec) in loaded.into_iter().enumerate() {
                    if let Some(r) = rec {
                        slots[i] = Some((r, OracleVerdict::default()));
                        resumed += 1;
                    }
                }
                j
            } else {
                RunJournal::create(path, fp, cfg.runs).map_err(CampaignError::Journal)?
            };
            Some(j.with_group_commit(cfg.journal_commit))
        }
    };
    // Static dead-register prune: runs whose every fault lands in a
    // register the faulted kernel never reads are Masked by construction —
    // classify them here, journal them for resume, and never schedule
    // them.
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.is_some() || !engine.is_static_dead(&plans[i]) {
            continue;
        }
        let rec = engine.pruned_record();
        if let Some(j) = &journal {
            j.append(i, &rec).map_err(CampaignError::Journal)?;
        }
        *slot = Some((rec, OracleVerdict::default()));
    }

    // Oracle validation first: a functionally wrong golden run poisons
    // every classification, so fail before any injection work.  Both the
    // oracle pass and the checkpoint-recording pass are skipped when the
    // journal already covers every run.
    let pending = slots.iter().filter(|s| s.is_none()).count();
    let oracle_img: Option<Arc<Vec<u8>>> = if cfg.oracle_check && pending > 0 {
        Some(Arc::new(oracle_golden_image(workload, card)?))
    } else {
        None
    };
    let img_ref: Option<&[u8]> = oracle_img.as_deref().map(Vec::as_slice);
    if pending > 0 {
        engine.build_store();
    }
    let threads = cfg.effective_threads().clamp(1, pending.max(1));

    let work: Vec<(usize, RunPlan)> = plans
        .into_iter()
        .enumerate()
        .filter(|(i, _)| slots[*i].is_none())
        .collect();

    // First journal-append failure; the campaign fails with it at the end
    // (the workers keep draining so in-memory results are not lost).
    let journal_err: Mutex<Option<String>> = Mutex::new(None);
    // Journal a completed run the moment it finishes (crash safety).
    let sink = |i: usize, rec: &RunRecord| {
        if let Some(j) = &journal {
            if let Err(e) = j.append(i, rec) {
                journal_err
                    .lock()
                    .expect("journal error lock poisoned")
                    .get_or_insert(e);
            }
        }
    };
    let outcome = engine.execute(&work, threads, hook, img_ref, Some(&sink));
    for (i, rec, verdict) in outcome.results {
        slots[i] = Some((rec, verdict));
    }
    if let Some(j) = &journal {
        // Group commit defers fsync; settle the tail before declaring the
        // campaign done.
        if let Err(e) = j.flush() {
            journal_err
                .lock()
                .expect("journal error lock poisoned")
                .get_or_insert(e);
        }
    }
    if let Some(e) = journal_err
        .into_inner()
        .expect("journal error lock poisoned")
    {
        return Err(CampaignError::Journal(e));
    }

    // Fill check: a missing slot is a supervisor bug; report which run
    // indices vanished instead of panicking.
    let mut records = Vec::with_capacity(cfg.runs);
    let mut verdicts = Vec::with_capacity(cfg.runs);
    let mut missing = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some((r, v)) => {
                records.push(r);
                verdicts.push(v);
            }
            None => missing.push(i),
        }
    }
    if !missing.is_empty() {
        return Err(CampaignError::Internal(missing));
    }
    let tally: Tally = records.iter().map(|r| r.effect).collect();
    let wall = start.elapsed().as_secs_f64();
    let applied = records.iter().filter(|r| r.applied).count();
    let early_exits = records.iter().filter(|r| r.early_exit).count();
    let restores = records.iter().filter(|r| r.ckpt_skipped_cycles > 0).count();
    let static_pruned = records
        .iter()
        .filter(|r| r.detail == RunDetail::StaticDead)
        .count();
    let skipped: u64 = records.iter().map(|r| r.ckpt_skipped_cycles).sum();
    let n = records.len();
    let stats = CampaignStats {
        wall_ms: wall * 1e3,
        runs_per_sec: if wall > 0.0 { n as f64 / wall } else { 0.0 },
        threads,
        workers: 1,
        applied,
        applied_rate: if n > 0 {
            applied as f64 / n as f64
        } else {
            0.0
        },
        early_exits,
        early_exit_rate: if n > 0 {
            early_exits as f64 / n as f64
        } else {
            0.0
        },
        checkpoints: engine.store().map_or(0, |s| s.len()),
        checkpoint_bytes: engine.store().map_or(0, |s| s.resident_bytes()),
        restores,
        mean_skipped_cycles: if n > 0 {
            skipped as f64 / n as f64
        } else {
            0.0
        },
        static_pruned,
        static_pruned_rate: if n > 0 {
            static_pruned as f64 / n as f64
        } else {
            0.0
        },
        oracle_checked: verdicts.iter().filter(|v| v.checked).count(),
        oracle_verified: verdicts.iter().filter(|v| v.verified).count(),
        oracle_mismatches: verdicts.iter().filter(|v| v.mismatch).count(),
        panics: outcome.panics,
        retries: outcome.retries,
        resumed,
        journal_bytes: journal.as_ref().map_or(0, RunJournal::bytes_written),
        journal_ms: journal.as_ref().map_or(0.0, RunJournal::wall_ms),
        journal_syncs: journal.as_ref().map_or(0, RunJournal::sync_count),
        lease_reissues: 0,
    };
    Ok(CampaignResult {
        spec: cfg.spec.clone(),
        kernel: cfg.kernel.clone(),
        tally,
        records,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_separates_seed_zero_from_seed_one() {
        // Regression: the old `seed * C ^ run_idx` mix mapped seed 0 to the
        // bare run index, so seeds 0 and 1 shared fault masks.
        for run in 0..64u64 {
            assert_ne!(mix_seed(0, run), mix_seed(1, run), "run {run}");
        }
    }

    #[test]
    fn mix_seed_separates_runs() {
        let mut seen: Vec<u64> = (0..256).map(|i| mix_seed(0, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 256, "per-run seeds must be distinct");
    }

    #[test]
    fn pick_weighted_rejects_empty_and_inverted_windows() {
        let mut gen = MaskGenerator::new(1);
        let empty = [KernelWindow {
            kernel: "k".into(),
            start: 10,
            end: 10,
        }];
        assert_eq!(
            pick_weighted(&mut gen, &empty).unwrap_err(),
            DrawError::EmptyWindows
        );
        // An inverted window (end < start) counts as empty instead of
        // underflowing.
        let inverted = [KernelWindow {
            kernel: "k".into(),
            start: 20,
            end: 10,
        }];
        assert_eq!(
            pick_weighted(&mut gen, &inverted).unwrap_err(),
            DrawError::EmptyWindows
        );
    }

    #[test]
    fn pick_weighted_skips_empty_windows() {
        let mut gen = MaskGenerator::new(2);
        let windows = [
            KernelWindow {
                kernel: "a".into(),
                start: 5,
                end: 5,
            },
            KernelWindow {
                kernel: "b".into(),
                start: 10,
                end: 20,
            },
        ];
        for _ in 0..50 {
            let w = pick_weighted(&mut gen, &windows).unwrap();
            assert_eq!(w.kernel, "b");
        }
    }

    #[test]
    fn pick_weighted_visits_every_kernel_window() {
        // Whole-application sampling must reach every kernel's window set,
        // including short windows dwarfed by a dominant kernel (the SRAD
        // shape: three static kernels, two invocations each).
        let windows = [
            KernelWindow {
                kernel: "extract".into(),
                start: 0,
                end: 120,
            },
            KernelWindow {
                kernel: "srad".into(),
                start: 120,
                end: 4000,
            },
            KernelWindow {
                kernel: "compress".into(),
                start: 4000,
                end: 4100,
            },
            KernelWindow {
                kernel: "extract".into(),
                start: 4100,
                end: 4220,
            },
            KernelWindow {
                kernel: "srad".into(),
                start: 4220,
                end: 8100,
            },
            KernelWindow {
                kernel: "compress".into(),
                start: 8100,
                end: 8200,
            },
        ];
        let mut gen = MaskGenerator::new(3);
        let mut hit = std::collections::HashSet::new();
        for _ in 0..400 {
            hit.insert(pick_weighted(&mut gen, &windows).unwrap().kernel.clone());
        }
        assert_eq!(hit.len(), 3, "sampled kernels: {hit:?}");
    }
}
