//! Fault-effect classification (§V.B) and the per-run `detail`
//! sub-classification.

use crate::profile::GoldenProfile;
use crate::workload::WorkloadError;
use gpufi_metrics::FaultEffect;
use gpufi_sim::Trap;
use serde::{Deserialize, Serialize};

/// Classifies one injection run against the golden profile:
///
/// * watchdog trap (cycle or wall-clock) → **Timeout**;
/// * any other trap or device error → **Crash**;
/// * wrong output → **SDC**;
/// * correct output, identical cycle count → **Masked**;
/// * correct output, different cycle count → **Performance**.
pub fn classify(
    result: &Result<Vec<u8>, WorkloadError>,
    cycles: u64,
    golden: &GoldenProfile,
) -> FaultEffect {
    match result {
        Err(WorkloadError::Trap(t)) if t.is_timeout() => FaultEffect::Timeout,
        Err(_) => FaultEffect::Crash,
        Ok(out) if *out != golden.output => FaultEffect::Sdc,
        Ok(_) if cycles == golden.total_cycles() => FaultEffect::Masked,
        Ok(_) => FaultEffect::Performance,
    }
}

/// Sub-classification of a run's outcome — the CSV/journal `detail`
/// column.  The paper reports five coarse classes; production campaigns
/// additionally need to know *which kind* of Crash or Timeout a run was,
/// most importantly to tell a simulator-internal panic (a fault corrupted
/// simulator invariants — [`RunDetail::SimPanic`]) apart from an
/// architecturally modelled trap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunDetail {
    /// No sub-classification (Masked / SDC / Performance runs).
    #[default]
    None,
    /// The simulator itself panicked during the run; the supervisor caught
    /// the unwind, retried once, and the panic reproduced (a deterministic
    /// poison run, recorded as **Crash**).
    SimPanic,
    /// Access to an unmapped device address.
    InvalidAddress,
    /// Misaligned device access.
    Misaligned,
    /// Program counter left the instruction stream.
    InvalidPc,
    /// Shared-memory access out of bounds.
    SmemOutOfBounds,
    /// Local-memory access out of bounds.
    LmemOutOfBounds,
    /// No warp could make progress.
    Deadlock,
    /// A host-side device-API error (allocation, bad pointer).
    DeviceError,
    /// The 2×-golden-cycles cycle watchdog fired.
    CycleWatchdog,
    /// The `--max-run-seconds` wall-clock watchdog fired.
    WallWatchdog,
    /// The run was never simulated: every planned fault targeted a
    /// register that no reachable instruction of the faulted kernel ever
    /// reads, so the static analyzer pre-classified it **Masked** at the
    /// golden cycle count (ACE-style un-ACE pruning; disable with
    /// `--no-static-prune`).
    StaticDead,
}

impl RunDetail {
    /// Every detail kind, in a fixed order.
    pub const ALL: [RunDetail; 12] = [
        RunDetail::None,
        RunDetail::SimPanic,
        RunDetail::InvalidAddress,
        RunDetail::Misaligned,
        RunDetail::InvalidPc,
        RunDetail::SmemOutOfBounds,
        RunDetail::LmemOutOfBounds,
        RunDetail::Deadlock,
        RunDetail::DeviceError,
        RunDetail::CycleWatchdog,
        RunDetail::WallWatchdog,
        RunDetail::StaticDead,
    ];

    /// The CSV/journal spelling ([`RunDetail::None`] is the empty string).
    pub fn as_str(self) -> &'static str {
        match self {
            RunDetail::None => "",
            RunDetail::SimPanic => "sim_panic",
            RunDetail::InvalidAddress => "invalid_address",
            RunDetail::Misaligned => "misaligned",
            RunDetail::InvalidPc => "invalid_pc",
            RunDetail::SmemOutOfBounds => "smem_oob",
            RunDetail::LmemOutOfBounds => "lmem_oob",
            RunDetail::Deadlock => "deadlock",
            RunDetail::DeviceError => "device_error",
            RunDetail::CycleWatchdog => "cycle_watchdog",
            RunDetail::WallWatchdog => "wall_watchdog",
            RunDetail::StaticDead => "static_dead",
        }
    }

    /// Inverse of [`RunDetail::as_str`].
    pub fn parse(s: &str) -> Option<RunDetail> {
        RunDetail::ALL.iter().copied().find(|d| d.as_str() == s)
    }
}

/// The detail sub-class of a run outcome (companion to [`classify`]).
pub fn detail_of(result: &Result<Vec<u8>, WorkloadError>) -> RunDetail {
    match result {
        Ok(_) => RunDetail::None,
        Err(WorkloadError::Trap(t)) => match t {
            Trap::InvalidAddress { .. } => RunDetail::InvalidAddress,
            Trap::Misaligned { .. } => RunDetail::Misaligned,
            Trap::InvalidPc { .. } => RunDetail::InvalidPc,
            Trap::SmemOutOfBounds { .. } => RunDetail::SmemOutOfBounds,
            Trap::LmemOutOfBounds { .. } => RunDetail::LmemOutOfBounds,
            Trap::Deadlock => RunDetail::Deadlock,
            Trap::Watchdog => RunDetail::CycleWatchdog,
            Trap::WallClock => RunDetail::WallWatchdog,
            // Intercepted by the campaign engine before classification.
            Trap::FaultsExpired => RunDetail::None,
        },
        Err(WorkloadError::Device(_)) | Err(WorkloadError::MissingKernel { .. }) => {
            RunDetail::DeviceError
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufi_sim::{AppStats, LaunchStats, Trap};
    use std::collections::BTreeMap;

    fn golden() -> GoldenProfile {
        GoldenProfile {
            output: vec![1, 2, 3],
            app: AppStats {
                launches: vec![LaunchStats {
                    kernel: "k".into(),
                    start_cycle: 0,
                    end_cycle: 100,
                    instructions: 10,
                    occupancy: 0.5,
                    mean_threads_per_sm: 32.0,
                    mean_ctas_per_sm: 1.0,
                    regs_per_thread: 8,
                    smem_per_cta: 0,
                    lmem_per_thread: 0,
                    ace_reg_cycles: 0,
                    thread_cycles: 0,
                    l1d_stats: gpufi_sim::CacheStats::default(),
                    l1t_stats: gpufi_sim::CacheStats::default(),
                    l2_stats: gpufi_sim::CacheStats::default(),
                }],
            },
            fault_spaces: BTreeMap::new(),
        }
    }

    #[test]
    fn masked_requires_same_output_and_cycles() {
        let g = golden();
        assert_eq!(classify(&Ok(vec![1, 2, 3]), 100, &g), FaultEffect::Masked);
    }

    #[test]
    fn performance_is_masked_with_different_cycles() {
        let g = golden();
        assert_eq!(
            classify(&Ok(vec![1, 2, 3]), 120, &g),
            FaultEffect::Performance
        );
        assert_eq!(
            classify(&Ok(vec![1, 2, 3]), 80, &g),
            FaultEffect::Performance
        );
    }

    #[test]
    fn wrong_output_is_sdc_even_with_same_cycles() {
        let g = golden();
        assert_eq!(classify(&Ok(vec![9, 2, 3]), 100, &g), FaultEffect::Sdc);
    }

    #[test]
    fn wall_clock_trap_is_timeout_with_wall_detail() {
        let g = golden();
        let r = Err(WorkloadError::Trap(Trap::WallClock));
        assert_eq!(classify(&r, 50, &g), FaultEffect::Timeout);
        assert_eq!(detail_of(&r), RunDetail::WallWatchdog);
        let r = Err(WorkloadError::Trap(Trap::Watchdog));
        assert_eq!(detail_of(&r), RunDetail::CycleWatchdog);
    }

    #[test]
    fn detail_round_trips_through_its_spelling() {
        for d in RunDetail::ALL {
            assert_eq!(RunDetail::parse(d.as_str()), Some(d), "{d:?}");
        }
        assert_eq!(RunDetail::parse("no_such_detail"), None);
    }

    #[test]
    fn detail_of_covers_traps_and_device_errors() {
        assert_eq!(
            detail_of(&Err(WorkloadError::Trap(Trap::InvalidAddress { addr: 4 }))),
            RunDetail::InvalidAddress
        );
        assert_eq!(
            detail_of(&Err(WorkloadError::Trap(Trap::Deadlock))),
            RunDetail::Deadlock
        );
        assert_eq!(
            detail_of(&Err(WorkloadError::Device(
                gpufi_sim::LaunchError::BadDevicePointer
            ))),
            RunDetail::DeviceError
        );
        assert_eq!(detail_of(&Ok(vec![])), RunDetail::None);
    }

    #[test]
    fn watchdog_is_timeout_other_traps_are_crashes() {
        let g = golden();
        assert_eq!(
            classify(&Err(WorkloadError::Trap(Trap::Watchdog)), 200, &g),
            FaultEffect::Timeout
        );
        assert_eq!(
            classify(
                &Err(WorkloadError::Trap(Trap::InvalidAddress { addr: 4 })),
                50,
                &g
            ),
            FaultEffect::Crash
        );
        assert_eq!(
            classify(
                &Err(WorkloadError::Device(
                    gpufi_sim::LaunchError::BadDevicePointer
                )),
                50,
                &g
            ),
            FaultEffect::Crash
        );
    }
}
