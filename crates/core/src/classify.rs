//! Fault-effect classification (§V.B).

use crate::profile::GoldenProfile;
use crate::workload::WorkloadError;
use gpufi_metrics::FaultEffect;
use gpufi_sim::Trap;

/// Classifies one injection run against the golden profile:
///
/// * watchdog trap → **Timeout** (run exceeded 2× fault-free cycles);
/// * any other trap or device error → **Crash**;
/// * wrong output → **SDC**;
/// * correct output, identical cycle count → **Masked**;
/// * correct output, different cycle count → **Performance**.
pub fn classify(
    result: &Result<Vec<u8>, WorkloadError>,
    cycles: u64,
    golden: &GoldenProfile,
) -> FaultEffect {
    match result {
        Err(WorkloadError::Trap(Trap::Watchdog)) => FaultEffect::Timeout,
        Err(_) => FaultEffect::Crash,
        Ok(out) if *out != golden.output => FaultEffect::Sdc,
        Ok(_) if cycles == golden.total_cycles() => FaultEffect::Masked,
        Ok(_) => FaultEffect::Performance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufi_sim::{AppStats, LaunchStats, Trap};
    use std::collections::BTreeMap;

    fn golden() -> GoldenProfile {
        GoldenProfile {
            output: vec![1, 2, 3],
            app: AppStats {
                launches: vec![LaunchStats {
                    kernel: "k".into(),
                    start_cycle: 0,
                    end_cycle: 100,
                    instructions: 10,
                    occupancy: 0.5,
                    mean_threads_per_sm: 32.0,
                    mean_ctas_per_sm: 1.0,
                    regs_per_thread: 8,
                    smem_per_cta: 0,
                    lmem_per_thread: 0,
                    ace_reg_cycles: 0,
                    thread_cycles: 0,
                    l1d_stats: gpufi_sim::CacheStats::default(),
                    l1t_stats: gpufi_sim::CacheStats::default(),
                    l2_stats: gpufi_sim::CacheStats::default(),
                }],
            },
            fault_spaces: BTreeMap::new(),
        }
    }

    #[test]
    fn masked_requires_same_output_and_cycles() {
        let g = golden();
        assert_eq!(classify(&Ok(vec![1, 2, 3]), 100, &g), FaultEffect::Masked);
    }

    #[test]
    fn performance_is_masked_with_different_cycles() {
        let g = golden();
        assert_eq!(
            classify(&Ok(vec![1, 2, 3]), 120, &g),
            FaultEffect::Performance
        );
        assert_eq!(
            classify(&Ok(vec![1, 2, 3]), 80, &g),
            FaultEffect::Performance
        );
    }

    #[test]
    fn wrong_output_is_sdc_even_with_same_cycles() {
        let g = golden();
        assert_eq!(classify(&Ok(vec![9, 2, 3]), 100, &g), FaultEffect::Sdc);
    }

    #[test]
    fn watchdog_is_timeout_other_traps_are_crashes() {
        let g = golden();
        assert_eq!(
            classify(&Err(WorkloadError::Trap(Trap::Watchdog)), 200, &g),
            FaultEffect::Timeout
        );
        assert_eq!(
            classify(
                &Err(WorkloadError::Trap(Trap::InvalidAddress { addr: 4 })),
                50,
                &g
            ),
            FaultEffect::Crash
        );
        assert_eq!(
            classify(
                &Err(WorkloadError::Device(
                    gpufi_sim::LaunchError::BadDevicePointer
                )),
                50,
                &g
            ),
            FaultEffect::Crash
        );
    }
}
