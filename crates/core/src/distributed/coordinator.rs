//! The campaign coordinator behind `gpufi serve`.
//!
//! One [`Coordinator`] owns a TCP listener and a run-index [lease
//! table](super::lease).  Workers connect, announce their thread count,
//! verify the campaign fingerprint and then pull range leases; every
//! completed run streams back as one journal-format line, which the
//! coordinator merges by run index into the canonical result — and, when
//! a merge journal is configured, appends to the same crash-safe journal
//! format `--resume` reads.  A worker that disconnects or stalls past the
//! lease deadline has its unfinished indices reissued to the survivors;
//! duplicate results (the reissue race) are verified identical, turning
//! the engine's per-run determinism into an end-to-end check.

use super::lease::LeaseTable;
use super::net::{LineReader, ReadOutcome};
use super::protocol::{
    encode_fin, encode_job, encode_lease, encode_shutdown, parse_msg, JobSpec, Msg,
};
use super::DistError;
use crate::campaign::{CampaignResult, CampaignStats, RunRecord};
use crate::classify::RunDetail;
use crate::supervisor::{campaign_fingerprint, RunJournal};
use gpufi_metrics::Tally;
use gpufi_sim::GpuConfig;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How a `gpufi serve` run is dispatched: lease sizing, worker-death
/// deadline and the coordinator's merge journal.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Runs per lease; `0` auto-sizes to `(runs / 16).clamp(1, 64)` so a
    /// handful of workers pipeline without starving.
    pub chunk: usize,
    /// A lease with no result for this long is reclaimed and its
    /// unfinished runs reissued.  Must exceed the slowest single run.
    pub lease_timeout_ms: u64,
    /// Path of the coordinator's merge journal (same format as the
    /// single-process campaign journal); `None` disables it.
    pub journal: Option<String>,
    /// Group-commit threshold for the merge journal.
    pub journal_commit: usize,
    /// Resume a half-finished distributed sweep from the merge journal.
    pub resume: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            chunk: 0,
            lease_timeout_ms: 30_000,
            journal: None,
            journal_commit: crate::campaign::DEFAULT_JOURNAL_COMMIT,
            resume: false,
        }
    }
}

/// The mutable per-job state every connection handler shares.
#[derive(Debug, Default)]
struct CoordState {
    /// Job generation: bumped once per [`Coordinator::run`], so handlers
    /// (which survive across jobs) know which campaign a message belongs
    /// to.
    gen: u64,
    /// The encoded `job` message of the current generation, `None`
    /// between jobs.
    job_line: Option<String>,
    fingerprint: u64,
    chunk: usize,
    leases: LeaseTable,
    /// Merged records by run index (pre-filled from a resumed journal).
    results: Vec<Option<RunRecord>>,
    /// Unfilled slots left.
    remaining: usize,
    /// Records accepted but not yet appended to the merge journal.
    to_journal: Vec<(usize, RunRecord)>,
    /// First unrecoverable failure; fails the whole job.
    fatal: Option<String>,
    shutdown: bool,
    ready_workers: usize,
    ready_threads: usize,
    peak_workers: usize,
    peak_threads: usize,
}

#[derive(Default)]
struct Shared {
    state: Mutex<CoordState>,
    cv: Condvar,
    owner_seq: AtomicU64,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, CoordState> {
        // Poison-tolerant: a panicking handler must not take the
        // coordinator (and its Drop-time shutdown) down with it.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait<'g>(
        &self,
        guard: std::sync::MutexGuard<'g, CoordState>,
        ms: u64,
    ) -> std::sync::MutexGuard<'g, CoordState> {
        self.cv
            .wait_timeout(guard, Duration::from_millis(ms))
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .0
    }
}

/// The serve-side endpoint: accepts worker connections and runs campaigns
/// over them.  One coordinator can [`run`](Coordinator::run) any number
/// of jobs in sequence (the `--matrix` sweep) over the same connected
/// workers.
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the listener (e.g. `127.0.0.1:0` for an OS-assigned port)
    /// and starts accepting workers in the background.
    ///
    /// # Errors
    ///
    /// [`DistError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str) -> Result<Coordinator, DistError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DistError::Io(format!("cannot bind `{addr}`: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| DistError::Io(e.to_string()))?;
        let shared = Arc::new(Shared::default());
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.lock().shutdown {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let shared = Arc::clone(&shared);
                        thread::spawn(move || handle_conn(&shared, stream));
                    }
                }
            })
        };
        Ok(Coordinator {
            shared,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0), for workers to connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Dispatches one campaign across the connected workers and blocks
    /// until every run index has a record (leases reissued around worker
    /// deaths and stalls as needed), returning the merged result — by
    /// construction byte-identical, record for record, to the
    /// single-process `run_campaign` of the same fingerprint.
    ///
    /// Blocks until workers connect if none are connected yet.
    ///
    /// # Errors
    ///
    /// [`DistError::Journal`] when the merge journal cannot be written or
    /// does not belong to this campaign; [`DistError::Fatal`] on a
    /// protocol violation, a fingerprint mismatch, an unknown card
    /// preset, or a determinism violation between duplicate results.
    pub fn run(&self, job: &JobSpec, opts: &ServeOptions) -> Result<CampaignResult, DistError> {
        let card = GpuConfig::preset(&job.card)
            .ok_or_else(|| DistError::Fatal(format!("unknown card preset `{}`", job.card)))?;
        let cfg = job.to_config();
        let fingerprint = campaign_fingerprint(&job.bench, &card.name, &cfg);

        // Merge journal / resume: pre-fill merged slots so only the
        // missing indices are leased out.
        let mut prefill: Vec<Option<RunRecord>> = vec![None; job.runs];
        let mut resumed = 0usize;
        let journal = match &opts.journal {
            None => None,
            Some(path) => {
                let j = if opts.resume && std::path::Path::new(path).exists() {
                    let (j, loaded) = RunJournal::resume(path, fingerprint, job.runs)
                        .map_err(DistError::Journal)?;
                    for (i, rec) in loaded.into_iter().enumerate() {
                        if let Some(r) = rec {
                            prefill[i] = Some(r);
                            resumed += 1;
                        }
                    }
                    j
                } else {
                    RunJournal::create(path, fingerprint, job.runs).map_err(DistError::Journal)?
                };
                Some(j.with_group_commit(opts.journal_commit))
            }
        };
        let missing: Vec<usize> = (0..job.runs).filter(|&i| prefill[i].is_none()).collect();
        let remaining = missing.len();
        let chunk = if opts.chunk > 0 {
            opts.chunk
        } else {
            (job.runs / 16).clamp(1, 64)
        };

        let start = Instant::now();
        let gen = {
            let mut st = self.shared.lock();
            st.gen += 1;
            st.job_line = Some(encode_job(job));
            st.fingerprint = fingerprint;
            st.chunk = chunk;
            st.leases = LeaseTable::new(&missing);
            st.results = prefill;
            st.remaining = remaining;
            st.to_journal.clear();
            st.fatal = None;
            st.peak_workers = 0;
            st.peak_threads = 0;
            self.shared.cv.notify_all();
            st.gen
        };

        // Merge loop: drain accepted records into the journal, reclaim
        // stalled leases, stop when every slot is filled (or something
        // fatal happened).  Journal writes happen outside the state lock
        // so an fsync never stalls result application.
        let timeout = Duration::from_millis(opts.lease_timeout_ms.max(1));
        let mut journal_failure: Option<String> = None;
        loop {
            let (queue, finished, fatal) = {
                let mut st = self.shared.lock();
                let CoordState {
                    leases, results, ..
                } = &mut *st;
                leases.expire(Instant::now(), timeout, &mut |i| results[i].is_some());
                let queue = std::mem::take(&mut st.to_journal);
                let finished = st.remaining == 0;
                let fatal = st.fatal.clone();
                if queue.is_empty() && !finished && fatal.is_none() {
                    drop(self.shared.wait(st, 100));
                }
                (queue, finished, fatal)
            };
            if let Some(j) = &journal {
                for (i, rec) in &queue {
                    if let Err(e) = j.append(*i, rec) {
                        journal_failure.get_or_insert(e);
                    }
                }
            }
            if journal_failure.is_some() {
                break;
            }
            if let Some(f) = fatal {
                self.end_job(gen);
                return Err(DistError::Fatal(f));
            }
            // `remaining == 0` means no further result can be accepted,
            // so the queue taken in the same critical section was the
            // final one.
            if finished && queue.is_empty() {
                break;
            }
        }
        if let Some(j) = &journal {
            if let Err(e) = j.flush() {
                journal_failure.get_or_insert(e);
            }
        }

        let (merged, reissues, peak_workers, peak_threads) = {
            let mut st = self.shared.lock();
            st.job_line = None;
            self.shared.cv.notify_all();
            (
                std::mem::take(&mut st.results),
                st.leases.reissues(),
                st.peak_workers,
                st.peak_threads,
            )
        };
        if let Some(e) = journal_failure {
            return Err(DistError::Journal(e));
        }

        // Quiesce: every handler registered for this generation must
        // deliver its `fin` (and unregister) before the next `run` may
        // bump the generation — a new job line reaching a worker still
        // awaiting `fin` is a protocol violation that kills the worker.
        // Bounded by the lease timeout: a connected-but-wedged worker
        // that never acknowledged its lease is already considered dead.
        {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            while st.ready_workers > 0 && Instant::now() < deadline {
                st = self.shared.wait(st, 200);
            }
        }

        let mut records = Vec::with_capacity(job.runs);
        for (i, slot) in merged.into_iter().enumerate() {
            match slot {
                Some(r) => records.push(r),
                None => {
                    return Err(DistError::Fatal(format!(
                        "internal: run {i} has no record after completion"
                    )))
                }
            }
        }
        let tally: Tally = records.iter().map(|r| r.effect).collect();
        let wall = start.elapsed().as_secs_f64();
        let n = records.len();
        let applied = records.iter().filter(|r| r.applied).count();
        let early_exits = records.iter().filter(|r| r.early_exit).count();
        let restores = records.iter().filter(|r| r.ckpt_skipped_cycles > 0).count();
        let static_pruned = records
            .iter()
            .filter(|r| r.detail == RunDetail::StaticDead)
            .count();
        let skipped: u64 = records.iter().map(|r| r.ckpt_skipped_cycles).sum();
        let rate = |k: usize| if n > 0 { k as f64 / n as f64 } else { 0.0 };
        // Checkpoint stores are worker-local (each worker records its
        // own), so those two gauges are not observable here; `panics`
        // counts the reproduced poison runs visible in the records.
        let stats = CampaignStats {
            wall_ms: wall * 1e3,
            runs_per_sec: if wall > 0.0 { n as f64 / wall } else { 0.0 },
            threads: peak_threads.max(1),
            workers: peak_workers.max(1),
            applied,
            applied_rate: rate(applied),
            early_exits,
            early_exit_rate: rate(early_exits),
            checkpoints: 0,
            checkpoint_bytes: 0,
            restores,
            mean_skipped_cycles: if n > 0 {
                skipped as f64 / n as f64
            } else {
                0.0
            },
            static_pruned,
            static_pruned_rate: rate(static_pruned),
            oracle_checked: 0,
            oracle_verified: 0,
            oracle_mismatches: 0,
            panics: records
                .iter()
                .filter(|r| r.detail == RunDetail::SimPanic)
                .count(),
            retries: 0,
            resumed,
            journal_bytes: journal.as_ref().map_or(0, RunJournal::bytes_written),
            journal_ms: journal.as_ref().map_or(0.0, RunJournal::wall_ms),
            journal_syncs: journal.as_ref().map_or(0, RunJournal::sync_count),
            lease_reissues: reissues,
        };
        Ok(CampaignResult {
            spec: cfg.spec.clone(),
            kernel: cfg.kernel.clone(),
            tally,
            records,
            stats,
        })
    }

    /// Clears the current job (error path) so handlers stop serving it.
    fn end_job(&self, gen: u64) {
        let mut st = self.shared.lock();
        if st.gen == gen {
            st.job_line = None;
        }
        self.shared.cv.notify_all();
    }

    /// Tells every connected worker to disconnect and stops accepting.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.lock();
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts one merged record; duplicates (the reissue race) must match
/// the already-merged record bit for bit, or the job fails with a
/// determinism violation.
fn apply_result(st: &mut CoordState, run: usize, rec: &RunRecord) {
    if run >= st.results.len() {
        st.fatal
            .get_or_insert_with(|| format!("worker reported out-of-range run {run}"));
        return;
    }
    match &st.results[run] {
        Some(prev) if prev != rec => {
            st.fatal.get_or_insert_with(|| {
                format!("determinism violation: run {run} produced two different records")
            });
        }
        Some(_) => {} // benign duplicate after a reissue
        None => {
            st.results[run] = Some(*rec);
            st.remaining -= 1;
            st.to_journal.push((run, *rec));
        }
    }
}

/// What the lease-acquisition wait decided for a handler.
enum Next {
    Lease(u64, usize, usize),
    Fin,
    /// The generation moved on under this handler; `fin` the worker back
    /// to its between-jobs state and catch up.
    NewGen,
    /// Shutdown or fatal: release and let the `'jobs` loop deliver the
    /// verdict.
    Requeue,
}

/// One worker connection, served for its whole lifetime (across jobs).
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // Reads tick every 200 ms so the handler notices shutdown / job
    // changes even while idle on the socket.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(stream);
    let owner = shared.owner_seq.fetch_add(1, Ordering::Relaxed) + 1;

    // Handshake: the worker leads with its thread count.
    let threads = {
        let mut abort = || shared.lock().shutdown;
        match reader.read_line(&mut abort) {
            Ok(ReadOutcome::Line(l)) => match parse_msg(&l) {
                Ok(Msg::Hello { threads }) => threads.max(1),
                _ => return,
            },
            _ => return,
        }
    };

    // Reclaims the handler's leases and drops its registration — the
    // common cleanup for every "this worker is gone / job over" path.
    let release = |registered: &mut bool, fail_leases: bool| {
        let mut st = shared.lock();
        if fail_leases {
            let CoordState {
                leases, results, ..
            } = &mut *st;
            // `results` is empty once `run` has taken the merged slots
            // (the job is over but this handler raced its cleanup) — a
            // bounds-safe probe keeps the late requeue harmless.
            leases.fail_owner(owner, &mut |i| results.get(i).is_some_and(Option::is_some));
        }
        if *registered {
            st.ready_workers -= 1;
            st.ready_threads -= threads;
            *registered = false;
        }
        shared.cv.notify_all();
    };

    let mut seen_gen = 0u64;
    'jobs: loop {
        // Wait for a job this handler has not served yet.
        let (gen, job_line, fingerprint) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    let _ = writer.write_all(encode_shutdown().as_bytes());
                    return;
                }
                if st.gen > seen_gen {
                    if let Some(line) = st.job_line.clone() {
                        break (st.gen, line, st.fingerprint);
                    }
                }
                st = shared.wait(st, 200);
            }
        };
        seen_gen = gen;
        if writer.write_all(job_line.as_bytes()).is_err() {
            return;
        }

        // Fingerprint handshake: the worker re-derives the campaign
        // identity from the job description; a mismatch means the two
        // sides would merge records of different campaigns.
        let mut abort = || {
            let st = shared.lock();
            st.shutdown || st.gen != gen || st.fatal.is_some()
        };
        match reader.read_line(&mut abort) {
            Ok(ReadOutcome::Line(l)) => match parse_msg(&l) {
                Ok(Msg::Ready { fingerprint: fp }) if fp == fingerprint => {}
                Ok(Msg::Ready { fingerprint: fp }) => {
                    shared.lock().fatal.get_or_insert_with(|| {
                        format!(
                            "worker fingerprint {fp:016x} does not match \
                             coordinator fingerprint {fingerprint:016x}"
                        )
                    });
                    shared.cv.notify_all();
                    continue 'jobs;
                }
                Ok(Msg::Error { reason }) => {
                    shared
                        .lock()
                        .fatal
                        .get_or_insert_with(|| format!("worker rejected job: {reason}"));
                    shared.cv.notify_all();
                    continue 'jobs;
                }
                _ => return,
            },
            Ok(ReadOutcome::Aborted) => continue 'jobs,
            Ok(ReadOutcome::Eof) | Err(_) => return,
        }

        let mut registered = true;
        {
            let mut st = shared.lock();
            if st.gen != gen {
                // The job ended (or was replaced) while this worker was
                // getting ready; `fin` hands it back to the between-jobs
                // state — silence would leave it awaiting a lease when
                // the next job line arrives.
                drop(st);
                let _ = writer.write_all(encode_fin().as_bytes());
                continue 'jobs;
            }
            st.ready_workers += 1;
            st.ready_threads += threads;
            st.peak_workers = st.peak_workers.max(st.ready_workers);
            st.peak_threads = st.peak_threads.max(st.ready_threads);
        }

        loop {
            let next = {
                let mut st = shared.lock();
                loop {
                    // A finished job acknowledges with `fin` even when a
                    // shutdown raced it — the worker deserves credit for a
                    // completed job before the goodbye.
                    if st.gen == gen && st.fatal.is_none() && st.remaining == 0 {
                        break Next::Fin;
                    }
                    if st.shutdown || st.fatal.is_some() {
                        break Next::Requeue;
                    }
                    if st.gen != gen {
                        break Next::NewGen;
                    }
                    let chunk = st.chunk;
                    if let Some((id, s, e)) = st.leases.grant(owner, chunk, Instant::now()) {
                        break Next::Lease(id, s, e);
                    }
                    st = shared.wait(st, 200);
                }
            };
            let (id, s, e) = match next {
                Next::Requeue => {
                    release(&mut registered, true);
                    continue 'jobs;
                }
                Next::NewGen => {
                    release(&mut registered, true);
                    let _ = writer.write_all(encode_fin().as_bytes());
                    continue 'jobs;
                }
                Next::Fin => {
                    release(&mut registered, false);
                    let _ = writer.write_all(encode_fin().as_bytes());
                    continue 'jobs;
                }
                Next::Lease(id, s, e) => (id, s, e),
            };
            if writer.write_all(encode_lease(s, e).as_bytes()).is_err() {
                release(&mut registered, true);
                return;
            }
            // Stream results until the lease's `done`.
            loop {
                let mut abort = || {
                    let st = shared.lock();
                    st.shutdown || st.gen != gen || st.fatal.is_some()
                };
                match reader.read_line(&mut abort) {
                    Ok(ReadOutcome::Line(l)) => match parse_msg(&l) {
                        Ok(Msg::Result { run, rec }) => {
                            let mut st = shared.lock();
                            if st.gen == gen {
                                apply_result(&mut st, run, &rec);
                                st.leases.progress(id, Instant::now());
                            }
                            shared.cv.notify_all();
                        }
                        Ok(Msg::Done { start, end }) => {
                            let mut st = shared.lock();
                            if (start, end) != (s, e) {
                                st.fatal.get_or_insert_with(|| {
                                    format!(
                                        "lease acknowledgement [{start},{end}) does not match \
                                         the granted range [{s},{e})"
                                    )
                                });
                            } else if st.gen == gen {
                                st.leases.complete(id);
                            }
                            shared.cv.notify_all();
                            break;
                        }
                        Ok(Msg::Error { reason }) => {
                            shared
                                .lock()
                                .fatal
                                .get_or_insert_with(|| format!("worker failed: {reason}"));
                            release(&mut registered, true);
                            continue 'jobs;
                        }
                        other => {
                            shared.lock().fatal.get_or_insert_with(|| {
                                format!("unexpected message during lease: {other:?}")
                            });
                            release(&mut registered, true);
                            continue 'jobs;
                        }
                    },
                    Ok(ReadOutcome::Aborted) => {
                        release(&mut registered, true);
                        continue 'jobs;
                    }
                    Ok(ReadOutcome::Eof) | Err(_) => {
                        release(&mut registered, true);
                        return;
                    }
                }
            }
        }
    }
}
