//! Crash-tolerant range leases over the campaign's run indices.
//!
//! The coordinator owns one [`LeaseTable`] per job.  Pending work is a
//! queue of half-open index ranges; granting a lease splits a chunk off
//! the front and tracks it with a deadline that refreshes on every
//! per-run result.  A lease whose owner disconnects or stalls past the
//! deadline is **reclaimed**: its not-yet-completed indices go back to
//! the front of the queue for the surviving workers.  Reissue is safe
//! because results are keyed by run index and each run's RNG derives from
//! `(campaign seed, run index)` — a run executed twice produces the same
//! record, which the coordinator verifies on duplicate arrival.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// One outstanding lease: `[start, end)` granted to `owner`.
#[derive(Debug)]
struct Lease {
    id: u64,
    owner: u64,
    start: usize,
    end: usize,
    /// Refreshed on grant and on every result of the range; the staleness
    /// clock for expiry.
    last_progress: Instant,
}

/// The coordinator's ledger of pending ranges and outstanding leases.
#[derive(Debug, Default)]
pub(crate) struct LeaseTable {
    /// Half-open ranges not yet leased, granted front-first.
    pending: VecDeque<(usize, usize)>,
    outstanding: Vec<Lease>,
    next_id: u64,
    reissues: usize,
}

/// Compresses a sorted index list into maximal half-open ranges.
fn compress(indices: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for &i in indices {
        match ranges.last_mut() {
            Some((_, end)) if *end == i => *end = i + 1,
            _ => ranges.push((i, i + 1)),
        }
    }
    ranges
}

impl LeaseTable {
    /// A table over the (sorted) run indices still missing a result.
    pub(crate) fn new(missing: &[usize]) -> LeaseTable {
        LeaseTable {
            pending: compress(missing).into(),
            ..LeaseTable::default()
        }
    }

    /// Grants up to `chunk` runs to `owner`, splitting the front pending
    /// range.  Returns `(lease id, start, end)`, or `None` when no work
    /// is pending (outstanding leases may still be in flight).
    pub(crate) fn grant(
        &mut self,
        owner: u64,
        chunk: usize,
        now: Instant,
    ) -> Option<(u64, usize, usize)> {
        let chunk = chunk.max(1);
        let (start, end) = self.pending.pop_front()?;
        let granted_end = end.min(start + chunk);
        if granted_end < end {
            self.pending.push_front((granted_end, end));
        }
        self.next_id += 1;
        let id = self.next_id;
        self.outstanding.push(Lease {
            id,
            owner,
            start,
            end: granted_end,
            last_progress: now,
        });
        Some((id, start, granted_end))
    }

    /// Refreshes lease `id`'s deadline (a result for its range arrived).
    /// Unknown ids — results for an already-reclaimed lease — are ignored.
    pub(crate) fn progress(&mut self, id: u64, now: Instant) {
        if let Some(l) = self.outstanding.iter_mut().find(|l| l.id == id) {
            l.last_progress = now;
        }
    }

    /// Retires lease `id` after its `done` acknowledgement.  Returns
    /// whether the lease was still outstanding (false after a reclaim).
    pub(crate) fn complete(&mut self, id: u64) -> bool {
        let before = self.outstanding.len();
        self.outstanding.retain(|l| l.id != id);
        self.outstanding.len() < before
    }

    /// Reclaims every lease stalled past `timeout` (no result since
    /// `last_progress`): its indices still missing a result — per `done` —
    /// return to the *front* of the pending queue.  Returns the number of
    /// leases reclaimed.
    pub(crate) fn expire(
        &mut self,
        now: Instant,
        timeout: Duration,
        done: &mut dyn FnMut(usize) -> bool,
    ) -> usize {
        let stale: Vec<usize> = self
            .outstanding
            .iter()
            .enumerate()
            .filter(|(_, l)| now.duration_since(l.last_progress) >= timeout)
            .map(|(k, _)| k)
            .collect();
        for &k in stale.iter().rev() {
            let lease = self.outstanding.swap_remove(k);
            self.requeue(&lease, done);
        }
        stale.len()
    }

    /// Reclaims every lease of `owner` (its connection died).  Returns
    /// the number of leases reclaimed.
    pub(crate) fn fail_owner(&mut self, owner: u64, done: &mut dyn FnMut(usize) -> bool) -> usize {
        let mut reclaimed = 0;
        while let Some(k) = self.outstanding.iter().position(|l| l.owner == owner) {
            let lease = self.outstanding.swap_remove(k);
            self.requeue(&lease, done);
            reclaimed += 1;
        }
        reclaimed
    }

    fn requeue(&mut self, lease: &Lease, done: &mut dyn FnMut(usize) -> bool) {
        let missing: Vec<usize> = (lease.start..lease.end).filter(|&i| !done(i)).collect();
        // Front of the queue: reclaimed work is the oldest, finish it
        // first so a sweep's tail latency stays bounded.
        for range in compress(&missing).into_iter().rev() {
            self.pending.push_front(range);
        }
        self.reissues += 1;
    }

    /// Whether any range is waiting to be granted.
    #[cfg(test)]
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Total leases reclaimed (stalls + dead owners) over the job.
    pub(crate) fn reissues(&self) -> usize {
        self.reissues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_split_ranges_and_drain() {
        let now = Instant::now();
        let mut t = LeaseTable::new(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let (a, s, e) = t.grant(1, 3, now).unwrap();
        assert_eq!((s, e), (0, 3));
        let (b, s, e) = t.grant(2, 3, now).unwrap();
        assert_eq!((s, e), (3, 6));
        let (_c, s, e) = t.grant(1, 3, now).unwrap();
        assert_eq!((s, e), (6, 8));
        assert!(t.grant(2, 3, now).is_none());
        assert!(t.complete(a));
        assert!(t.complete(b));
        assert!(!t.complete(a), "double-complete must be a no-op");
    }

    #[test]
    fn new_compresses_sparse_missing_indices() {
        let now = Instant::now();
        // Holes at 2 and 5 (already journaled): ranges [0,2) [3,5) [6,8).
        let mut t = LeaseTable::new(&[0, 1, 3, 4, 6, 7]);
        let mut got = Vec::new();
        while let Some((_, s, e)) = t.grant(1, 100, now) {
            got.push((s, e));
        }
        assert_eq!(got, vec![(0, 2), (3, 5), (6, 8)]);
    }

    #[test]
    fn expiry_reclaims_only_unfinished_indices() {
        let now = Instant::now();
        let mut t = LeaseTable::new(&[0, 1, 2, 3]);
        let (_id, s, e) = t.grant(1, 4, now).unwrap();
        assert_eq!((s, e), (0, 4));
        // Runs 0 and 2 reported before the stall.
        let finished = [0usize, 2];
        let reclaimed = t.expire(
            now + Duration::from_secs(60),
            Duration::from_secs(30),
            &mut |i| finished.contains(&i),
        );
        assert_eq!(reclaimed, 1);
        assert_eq!(t.reissues(), 1);
        let (_, s, e) = t.grant(2, 10, now).unwrap();
        assert_eq!((s, e), (1, 2));
        let (_, s, e) = t.grant(2, 10, now).unwrap();
        assert_eq!((s, e), (3, 4));
    }

    #[test]
    fn progress_defers_expiry() {
        let t0 = Instant::now();
        let mut t = LeaseTable::new(&[0, 1]);
        let (id, _, _) = t.grant(1, 2, t0).unwrap();
        t.progress(id, t0 + Duration::from_secs(25));
        // 26 s after grant but only 1 s after the last result: alive.
        let n = t.expire(
            t0 + Duration::from_secs(26),
            Duration::from_secs(10),
            &mut |_| false,
        );
        assert_eq!(n, 0);
        let n = t.expire(
            t0 + Duration::from_secs(40),
            Duration::from_secs(10),
            &mut |_| false,
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn fail_owner_requeues_at_the_front() {
        let now = Instant::now();
        let mut t = LeaseTable::new(&[0, 1, 2, 3, 4, 5]);
        let (_a, ..) = t.grant(7, 3, now).unwrap(); // [0,3) to owner 7
        let (_b, ..) = t.grant(8, 3, now).unwrap(); // [3,6) to owner 8
        assert!(!t.has_pending());
        assert_eq!(t.fail_owner(7, &mut |_| false), 1);
        // Reclaimed range comes back before any fresh work.
        let (_, s, e) = t.grant(8, 3, now).unwrap();
        assert_eq!((s, e), (0, 3));
    }

    #[test]
    fn reclaimed_results_are_ignored_by_progress() {
        let now = Instant::now();
        let mut t = LeaseTable::new(&[0, 1]);
        let (id, ..) = t.grant(1, 2, now).unwrap();
        t.expire(
            now + Duration::from_secs(60),
            Duration::from_secs(1),
            &mut |_| false,
        );
        // The dead worker's late progress / done must not corrupt state.
        t.progress(id, now + Duration::from_secs(61));
        assert!(!t.complete(id));
        assert!(t.has_pending());
    }
}
