//! # Distributed campaigns: `gpufi serve` / `gpufi worker`
//!
//! Shards a campaign's run indices across worker processes (local or
//! across hosts) with crash-tolerant **range leases**, merging the
//! streamed results back into the one canonical, byte-identical
//! CSV/tally.  The design leans entirely on the engine's determinism:
//!
//! * every run's RNG derives from `(campaign seed, run index)` — a run
//!   computes the same record no matter which process executes it, so
//!   run indices are free to move between workers;
//! * the campaign **fingerprint** (the journal identity) doubles as the
//!   wire handshake — a worker re-derives it from the job description
//!   and the coordinator refuses a mismatch, so two builds or configs
//!   that would merge different campaigns never exchange a lease;
//! * the journal's line format doubles as the wire format — a worker's
//!   `result` message *is* a journal line, and the coordinator's merge
//!   journal makes `serve --resume` pick up a half-finished distributed
//!   sweep exactly like a single-process `--resume`.
//!
//! Failure story (the supervisor's crash-safety lifted one level): every
//! lease has a deadline refreshed by per-run results.  A worker that
//! disconnects or stalls has its unfinished indices reissued to the
//! survivors; duplicated results from the reissue race are verified
//! bit-identical (a free end-to-end determinism check).  See the
//! "Distributed campaigns" section of `DESIGN.md` for the full protocol
//! and failure matrix.

mod coordinator;
mod lease;
mod net;
mod protocol;
mod worker;

pub use coordinator::{Coordinator, ServeOptions};
pub use protocol::JobSpec;
pub use worker::{run_worker, WorkerOptions, WorkerReport};

use std::error::Error;
use std::fmt;

/// Why a coordinator or worker gave up.
#[derive(Debug)]
pub enum DistError {
    /// Socket-level failure (bind, connect, read, write).
    Io(String),
    /// Protocol violation, fingerprint mismatch, unknown bench/card, or
    /// a determinism violation between duplicate results.
    Fatal(String),
    /// The coordinator's merge journal could not be written or belongs
    /// to a different campaign.
    Journal(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "i/o error: {e}"),
            DistError::Fatal(e) => write!(f, "{e}"),
            DistError::Journal(e) => write!(f, "merge journal error: {e}"),
        }
    }
}

impl Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> DistError {
        DistError::Io(e.to_string())
    }
}
