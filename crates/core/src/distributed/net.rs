//! Minimal line framing over a `TcpStream`.
//!
//! `BufReader::read_line` cannot be safely retried across a read timeout
//! (a partial line stays in the caller's buffer), so the coordinator uses
//! this reader instead: bytes accumulate internally, a line is only
//! surfaced once its `\n` arrived, and timeout ticks invoke an abort
//! probe so a blocked handler still notices shutdown or job changes.

use std::io::{ErrorKind, Read};
use std::net::TcpStream;

/// What one `read_line` call produced.
pub(crate) enum ReadOutcome {
    /// A complete line (terminator included).
    Line(String),
    /// The peer closed the connection.
    Eof,
    /// The abort probe fired before a full line arrived.
    Aborted,
}

/// A `TcpStream` line reader that survives read timeouts.
pub(crate) struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    pub(crate) fn new(stream: TcpStream) -> LineReader {
        LineReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Blocks until a full line, EOF, or `abort()` returning true at a
    /// read-timeout tick (streams without a read timeout never tick, so
    /// their `abort` is only consulted once per call).
    pub(crate) fn read_line(
        &mut self,
        abort: &mut dyn FnMut() -> bool,
    ) -> std::io::Result<ReadOutcome> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Ok(ReadOutcome::Line(
                    String::from_utf8_lossy(&line).into_owned(),
                ));
            }
            if abort() {
                return Ok(ReadOutcome::Aborted);
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }
}
