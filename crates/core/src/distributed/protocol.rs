//! The line-delimited JSON wire protocol between `gpufi serve` and
//! `gpufi worker`.
//!
//! Every message is one JSON object on one line, built and parsed with the
//! same plain field scans the crash-safe journal uses (`json_field` in the
//! supervisor) — no JSON dependency, and the `result` message embeds
//! exactly the journal's record fields, so a result line *is* a journal
//! line with a `type` tag in front.
//!
//! Values never contain `,`, `{`, `}` or `"`; free-text reasons are
//! sanitized on encode.

use crate::campaign::{CampaignConfig, RunRecord};
use crate::supervisor::{json_field, parse_record_line, record_line};
use gpufi_faults::{CampaignSpec, MultiBitMode, Structure};
use gpufi_sim::Scope;

/// One campaign, as the coordinator describes it to a worker: the full
/// record-determining parameter set (everything the campaign fingerprint
/// hashes), with the card as a **preset key** (`rtx2060`, `gv100`,
/// `titan`) — workers resolve the preset locally, so a job description
/// stays a one-line message rather than a config file transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark name (resolved by the worker's workload registry).
    pub bench: String,
    /// Card preset key.
    pub card: String,
    /// The fault shape.
    pub spec: CampaignSpec,
    /// Number of injection runs.
    pub runs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Target static kernel, or `None` for the whole application.
    pub kernel: Option<String>,
    /// Fault-lifetime early exit enabled.
    pub early_exit: bool,
    /// Checkpoint forking enabled.
    pub checkpoints: bool,
    /// Checkpoint stride in cycles (`0` = auto).
    pub checkpoint_interval: u64,
    /// Checkpoint store memory budget in bytes.
    pub checkpoint_budget: usize,
    /// Injection cycle restriction, `None` = whole golden run.
    pub cycle_window: Option<(u64, u64)>,
    /// Static dead-register pruning enabled.
    pub static_prune: bool,
    /// Per-run wall-clock watchdog in milliseconds (`0` = off).
    pub max_run_ms: u64,
}

impl JobSpec {
    /// Describes `cfg` (a campaign on `bench` and card preset `card`) as a
    /// distributable job.  Journal/resume/threads settings deliberately do
    /// not travel: they are local to each side, exactly as they are
    /// excluded from the campaign fingerprint.
    pub fn from_config(bench: &str, card: &str, cfg: &CampaignConfig) -> JobSpec {
        JobSpec {
            bench: bench.to_string(),
            card: card.to_string(),
            spec: cfg.spec.clone(),
            runs: cfg.runs,
            seed: cfg.seed,
            kernel: cfg.kernel.clone(),
            early_exit: cfg.early_exit,
            checkpoints: cfg.checkpoints,
            checkpoint_interval: cfg.checkpoint_interval,
            checkpoint_budget: cfg.checkpoint_budget,
            cycle_window: cfg.cycle_window,
            static_prune: cfg.static_prune,
            max_run_ms: cfg.max_run_ms,
        }
    }

    /// Reconstructs the campaign config this job describes.  Both sides
    /// derive the fingerprint from this — identical inputs, identical
    /// hash — which is what the worker's `ready` handshake verifies.
    pub fn to_config(&self) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(self.spec.clone(), self.runs, self.seed);
        cfg.kernel = self.kernel.clone();
        cfg.early_exit = self.early_exit;
        cfg.checkpoints = self.checkpoints;
        cfg.checkpoint_interval = self.checkpoint_interval;
        cfg.checkpoint_budget = self.checkpoint_budget;
        cfg.cycle_window = self.cycle_window;
        cfg.static_prune = self.static_prune;
        cfg.max_run_ms = self.max_run_ms;
        cfg
    }
}

/// Canonical short code of a structure (the CLI's `--structure` codes).
pub(crate) fn structure_code(s: Structure) -> &'static str {
    match s {
        Structure::RegisterFile => "rf",
        Structure::LocalMemory => "local",
        Structure::SharedMemory => "shared",
        Structure::L1Data => "l1d",
        Structure::L1Tex => "l1t",
        Structure::L1Const => "l1c",
        Structure::L2 => "l2",
    }
}

fn structure_from(code: &str) -> Option<Structure> {
    Some(match code {
        "rf" => Structure::RegisterFile,
        "local" => Structure::LocalMemory,
        "shared" => Structure::SharedMemory,
        "l1d" => Structure::L1Data,
        "l1t" => Structure::L1Tex,
        "l1c" => Structure::L1Const,
        "l2" => Structure::L2,
        _ => return None,
    })
}

/// Strips every character that would break the one-line field-scan format
/// out of a free-text value (panic payloads, io error strings).
pub(crate) fn sanitize(reason: &str) -> String {
    reason
        .chars()
        .filter(|c| !matches!(c, ',' | '{' | '}' | '"' | '\n' | '\r'))
        .take(200)
        .collect()
}

/// A parsed protocol message (either direction).
#[derive(Debug)]
pub(crate) enum Msg {
    /// Worker → coordinator, once per connection: announce thread count.
    Hello {
        /// Worker threads the sender will run leases on.
        threads: usize,
    },
    /// Coordinator → worker: the next campaign to execute.
    Job(Box<JobSpec>),
    /// Worker → coordinator: job accepted, fingerprint computed locally.
    Ready {
        /// The worker's locally computed campaign fingerprint.
        fingerprint: u64,
    },
    /// Coordinator → worker: execute runs `[start, end)`.
    Lease {
        /// First run index of the lease.
        start: usize,
        /// One past the last run index.
        end: usize,
    },
    /// Worker → coordinator: one completed run of the current lease.
    Result {
        /// Run index.
        run: usize,
        /// The run's record (journal-identical fields).
        rec: RunRecord,
    },
    /// Worker → coordinator: every run of the lease has been reported.
    Done {
        /// Leased range start (echo).
        start: usize,
        /// Leased range end (echo).
        end: usize,
    },
    /// Coordinator → worker: the current job is complete.
    Fin,
    /// Coordinator → worker: no more jobs; disconnect.
    Shutdown,
    /// Either direction: unrecoverable failure, with a sanitized reason.
    Error {
        /// What went wrong.
        reason: String,
    },
}

pub(crate) fn encode_hello(threads: usize) -> String {
    format!("{{\"type\":\"hello\",\"threads\":{threads}}}\n")
}

pub(crate) fn encode_job(job: &JobSpec) -> String {
    let mut line = format!(
        "{{\"type\":\"job\",\"bench\":\"{}\",\"card\":\"{}\",\"structure\":\"{}\",\
         \"scope\":\"{}\",\"bits\":{},\"mode\":\"{}\",\"replicate\":{},\"runs\":{},\"seed\":{}",
        job.bench,
        job.card,
        structure_code(job.spec.structure),
        match job.spec.scope {
            Scope::Thread => "thread",
            Scope::Warp => "warp",
        },
        job.spec.bits_per_fault,
        match job.spec.multi_bit {
            MultiBitMode::SameEntry => "same",
            MultiBitMode::Spread => "spread",
        },
        job.spec.replicate,
        job.runs,
        job.seed,
    );
    if let Some(k) = &job.kernel {
        line.push_str(&format!(",\"kernel\":\"{k}\""));
    }
    if let Some((lo, hi)) = job.cycle_window {
        line.push_str(&format!(",\"window\":\"{lo}:{hi}\""));
    }
    line.push_str(&format!(
        ",\"early_exit\":{},\"checkpoints\":{},\"interval\":{},\"budget\":{},\
         \"static_prune\":{},\"max_run_ms\":{}}}\n",
        job.early_exit,
        job.checkpoints,
        job.checkpoint_interval,
        job.checkpoint_budget,
        job.static_prune,
        job.max_run_ms,
    ));
    line
}

pub(crate) fn encode_ready(fingerprint: u64) -> String {
    format!("{{\"type\":\"ready\",\"fingerprint\":\"{fingerprint:016x}\"}}\n")
}

pub(crate) fn encode_lease(start: usize, end: usize) -> String {
    format!("{{\"type\":\"lease\",\"start\":{start},\"end\":{end}}}\n")
}

/// A `result` message is the journal's record line with a `type` tag
/// spliced in front — the coordinator can parse it with the same scanner.
pub(crate) fn encode_result(run: usize, rec: &RunRecord) -> String {
    format!("{{\"type\":\"result\",{}", &record_line(run, rec)[1..])
}

pub(crate) fn encode_done(start: usize, end: usize) -> String {
    format!("{{\"type\":\"done\",\"start\":{start},\"end\":{end}}}\n")
}

pub(crate) fn encode_fin() -> String {
    "{\"type\":\"fin\"}\n".to_string()
}

pub(crate) fn encode_shutdown() -> String {
    "{\"type\":\"shutdown\"}\n".to_string()
}

pub(crate) fn encode_error(reason: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"reason\":\"{}\"}}\n",
        sanitize(reason)
    )
}

fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn parse_job(line: &str) -> Option<JobSpec> {
    let structure = structure_from(json_field(line, "structure")?)?;
    let mut spec = CampaignSpec::new(structure);
    spec.scope = match json_field(line, "scope")? {
        "thread" => Scope::Thread,
        "warp" => Scope::Warp,
        _ => return None,
    };
    spec.bits_per_fault = json_field(line, "bits")?.parse().ok()?;
    spec.multi_bit = match json_field(line, "mode")? {
        "same" => MultiBitMode::SameEntry,
        "spread" => MultiBitMode::Spread,
        _ => return None,
    };
    spec.replicate = json_field(line, "replicate")?.parse().ok()?;
    let cycle_window = match json_field(line, "window") {
        None => None,
        Some(w) => {
            let (lo, hi) = w.split_once(':')?;
            Some((lo.parse().ok()?, hi.parse().ok()?))
        }
    };
    Some(JobSpec {
        bench: json_field(line, "bench")?.to_string(),
        card: json_field(line, "card")?.to_string(),
        spec,
        runs: json_field(line, "runs")?.parse().ok()?,
        seed: json_field(line, "seed")?.parse().ok()?,
        kernel: json_field(line, "kernel").map(str::to_string),
        early_exit: parse_bool(json_field(line, "early_exit")?)?,
        checkpoints: parse_bool(json_field(line, "checkpoints")?)?,
        checkpoint_interval: json_field(line, "interval")?.parse().ok()?,
        checkpoint_budget: json_field(line, "budget")?.parse().ok()?,
        cycle_window,
        static_prune: parse_bool(json_field(line, "static_prune")?)?,
        max_run_ms: json_field(line, "max_run_ms")?.parse().ok()?,
    })
}

/// Parses one wire line into a [`Msg`].
///
/// # Errors
///
/// Returns the offending line (truncated) when it is not a well-formed
/// protocol message — a framing bug, never expected in operation.
pub(crate) fn parse_msg(line: &str) -> Result<Msg, String> {
    let line = line.trim_end_matches(['\n', '\r']);
    let bad = || format!("malformed protocol line: `{}`", sanitize(line));
    let ty = json_field(line, "type").ok_or_else(bad)?;
    match ty {
        "hello" => Ok(Msg::Hello {
            threads: json_field(line, "threads")
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad)?,
        }),
        "job" => Ok(Msg::Job(Box::new(parse_job(line).ok_or_else(bad)?))),
        "ready" => Ok(Msg::Ready {
            fingerprint: json_field(line, "fingerprint")
                .and_then(|v| u64::from_str_radix(v, 16).ok())
                .ok_or_else(bad)?,
        }),
        "lease" => Ok(Msg::Lease {
            start: json_field(line, "start")
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad)?,
            end: json_field(line, "end")
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad)?,
        }),
        "result" => {
            let (run, rec) = parse_record_line(line).ok_or_else(bad)?;
            Ok(Msg::Result { run, rec })
        }
        "done" => Ok(Msg::Done {
            start: json_field(line, "start")
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad)?,
            end: json_field(line, "end")
                .and_then(|v| v.parse().ok())
                .ok_or_else(bad)?,
        }),
        "fin" => Ok(Msg::Fin),
        "shutdown" => Ok(Msg::Shutdown),
        "error" => Ok(Msg::Error {
            reason: json_field(line, "reason").unwrap_or("unknown").to_string(),
        }),
        other => Err(format!(
            "unknown protocol message type `{}`",
            sanitize(other)
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::RunDetail;
    use gpufi_metrics::FaultEffect;

    fn job() -> JobSpec {
        let mut cfg = CampaignConfig::new(CampaignSpec::new(Structure::L1Data), 240, 7);
        cfg.kernel = Some("fan1".into());
        cfg.cycle_window = Some((100, 900));
        cfg.spec.bits_per_fault = 3;
        cfg.spec.multi_bit = MultiBitMode::Spread;
        cfg.spec.scope = Scope::Warp;
        cfg.early_exit = false;
        cfg.max_run_ms = 5000;
        JobSpec::from_config("GE", "rtx2060", &cfg)
    }

    #[test]
    fn job_round_trips_through_the_wire() {
        let j = job();
        let line = encode_job(&j);
        match parse_msg(&line).unwrap() {
            Msg::Job(parsed) => assert_eq!(*parsed, j),
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn job_without_kernel_or_window_round_trips() {
        let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 16, 1);
        let j = JobSpec::from_config("SP", "titan", &cfg);
        match parse_msg(&encode_job(&j)).unwrap() {
            Msg::Job(parsed) => {
                assert_eq!(*parsed, j);
                assert_eq!(parsed.kernel, None);
                assert_eq!(parsed.cycle_window, None);
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn to_config_round_trips_the_fingerprint_inputs() {
        let j = job();
        let cfg = j.to_config();
        assert_eq!(JobSpec::from_config("GE", "rtx2060", &cfg), j);
    }

    #[test]
    fn result_message_round_trips_a_record() {
        let rec = RunRecord {
            effect: FaultEffect::Sdc,
            cycles: 12345,
            applied: true,
            early_exit: false,
            ckpt_skipped_cycles: 678,
            detail: RunDetail::None,
        };
        let line = encode_result(42, &rec);
        match parse_msg(&line).unwrap() {
            Msg::Result { run, rec: parsed } => {
                assert_eq!(run, 42);
                assert_eq!(parsed, rec);
            }
            other => panic!("expected result, got {other:?}"),
        }
    }

    #[test]
    fn control_messages_round_trip() {
        assert!(matches!(
            parse_msg(&encode_hello(4)).unwrap(),
            Msg::Hello { threads: 4 }
        ));
        assert!(matches!(
            parse_msg(&encode_ready(0xdead_beef)).unwrap(),
            Msg::Ready {
                fingerprint: 0xdead_beef
            }
        ));
        assert!(matches!(
            parse_msg(&encode_lease(10, 25)).unwrap(),
            Msg::Lease { start: 10, end: 25 }
        ));
        assert!(matches!(
            parse_msg(&encode_done(10, 25)).unwrap(),
            Msg::Done { start: 10, end: 25 }
        ));
        assert!(matches!(parse_msg(&encode_fin()).unwrap(), Msg::Fin));
        assert!(matches!(
            parse_msg(&encode_shutdown()).unwrap(),
            Msg::Shutdown
        ));
    }

    #[test]
    fn error_reasons_are_sanitized() {
        let line = encode_error("bad, {\"thing\"}\nhappened");
        match parse_msg(&line).unwrap() {
            Msg::Error { reason } => assert_eq!(reason, "bad thinghappened"),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        assert!(parse_msg("garbage").is_err());
        assert!(parse_msg("{\"type\":\"nope\"}").is_err());
        assert!(parse_msg("{\"type\":\"lease\",\"start\":5}").is_err());
    }
}
