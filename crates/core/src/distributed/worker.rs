//! The lease-executing side of a distributed campaign (`gpufi worker`).
//!
//! A worker connects to a coordinator, announces its thread count, and
//! then serves jobs: for each it resolves the benchmark and card preset
//! locally, profiles the golden run, re-derives the campaign fingerprint
//! (the handshake that proves both sides describe the same campaign),
//! records its own checkpoint store once, and executes leases with the
//! full single-process engine — early exit, checkpoint forking, static
//! pruning and panic supervision all compose unchanged.  Every completed
//! run streams back immediately as one journal-format line, so a worker
//! killed mid-lease has still delivered everything it finished.

use super::net::{LineReader, ReadOutcome};
use super::protocol::{
    encode_done, encode_error, encode_hello, encode_ready, encode_result, parse_msg, JobSpec, Msg,
};
use super::DistError;
use crate::campaign::{CampaignEngine, RunPlan, RunRecord};
use crate::profile::{profile, GoldenProfile};
use crate::supervisor::campaign_fingerprint;
use crate::workload::Workload;
use gpufi_sim::GpuConfig;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps a benchmark name to a workload.  The core crate cannot depend on
/// the workload registry (it is layered the other way around), so the
/// caller supplies the lookup — the CLI passes `gpufi_workloads::by_name`.
pub type WorkloadResolver<'a> = &'a (dyn Fn(&str) -> Option<Box<dyn Workload>> + Sync);

/// How a worker process runs.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Engine threads per lease (`0` = 1).
    pub threads: usize,
    /// Test-only chaos switch: silently drop the connection after this
    /// many streamed results, emulating a worker killed mid-lease.
    pub fail_after_results: Option<usize>,
}

/// What a worker did over one connection, for logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Jobs served to completion.
    pub jobs: usize,
    /// Leases executed.
    pub leases: usize,
    /// Runs executed (including statically pruned ones).
    pub runs: usize,
}

/// Connects to a coordinator at `addr` and serves jobs until it says
/// shutdown (or the connection drops).
///
/// # Errors
///
/// [`DistError::Io`] when the connection fails or drops mid-lease;
/// [`DistError::Fatal`] when a job cannot be executed (unknown benchmark
/// or card, profiling failure, draw error) — the same reason is reported
/// to the coordinator first, so the whole sweep fails loudly rather than
/// hanging.
pub fn run_worker(
    addr: &str,
    opts: &WorkerOptions,
    resolve: WorkloadResolver<'_>,
) -> Result<WorkerReport, DistError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| DistError::Io(format!("cannot connect to coordinator at `{addr}`: {e}")))?;
    let _ = stream.set_nodelay(true);
    let writer = Mutex::new(
        stream
            .try_clone()
            .map_err(|e| DistError::Io(e.to_string()))?,
    );
    let mut reader = LineReader::new(stream);
    let threads = opts.threads.max(1);
    send(&writer, &encode_hello(threads))?;

    let mut report = WorkerReport::default();
    // Golden profiles are campaign-independent (bench + card only), so a
    // matrix sweep of S structures over the same benchmark profiles once,
    // not S times, per worker.
    let mut profiles: HashMap<String, GoldenProfile> = HashMap::new();
    let mut never = || false;
    // Between jobs the connection is idle; the coordinator tearing it
    // down (exit, reset) is equivalent to an explicit shutdown.
    while let Ok(outcome) = reader.read_line(&mut never) {
        match outcome {
            ReadOutcome::Eof => break,
            ReadOutcome::Aborted => unreachable!("worker reads have no abort probe"),
            ReadOutcome::Line(l) => match parse_msg(&l).map_err(DistError::Fatal)? {
                Msg::Shutdown => break,
                Msg::Job(job) => {
                    if !serve_job(
                        &job,
                        opts,
                        resolve,
                        &writer,
                        &mut reader,
                        &mut report,
                        &mut profiles,
                    )? {
                        break;
                    }
                    report.jobs += 1;
                }
                other => {
                    return Err(DistError::Fatal(format!(
                        "unexpected message awaiting a job: {other:?}"
                    )))
                }
            },
        }
    }
    Ok(report)
}

fn send(writer: &Mutex<TcpStream>, line: &str) -> Result<(), DistError> {
    writer
        .lock()
        .expect("worker writer lock poisoned")
        .write_all(line.as_bytes())
        .map_err(|e| DistError::Io(format!("coordinator connection lost: {e}")))
}

/// Reports a job-fatal reason to the coordinator (so the sweep fails with
/// the cause, not a silent hang) and returns it as this side's error.
fn reject(writer: &Mutex<TcpStream>, reason: String) -> DistError {
    let _ = send(writer, &encode_error(&reason));
    DistError::Fatal(reason)
}

/// Serves one job: handshake, then leases until `fin`.  Returns `false`
/// when the coordinator said shutdown mid-job.
fn serve_job(
    job: &JobSpec,
    opts: &WorkerOptions,
    resolve: WorkloadResolver<'_>,
    writer: &Mutex<TcpStream>,
    reader: &mut LineReader,
    report: &mut WorkerReport,
    profiles: &mut HashMap<String, GoldenProfile>,
) -> Result<bool, DistError> {
    let workload = resolve(&job.bench)
        .ok_or_else(|| reject(writer, format!("unknown benchmark `{}`", job.bench)))?;
    let card = GpuConfig::preset(&job.card)
        .ok_or_else(|| reject(writer, format!("unknown card preset `{}`", job.card)))?;
    let cfg = job.to_config();
    let profile_key = format!("{}|{}", job.bench, job.card);
    if !profiles.contains_key(&profile_key) {
        let golden = profile(workload.as_ref(), &card)
            .map_err(|e| reject(writer, format!("profiling failed: {e}")))?;
        profiles.insert(profile_key.clone(), golden);
    }
    let golden = &profiles[&profile_key];
    let fingerprint = campaign_fingerprint(workload.name(), &card.name, &cfg);
    let mut engine = CampaignEngine::prepare(workload.as_ref(), &card, &cfg, golden)
        .map_err(|e| reject(writer, format!("cannot prepare campaign: {e}")))?;
    send(writer, &encode_ready(fingerprint))?;

    // Chaos switch bookkeeping (see `WorkerOptions::fail_after_results`).
    let sent = AtomicUsize::new(0);
    let chaos_tripped = || {
        opts.fail_after_results
            .is_some_and(|limit| sent.load(Ordering::Relaxed) >= limit)
    };
    // The engine's worker threads stream results concurrently; the first
    // write failure is latched and surfaced after the lease.
    let stream_err: Mutex<Option<String>> = Mutex::new(None);
    let emit = |run: usize, rec: &RunRecord| {
        if let Some(limit) = opts.fail_after_results {
            if sent.fetch_add(1, Ordering::Relaxed) >= limit {
                // Emulate SIGKILL: drop the connection without a word.
                let _ = writer
                    .lock()
                    .expect("worker writer lock poisoned")
                    .shutdown(Shutdown::Both);
                return;
            }
        }
        if let Err(e) = writer
            .lock()
            .expect("worker writer lock poisoned")
            .write_all(encode_result(run, rec).as_bytes())
        {
            stream_err
                .lock()
                .expect("stream error lock poisoned")
                .get_or_insert(e.to_string());
        }
    };

    let mut never = || false;
    loop {
        match reader.read_line(&mut never)? {
            ReadOutcome::Eof => {
                if chaos_tripped() {
                    return Err(DistError::Fatal(
                        "chaos: connection dropped on purpose".into(),
                    ));
                }
                return Err(DistError::Io(
                    "coordinator closed the connection mid-job".into(),
                ));
            }
            ReadOutcome::Aborted => unreachable!("worker reads have no abort probe"),
            ReadOutcome::Line(l) => match parse_msg(&l).map_err(DistError::Fatal)? {
                Msg::Fin => return Ok(true),
                Msg::Shutdown => return Ok(false),
                Msg::Lease { start, end } => {
                    // The checkpoint store records on the first lease and
                    // is reused for the rest of the job.
                    engine.build_store();
                    let indices: Vec<usize> = (start..end).collect();
                    let plans = engine
                        .draw_plans(&indices)
                        .map_err(|e| reject(writer, format!("plan draw failed: {e}")))?;
                    let mut work: Vec<(usize, RunPlan)> = Vec::with_capacity(plans.len());
                    for (&i, plan) in indices.iter().zip(plans) {
                        if engine.is_static_dead(&plan) {
                            emit(i, &engine.pruned_record());
                        } else {
                            work.push((i, plan));
                        }
                    }
                    engine.execute(&work, threads_of(opts, work.len()), None, None, Some(&emit));
                    if chaos_tripped() {
                        return Err(DistError::Fatal(
                            "chaos: connection dropped on purpose".into(),
                        ));
                    }
                    if let Some(e) = stream_err
                        .lock()
                        .expect("stream error lock poisoned")
                        .take()
                    {
                        return Err(DistError::Io(format!("coordinator connection lost: {e}")));
                    }
                    send(writer, &encode_done(start, end))?;
                    report.leases += 1;
                    report.runs += end.saturating_sub(start);
                }
                other => {
                    return Err(DistError::Fatal(format!(
                        "unexpected message during job: {other:?}"
                    )))
                }
            },
        }
    }
}

fn threads_of(opts: &WorkerOptions, work: usize) -> usize {
    opts.threads.max(1).min(work.max(1))
}
