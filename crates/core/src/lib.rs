//! # gpufi-core — the injection-campaign engine
//!
//! This crate reproduces gpuFI-4's campaign controller and result parser:
//!
//! 1. **Profile** a workload fault-free ([`profile`]) to capture the golden
//!    output, the per-kernel cycle windows, occupancy/residency statistics
//!    and the injectable fault spaces.
//! 2. **Run a campaign** ([`run_campaign`]): for each of N runs, draw a
//!    fault from the mask generator, arm a fresh simulated GPU, execute
//!    the full application and classify the outcome as Masked / SDC /
//!    Crash / Timeout / Performance (§V.B).
//! 3. **Analyze** ([`analyze`]): sweep every kernel × structure, apply the
//!    `df_reg`/`df_smem` derating, and fold the results into the kernel
//!    AVF (eq. 2), the application wAVF (eq. 3) and the chip FIT (§VI.F).
//!
//! Workloads implement the [`Workload`] trait — the analogue of the
//! paper's "slightly modified CUDA application that prints PASSED/FAILED":
//! instead of printing, a workload returns its result buffer, and the
//! classifier compares it against the golden run.
//!
//! # Example
//!
//! ```
//! use gpufi_core::{profile, run_campaign, CampaignConfig, Workload, WorkloadError};
//! use gpufi_faults::{CampaignSpec, Structure};
//! use gpufi_isa::Module;
//! use gpufi_sim::{Gpu, GpuConfig, LaunchDims};
//!
//! struct Quick(Module);
//!
//! impl Workload for Quick {
//!     fn name(&self) -> &'static str { "quick" }
//!     fn module(&self) -> &Module { &self.0 }
//!     fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
//!         let buf = gpu.malloc(32 * 4)?;
//!         gpu.launch(self.0.kernel("k").unwrap(), LaunchDims::new(1, 32), &[buf])?;
//!         let mut out = vec![0u8; 32 * 4];
//!         gpu.memcpy_d2h(buf, &mut out)?;
//!         Ok(out)
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = Module::assemble(
//!     ".kernel k\n.params 1\n S2R R1, SR_TID.X\n SHL R2, R1, 2\n IADD R2, R0, R2\n \
//!      STG [R2], R1\n EXIT\n",
//! )?;
//! let workload = Quick(module);
//! let card = GpuConfig::rtx2060();
//! let golden = profile(&workload, &card)?;
//! let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 8, 42);
//! let result = run_campaign(&workload, &card, &cfg, &golden)?;
//! assert_eq!(result.tally.total(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod campaign;
mod classify;
pub mod distributed;
mod profile;
mod report;
mod supervisor;
mod workload;

pub use analysis::{
    analyze, analyze_with_golden, AnalysisConfig, AppAnalysis, EffectRates, StructureOutcome,
};
pub use campaign::{
    run_campaign, run_campaign_with_hook, CampaignConfig, CampaignError, CampaignResult,
    CampaignStats, FaultHook, RunRecord, DEFAULT_CHECKPOINT_BUDGET, DEFAULT_JOURNAL_COMMIT,
};
pub use classify::{classify, detail_of, RunDetail};
pub use distributed::{
    run_worker, Coordinator, DistError, JobSpec, ServeOptions, WorkerOptions, WorkerReport,
};
pub use profile::{profile, GoldenProfile};
pub use report::{analysis_csv, campaign_csv, campaign_summary_csv, CAMPAIGN_CSV_HEADER};
pub use supervisor::{campaign_fingerprint, RunJournal};
pub use workload::{Workload, WorkloadError};
