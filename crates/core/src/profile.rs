//! Fault-free (golden) profiling of a workload.

use crate::workload::{Workload, WorkloadError};
use gpufi_sim::{AppStats, FaultSpace, Gpu, GpuConfig, KernelWindow};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything the campaign needs from the fault-free reference execution:
/// the golden output, cycle windows, residency statistics and fault-space
/// sizes (the paper's *profiling and campaign preparation* step, §III.C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenProfile {
    /// The fault-free result bytes.
    pub output: Vec<u8>,
    /// Per-launch statistics (cycle windows, occupancy, residency).
    pub app: AppStats,
    /// Injectable fault-space sizes per static kernel.
    pub fault_spaces: BTreeMap<String, FaultSpace>,
}

impl GoldenProfile {
    /// Total fault-free cycles of the application.
    pub fn total_cycles(&self) -> u64 {
        self.app.total_cycles()
    }

    /// The windows to sample for a campaign: all invocations of `kernel`,
    /// or every launch when `kernel` is `None`.
    pub fn windows(&self, kernel: Option<&str>) -> Vec<KernelWindow> {
        match kernel {
            Some(k) => self.app.windows_of(k),
            None => self
                .app
                .launches
                .iter()
                .map(|l| KernelWindow {
                    kernel: l.kernel.clone(),
                    start: l.start_cycle,
                    end: l.end_cycle,
                })
                .collect(),
        }
    }

    /// Cycle-weighted mean of live threads per SM over all invocations of
    /// `kernel` (input to `df_reg`).
    pub fn mean_threads_of(&self, kernel: &str) -> f64 {
        self.weighted_mean(kernel, |l| l.mean_threads_per_sm)
    }

    /// Cycle-weighted mean of resident CTAs per SM over all invocations of
    /// `kernel` (input to `df_smem`).
    pub fn mean_ctas_of(&self, kernel: &str) -> f64 {
        self.weighted_mean(kernel, |l| l.mean_ctas_per_sm)
    }

    fn weighted_mean(&self, kernel: &str, f: impl Fn(&gpufi_sim::LaunchStats) -> f64) -> f64 {
        let total = self.app.cycles_of(kernel);
        if total == 0 {
            return 0.0;
        }
        self.app
            .launches
            .iter()
            .filter(|l| l.kernel == kernel)
            .map(|l| f(l) * l.cycles() as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Runs `workload` fault-free on a fresh GPU and captures its golden
/// profile.
///
/// # Errors
///
/// Propagates any [`WorkloadError`] — a fault-free failure indicates a
/// broken workload, not an injection effect.
pub fn profile(workload: &dyn Workload, card: &GpuConfig) -> Result<GoldenProfile, WorkloadError> {
    let mut gpu = Gpu::new(card.clone());
    let output = workload.run(&mut gpu)?;
    let app = gpu.stats().clone();
    let mut fault_spaces = BTreeMap::new();
    for name in app.static_kernels() {
        let kernel =
            workload
                .module()
                .kernel(&name)
                .ok_or_else(|| WorkloadError::MissingKernel {
                    kernel: name.clone(),
                })?;
        fault_spaces.insert(name, gpu.fault_space(kernel));
    }
    Ok(GoldenProfile {
        output,
        app,
        fault_spaces,
    })
}
