//! Plain-text exporters for campaign and analysis results (the paper
//! front-end's "collects the results" step, §III.A).
//!
//! CSV is written by hand — the schema is flat and stable, and it keeps
//! the dependency set to the workspace's core crates.

use crate::analysis::AppAnalysis;
use crate::campaign::CampaignResult;
use gpufi_metrics::FaultEffect;
use std::fmt::Write as _;

/// Escapes one CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The per-run campaign CSV header.  This schema is **append-only**:
/// automation diffs validation campaigns against optimized ones with
/// `cut -d, -f1-4`, so the existing columns must never be renamed,
/// reordered or removed — new columns go at the end.
pub const CAMPAIGN_CSV_HEADER: &str =
    "run,effect,cycles,applied,early_exit,ckpt_skipped_cycles,detail";

/// Renders a campaign as CSV: one header, one row per run.
///
/// Columns: [`CAMPAIGN_CSV_HEADER`].  The `detail` column carries the
/// [`RunDetail`](crate::RunDetail) sub-classification (`sim_panic`,
/// the trap kind behind a Crash, or which watchdog fired behind a
/// Timeout) and is empty for Masked / SDC / Performance runs.
pub fn campaign_csv(result: &CampaignResult) -> String {
    let mut out = String::from(CAMPAIGN_CSV_HEADER);
    out.push('\n');
    for (i, r) in result.records.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            i,
            r.effect.name(),
            r.cycles,
            r.applied,
            r.early_exit,
            r.ckpt_skipped_cycles,
            r.detail.as_str()
        );
    }
    out
}

/// Renders a campaign summary as CSV: one row per fault-effect class.
///
/// Columns: `structure,kernel,effect,count,fraction`.
pub fn campaign_summary_csv(result: &CampaignResult) -> String {
    let mut out = String::from("structure,kernel,effect,count,fraction\n");
    let kernel = result.kernel.as_deref().unwrap_or("*");
    for e in FaultEffect::ALL {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6}",
            field(result.spec.structure.name()),
            field(kernel),
            e.name(),
            result.tally.count(e),
            result.tally.fraction(e)
        );
    }
    out
}

/// Renders a whole-application analysis as CSV: one row per structure,
/// plus a `TOTAL` row carrying the wAVF / occupancy / FIT.
///
/// Columns:
/// `benchmark,card,structure,size_bits,sdc,crash,timeout,performance,avf_weight`.
pub fn analysis_csv(a: &AppAnalysis) -> String {
    let mut out = String::from(
        "benchmark,card,structure,size_bits,sdc,crash,timeout,performance,avf_weight\n",
    );
    for s in &a.structures {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
            field(&a.benchmark),
            field(&a.card),
            field(s.structure.name()),
            s.size_bits,
            s.rates.sdc,
            s.rates.crash,
            s.rates.timeout,
            s.rates.performance,
            s.rates.failure_rate()
        );
    }
    let _ = writeln!(
        out,
        "{},{},TOTAL,,{:.6},,,{:.6},{:.6}",
        field(&a.benchmark),
        field(&a.card),
        a.wavf,
        a.occupancy,
        a.fit
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{EffectRates, StructureOutcome};
    use crate::campaign::RunRecord;
    use gpufi_faults::{CampaignSpec, Structure};
    use gpufi_metrics::Tally;

    fn sample_campaign() -> CampaignResult {
        let mut tally = Tally::default();
        tally.record(FaultEffect::Masked);
        tally.record(FaultEffect::Sdc);
        tally.record(FaultEffect::Masked);
        CampaignResult {
            spec: CampaignSpec::new(Structure::L2),
            kernel: Some("vec_add".into()),
            tally,
            records: vec![
                RunRecord {
                    effect: FaultEffect::Masked,
                    cycles: 100,
                    applied: false,
                    early_exit: true,
                    ckpt_skipped_cycles: 40,
                    detail: crate::RunDetail::None,
                },
                RunRecord {
                    effect: FaultEffect::Sdc,
                    cycles: 100,
                    applied: true,
                    early_exit: false,
                    ckpt_skipped_cycles: 0,
                    detail: crate::RunDetail::None,
                },
                RunRecord {
                    effect: FaultEffect::Masked,
                    cycles: 100,
                    applied: true,
                    early_exit: false,
                    ckpt_skipped_cycles: 0,
                    detail: crate::RunDetail::StaticDead,
                },
            ],
            stats: crate::campaign::CampaignStats::default(),
        }
    }

    /// Pins the per-run CSV schema verbatim.  If this test fails you are
    /// changing a published, append-only schema: CI and downstream
    /// tooling slice columns positionally (`cut -d, -f1-4`), so existing
    /// columns must keep their name and position — append new ones
    /// instead, and update this literal.
    #[test]
    fn campaign_csv_header_is_pinned() {
        assert_eq!(
            CAMPAIGN_CSV_HEADER,
            "run,effect,cycles,applied,early_exit,ckpt_skipped_cycles,detail"
        );
        let csv = campaign_csv(&sample_campaign());
        let header = csv.lines().next().unwrap();
        assert_eq!(header, CAMPAIGN_CSV_HEADER);
        // The first four columns carry the effect comparison every
        // validation mode relies on.
        let first4: Vec<&str> = header.split(',').take(4).collect();
        assert_eq!(first4, ["run", "effect", "cycles", "applied"]);
        // Every data row has exactly as many fields as the header.
        let width = header.split(',').count();
        for row in csv.lines().skip(1) {
            assert_eq!(row.split(',').count(), width, "row `{row}`");
        }
    }

    #[test]
    fn per_run_csv_has_one_row_per_run() {
        let csv = campaign_csv(&sample_campaign());
        assert_eq!(csv.lines().count(), 4);
        assert!(csv
            .lines()
            .nth(2)
            .unwrap()
            .starts_with("1,SDC,100,true,false,0"));
        // The trailing `detail` field is empty for a Masked run.
        assert!(csv.lines().nth(1).unwrap().ends_with(",40,"));
        // A statically-pruned run is a Masked run carrying `static_dead`
        // in the append-only detail column.
        assert_eq!(
            csv.lines().nth(3).unwrap(),
            "2,Masked,100,true,false,0,static_dead"
        );
    }

    #[test]
    fn summary_csv_covers_all_classes() {
        let csv = campaign_summary_csv(&sample_campaign());
        assert_eq!(csv.lines().count(), 1 + FaultEffect::ALL.len());
        assert!(csv.contains("L2 cache,vec_add,SDC,1,0.333333"));
    }

    #[test]
    fn analysis_csv_shapes() {
        let a = AppAnalysis {
            benchmark: "VA".into(),
            card: "RTX 2060".into(),
            runs_per_campaign: 10,
            bits_per_fault: 1,
            structures: vec![StructureOutcome {
                structure: Structure::RegisterFile,
                tally: Tally::default(),
                rates: EffectRates {
                    sdc: 0.1,
                    crash: 0.0,
                    timeout: 0.0,
                    performance: 0.0,
                },
                size_bits: 100,
            }],
            wavf: 0.05,
            occupancy: 0.4,
            fit: 1.5,
            golden_cycles: 1234,
        };
        let csv = analysis_csv(&a);
        assert!(csv.contains("VA,RTX 2060,register file,100,0.1"));
        assert!(csv.lines().last().unwrap().contains("TOTAL"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("q\"q"), "\"q\"\"q\"");
    }
}
