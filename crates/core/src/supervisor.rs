//! Fault-tolerant campaign supervision: per-run panic capture, the
//! crash-safe run journal, and the campaign fingerprint.
//!
//! gpuFI-4-style campaigns *expect* injections to make the machine
//! misbehave — Crash and Timeout are first-class outcomes — so the engine
//! must survive two failure modes of its own:
//!
//! * a **simulator-internal panic**: a flip corrupts an invariant the
//!   simulator itself relies on (decoder tables, SIMT stack depth, cache
//!   tag bookkeeping) and the run dies not with a modelled trap but with a
//!   Rust panic.  [`catch_run`] captures the unwind per run, with a scoped
//!   panic hook that keeps the message and suppresses the default
//!   stderr backtrace, so sibling workers are untouched;
//! * **process death**: an interrupted campaign must not lose thousands of
//!   completed runs.  [`RunJournal`] appends one fsync'd JSON line per
//!   completed run; `run_campaign` resumes from the journal and schedules
//!   only the missing run indices.
//!
//! The journal is bound to its campaign by a [`campaign_fingerprint`] —
//! a hash over every configuration field that influences per-run records
//! (seed, spec, workload, card, engine modes) — so a stale or foreign
//! journal is rejected instead of silently splicing wrong records.

use crate::campaign::{CampaignConfig, RunRecord};
use crate::classify::RunDetail;
use gpufi_metrics::FaultEffect;
use std::cell::{Cell, RefCell};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

// ----------------------------------------------------------------------
// Per-run panic isolation
// ----------------------------------------------------------------------

thread_local! {
    /// Whether the current thread is inside a supervised injection run.
    static SUPERVISED: Cell<bool> = const { Cell::new(false) };
    /// The panic message captured by the scoped hook for this thread.
    static CAPTURED: RefCell<Option<String>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

/// Installs the process-wide panic hook exactly once, chaining to the
/// previously installed hook.  While a thread is inside [`catch_run`] the
/// hook records the panic message (with location) into that thread's slot
/// and stays silent; panics on any other thread — including test
/// harnesses running in parallel — go to the previous hook unchanged.
fn install_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SUPERVISED.with(Cell::get) {
                let msg = payload_message(info.payload());
                let loc = info
                    .location()
                    .map(|l| format!(" at {l}"))
                    .unwrap_or_default();
                CAPTURED.with(|c| *c.borrow_mut() = Some(format!("{msg}{loc}")));
            } else {
                prev(info);
            }
        }));
    });
}

/// Best-effort extraction of a panic payload's message.
fn payload_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with per-run panic isolation: a panic anywhere inside `f` is
/// caught and returned as its message instead of unwinding into the
/// worker (and without the default hook's stderr noise).
///
/// The closure is asserted unwind-safe because every supervised run
/// constructs its `Gpu` *inside* `f` and only borrows shared inputs
/// ([`Workload`](crate::Workload) requires `RefUnwindSafe`, and
/// `gpufi_sim` statically asserts it for the checkpoint store and
/// config) — a panic can therefore strand no half-mutated state that any
/// sibling or later retry could observe.
pub(crate) fn catch_run<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_hook();
    SUPERVISED.with(|s| s.set(true));
    let out = panic::catch_unwind(AssertUnwindSafe(f));
    SUPERVISED.with(|s| s.set(false));
    out.map_err(|payload| {
        CAPTURED
            .with(|c| c.borrow_mut().take())
            .unwrap_or_else(|| payload_message(&*payload))
    })
}

// ----------------------------------------------------------------------
// Campaign fingerprint
// ----------------------------------------------------------------------

/// FNV-1a over `bytes` (the same hash the golden-output checksums use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes every campaign parameter that influences per-run records —
/// workload, card, seed, run count, fault spec, kernel restriction and
/// engine modes — into the journal's identity.  Deliberately excluded:
/// `threads` (records are thread-count invariant, so a campaign journaled
/// on one thread may resume on four) and the journal/resume fields
/// themselves.
pub fn campaign_fingerprint(workload: &str, card: &str, cfg: &CampaignConfig) -> u64 {
    let canonical = format!(
        "gpufi-journal-v1|workload={workload}|card={card}|seed={}|runs={}|kernel={:?}|\
         spec={:?}|early_exit={}|checkpoints={}|interval={}|budget={}|window={:?}|\
         oracle={}|static_prune={}|max_run_ms={}",
        cfg.seed,
        cfg.runs,
        cfg.kernel,
        cfg.spec,
        cfg.early_exit,
        cfg.checkpoints,
        cfg.checkpoint_interval,
        cfg.checkpoint_budget,
        cfg.cycle_window,
        cfg.oracle_check,
        cfg.static_prune,
        cfg.max_run_ms,
    );
    fnv1a(canonical.as_bytes())
}

// ----------------------------------------------------------------------
// Crash-safe run journal
// ----------------------------------------------------------------------

/// Maximum time a written-but-unsynced journal line may wait before the
/// next append forces an fsync, regardless of the group-commit threshold.
/// Bounds the power-loss window of a slow campaign; process death
/// (`SIGKILL`) never loses written lines — the kernel already has them.
const GROUP_COMMIT_MAX_DELAY: Duration = Duration::from_millis(100);

/// Append-only, crash-safe record of completed injection runs
/// (`<out>.journal.jsonl`): one header line binding the file to its
/// campaign, then one JSON line per completed run.  Workers append
/// concurrently through an internal lock; each line is written atomically
/// with respect to the others, so after a `SIGKILL` the file is a valid
/// prefix plus at most one torn final line (which [`RunJournal::resume`]
/// discards and truncates away).
///
/// **Group commit:** every line is written through to the operating
/// system immediately (so process death loses nothing), but the `fsync`
/// that makes it power-loss durable is batched — issued every
/// `group_commit` lines or [`GROUP_COMMIT_MAX_DELAY`], whichever comes
/// first, instead of once per line.  With many workers appending, the
/// per-line fsync was the one serialization point they all queued behind;
/// batching it cuts `journal_ms` without weakening the torn-tail or
/// kill-and-resume guarantees.
#[derive(Debug)]
pub struct RunJournal {
    inner: Mutex<JournalFile>,
    bytes: AtomicU64,
    nanos: AtomicU64,
    syncs: AtomicU64,
    /// Lines per fsync (1 = the pre-group-commit per-line behaviour).
    group_commit: usize,
}

/// The locked journal state: the file plus the group-commit window.
#[derive(Debug)]
struct JournalFile {
    file: File,
    /// Lines written since the last fsync.
    unsynced: usize,
    /// When the last fsync completed.
    last_sync: Instant,
}

/// One journal line.  Values never contain `,`, `{`, `}` or `"`, so the
/// reader can parse with plain field scans instead of a JSON dependency.
/// Also the distributed wire format for one completed run (the `result`
/// message embeds exactly these fields).
pub(crate) fn record_line(run: usize, r: &RunRecord) -> String {
    format!(
        "{{\"run\":{run},\"effect\":\"{}\",\"cycles\":{},\"applied\":{},\"early_exit\":{},\
         \"ckpt\":{},\"detail\":\"{}\"}}\n",
        r.effect.name(),
        r.cycles,
        r.applied,
        r.early_exit,
        r.ckpt_skipped_cycles,
        r.detail.as_str(),
    )
}

fn header_line(fingerprint: u64, runs: usize) -> String {
    format!("{{\"v\":1,\"fingerprint\":\"{fingerprint:016x}\",\"runs\":{runs}}}\n")
}

/// Extracts the raw value of `"key":` from a single-line JSON object
/// (up to the next `,` or `}`), with surrounding quotes stripped.
pub(crate) fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim_matches('"'))
}

pub(crate) fn parse_record_line(line: &str) -> Option<(usize, RunRecord)> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return None;
    }
    let run: usize = json_field(line, "run")?.parse().ok()?;
    let effect_name = json_field(line, "effect")?;
    let effect = *FaultEffect::ALL.iter().find(|e| e.name() == effect_name)?;
    let parse_bool = |v: &str| match v {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    };
    Some((
        run,
        RunRecord {
            effect,
            cycles: json_field(line, "cycles")?.parse().ok()?,
            applied: parse_bool(json_field(line, "applied")?)?,
            early_exit: parse_bool(json_field(line, "early_exit")?)?,
            ckpt_skipped_cycles: json_field(line, "ckpt")?.parse().ok()?,
            detail: RunDetail::parse(json_field(line, "detail")?)?,
        },
    ))
}

impl RunJournal {
    fn from_file(file: File, bytes: u64) -> RunJournal {
        RunJournal {
            inner: Mutex::new(JournalFile {
                file,
                unsynced: 0,
                last_sync: Instant::now(),
            }),
            bytes: AtomicU64::new(bytes),
            nanos: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            group_commit: 1,
        }
    }

    /// Sets the group-commit threshold: fsync every `n` appended lines
    /// (and at least every [`GROUP_COMMIT_MAX_DELAY`]).  `0` and `1` both
    /// mean the per-line behaviour.
    #[must_use]
    pub fn with_group_commit(mut self, n: usize) -> RunJournal {
        self.group_commit = n.max(1);
        self
    }

    /// Creates (or truncates) the journal at `path` and writes its header.
    pub fn create(path: &str, fingerprint: u64, runs: usize) -> Result<RunJournal, String> {
        let mut file = File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
        let header = header_line(fingerprint, runs);
        file.write_all(header.as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("cannot write journal header to `{path}`: {e}"))?;
        Ok(RunJournal::from_file(file, header.len() as u64))
    }

    /// Opens an existing journal for resumption: validates the header
    /// against this campaign's `fingerprint` and `runs`, loads every
    /// complete record, truncates any torn final line (a write cut short
    /// by process death), and returns the journal positioned to append.
    ///
    /// # Errors
    ///
    /// Rejects a journal whose header is unreadable or belongs to a
    /// different campaign — resuming someone else's records would splice
    /// wrong results into the CSV.
    pub fn resume(
        path: &str,
        fingerprint: u64,
        runs: usize,
    ) -> Result<(RunJournal, Vec<Option<RunRecord>>), String> {
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("cannot read journal `{path}`: {e}"))?;

        let mut records: Vec<Option<RunRecord>> = vec![None; runs];
        let mut valid_bytes = 0usize;
        let mut saw_header = false;
        for chunk in text.split_inclusive('\n') {
            if !chunk.ends_with('\n') {
                break; // torn final line: the fsync never completed
            }
            let line = chunk.trim_end_matches(['\n', '\r']);
            if !saw_header {
                let fp = json_field(line, "fingerprint")
                    .ok_or_else(|| format!("journal `{path}` has no fingerprint header"))?;
                if fp != format!("{fingerprint:016x}") {
                    return Err(format!(
                        "journal `{path}` belongs to a different campaign \
                         (fingerprint {fp}, expected {fingerprint:016x}); \
                         delete it or drop --resume"
                    ));
                }
                let jr: usize = json_field(line, "runs")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("journal `{path}` has a malformed header"))?;
                if jr != runs {
                    return Err(format!(
                        "journal `{path}` records a {jr}-run campaign, this one has {runs}"
                    ));
                }
                saw_header = true;
            } else {
                // A line that does not parse is a torn/corrupt tail; keep
                // the valid prefix and drop everything after it.
                let Some((run, rec)) = parse_record_line(line) else {
                    break;
                };
                if run >= runs {
                    break;
                }
                records[run] = Some(rec);
            }
            valid_bytes += chunk.len();
        }
        if !saw_header {
            return Err(format!("journal `{path}` has no complete header line"));
        }

        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal `{path}`: {e}"))?;
        // Physically discard the torn tail so appended lines start clean.
        file.set_len(valid_bytes as u64)
            .map_err(|e| format!("cannot truncate journal `{path}`: {e}"))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| format!("cannot seek journal `{path}`: {e}"))?;
        Ok((RunJournal::from_file(file, valid_bytes as u64), records))
    }

    /// Appends one completed run: the line is written through to the OS
    /// immediately (safe against process death) and fsync'd when the
    /// group-commit window fills or ages out (safe against power loss up
    /// to that window).  Called by the worker threads as each run
    /// finishes; failures are reported (the campaign result still holds
    /// the record in memory).
    pub fn append(&self, run: usize, rec: &RunRecord) -> Result<(), String> {
        let line = record_line(run, rec);
        let t0 = Instant::now();
        {
            let mut j = self.inner.lock().expect("journal lock poisoned");
            j.file
                .write_all(line.as_bytes())
                .map_err(|e| format!("journal write failed: {e}"))?;
            j.unsynced += 1;
            if j.unsynced >= self.group_commit || j.last_sync.elapsed() >= GROUP_COMMIT_MAX_DELAY {
                j.file
                    .sync_data()
                    .map_err(|e| format!("journal sync failed: {e}"))?;
                j.unsynced = 0;
                j.last_sync = Instant::now();
                self.syncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.bytes.fetch_add(line.len() as u64, Ordering::Relaxed);
        self.nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Forces out any lines still inside the group-commit window.  The
    /// campaign calls this once at the end, so a completed journal is
    /// always fully durable no matter the threshold.
    pub fn flush(&self) -> Result<(), String> {
        let t0 = Instant::now();
        let mut j = self.inner.lock().expect("journal lock poisoned");
        if j.unsynced > 0 {
            j.file
                .sync_data()
                .map_err(|e| format!("journal sync failed: {e}"))?;
            j.unsynced = 0;
            j.last_sync = Instant::now();
            self.syncs.fetch_add(1, Ordering::Relaxed);
            self.nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Bytes written to the journal by this handle.
    pub fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Wall-clock milliseconds spent appending and syncing.
    pub fn wall_ms(&self) -> f64 {
        self.nanos.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Number of `fsync` calls issued — with group commit this is the
    /// observable batching factor (`lines / syncs`).
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
}

impl Drop for RunJournal {
    /// Best-effort final sync, so dropping a journal without an explicit
    /// [`RunJournal::flush`] still leaves it durable.
    fn drop(&mut self) {
        if let Ok(j) = self.inner.get_mut() {
            if j.unsynced > 0 {
                let _ = j.file.sync_data();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufi_faults::{CampaignSpec, Structure};

    fn rec(effect: FaultEffect, detail: RunDetail) -> RunRecord {
        RunRecord {
            effect,
            cycles: 1234,
            applied: true,
            early_exit: false,
            ckpt_skipped_cycles: 56,
            detail,
        }
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("gpufi-supervisor-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn record_lines_round_trip() {
        for effect in FaultEffect::ALL {
            for detail in RunDetail::ALL {
                let r = rec(effect, detail);
                let line = record_line(7, &r);
                let (run, back) = parse_record_line(line.trim_end()).unwrap();
                assert_eq!(run, 7);
                assert_eq!(back, r, "{effect:?}/{detail:?}");
            }
        }
    }

    #[test]
    fn torn_and_corrupt_lines_are_rejected() {
        let r = rec(FaultEffect::Sdc, RunDetail::None);
        let full = record_line(3, &r);
        let torn = &full[..full.len() - 9];
        assert_eq!(parse_record_line(torn.trim_end()), None);
        assert_eq!(parse_record_line("not json at all"), None);
        assert_eq!(
            parse_record_line("{\"run\":1,\"effect\":\"Bogus\",\"cycles\":1}"),
            None
        );
    }

    #[test]
    fn journal_create_append_resume() {
        let path = tmp("roundtrip.journal.jsonl");
        let fp = 0xdead_beef_u64;
        let j = RunJournal::create(&path, fp, 5).unwrap();
        j.append(0, &rec(FaultEffect::Masked, RunDetail::None))
            .unwrap();
        j.append(3, &rec(FaultEffect::Crash, RunDetail::SimPanic))
            .unwrap();
        assert!(j.bytes_written() > 0);
        drop(j);

        let (j2, loaded) = RunJournal::resume(&path, fp, 5).unwrap();
        assert_eq!(loaded.iter().flatten().count(), 2);
        assert_eq!(loaded[0].unwrap().effect, FaultEffect::Masked);
        assert_eq!(loaded[3].unwrap().detail, RunDetail::SimPanic);
        assert!(loaded[1].is_none());
        // Appending after a resume lands after the loaded prefix.
        j2.append(1, &rec(FaultEffect::Timeout, RunDetail::WallWatchdog))
            .unwrap();
        drop(j2);
        let (_, loaded) = RunJournal::resume(&path, fp, 5).unwrap();
        assert_eq!(loaded.iter().flatten().count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_truncates_a_torn_tail() {
        let path = tmp("torn.journal.jsonl");
        let fp = 42u64;
        let j = RunJournal::create(&path, fp, 4).unwrap();
        j.append(0, &rec(FaultEffect::Sdc, RunDetail::None))
            .unwrap();
        j.append(1, &rec(FaultEffect::Masked, RunDetail::None))
            .unwrap();
        drop(j);
        // Simulate a SIGKILL mid-write: chop the file inside the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text.as_bytes()[..text.len() - 7]).unwrap();

        let (j2, loaded) = RunJournal::resume(&path, fp, 4).unwrap();
        assert_eq!(loaded.iter().flatten().count(), 1, "torn line discarded");
        assert!(loaded[0].is_some());
        j2.append(1, &rec(FaultEffect::Masked, RunDetail::None))
            .unwrap();
        drop(j2);
        // The torn bytes must be gone from disk, not merely skipped.
        let (_, loaded) = RunJournal::resume(&path, fp, 4).unwrap();
        assert_eq!(loaded.iter().flatten().count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_foreign_and_headerless_journals() {
        let path = tmp("foreign.journal.jsonl");
        RunJournal::create(&path, 1, 4).unwrap();
        let err = RunJournal::resume(&path, 2, 4).unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        let err = RunJournal::resume(&path, 1, 8).unwrap_err();
        assert!(err.contains("4-run campaign"), "{err}");
        std::fs::write(&path, "").unwrap();
        let err = RunJournal::resume(&path, 1, 4).unwrap_err();
        assert!(err.contains("no complete header"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_batches_syncs_without_losing_records() {
        let path = tmp("group-commit.journal.jsonl");
        let j = RunJournal::create(&path, 7, 20)
            .unwrap()
            .with_group_commit(8);
        for i in 0..20 {
            j.append(i, &rec(FaultEffect::Masked, RunDetail::None))
                .unwrap();
        }
        // 20 appends in an 8-line window: 2 full-window syncs, plus at
        // most a handful of 100 ms age-outs on a very slow machine —
        // never one sync per line.
        assert!(j.sync_count() >= 2, "windows must sync: {}", j.sync_count());
        assert!(
            j.sync_count() < 20,
            "batching collapsed: {}",
            j.sync_count()
        );
        j.flush().unwrap();
        let synced = j.sync_count();
        j.flush().unwrap();
        assert_eq!(j.sync_count(), synced, "empty flush must not sync");
        drop(j);
        // Every record is on disk regardless of the batching factor.
        let (_, loaded) = RunJournal::resume(&path, 7, 20).unwrap();
        assert_eq!(loaded.iter().flatten().count(), 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_of_one_syncs_every_line() {
        let path = tmp("sync-each.journal.jsonl");
        let j = RunJournal::create(&path, 7, 4)
            .unwrap()
            .with_group_commit(1);
        for i in 0..4 {
            j.append(i, &rec(FaultEffect::Sdc, RunDetail::None))
                .unwrap();
        }
        assert_eq!(j.sync_count(), 4);
        // `0` normalises to `1` — there is no "never sync" setting.
        let j0 = RunJournal::create(&path, 7, 4)
            .unwrap()
            .with_group_commit(0);
        j0.append(0, &rec(FaultEffect::Sdc, RunDetail::None))
            .unwrap();
        assert_eq!(j0.sync_count(), 1);
        drop(j0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_ignores_journal_batching() {
        let base = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 50, 3);
        let fp = |cfg: &CampaignConfig| campaign_fingerprint("BFS", "RTX 2060", cfg);
        assert_eq!(
            fp(&base.clone().with_journal_commit(1)),
            fp(&base.clone().with_journal_commit(64)),
            "group-commit tuning must not change campaign identity"
        );
    }

    #[test]
    fn fingerprint_separates_campaign_parameters() {
        let base = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 100, 7);
        let fp = |cfg: &CampaignConfig| campaign_fingerprint("VA", "RTX 2060", cfg);
        let f0 = fp(&base);
        assert_eq!(f0, fp(&base.clone()), "deterministic");
        assert_ne!(
            f0,
            fp(&CampaignConfig {
                seed: 8,
                ..base.clone()
            })
        );
        assert_ne!(
            f0,
            fp(&CampaignConfig {
                runs: 101,
                ..base.clone()
            })
        );
        assert_ne!(f0, fp(&base.clone().no_early_exit()));
        assert_ne!(f0, fp(&base.clone().no_checkpoints()));
        assert_ne!(f0, fp(&base.clone().no_static_prune()));
        assert_ne!(f0, fp(&base.clone().with_max_run_ms(5_000)));
        assert_ne!(f0, campaign_fingerprint("GE", "RTX 2060", &base));
        assert_ne!(f0, campaign_fingerprint("VA", "GTX Titan", &base));
        // Threads are deliberately not part of the identity: a journal
        // written single-threaded resumes on any worker count.
        assert_eq!(f0, fp(&base.clone().with_threads(4)));
    }

    #[test]
    fn catch_run_captures_message_and_location() {
        assert_eq!(catch_run(|| 41 + 1), Ok(42));
        let err = catch_run(|| panic!("invariant broken: {}", 7)).unwrap_err();
        assert!(err.contains("invariant broken: 7"), "{err}");
        assert!(err.contains("supervisor.rs"), "location missing: {err}");
        // The hook must restore pass-through behaviour afterwards.
        assert_eq!(catch_run(|| "still works"), Ok("still works"));
    }
}
