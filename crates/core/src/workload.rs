//! The workload abstraction: a CUDA application ported to SASS-lite.

use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchError, Trap};
use std::error::Error;
use std::fmt;

/// An error escaping a workload run.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The simulated GPU trapped (crash or watchdog timeout).
    Trap(Trap),
    /// A host-side device-API error (allocation, bad pointer).
    Device(LaunchError),
    /// A kernel the golden run launched is missing from the workload's
    /// module — a workload-definition bug surfaced during profiling, not
    /// an injection effect.
    MissingKernel {
        /// The launched-but-undefined kernel name.
        kernel: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Trap(t) => write!(f, "gpu trap: {t}"),
            WorkloadError::Device(e) => write!(f, "device error: {e}"),
            WorkloadError::MissingKernel { kernel } => {
                write!(f, "launched kernel `{kernel}` missing from module")
            }
        }
    }
}

impl Error for WorkloadError {}

impl From<Trap> for WorkloadError {
    fn from(t: Trap) -> Self {
        WorkloadError::Trap(t)
    }
}

impl From<LaunchError> for WorkloadError {
    fn from(e: LaunchError) -> Self {
        WorkloadError::Device(e)
    }
}

/// A complete GPU application: host driver plus its SASS-lite kernels.
///
/// `run` must be **deterministic** — same inputs, same launches, same
/// result bytes — because the classifier compares a faulty run bit-for-bit
/// against the golden (fault-free) run, exactly like the paper's
/// predefined-result-file check (§III.B).
///
/// Implementations must be stateless across runs (`run` takes `&self`) so
/// the campaign controller can execute runs on multiple threads, and
/// [`RefUnwindSafe`](std::panic::RefUnwindSafe) — plain data, no interior
/// mutability — so the supervisor can wrap each run in
/// `std::panic::catch_unwind` without a panicking run leaking a
/// broken-invariant view of the workload to its siblings.
pub trait Workload: Sync + std::panic::RefUnwindSafe {
    /// The benchmark's short name (e.g. `"VA"`, `"HS"`).
    fn name(&self) -> &'static str;

    /// The assembled kernel module (used to size the fault spaces).
    fn module(&self) -> &Module;

    /// Drives the full application on `gpu` — allocations, uploads, kernel
    /// launches, host-side iteration logic — and returns the result buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the GPU traps or a device copy fails
    /// (both classified as failures by the campaign).
    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError>;
}
