//! # gpufi-faults — fault models and mask generation
//!
//! This crate is the reproduction of gpuFI-4's *fault masks generator*
//! module: given the injectable fault space of a kernel on a chip
//! ([`FaultSpace`]) and the cycle windows of the targeted kernel
//! invocations, it draws statistically independent transient faults —
//! single-bit or multi-bit, thread- or warp-scoped, optionally replicated
//! over CTAs or SIMT cores — as [`InjectionPlan`]s the simulator can arm.
//!
//! Everything is driven by a seedable RNG so campaigns are reproducible:
//! the same seed always produces the same sequence of plans.
//!
//! # Example
//!
//! ```
//! use gpufi_faults::{CampaignSpec, MaskGenerator, MultiBitMode, Structure};
//! use gpufi_sim::{FaultSpace, KernelWindow, Scope};
//!
//! let space = FaultSpace {
//!     regs_per_thread: 16,
//!     lmem_bits: 0,
//!     smem_bits: 4096 * 8,
//!     l1d_bits: Some(64 * 1024 * 8),
//!     l1t_bits: 128 * 1024 * 8,
//!     l1c_bits: 64 * 1024 * 8,
//!     l2_bits: 3 * 1024 * 1024 * 8,
//!     num_sms: 30,
//! };
//! let windows = [KernelWindow { kernel: "k".into(), start: 100, end: 1100 }];
//! let spec = CampaignSpec::new(Structure::RegisterFile).bits(3);
//! let mut gen = MaskGenerator::new(42);
//! let plan = gen.draw(&spec, &space, &windows).expect("valid space");
//! assert_eq!(plan.faults.len(), 1);
//! assert!((100..1100).contains(&plan.faults[0].cycle));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gpufi_sim::{FaultSpace, FaultTarget, InjectionPlan, KernelWindow, PlannedFault, Scope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The injectable hardware structures: the paper's six targets (Table IV)
/// plus the L1 constant cache extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Structure {
    /// Per-thread registers of the register file.
    RegisterFile,
    /// Per-thread local memory (off-chip).
    LocalMemory,
    /// Per-CTA shared memory.
    SharedMemory,
    /// Per-SM L1 data cache (tag + data).
    L1Data,
    /// Per-SM L1 texture cache (tag + data).
    L1Tex,
    /// Per-SM L1 constant cache (tag + data) — an extension implementing
    /// the paper's future work (§IV.C.1).
    L1Const,
    /// Chip-wide L2 cache (tag + data).
    L2,
}

impl Structure {
    /// The six structures of the paper (Table IV), in the paper's order.
    pub const PAPER: [Structure; 6] = [
        Structure::RegisterFile,
        Structure::LocalMemory,
        Structure::SharedMemory,
        Structure::L1Data,
        Structure::L1Tex,
        Structure::L2,
    ];

    /// Every injectable structure, including the constant-cache extension.
    pub const ALL: [Structure; 7] = [
        Structure::RegisterFile,
        Structure::LocalMemory,
        Structure::SharedMemory,
        Structure::L1Data,
        Structure::L1Tex,
        Structure::L1Const,
        Structure::L2,
    ];

    /// The five structures the paper folds into the chip AVF (local memory
    /// resides in device DRAM and is excluded from the on-chip total).
    pub const ON_CHIP: [Structure; 5] = [
        Structure::RegisterFile,
        Structure::SharedMemory,
        Structure::L1Data,
        Structure::L1Tex,
        Structure::L2,
    ];

    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Structure::RegisterFile => "register file",
            Structure::LocalMemory => "local memory",
            Structure::SharedMemory => "shared memory",
            Structure::L1Data => "L1 data cache",
            Structure::L1Tex => "L1 texture cache",
            Structure::L1Const => "L1 constant cache",
            Structure::L2 => "L2 cache",
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the bits of one multi-bit fault are placed (paper §III.A: "(i)
/// different bits of the same entry … (ii) different entries").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiBitMode {
    /// All flipped bits land in the same entry (register / cache line /
    /// memory word neighbourhood) — the physically common multi-bit upset.
    SameEntry,
    /// Each flipped bit lands at an independent position of the structure.
    Spread,
}

/// The shape of the faults a campaign draws.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Target structure.
    pub structure: Structure,
    /// Thread or warp scope (register file / local memory only).
    pub scope: Scope,
    /// Bits flipped per fault (1 = single-bit, 3 = the paper's triple-bit).
    pub bits_per_fault: u32,
    /// Placement of multi-bit flips.
    pub multi_bit: MultiBitMode,
    /// CTAs (shared memory) or SIMT cores (L1s) that receive the same
    /// flips.
    pub replicate: u32,
}

impl CampaignSpec {
    /// A single-bit, thread-scope, unreplicated campaign on `structure`.
    pub fn new(structure: Structure) -> Self {
        CampaignSpec {
            structure,
            scope: Scope::Thread,
            bits_per_fault: 1,
            multi_bit: MultiBitMode::SameEntry,
            replicate: 1,
        }
    }

    /// Sets the number of bits flipped per fault.
    pub fn bits(mut self, k: u32) -> Self {
        self.bits_per_fault = k.max(1);
        self
    }

    /// Sets warp scope (register file / local memory).
    pub fn warp_scope(mut self) -> Self {
        self.scope = Scope::Warp;
        self
    }

    /// Sets the multi-bit placement mode.
    pub fn mode(mut self, mode: MultiBitMode) -> Self {
        self.multi_bit = mode;
        self
    }

    /// Sets CTA / core replication.
    pub fn replicated(mut self, n: u32) -> Self {
        self.replicate = n.max(1);
        self
    }
}

/// Why a fault could not be drawn for a given kernel/chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrawError {
    /// The kernel never executes (no cycle windows).
    EmptyWindows,
    /// The targeted structure has zero injectable bits here (e.g. L1D on
    /// GTX Titan, or shared memory for a kernel that uses none).
    EmptyStructure(Structure),
}

impl fmt::Display for DrawError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrawError::EmptyWindows => f.write_str("kernel has no execution windows"),
            DrawError::EmptyStructure(s) => {
                write!(
                    f,
                    "structure `{s}` has no injectable bits for this kernel/chip"
                )
            }
        }
    }
}

impl std::error::Error for DrawError {}

/// The seeded fault-mask generator.
///
/// One generator drives one campaign; drawing `runs` plans from a fresh
/// generator with the same seed reproduces the campaign exactly.
#[derive(Debug)]
pub struct MaskGenerator {
    rng: StdRng,
}

impl MaskGenerator {
    /// Creates a generator from a campaign seed.
    pub fn new(seed: u64) -> Self {
        MaskGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws `k` distinct bit positions below `space` with Floyd's
    /// sampling algorithm: exactly `k` RNG draws, no rejection loop, so the
    /// cost stays bounded even when `k` approaches `space`.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0` or `k as u64 > space`.
    pub fn distinct_bits(&mut self, k: u32, space: u64) -> Vec<u64> {
        assert!(space > 0, "empty bit space");
        assert!(
            u64::from(k) <= space,
            "cannot draw {k} distinct bits from {space}"
        );
        let mut out: Vec<u64> = Vec::with_capacity(k as usize);
        for j in (space - u64::from(k))..space {
            let t = self.rng.gen_range(0..j + 1);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        out
    }

    /// Draws a uniform value in `0..bound` (campaign-internal sampling,
    /// e.g. picking a kernel window by its cycle weight).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn uniform(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        self.rng.gen_range(0..bound)
    }

    /// Picks a uniformly random cycle inside the union of `windows`.
    fn draw_cycle(&mut self, windows: &[KernelWindow]) -> Option<u64> {
        let total: u64 = windows.iter().map(|w| w.end.saturating_sub(w.start)).sum();
        if total == 0 {
            return None;
        }
        let mut r = self.rng.gen_range(0..total);
        for w in windows {
            let len = w.end - w.start;
            if r < len {
                return Some(w.start + r);
            }
            r -= len;
        }
        None
    }

    /// Draws one fault plan per the campaign spec.
    ///
    /// # Errors
    ///
    /// Returns [`DrawError`] when the windows are empty or the targeted
    /// structure has no injectable bits for this kernel/chip.
    pub fn draw(
        &mut self,
        spec: &CampaignSpec,
        space: &FaultSpace,
        windows: &[KernelWindow],
    ) -> Result<InjectionPlan, DrawError> {
        let cycle = self.draw_cycle(windows).ok_or(DrawError::EmptyWindows)?;
        let k = spec.bits_per_fault;
        let entry_lot = self.rng.gen::<u64>();
        let target = match spec.structure {
            Structure::RegisterFile => {
                if space.regs_per_thread == 0 {
                    return Err(DrawError::EmptyStructure(spec.structure));
                }
                let reg = self.rng.gen_range(0..space.regs_per_thread);
                let bits = self
                    .distinct_bits(k.min(32), 32)
                    .into_iter()
                    .map(|b| b as u8)
                    .collect();
                FaultTarget::RegisterFile {
                    scope: spec.scope,
                    entry_lot,
                    reg,
                    bits,
                }
            }
            Structure::LocalMemory => {
                if space.lmem_bits == 0 {
                    return Err(DrawError::EmptyStructure(spec.structure));
                }
                let bits = self.structure_bits(k, space.lmem_bits, 32, spec.multi_bit);
                FaultTarget::LocalMemory { entry_lot, bits }
            }
            Structure::SharedMemory => {
                if space.smem_bits == 0 {
                    return Err(DrawError::EmptyStructure(spec.structure));
                }
                let bits = self.structure_bits(k, space.smem_bits, 32, spec.multi_bit);
                FaultTarget::SharedMemory {
                    cta_lot: entry_lot,
                    replicate: spec.replicate,
                    bits,
                }
            }
            Structure::L1Data => {
                let Some(total) = space.l1d_bits.filter(|&b| b > 0) else {
                    return Err(DrawError::EmptyStructure(spec.structure));
                };
                let bits = self.structure_bits(k, total, line_bits(), spec.multi_bit);
                FaultTarget::L1Data {
                    core_lot: entry_lot,
                    replicate: spec.replicate,
                    bits,
                }
            }
            Structure::L1Tex => {
                if space.l1t_bits == 0 {
                    return Err(DrawError::EmptyStructure(spec.structure));
                }
                let bits = self.structure_bits(k, space.l1t_bits, line_bits(), spec.multi_bit);
                FaultTarget::L1Tex {
                    core_lot: entry_lot,
                    replicate: spec.replicate,
                    bits,
                }
            }
            Structure::L1Const => {
                if space.l1c_bits == 0 {
                    return Err(DrawError::EmptyStructure(spec.structure));
                }
                let bits =
                    self.structure_bits(k, space.l1c_bits, const_line_bits(), spec.multi_bit);
                FaultTarget::L1Const {
                    core_lot: entry_lot,
                    replicate: spec.replicate,
                    bits,
                }
            }
            Structure::L2 => {
                if space.l2_bits == 0 {
                    return Err(DrawError::EmptyStructure(spec.structure));
                }
                let bits = self.structure_bits(k, space.l2_bits, line_bits(), spec.multi_bit);
                FaultTarget::L2 { bits }
            }
        };
        Ok(InjectionPlan {
            faults: vec![PlannedFault { cycle, target }],
        })
    }

    /// Draws a whole campaign: `runs` independent plans.
    ///
    /// # Errors
    ///
    /// See [`MaskGenerator::draw`].
    pub fn campaign(
        &mut self,
        spec: &CampaignSpec,
        space: &FaultSpace,
        windows: &[KernelWindow],
        runs: usize,
    ) -> Result<Vec<InjectionPlan>, DrawError> {
        (0..runs).map(|_| self.draw(spec, space, windows)).collect()
    }

    /// Draws `k` bit positions within a `total`-bit structure whose entries
    /// are `entry_bits` wide, honouring the multi-bit placement mode.
    fn structure_bits(
        &mut self,
        k: u32,
        total: u64,
        entry_bits: u64,
        mode: MultiBitMode,
    ) -> Vec<u64> {
        match mode {
            MultiBitMode::Spread => self.distinct_bits(k.min(total as u32), total),
            MultiBitMode::SameEntry => {
                let entry_bits = entry_bits.min(total);
                let entries = total / entry_bits;
                let entry = self.rng.gen_range(0..entries.max(1));
                let base = entry * entry_bits;
                let width = entry_bits.min(total - base);
                self.distinct_bits(k.min(width as u32), width)
                    .into_iter()
                    .map(|b| base + b)
                    .collect()
            }
        }
    }
}

/// Bits per cache line entry (128-byte line + the modelled tag).
fn line_bits() -> u64 {
    128 * 8 + u64::from(gpufi_sim::TAG_BITS)
}

/// Bits per constant-cache line entry (64-byte line + the modelled tag).
fn const_line_bits() -> u64 {
    64 * 8 + u64::from(gpufi_sim::TAG_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> FaultSpace {
        FaultSpace {
            regs_per_thread: 10,
            lmem_bits: 256,
            smem_bits: 1024,
            l1d_bits: Some(1 << 19),
            l1t_bits: 1 << 20,
            l1c_bits: 1 << 19,
            l2_bits: 1 << 24,
            num_sms: 30,
        }
    }

    fn windows() -> Vec<KernelWindow> {
        vec![
            KernelWindow {
                kernel: "k".into(),
                start: 10,
                end: 20,
            },
            KernelWindow {
                kernel: "k".into(),
                start: 50,
                end: 100,
            },
        ]
    }

    #[test]
    fn distinct_bits_are_distinct_and_in_range() {
        let mut g = MaskGenerator::new(1);
        for _ in 0..100 {
            let bits = g.distinct_bits(3, 32);
            assert_eq!(bits.len(), 3);
            let mut sorted = bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "bits must be distinct: {bits:?}");
            assert!(bits.iter().all(|&b| b < 32));
        }
    }

    #[test]
    fn distinct_bits_can_exhaust_the_space() {
        // Floyd's algorithm draws the full space without rejection; the
        // old loop was quadratic (and pathological) here.
        let mut g = MaskGenerator::new(9);
        for space in [1u64, 2, 7, 32, 64] {
            let mut bits = g.distinct_bits(space as u32, space);
            bits.sort_unstable();
            let expect: Vec<u64> = (0..space).collect();
            assert_eq!(bits, expect, "k == space must enumerate every bit");
        }
    }

    #[test]
    fn uniform_stays_below_bound() {
        let mut g = MaskGenerator::new(10);
        for _ in 0..1000 {
            assert!(g.uniform(7) < 7);
        }
        assert_eq!(g.uniform(1), 0);
    }

    #[test]
    fn cycles_fall_in_windows() {
        let mut g = MaskGenerator::new(2);
        let spec = CampaignSpec::new(Structure::RegisterFile);
        let mut seen_first = false;
        let mut seen_second = false;
        for _ in 0..200 {
            let p = g.draw(&spec, &space(), &windows()).unwrap();
            let c = p.faults[0].cycle;
            assert!((10..20).contains(&c) || (50..100).contains(&c), "cycle {c}");
            seen_first |= (10..20).contains(&c);
            seen_second |= (50..100).contains(&c);
        }
        assert!(seen_first && seen_second, "both windows must be sampled");
    }

    #[test]
    fn register_faults_respect_allocation() {
        let mut g = MaskGenerator::new(3);
        let spec = CampaignSpec::new(Structure::RegisterFile)
            .bits(3)
            .warp_scope();
        for _ in 0..50 {
            let p = g.draw(&spec, &space(), &windows()).unwrap();
            match &p.faults[0].target {
                FaultTarget::RegisterFile {
                    scope, reg, bits, ..
                } => {
                    assert_eq!(*scope, Scope::Warp);
                    assert!(*reg < 10);
                    assert_eq!(bits.len(), 3);
                    assert!(bits.iter().all(|&b| b < 32));
                }
                other => panic!("wrong target {other:?}"),
            }
        }
    }

    #[test]
    fn same_entry_mode_keeps_bits_in_one_line() {
        let mut g = MaskGenerator::new(4);
        let spec = CampaignSpec::new(Structure::L2)
            .bits(3)
            .mode(MultiBitMode::SameEntry);
        for _ in 0..50 {
            let p = g.draw(&spec, &space(), &windows()).unwrap();
            let FaultTarget::L2 { bits } = &p.faults[0].target else {
                panic!("wrong target");
            };
            let line = bits[0] / line_bits();
            assert!(bits.iter().all(|&b| b / line_bits() == line), "{bits:?}");
        }
    }

    #[test]
    fn empty_structures_are_rejected() {
        let mut g = MaskGenerator::new(5);
        let mut s = space();
        s.smem_bits = 0;
        let err = g
            .draw(&CampaignSpec::new(Structure::SharedMemory), &s, &windows())
            .unwrap_err();
        assert_eq!(err, DrawError::EmptyStructure(Structure::SharedMemory));
        s.l1d_bits = None;
        let err = g
            .draw(&CampaignSpec::new(Structure::L1Data), &s, &windows())
            .unwrap_err();
        assert_eq!(err, DrawError::EmptyStructure(Structure::L1Data));
    }

    #[test]
    fn empty_windows_are_rejected() {
        let mut g = MaskGenerator::new(6);
        let err = g
            .draw(&CampaignSpec::new(Structure::L2), &space(), &[])
            .unwrap_err();
        assert_eq!(err, DrawError::EmptyWindows);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let spec = CampaignSpec::new(Structure::L1Tex).bits(2);
        let a = MaskGenerator::new(7)
            .campaign(&spec, &space(), &windows(), 20)
            .unwrap();
        let b = MaskGenerator::new(7)
            .campaign(&spec, &space(), &windows(), 20)
            .unwrap();
        assert_eq!(a, b);
        let c = MaskGenerator::new(8)
            .campaign(&spec, &space(), &windows(), 20)
            .unwrap();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn structure_names() {
        assert_eq!(Structure::RegisterFile.to_string(), "register file");
        assert_eq!(Structure::ALL.len(), 7);
        assert_eq!(Structure::PAPER.len(), 6);
        assert_eq!(Structure::ON_CHIP.len(), 5);
        assert!(!Structure::ON_CHIP.contains(&Structure::LocalMemory));
    }
}
