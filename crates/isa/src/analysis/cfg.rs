//! Control-flow graph construction over SASS-lite instruction streams.
//!
//! Blocks are split at every control transfer (`BRA`, `EXIT`), at every
//! barrier (`BAR` — so a basic block never spans a barrier interval
//! boundary, which the shared-memory race lint relies on), and at every
//! branch or reconvergence target (`BRA`/`SSY` operands).
//!
//! Successor rules mirror the simulator's SIMT front end:
//!
//! * unguarded `BRA t` → `[t]`;
//! * guarded `@P BRA t` → `[fallthrough, t]` (the warp may split);
//! * unguarded `EXIT` → `[]`;
//! * guarded `@P EXIT` → `[fallthrough]` (surviving lanes continue);
//! * everything else (including `SSY`, `SYNC`, `BAR`) falls through.
//!
//! `SSY`/`SYNC` manipulate the reconvergence stack but never redirect the
//! program counter, so they are plain fallthrough edges here; their targets
//! still begin blocks so the dominator analysis can talk about them.

use crate::instr::{Instr, Op};

/// The successor instruction indices of `instrs[i]`.
///
/// Targets outside the instruction stream are dropped (the assembler never
/// produces them, but hand-built kernels can).
pub fn instr_succs(instrs: &[Instr], i: usize) -> Vec<usize> {
    let n = instrs.len();
    let ins = &instrs[i];
    let fall = (i + 1 < n).then_some(i + 1);
    let mut out = Vec::with_capacity(2);
    match ins.op {
        Op::Bra { target } => {
            if ins.guard.is_some() {
                out.extend(fall);
            }
            if (target as usize) < n {
                out.push(target as usize);
            }
        }
        Op::Exit => {
            if ins.guard.is_some() {
                out.extend(fall);
            }
        }
        _ => out.extend(fall),
    }
    out
}

/// A maximal straight-line run of instructions `[start, end)` with a single
/// entry (the leader at `start`) and a single terminator (`end - 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction in the block.
    pub start: usize,
    /// One past the index of the last instruction in the block.
    pub end: usize,
    /// Successor block ids, in `instr_succs` order.
    pub succs: Vec<usize>,
    /// Predecessor block ids, sorted ascending.
    pub preds: Vec<usize>,
}

/// A control-flow graph over one kernel's instruction stream.
///
/// Block 0 is the entry block (it starts at instruction 0); an empty
/// instruction stream yields an empty graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG for an instruction stream.
    pub fn build(instrs: &[Instr]) -> Cfg {
        let n = instrs.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }

        // Leaders: entry, every branch/reconvergence target, and every
        // instruction following a block terminator.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (i, ins) in instrs.iter().enumerate() {
            match ins.op {
                Op::Bra { target } | Op::Ssy { target } => {
                    if (target as usize) < n {
                        leader[target as usize] = true;
                    }
                    let ends_block = matches!(ins.op, Op::Bra { .. });
                    if ends_block && i + 1 < n {
                        leader[i + 1] = true;
                    }
                }
                Op::Exit | Op::Bar if i + 1 < n => leader[i + 1] = true,
                _ => {}
            }
        }

        let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let mut block_of = vec![0usize; n];
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len());
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            for bo in &mut block_of[start..end] {
                *bo = b;
            }
            blocks.push(BasicBlock {
                start,
                end,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }

        for blk in &mut blocks {
            let last = blk.end - 1;
            blk.succs = instr_succs(instrs, last)
                .into_iter()
                .map(|i| block_of[i])
                .collect();
        }
        for b in 0..blocks.len() {
            for s in blocks[b].succs.clone() {
                if !blocks[s].preds.contains(&b) {
                    blocks[s].preds.push(b);
                }
            }
        }
        for blk in &mut blocks {
            blk.preds.sort_unstable();
        }

        Cfg { blocks, block_of }
    }

    /// The basic blocks, in instruction order (block 0 is the entry).
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `i`.
    pub fn block_of(&self, i: usize) -> usize {
        self.block_of[i]
    }

    /// Per-block reachability from the entry block.
    pub fn reachable_blocks(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Per-instruction reachability from instruction 0.
    pub fn reachable_instrs(&self) -> Vec<bool> {
        let blocks_ok = self.reachable_blocks();
        let mut out = vec![false; self.block_of.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            if blocks_ok[b] {
                for o in &mut out[blk.start..blk.end] {
                    *o = true;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Module;

    fn cfg_of(src: &str) -> Cfg {
        let m = Module::assemble(src).unwrap();
        Cfg::build(m.kernels()[0].instrs())
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of(".kernel k\n.params 1\n MOV R1, 1\n IADD R1, R1, 1\n EXIT\n");
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].start, 0);
        assert_eq!(cfg.blocks()[0].end, 3);
        assert!(cfg.blocks()[0].succs.is_empty());
    }

    #[test]
    fn guarded_branch_splits_three_ways() {
        // 0: ISETP  1: @P0 BRA skip  2: MOV  3: skip: EXIT
        let cfg = cfg_of(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n@P0 BRA skip\n MOV R1, 1\nskip:\n EXIT\n",
        );
        assert_eq!(cfg.blocks().len(), 3);
        // Entry block ends at the guarded branch, with fallthrough + target.
        assert_eq!(cfg.blocks()[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks()[1].succs, vec![2]);
        assert!(cfg.blocks()[2].succs.is_empty());
        assert_eq!(cfg.block_of(1), 0);
        assert_eq!(cfg.block_of(3), 2);
    }

    #[test]
    fn barrier_ends_a_block() {
        let cfg = cfg_of(".kernel k\n.params 1\n BAR\n MOV R1, 1\n EXIT\n");
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.blocks()[0].end, 1);
        assert_eq!(cfg.blocks()[0].succs, vec![1]);
    }

    #[test]
    fn code_after_unguarded_exit_is_unreachable() {
        let cfg = cfg_of(".kernel k\n.params 1\n EXIT\n MOV R1, 1\n EXIT\n");
        assert_eq!(cfg.blocks().len(), 2);
        let reach = cfg.reachable_blocks();
        assert!(reach[0] && !reach[1]);
        let ri = cfg.reachable_instrs();
        assert_eq!(ri, vec![true, false, false]);
    }

    #[test]
    fn guarded_exit_falls_through() {
        let cfg = cfg_of(".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n@P0 EXIT\n EXIT\n");
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.blocks()[0].succs, vec![1]);
        assert!(cfg.reachable_blocks().iter().all(|&r| r));
    }

    #[test]
    fn backward_branch_makes_a_loop() {
        // 0: MOV 1: top: IADD 2: ISETP 3: @P0 BRA top 4: EXIT
        let cfg = cfg_of(
            ".kernel k\n.params 1\n MOV R1, 0\ntop:\n IADD R1, R1, 1\n \
             ISETP.LT P0, R1, 4\n@P0 BRA top\n EXIT\n",
        );
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.blocks()[1].succs, vec![2, 1]);
        assert_eq!(cfg.blocks()[1].preds, vec![0, 1]);
    }

    #[test]
    fn empty_stream_is_empty_graph() {
        let cfg = Cfg::build(&[]);
        assert!(cfg.blocks().is_empty());
        assert!(cfg.reachable_blocks().is_empty());
    }
}
