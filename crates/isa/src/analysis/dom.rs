//! Dominator and post-dominator computation over the [`Cfg`], and the
//! SIMT reconvergence-point validation built on it.
//!
//! The solver is the classic iterative bit-vector dataflow: `dom(entry) =
//! {entry}`, `dom(b) = {b} ∪ ⋂ dom(preds)`, iterated to a fixed point.
//! Kernels are at most a few hundred instructions, so the quadratic worst
//! case is irrelevant; the payoff is that the result is the *full* relation
//! (`dominates(a, b)` for any pair), which is what the reconvergence check
//! needs.
//!
//! Post-dominance runs the same solver on the reverse graph against a
//! virtual exit node that every block without successors feeds into.  Note
//! that a *guarded* `EXIT` is not an exit edge — the warp falls through with
//! its surviving lanes — so "`t` post-dominates `b`" reads as: every thread
//! that leaves `b` and does not terminate passes through `t`.  That is
//! exactly the property an `SSY t` reconvergence push promises.

use super::cfg::Cfg;
use crate::instr::Op;
use crate::Kernel;

/// A dense `n × n` boolean relation, row-major over `u64` words.
#[derive(Debug, Clone)]
struct Relation {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl Relation {
    fn full(n: usize) -> Relation {
        let words = n.div_ceil(64).max(1);
        Relation {
            n,
            words,
            bits: vec![!0u64; n * words],
        }
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }

    fn set_only(&mut self, r: usize, c: usize) {
        let row = &mut self.bits[r * self.words..(r + 1) * self.words];
        row.fill(0);
        row[c / 64] |= 1 << (c % 64);
    }

    fn contains(&self, r: usize, c: usize) -> bool {
        self.bits[r * self.words + c / 64] >> (c % 64) & 1 == 1
    }

    /// `row(r) = ({r} ∪ ⋂ row(preds))`; returns whether the row changed.
    fn refine(&mut self, r: usize, preds: &[usize]) -> bool {
        let mut acc = vec![!0u64; self.words];
        for &p in preds {
            for (a, w) in acc.iter_mut().zip(self.row(p)) {
                *a &= w;
            }
        }
        acc[r / 64] |= 1 << (r % 64);
        // Mask out bits beyond n so full-initialized rows compare cleanly.
        if !self.n.is_multiple_of(64) {
            let last = acc.len() - 1;
            acc[last] &= (1u64 << (self.n % 64)) - 1;
        }
        let row = &mut self.bits[r * self.words..(r + 1) * self.words];
        let mut changed = false;
        for (dst, src) in row.iter_mut().zip(&acc) {
            let masked = *src;
            if *dst != masked {
                *dst = masked;
                changed = true;
            }
        }
        changed
    }
}

/// The dominator and post-dominator relations of one kernel's CFG.
#[derive(Debug, Clone)]
pub struct DomInfo {
    dom: Relation,
    pdom: Relation,
    /// Virtual-exit node id used by the post-dominator relation.
    exit: usize,
}

impl DomInfo {
    /// Computes both relations for a CFG.
    pub fn compute(cfg: &Cfg) -> DomInfo {
        let n = cfg.blocks().len();

        // Forward dominators.
        let mut dom = Relation::full(n.max(1));
        if n > 0 {
            dom.set_only(0, 0);
            let mut changed = true;
            while changed {
                changed = false;
                for b in 1..n {
                    if dom.refine(b, &cfg.blocks()[b].preds) {
                        changed = true;
                    }
                }
            }
        }

        // Post-dominators against a virtual exit node (id = n).
        let exit = n;
        let mut pdom = Relation::full(n + 1);
        pdom.set_only(exit, exit);
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let blk = &cfg.blocks()[b];
                let succs: Vec<usize> = if blk.succs.is_empty() {
                    vec![exit]
                } else {
                    blk.succs.clone()
                };
                if pdom.refine(b, &succs) {
                    changed = true;
                }
            }
        }

        DomInfo { dom, pdom, exit }
    }

    /// Whether block `a` dominates block `b` (every path from the entry to
    /// `b` passes through `a`; reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.dom.contains(b, a)
    }

    /// Whether block `a` post-dominates block `b` (every path from `b` to
    /// the program exit passes through `a`; reflexive).
    pub fn post_dominates(&self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.exit && b < self.exit);
        self.pdom.contains(b, a)
    }
}

/// `SSY` instructions whose reconvergence target does not post-dominate the
/// push site — the divergence they open can leave the warp permanently
/// split, which on real Kepler-class hardware deadlocks or silently
/// misexecutes.  Returns `(ssy_index, target_index)` pairs.
///
/// Unreachable `SSY`s are skipped (the unreachable-block lint reports the
/// underlying problem instead).
pub fn reconvergence_violations(kernel: &Kernel, cfg: &Cfg, dom: &DomInfo) -> Vec<(usize, u32)> {
    let instrs = kernel.instrs();
    let reach = cfg.reachable_instrs();
    let mut out = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        let Op::Ssy { target } = ins.op else { continue };
        if !reach[i] {
            continue;
        }
        let bad = (target as usize) >= instrs.len()
            || !dom.post_dominates(cfg.block_of(target as usize), cfg.block_of(i));
        if bad {
            out.push((i, target));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Module;

    fn analyze(src: &str) -> (Kernel, Cfg, DomInfo) {
        let m = Module::assemble(src).unwrap();
        let k = m.kernels()[0].clone();
        let cfg = Cfg::build(k.instrs());
        let dom = DomInfo::compute(&cfg);
        (k, cfg, dom)
    }

    const DIAMOND: &str = ".kernel k\n.params 1\n \
        ISETP.EQ P0, R0, 0\n \
        SSY join\n\
        @P0 BRA then\n \
        MOV R1, 1\n \
        BRA join\n\
        then:\n \
        MOV R1, 2\n\
        join:\n \
        SYNC\n \
        EXIT\n";

    #[test]
    fn diamond_dominance() {
        let (_, cfg, dom) = analyze(DIAMOND);
        // Entry dominates everything; join post-dominates everything.
        let join = cfg.block_of(6);
        for b in 0..cfg.blocks().len() {
            assert!(dom.dominates(0, b), "entry should dominate block {b}");
            assert!(dom.post_dominates(join, b), "join should pdom block {b}");
        }
        // Neither arm dominates the join.
        let then_b = cfg.block_of(5);
        assert!(!dom.dominates(then_b, join));
    }

    #[test]
    fn well_formed_reconvergence_passes() {
        let (k, cfg, dom) = analyze(DIAMOND);
        assert!(reconvergence_violations(&k, &cfg, &dom).is_empty());
    }

    #[test]
    fn ssy_into_one_arm_is_flagged() {
        // SSY points at the `then` arm, which the fallthrough path never
        // reaches — not a post-dominator of the push site.
        let (k, cfg, dom) = analyze(
            ".kernel k\n.params 1\n \
             ISETP.EQ P0, R0, 0\n \
             SSY then\n\
             @P0 BRA then\n \
             MOV R1, 1\n \
             BRA join\n\
             then:\n \
             MOV R1, 2\n\
             join:\n \
             SYNC\n \
             EXIT\n",
        );
        let v = reconvergence_violations(&k, &cfg, &dom);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, 1);
    }

    #[test]
    fn guarded_exit_does_not_break_postdominance() {
        // A lane-killing @P EXIT inside the straight line: the block after
        // it still post-dominates the entry because the warp falls through.
        let (k, cfg, dom) = analyze(
            ".kernel k\n.params 1\n \
             ISETP.GE P0, R0, 64\n\
             @P0 EXIT\n \
             MOV R1, 1\n \
             EXIT\n",
        );
        let tail = cfg.block_of(2);
        assert!(dom.post_dominates(tail, 0));
        assert!(reconvergence_violations(&k, &cfg, &dom).is_empty());
    }
}
