//! Static lint passes over SASS-lite kernels.
//!
//! Five lints plus the reconvergence check from [`super::dom`]:
//!
//! * **uninitialized_read** — a general-purpose register is read before any
//!   definition reaches it on some path (guard-aware: a def under `@P` only
//!   initializes reads under the same `@P`).  Params `R0..Rk` arrive
//!   preloaded and count as initialized; the simulator does zero-fill
//!   registers, so this is a hygiene lint, not a soundness one.
//! * **barrier_divergence** — a `BAR` that is guarded, or that sits inside
//!   an open `SSY`/`SYNC` divergence region; on hardware a barrier that not
//!   all CTA threads reach hangs the CTA.
//! * **shared_race** — two shared-memory accesses (at least one a store)
//!   that may touch the same address from different threads with no `BAR`
//!   between them.  Addresses are tracked as affine forms
//!   `stride · tid.x + base`; guarded accesses are skipped (the classic
//!   `@P` tree-reduction pattern serializes by guard, and flagging it
//!   would drown real findings).
//! * **unreachable_code** — basic blocks no path from the entry reaches.
//! * **write_never_read** — a register written by reachable code but never
//!   read by any reachable instruction.
//! * **bad_reconvergence** — an `SSY` whose target does not post-dominate
//!   the push site (see [`super::dom::reconvergence_violations`]).

use super::cfg::{instr_succs, Cfg};
use super::dom::{reconvergence_violations, DomInfo};
use super::liveness::Liveness;
use crate::instr::{Guard, MemSpace, Op, Operand};
use crate::op::{BitOp, IntOp};
use crate::reg::SpecialReg;
use crate::{Kernel, Reg};
use std::collections::BTreeSet;
use std::fmt;

/// One static-analysis finding in a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// Register `reg` may be read at `instr` before any matching definition.
    UninitializedRead {
        /// Instruction index of the offending read.
        instr: usize,
        /// The register read.
        reg: Reg,
    },
    /// A `BAR` not all CTA threads are guaranteed to reach.
    BarrierDivergence {
        /// Instruction index of the barrier.
        instr: usize,
        /// Whether the barrier itself carries a guard.
        guarded: bool,
        /// `SSY` nesting depth at the barrier (0 = uniform control flow).
        depth: u32,
    },
    /// Conflicting shared-memory accesses with no separating barrier.
    SharedRace {
        /// Instruction index of the first access (lowest index).
        a: usize,
        /// Instruction index of the second access (may equal `a` when an
        /// access conflicts with itself across threads).
        b: usize,
    },
    /// Instructions `[start, end)` cannot be reached from the kernel entry.
    UnreachableCode {
        /// First unreachable instruction index.
        start: usize,
        /// One past the last unreachable instruction index.
        end: usize,
    },
    /// Register `reg` is written but its value is never read.
    WriteNeverRead {
        /// The register in question.
        reg: Reg,
        /// Instruction index of the first reachable write.
        first_write: usize,
    },
    /// An `SSY` whose target does not post-dominate the push site.
    BadReconvergence {
        /// Instruction index of the `SSY`.
        ssy: usize,
        /// The reconvergence target it names.
        target: u32,
    },
}

impl Finding {
    /// Stable machine-readable lint name (the `--json` `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Finding::UninitializedRead { .. } => "uninitialized_read",
            Finding::BarrierDivergence { .. } => "barrier_divergence",
            Finding::SharedRace { .. } => "shared_race",
            Finding::UnreachableCode { .. } => "unreachable_code",
            Finding::WriteNeverRead { .. } => "write_never_read",
            Finding::BadReconvergence { .. } => "bad_reconvergence",
        }
    }

    /// The primary instruction index the finding anchors to.
    pub fn instr(&self) -> usize {
        match *self {
            Finding::UninitializedRead { instr, .. } => instr,
            Finding::BarrierDivergence { instr, .. } => instr,
            Finding::SharedRace { a, .. } => a,
            Finding::UnreachableCode { start, .. } => start,
            Finding::WriteNeverRead { first_write, .. } => first_write,
            Finding::BadReconvergence { ssy, .. } => ssy,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Finding::UninitializedRead { instr, reg } => {
                write!(f, "instr {instr}: read of possibly-uninitialized {reg}")
            }
            Finding::BarrierDivergence {
                instr,
                guarded,
                depth,
            } => {
                if guarded {
                    write!(f, "instr {instr}: BAR under a guard predicate")
                } else {
                    write!(
                        f,
                        "instr {instr}: BAR inside a divergent region (SSY depth {depth})"
                    )
                }
            }
            Finding::SharedRace { a, b } if a == b => {
                write!(
                    f,
                    "instr {a}: shared-memory store may race with itself across threads"
                )
            }
            Finding::SharedRace { a, b } => {
                write!(
                    f,
                    "instrs {a} and {b}: conflicting shared-memory accesses with no barrier between"
                )
            }
            Finding::UnreachableCode { start, end } => {
                write!(f, "instrs {start}..{end}: unreachable from kernel entry")
            }
            Finding::WriteNeverRead { reg, first_write } => {
                write!(f, "instr {first_write}: {reg} is written but never read")
            }
            Finding::BadReconvergence { ssy, target } => {
                write!(
                    f,
                    "instr {ssy}: SSY target {target} does not post-dominate the push site"
                )
            }
        }
    }
}

/// Runs every lint pass on one kernel and returns the findings sorted by
/// anchor instruction, then kind.
pub fn lint_kernel(kernel: &Kernel) -> Vec<Finding> {
    let cfg = Cfg::build(kernel.instrs());
    let dom = DomInfo::compute(&cfg);
    let liveness = Liveness::compute(kernel);

    let mut findings = Vec::new();
    findings.extend(lint_unreachable(&cfg));
    findings.extend(
        reconvergence_violations(kernel, &cfg, &dom)
            .into_iter()
            .map(|(ssy, target)| Finding::BadReconvergence { ssy, target }),
    );
    findings.extend(lint_write_never_read(kernel, &liveness));
    findings.extend(lint_uninitialized(kernel, &cfg));
    findings.extend(lint_barrier_divergence(kernel));
    findings.extend(lint_shared_races(kernel, &cfg));
    findings.sort_by_key(|f| (f.instr(), f.kind()));
    findings
}

fn lint_unreachable(cfg: &Cfg) -> Vec<Finding> {
    let reach = cfg.reachable_blocks();
    let mut out = Vec::new();
    // Coalesce adjacent unreachable blocks into one finding.
    let mut open: Option<(usize, usize)> = None;
    for (b, blk) in cfg.blocks().iter().enumerate() {
        if !reach[b] {
            open = match open {
                Some((s, e)) if e == blk.start => Some((s, blk.end)),
                Some(range) => {
                    out.push(Finding::UnreachableCode {
                        start: range.0,
                        end: range.1,
                    });
                    Some((blk.start, blk.end))
                }
                None => Some((blk.start, blk.end)),
            };
        }
    }
    if let Some((start, end)) = open {
        out.push(Finding::UnreachableCode { start, end });
    }
    out
}

fn lint_write_never_read(kernel: &Kernel, liveness: &Liveness) -> Vec<Finding> {
    let mut out = Vec::new();
    for r in liveness.write_never_read() {
        let first_write = (0..kernel.instrs().len())
            .find(|&i| {
                liveness.is_reachable(i)
                    && kernel.instrs()[i].op.dest_reg().map(Reg::index) == Some(r)
            })
            .unwrap_or(0);
        out.push(Finding::WriteNeverRead {
            reg: Reg::new(r).expect("register index from kernel"),
            first_write,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Uninitialized-read lint: forward guard-aware must-initialization.
// ---------------------------------------------------------------------------

/// Must-initialization state of one register on entry to a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Init {
    /// No definition is guaranteed to have happened.
    No,
    /// Defined only under this guard; reads under the same guard are clean.
    Under(Guard),
    /// Defined on every path.
    Always,
}

impl Init {
    fn meet(self, other: Init) -> Init {
        match (self, other) {
            (Init::Always, x) | (x, Init::Always) => x,
            (Init::Under(a), Init::Under(b)) if a == b => Init::Under(a),
            _ => Init::No,
        }
    }
}

fn entry_inits(kernel: &Kernel) -> Vec<Init> {
    let n = kernel.num_regs().max(kernel.num_params()) as usize;
    let mut st = vec![Init::No; n.max(1)];
    for r in st.iter_mut().take(kernel.num_params() as usize) {
        *r = Init::Always;
    }
    st
}

/// One instruction's effect on the must-init state; reads are reported
/// through `on_read` *before* the instruction's own definition applies.
fn init_transfer(ins: &crate::Instr, st: &mut [Init], mut on_read: impl FnMut(Reg, Init)) {
    for r in ins.op.src_regs().into_iter().flatten() {
        let state = st[r.index() as usize];
        let clean = match state {
            Init::Always => true,
            Init::Under(g) => ins.guard == Some(g),
            Init::No => false,
        };
        if !clean {
            on_read(r, state);
        }
    }
    // A predicate redefinition invalidates any `Under` that tested it.
    if let Op::ISetp { p, .. } | Op::FSetp { p, .. } = ins.op {
        for s in st.iter_mut() {
            if matches!(s, Init::Under(g) if g.pred == p) {
                *s = Init::No;
            }
        }
    }
    if let Some(d) = ins.op.dest_reg() {
        let slot = &mut st[d.index() as usize];
        *slot = match ins.guard {
            None => Init::Always,
            Some(g) => match *slot {
                Init::Always => Init::Always,
                // Complementary guards cover both paths.
                Init::Under(h) if h.pred == g.pred && h.negate != g.negate => Init::Always,
                _ => Init::Under(g),
            },
        };
    }
}

fn lint_uninitialized(kernel: &Kernel, cfg: &Cfg) -> Vec<Finding> {
    let instrs = kernel.instrs();
    if instrs.is_empty() {
        return Vec::new();
    }
    let nb = cfg.blocks().len();
    let mut in_state: Vec<Option<Vec<Init>>> = vec![None; nb];
    in_state[0] = Some(entry_inits(kernel));
    let mut work: Vec<usize> = vec![0];
    while let Some(b) = work.pop() {
        let blk = &cfg.blocks()[b];
        let mut st = in_state[b].clone().expect("worklist entries have state");
        for ins in &instrs[blk.start..blk.end] {
            init_transfer(ins, &mut st, |_, _| {});
        }
        for &s in &blk.succs {
            let merged = match &in_state[s] {
                None => st.clone(),
                Some(old) => old.iter().zip(&st).map(|(&a, &b)| a.meet(b)).collect(),
            };
            if in_state[s].as_ref() != Some(&merged) {
                in_state[s] = Some(merged);
                work.push(s);
            }
        }
    }
    // Reporting pass over the stable states.
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        let Some(start_state) = in_state[b].clone() else {
            continue; // unreachable block, reported separately
        };
        let mut st = start_state;
        for (off, ins) in instrs[blk.start..blk.end].iter().enumerate() {
            let i = blk.start + off;
            init_transfer(ins, &mut st, |r, _| {
                if seen.insert((i, r.index())) {
                    out.push(Finding::UninitializedRead { instr: i, reg: r });
                }
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Barrier-divergence lint: SSY nesting depth + guarded barriers.
// ---------------------------------------------------------------------------

fn lint_barrier_divergence(kernel: &Kernel) -> Vec<Finding> {
    let instrs = kernel.instrs();
    if instrs.is_empty() {
        return Vec::new();
    }
    // Propagate the SSY stack depth along instruction edges; the first
    // depth to reach an instruction wins (a mismatch would itself be a
    // malformed-reconvergence problem that the SSY lint reports).
    let mut depth: Vec<Option<u32>> = vec![None; instrs.len()];
    depth[0] = Some(0);
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        let d = depth[i].expect("worklist entries have depth");
        let after = match instrs[i].op {
            Op::Ssy { .. } => d + 1,
            Op::Sync => d.saturating_sub(1),
            _ => d,
        };
        for s in instr_succs(instrs, i) {
            if depth[s].is_none() {
                depth[s] = Some(after);
                work.push(s);
            }
        }
    }
    let mut out = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        if !matches!(ins.op, Op::Bar) {
            continue;
        }
        let Some(d) = depth[i] else { continue };
        if ins.guard.is_some() || d > 0 {
            out.push(Finding::BarrierDivergence {
                instr: i,
                guarded: ins.guard.is_some(),
                depth: d,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shared-memory race lint: affine address provenance + barrier intervals.
// ---------------------------------------------------------------------------

/// The thread-uniform part of an affine value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Base {
    /// A known constant.
    Const(i64),
    /// `offset` plus an opaque value that is uniform across the CTA
    /// (a kernel parameter or a uniform special register), keyed by `id`.
    Sym(u16, i64),
    /// Uniform across the CTA, value unknown.
    Unknown,
}

/// The thread-varying generator an affine value is linear in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    /// `tid.x`.  Treated as thread-unique — exact for 1-D CTAs, a
    /// documented heuristic for 2-D ones (which address shared memory via
    /// [`Axis::Flat`] in every bundled workload).
    TidX,
    /// `tid.y`.  **Not** thread-unique: threads with equal `tid.y` differ
    /// only in `tid.x`.
    TidY,
    /// `tid.y * ntid.x` — the partial product of the flattened id; not
    /// thread-unique on its own.
    TidYxNtidX,
    /// `tid.y * ntid.x + tid.x` — the canonical flattened CTA thread id;
    /// thread-unique by construction (`tid.x < ntid.x`).
    Flat,
}

impl Axis {
    /// Whether distinct threads are guaranteed distinct generator values.
    fn injective(self) -> bool {
        matches!(self, Axis::TidX | Axis::Flat)
    }
}

/// Abstract value: affine in one thread axis, or arbitrary per-thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// `stride * axis + base`, with `base` uniform across the CTA.
    /// `stride == 0` is the uniform case (axis normalized to `TidX`).
    Affine {
        /// Per-generator multiplier (0 = uniform).
        stride: i64,
        /// The generator the value is linear in.
        axis: Axis,
        /// The uniform component.
        base: Base,
    },
    /// Not expressible as affine in a single thread axis.
    Varying,
}

/// Symbol id for `SR_NTID.X`, needed to recognize the flattened-id idiom.
const NTIDX_SYM: u16 = 0x103;

fn affine(stride: i64, axis: Axis, base: Base) -> AbsVal {
    AbsVal::Affine {
        stride,
        axis: if stride == 0 { Axis::TidX } else { axis },
        base,
    }
}

impl AbsVal {
    const ZERO: AbsVal = AbsVal::Affine {
        stride: 0,
        axis: Axis::TidX,
        base: Base::Const(0),
    };

    fn constant(v: i64) -> AbsVal {
        affine(0, Axis::TidX, Base::Const(v))
    }

    fn uniform_sym(id: u16) -> AbsVal {
        affine(0, Axis::TidX, Base::Sym(id, 0))
    }

    fn is_uniform(self) -> bool {
        matches!(self, AbsVal::Affine { stride: 0, .. })
    }

    fn as_const(self) -> Option<i64> {
        match self {
            AbsVal::Affine {
                stride: 0,
                base: Base::Const(c),
                ..
            } => Some(c),
            _ => None,
        }
    }

    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            return self;
        }
        match (self, other) {
            (
                AbsVal::Affine {
                    stride: s1,
                    axis: a1,
                    ..
                },
                AbsVal::Affine {
                    stride: s2,
                    axis: a2,
                    ..
                },
            ) if s1 == s2 && a1 == a2 => affine(s1, a1, Base::Unknown),
            _ => AbsVal::Varying,
        }
    }

    fn add(self, other: AbsVal) -> AbsVal {
        let (
            AbsVal::Affine {
                stride: s1,
                axis: a1,
                base: b1,
            },
            AbsVal::Affine {
                stride: s2,
                axis: a2,
                base: b2,
            },
        ) = (self, other)
        else {
            return AbsVal::Varying;
        };
        let base = match (b1, b2) {
            (Base::Const(a), Base::Const(b)) => Base::Const(a.wrapping_add(b)),
            (Base::Sym(id, o), Base::Const(c)) | (Base::Const(c), Base::Sym(id, o)) => {
                Base::Sym(id, o.wrapping_add(c))
            }
            _ => Base::Unknown,
        };
        if s1 == 0 || s2 == 0 || a1 == a2 {
            let axis = if s1 != 0 { a1 } else { a2 };
            return affine(s1.wrapping_add(s2), axis, base);
        }
        // tid.y·ntid.x + tid.x completes the flattened thread id when both
        // halves carry the same stride.
        match (a1, a2) {
            (Axis::TidYxNtidX, Axis::TidX) | (Axis::TidX, Axis::TidYxNtidX) if s1 == s2 => {
                affine(s1, Axis::Flat, base)
            }
            _ => AbsVal::Varying,
        }
    }

    fn neg(self) -> AbsVal {
        match self {
            AbsVal::Affine { stride, axis, base } => affine(
                stride.wrapping_neg(),
                axis,
                match base {
                    Base::Const(c) => Base::Const(c.wrapping_neg()),
                    _ => Base::Unknown,
                },
            ),
            AbsVal::Varying => AbsVal::Varying,
        }
    }

    fn scale(self, k: i64) -> AbsVal {
        match self {
            AbsVal::Affine { stride, axis, base } => affine(
                stride.wrapping_mul(k),
                axis,
                match base {
                    Base::Const(c) => Base::Const(c.wrapping_mul(k)),
                    // A scaled uniform symbol is still uniform.
                    _ => Base::Unknown,
                },
            ),
            AbsVal::Varying => AbsVal::Varying,
        }
    }

    /// Fallback for operations the affine form cannot model: the result is
    /// still CTA-uniform when every input is.
    fn opaque(uniform: bool) -> AbsVal {
        if uniform {
            affine(0, Axis::TidX, Base::Unknown)
        } else {
            AbsVal::Varying
        }
    }
}

/// Abstract multiply, recognizing `tid.y * ntid.x` (the flattened-id
/// partial product) in addition to constant scaling.
fn abs_mul(va: AbsVal, vb: AbsVal) -> AbsVal {
    let unit_tidy = |v: AbsVal| {
        matches!(
            v,
            AbsVal::Affine {
                stride: 1,
                axis: Axis::TidY,
                base: Base::Const(0),
            }
        )
    };
    let ntidx = |v: AbsVal| v == AbsVal::uniform_sym(NTIDX_SYM);
    if (unit_tidy(va) && ntidx(vb)) || (unit_tidy(vb) && ntidx(va)) {
        return affine(1, Axis::TidYxNtidX, Base::Const(0));
    }
    match (va.as_const(), vb.as_const()) {
        (_, Some(k)) => va.scale(k),
        (Some(k), _) => vb.scale(k),
        _ => AbsVal::opaque(va.is_uniform() && vb.is_uniform()),
    }
}

fn special_val(sr: SpecialReg) -> AbsVal {
    match sr {
        SpecialReg::TidX => affine(1, Axis::TidX, Base::Const(0)),
        SpecialReg::TidY => affine(1, Axis::TidY, Base::Const(0)),
        // Uniform across the CTA: block coordinates and launch dimensions.
        SpecialReg::CtaIdX => AbsVal::uniform_sym(0x100),
        SpecialReg::CtaIdY => AbsVal::uniform_sym(0x101),
        SpecialReg::CtaIdZ => AbsVal::uniform_sym(0x102),
        SpecialReg::NTidX => AbsVal::uniform_sym(NTIDX_SYM),
        SpecialReg::NTidY => AbsVal::uniform_sym(0x104),
        SpecialReg::NTidZ => AbsVal::uniform_sym(0x105),
        SpecialReg::NCtaIdX => AbsVal::uniform_sym(0x106),
        SpecialReg::NCtaIdY => AbsVal::uniform_sym(0x107),
        SpecialReg::NCtaIdZ => AbsVal::uniform_sym(0x108),
        // Thread-dependent but not affine in any tracked axis.
        SpecialReg::TidZ | SpecialReg::LaneId | SpecialReg::WarpId => AbsVal::Varying,
    }
}

fn abs_operand(st: &[AbsVal], o: Operand) -> AbsVal {
    match o {
        Operand::Reg(r) => st[r.index() as usize],
        Operand::Imm(v) => AbsVal::constant(v as i32 as i64),
    }
}

/// Forward transfer of one instruction over the affine-value state.
fn abs_transfer(ins: &crate::Instr, st: &mut [AbsVal]) {
    let Some(d) = ins.op.dest_reg() else { return };
    let new = match ins.op {
        Op::Mov { src, .. } => abs_operand(st, src),
        Op::S2r { sr, .. } => special_val(sr),
        Op::IArith { op, a, b, .. } => {
            let (va, vb) = (st[a.index() as usize], abs_operand(st, b));
            match op {
                IntOp::Add => va.add(vb),
                IntOp::Sub => va.add(vb.neg()),
                IntOp::Mul => abs_mul(va, vb),
                IntOp::Min | IntOp::Max => AbsVal::opaque(va.is_uniform() && vb.is_uniform()),
            }
        }
        Op::IMad { a, b, c, .. } => {
            let (va, vb) = (st[a.index() as usize], abs_operand(st, b));
            let vc = st[c.index() as usize];
            abs_mul(va, vb).add(vc)
        }
        Op::Bit { op, a, b, .. } => {
            let (va, vb) = (st[a.index() as usize], abs_operand(st, b));
            match (op, vb.as_const()) {
                (BitOp::Shl, Some(k)) if (0..32).contains(&k) => va.scale(1i64 << k),
                _ => AbsVal::opaque(va.is_uniform() && vb.is_uniform()),
            }
        }
        Op::Not { a, .. } => AbsVal::opaque(st[a.index() as usize].is_uniform()),
        Op::FArith { a, b, .. } => {
            AbsVal::opaque(st[a.index() as usize].is_uniform() && abs_operand(st, b).is_uniform())
        }
        Op::FFma { a, b, c, .. } => AbsVal::opaque(
            st[a.index() as usize].is_uniform()
                && abs_operand(st, b).is_uniform()
                && st[c.index() as usize].is_uniform(),
        ),
        Op::FUnary { a, .. } | Op::I2f { a, .. } | Op::F2i { a, .. } => {
            AbsVal::opaque(st[a.index() as usize].is_uniform())
        }
        Op::Sel { a, b, .. } => {
            let (va, vb) = (st[a.index() as usize], abs_operand(st, b));
            if va == vb {
                va
            } else {
                // The selector predicate may differ per thread.
                AbsVal::Varying
            }
        }
        // A constant-space load with a uniform address yields a uniform
        // value; every other load is per-thread data.
        Op::Ld { space, addr, .. } => {
            AbsVal::opaque(space == MemSpace::Const && st[addr.index() as usize].is_uniform())
        }
        _ => return,
    };
    let slot = &mut st[d.index() as usize];
    // A predicated definition may not happen: join with the old value.
    *slot = if ins.guard.is_some() {
        slot.join(new)
    } else {
        new
    };
}

/// One shared-memory access with its resolved abstract address.
struct SmemAccess {
    instr: usize,
    is_store: bool,
    addr: AbsVal,
    /// Abstract value stored (loads: `None`).
    value: Option<AbsVal>,
}

/// Whether two accesses may touch the same shared address from two
/// *different* threads.
fn may_alias_cross_thread(a: &SmemAccess, b: &SmemAccess) -> bool {
    let (
        AbsVal::Affine {
            stride: s1,
            axis: a1,
            base: b1,
        },
        AbsVal::Affine {
            stride: s2,
            axis: a2,
            base: b2,
        },
    ) = (a.addr, b.addr)
    else {
        return true; // any Varying address: assume the worst
    };
    if s1 != s2 || a1 != a2 {
        return true;
    }
    // Same stride and axis: collision requires base delta = stride · Δaxis.
    let delta = match (b1, b2) {
        (Base::Const(x), Base::Const(y)) => x - y,
        (Base::Sym(i, x), Base::Sym(j, y)) if i == j => x - y,
        _ => return true, // incomparable uniform bases
    };
    if s1 == 0 {
        // Uniform address on both sides: every thread hits the same slot
        // when the bases coincide.  The one benign shape is a single
        // instruction storing a CTA-uniform value.
        let same_slot = delta == 0;
        if !same_slot {
            return false;
        }
        if a.instr == b.instr {
            return !matches!(a.value, Some(v) if v.is_uniform());
        }
        return true;
    }
    if delta % s1 != 0 {
        return false;
    }
    // Divisible delta: a thread-unique axis still guarantees disjoint
    // slots at Δ = 0; a shared axis (tid.y, tid.y·ntid.x) does not — two
    // threads can agree on the generator value.
    delta != 0 || !a1.injective()
}

/// Instructions reachable from `start`'s successors without crossing a
/// `BAR` (barriers are entered but not passed through).
fn reach_without_barrier(instrs: &[crate::Instr], start: usize) -> Vec<bool> {
    let mut seen = vec![false; instrs.len()];
    let mut stack: Vec<usize> = instr_succs(instrs, start);
    while let Some(i) = stack.pop() {
        if seen[i] {
            continue;
        }
        seen[i] = true;
        if matches!(instrs[i].op, Op::Bar) {
            continue;
        }
        stack.extend(instr_succs(instrs, i));
    }
    seen
}

fn lint_shared_races(kernel: &Kernel, cfg: &Cfg) -> Vec<Finding> {
    let instrs = kernel.instrs();
    if instrs.is_empty() {
        return Vec::new();
    }
    let nregs = (kernel.num_regs().max(kernel.num_params()) as usize).max(1);

    // Fixed point of the affine-value analysis over block entry states.
    let nb = cfg.blocks().len();
    let mut in_state: Vec<Option<Vec<AbsVal>>> = vec![None; nb];
    let mut entry = vec![AbsVal::ZERO; nregs];
    for (i, v) in entry
        .iter_mut()
        .take(kernel.num_params() as usize)
        .enumerate()
    {
        *v = AbsVal::uniform_sym(i as u16);
    }
    in_state[0] = Some(entry);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let blk = &cfg.blocks()[b];
        let mut st = in_state[b].clone().expect("worklist entries have state");
        for ins in &instrs[blk.start..blk.end] {
            abs_transfer(ins, &mut st);
        }
        for &s in &blk.succs {
            let merged = match &in_state[s] {
                None => st.clone(),
                Some(old) => old.iter().zip(&st).map(|(&a, &b)| a.join(b)).collect(),
            };
            if in_state[s].as_ref() != Some(&merged) {
                in_state[s] = Some(merged);
                work.push(s);
            }
        }
    }

    // Collect unguarded shared accesses with their stable abstract address.
    let mut accesses: Vec<SmemAccess> = Vec::new();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        let Some(start_state) = in_state[b].clone() else {
            continue;
        };
        let mut st = start_state;
        for (off, ins) in instrs[blk.start..blk.end].iter().enumerate() {
            let i = blk.start + off;
            match ins.op {
                Op::Ld {
                    space: MemSpace::Shared,
                    addr,
                    offset,
                    ..
                } if ins.guard.is_none() => accesses.push(SmemAccess {
                    instr: i,
                    is_store: false,
                    addr: st[addr.index() as usize].add(AbsVal::constant(offset as i64)),
                    value: None,
                }),
                Op::St {
                    space: MemSpace::Shared,
                    addr,
                    offset,
                    v,
                } if ins.guard.is_none() => accesses.push(SmemAccess {
                    instr: i,
                    is_store: true,
                    addr: st[addr.index() as usize].add(AbsVal::constant(offset as i64)),
                    value: Some(st[v.index() as usize]),
                }),
                _ => {}
            }
            abs_transfer(ins, &mut st);
        }
    }

    // Pair up accesses in the same barrier interval.
    let reaches: Vec<Vec<bool>> = accesses
        .iter()
        .map(|a| reach_without_barrier(instrs, a.instr))
        .collect();
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if !a.is_store && !b.is_store {
                continue;
            }
            // Two threads run the same instruction concurrently, so a
            // self-pair is always in one barrier interval; distinct
            // accesses need a barrier-free path in either direction.
            let same_interval = i == j || reaches[i][b.instr] || reaches[j][a.instr];
            if !same_interval {
                continue;
            }
            if may_alias_cross_thread(a, b) && seen.insert((a.instr, b.instr)) {
                out.push(Finding::SharedRace {
                    a: a.instr.min(b.instr),
                    b: a.instr.max(b.instr),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Module;

    fn lint(src: &str) -> Vec<Finding> {
        let m = Module::assemble(src).unwrap();
        lint_kernel(&m.kernels()[0])
    }

    fn kinds(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(Finding::kind).collect()
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let f = lint(
            ".kernel k\n.params 2\n S2R R2, SR_TID.X\n SHL R3, R2, 2\n IADD R4, R0, R3\n \
             LDG R5, [R4]\n IADD R5, R5, R5\n IADD R4, R1, R3\n STG [R4], R5\n EXIT\n",
        );
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn uninit_read_is_flagged() {
        let f = lint(".kernel k\n.params 1\n IADD R2, R1, 1\n STG [R0], R2\n EXIT\n");
        assert!(
            f.iter().any(
                |x| matches!(x, Finding::UninitializedRead { instr: 0, reg } if reg.index() == 1)
            ),
            "{f:?}"
        );
    }

    #[test]
    fn guarded_def_initializes_matching_guarded_read() {
        // Write R1 under @P0, read it under @P0: clean.  Read it
        // unguarded afterwards: flagged.
        let f = lint(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n@P0 MOV R1, 5\n@P0 STG [R0], R1\n \
             STG [R0], R1\n EXIT\n",
        );
        let uninit: Vec<_> = f
            .iter()
            .filter(|x| matches!(x, Finding::UninitializedRead { .. }))
            .collect();
        assert_eq!(uninit.len(), 1, "{f:?}");
        assert!(matches!(
            uninit[0],
            Finding::UninitializedRead { instr: 3, .. }
        ));
    }

    #[test]
    fn complementary_guards_count_as_full_init() {
        let f = lint(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n@P0 MOV R1, 5\n@!P0 MOV R1, 9\n \
             STG [R0], R1\n EXIT\n",
        );
        assert!(
            !kinds(&f).contains(&"uninitialized_read"),
            "complementary guards fully initialize: {f:?}"
        );
    }

    #[test]
    fn pred_redef_invalidates_guarded_init() {
        let f = lint(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n@P0 MOV R1, 5\n \
             ISETP.NE P0, R0, 0\n@P0 STG [R0], R1\n EXIT\n",
        );
        assert!(kinds(&f).contains(&"uninitialized_read"), "{f:?}");
    }

    #[test]
    fn guarded_barrier_is_flagged() {
        let f = lint(".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n@P0 BAR\n EXIT\n");
        assert!(
            f.iter()
                .any(|x| matches!(x, Finding::BarrierDivergence { guarded: true, .. })),
            "{f:?}"
        );
    }

    #[test]
    fn barrier_inside_divergent_region_is_flagged() {
        let f = lint(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n SSY join\n@P0 BRA join\n BAR\n\
             join:\n SYNC\n EXIT\n",
        );
        assert!(
            f.iter().any(
                |x| matches!(x, Finding::BarrierDivergence { guarded: false, depth, .. } if *depth > 0)
            ),
            "{f:?}"
        );
    }

    #[test]
    fn barrier_after_reconvergence_is_clean() {
        let f = lint(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n SSY join\n@P0 BRA join\n NOP\n\
             join:\n SYNC\n BAR\n EXIT\n",
        );
        assert!(!kinds(&f).contains(&"barrier_divergence"), "{f:?}");
    }

    #[test]
    fn unreachable_code_is_flagged_and_coalesced() {
        let f = lint(".kernel k\n.params 1\n EXIT\n NOP\n NOP\n EXIT\n");
        assert_eq!(
            f,
            vec![Finding::UnreachableCode { start: 1, end: 4 }],
            "{f:?}"
        );
    }

    #[test]
    fn write_never_read_is_flagged() {
        let f = lint(".kernel k\n.params 1\n MOV R1, 7\n EXIT\n");
        assert!(
            f.iter().any(
                |x| matches!(x, Finding::WriteNeverRead { reg, first_write: 0 } if reg.index() == 1)
            ),
            "{f:?}"
        );
    }

    #[test]
    fn barrier_separated_neighbor_read_is_clean() {
        // Stage: s[tid] = g[tid]; BAR; read neighbor s[tid + 128] and write
        // the sum back to *global* memory — the only smem store is fenced
        // off from the cross-thread read by the barrier.
        let f = lint(
            ".kernel k\n.params 1\n.smem 1024\n \
             S2R R1, SR_TID.X\n SHL R2, R1, 2\n IADD R3, R0, R2\n LDG R4, [R3]\n \
             STS [R2], R4\n BAR\n \
             LDS R5, [R2+512]\n IADD R5, R5, R4\n STG [R3], R5\n EXIT\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_barrier_race_is_flagged() {
        // Same stage with the BAR removed: thread t reads s[t + 128] while
        // thread t + 128 is storing that very slot.
        let f = lint(
            ".kernel k\n.params 1\n.smem 1024\n \
             S2R R1, SR_TID.X\n SHL R2, R1, 2\n IADD R3, R0, R2\n LDG R4, [R3]\n \
             STS [R2], R4\n \
             LDS R5, [R2+512]\n IADD R5, R5, R4\n STG [R3], R5\n EXIT\n",
        );
        assert!(kinds(&f).contains(&"shared_race"), "{f:?}");
    }

    #[test]
    fn per_thread_slots_do_not_race() {
        // Each thread only ever touches s[tid]: no cross-thread alias.
        let f = lint(
            ".kernel k\n.params 1\n.smem 512\n \
             S2R R1, SR_TID.X\n SHL R2, R1, 2\n STS [R2], R1\n LDS R3, [R2]\n \
             IADD R3, R3, 1\n STS [R2], R3\n STG [R0], R3\n EXIT\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn uniform_store_of_varying_value_races_with_itself() {
        // Every thread stores its own tid to s[0].
        let f = lint(".kernel k\n.params 1\n.smem 64\n S2R R1, SR_TID.X\n STS [R1], R1\n EXIT\n");
        // tid-strided with stride 1 (byte-granularity overlap is not
        // modelled: 4-byte accesses at stride 1 *do* overlap, but the
        // word-granularity abstraction treats slots as disjoint).  Use a
        // genuinely uniform address instead:
        let g = lint(
            ".kernel k\n.params 1\n.smem 64\n S2R R1, SR_TID.X\n MOV R2, 0\n STS [R2], R1\n EXIT\n",
        );
        assert!(!kinds(&f).contains(&"shared_race"), "{f:?}");
        assert!(kinds(&g).contains(&"shared_race"), "{g:?}");
    }

    #[test]
    fn guarded_accesses_are_skipped() {
        // Classic guarded reduction idiom: only guarded lanes touch
        // overlapping slots; the guard serializes by construction.
        let f = lint(
            ".kernel k\n.params 1\n.smem 512\n \
             S2R R1, SR_TID.X\n SHL R2, R1, 2\n ISETP.LT P1, R1, 64\n\
             @P1 LDS R3, [R2+256]\n@P1 LDS R4, [R2]\n@P1 IADD R4, R4, R3\n@P1 STS [R2], R4\n \
             EXIT\n",
        );
        assert!(!kinds(&f).contains(&"shared_race"), "{f:?}");
    }

    #[test]
    fn bad_reconvergence_reported_through_lint() {
        let f = lint(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n SSY then\n@P0 BRA then\n \
             MOV R1, 1\n BRA join\nthen:\n MOV R1, 2\njoin:\n SYNC\n STG [R0], R1\n EXIT\n",
        );
        assert!(kinds(&f).contains(&"bad_reconvergence"), "{f:?}");
    }

    #[test]
    fn findings_are_sorted_by_instruction() {
        let f = lint(".kernel k\n.params 1\n IADD R2, R1, 1\n STG [R0], R2\n EXIT\n NOP\n EXIT\n");
        let anchors: Vec<usize> = f.iter().map(Finding::instr).collect();
        let mut sorted = anchors.clone();
        sorted.sort_unstable();
        assert_eq!(anchors, sorted);
    }
}
