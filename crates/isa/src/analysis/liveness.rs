//! Backward dataflow liveness for general-purpose registers and predicates,
//! at per-instruction granularity.
//!
//! The transfer function is guard-aware: a predicated definition (`@P MOV
//! R1, …`) does **not** kill `R1` — when the guard is false the old value
//! survives — while reads always gen, including the guard predicate itself
//! and `SEL`'s selector.  This makes the analysis a sound
//! may-liveness: if a register is *not* live-in anywhere reachable, no
//! execution can observe its value.
//!
//! That soundness is what the campaign's ACE-style pruning leans on: a
//! register that is never read by any reachable instruction
//! ([`Liveness::dead_registers`]) cannot influence the architectural state
//! of the launch, so a fault flipped into it is Masked by construction
//! (register files do not persist across launches — every launch
//! zero-initializes its registers).

use super::cfg::instr_succs;
use crate::instr::Op;
use crate::Kernel;

/// A set of general-purpose registers (`R0` … `R254`) as a 256-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet([u64; 4]);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet([0; 4]);

    /// Inserts register index `r`.
    pub fn insert(&mut self, r: u8) {
        self.0[r as usize / 64] |= 1 << (r % 64);
    }

    /// Removes register index `r`.
    pub fn remove(&mut self, r: u8) {
        self.0[r as usize / 64] &= !(1 << (r % 64));
    }

    /// Whether register index `r` is in the set.
    pub fn contains(&self, r: u8) -> bool {
        self.0[r as usize / 64] >> (r % 64) & 1 == 1
    }

    /// Unions `other` into `self`; returns whether `self` grew.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of registers in the set.
    pub fn len(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Iterates the register indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..=255).filter_map(|r| self.contains(r as u8).then_some(r as u8))
    }
}

/// Live registers and predicates at one program point.
///
/// Predicates are a 7-bit mask (`P0` … `P6`) in `preds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveSet {
    /// Live general-purpose registers.
    pub regs: RegSet,
    /// Live predicates, bit `i` = `Pi`.
    pub preds: u8,
}

impl LiveSet {
    fn union_with(&mut self, other: &LiveSet) -> bool {
        let p = self.preds | other.preds;
        let changed = self.regs.union_with(&other.regs) || p != self.preds;
        self.preds = p;
        changed
    }
}

/// Per-instruction liveness for one kernel.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<LiveSet>,
    live_out: Vec<LiveSet>,
    reachable: Vec<bool>,
    read_regs: RegSet,
    written_regs: RegSet,
}

/// The registers an instruction reads, including via guard or selector
/// predicates (returned separately as a predicate mask).
fn uses(op: &Op) -> ([Option<crate::Reg>; 3], u8) {
    let preds = match *op {
        Op::Sel { p, .. } => 1u8 << p.index(),
        _ => 0,
    };
    (op.src_regs(), preds)
}

/// The predicate an instruction defines, if any.
fn def_pred(op: &Op) -> Option<u8> {
    match *op {
        Op::ISetp { p, .. } | Op::FSetp { p, .. } => Some(p.index()),
        _ => None,
    }
}

impl Liveness {
    /// Runs the backward dataflow to a fixed point.
    pub fn compute(kernel: &Kernel) -> Liveness {
        let instrs = kernel.instrs();
        let n = instrs.len();
        let mut live_in = vec![LiveSet::default(); n];
        let mut live_out = vec![LiveSet::default(); n];

        // Reachability from instruction 0 over the same successor relation.
        let mut reachable = vec![false; n];
        if n > 0 {
            let mut stack = vec![0usize];
            reachable[0] = true;
            while let Some(i) = stack.pop() {
                for s in instr_succs(instrs, i) {
                    if !reachable[s] {
                        reachable[s] = true;
                        stack.push(s);
                    }
                }
            }
        }

        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out = LiveSet::default();
                for s in instr_succs(instrs, i) {
                    out.union_with(&live_in[s]);
                }
                let ins = &instrs[i];
                let mut inn = out;
                // Kill: an unguarded definition overwrites unconditionally.
                if ins.guard.is_none() {
                    if let Some(d) = ins.op.dest_reg() {
                        inn.regs.remove(d.index());
                    }
                    if let Some(p) = def_pred(&ins.op) {
                        inn.preds &= !(1 << p);
                    }
                }
                // Gen: operand reads, the selector predicate, the guard.
                let (srcs, pred_uses) = uses(&ins.op);
                for r in srcs.into_iter().flatten() {
                    inn.regs.insert(r.index());
                }
                inn.preds |= pred_uses;
                if let Some(g) = ins.guard {
                    inn.preds |= 1 << g.pred.index();
                }
                if live_out[i] != out {
                    live_out[i] = out;
                    changed = true;
                }
                if live_in[i] != inn {
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }

        // Reads and writes over reachable instructions only.
        let mut read_regs = RegSet::EMPTY;
        let mut written_regs = RegSet::EMPTY;
        for (i, ins) in instrs.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            for r in ins.op.src_regs().into_iter().flatten() {
                read_regs.insert(r.index());
            }
            if let Some(d) = ins.op.dest_reg() {
                written_regs.insert(d.index());
            }
        }

        Liveness {
            live_in,
            live_out,
            reachable,
            read_regs,
            written_regs,
        }
    }

    /// Live-in set of instruction `i`.
    pub fn live_in(&self, i: usize) -> &LiveSet {
        &self.live_in[i]
    }

    /// Live-out set of instruction `i`.
    pub fn live_out(&self, i: usize) -> &LiveSet {
        &self.live_out[i]
    }

    /// Whether instruction `i` is reachable from the kernel entry.
    pub fn is_reachable(&self, i: usize) -> bool {
        self.reachable[i]
    }

    /// Registers read by at least one reachable instruction.
    pub fn read_regs(&self) -> &RegSet {
        &self.read_regs
    }

    /// Registers written by at least one reachable instruction.
    pub fn written_regs(&self) -> &RegSet {
        &self.written_regs
    }

    /// Allocated registers (`0 .. kernel.num_regs()`) that **no** reachable
    /// instruction ever reads.
    ///
    /// A fault injected into such a register during this kernel's execution
    /// is architecturally masked: the flipped value can never flow into an
    /// instruction, and the register file is re-initialized at the next
    /// launch.  This is the ACE-style dead set the campaign prune consults.
    pub fn dead_registers(&self, num_regs: u8) -> Vec<u8> {
        (0..num_regs)
            .filter(|&r| !self.read_regs.contains(r))
            .collect()
    }

    /// Registers that are written by a reachable instruction but never read
    /// by any reachable instruction — the write-never-read lint set.
    pub fn write_never_read(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in self.written_regs.iter() {
            if !self.read_regs.contains(r) {
                out.push(r);
            }
        }
        out
    }
}

/// Convenience: the statically-dead register set of a kernel (see
/// [`Liveness::dead_registers`]).
pub fn dead_registers(kernel: &Kernel) -> Vec<u8> {
    Liveness::compute(kernel).dead_registers(kernel.num_regs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Module;

    fn live(src: &str) -> (Kernel, Liveness) {
        let m = Module::assemble(src).unwrap();
        let k = m.kernels()[0].clone();
        let l = Liveness::compute(&k);
        (k, l)
    }

    #[test]
    fn straight_line_liveness() {
        // R0 is a param pointer; R1 loaded, doubled, stored.
        let (_, l) =
            live(".kernel k\n.params 1\n LDG R1, [R0]\n IADD R1, R1, R1\n STG [R0], R1\n EXIT\n");
        // At entry, R0 is live (read by the load), R1 is not (clobbered).
        assert!(l.live_in(0).regs.contains(0));
        assert!(!l.live_in(0).regs.contains(1));
        // After the load, both live; after the store, nothing.
        assert!(l.live_out(0).regs.contains(1));
        assert!(l.live_in(2).regs.contains(1));
        assert!(l.live_out(2).regs.is_empty());
    }

    #[test]
    fn predicated_def_does_not_kill() {
        // @P0 MOV R1, 5 leaves the old R1 observable on the false path.
        let (_, l) = live(
            ".kernel k\n.params 1\n ISETP.EQ P0, R0, 0\n@P0 MOV R1, 5\n STG [R0], R1\n EXIT\n",
        );
        // R1 must be live-in at the predicated MOV *and* at the ISETP.
        assert!(l.live_in(1).regs.contains(1));
        assert!(l.live_in(0).regs.contains(1));
        // The guard predicate is live into the MOV.
        assert_eq!(l.live_in(1).preds, 1);
    }

    #[test]
    fn unguarded_def_kills() {
        let (_, l) = live(".kernel k\n.params 1\n MOV R1, 5\n STG [R0], R1\n EXIT\n");
        assert!(!l.live_in(0).regs.contains(1));
        assert!(l.live_out(0).regs.contains(1));
    }

    #[test]
    fn loop_keeps_accumulator_live() {
        let (_, l) = live(
            ".kernel k\n.params 1\n MOV R1, 0\n MOV R2, 0\ntop:\n IADD R1, R1, 1\n \
             IADD R2, R2, R1\n ISETP.LT P0, R1, 4\n@P0 BRA top\n STG [R0], R2\n EXIT\n",
        );
        // Around the back edge both R1 and R2 stay live.
        assert!(l.live_out(5).regs.contains(1));
        assert!(l.live_out(5).regs.contains(2));
        assert!(l.live_out(5).preds & 1 == 1 || l.live_in(5).preds & 1 == 1);
    }

    #[test]
    fn sel_reads_its_predicate() {
        let (_, l) = live(
            ".kernel k\n.params 1\n ISETP.EQ P2, R0, 0\n MOV R1, 1\n MOV R2, 2\n \
             SEL R3, R1, R2, P2\n STG [R0], R3\n EXIT\n",
        );
        assert_eq!(l.live_in(3).preds, 1 << 2);
        assert_eq!(l.live_out(0).preds, 1 << 2);
    }

    #[test]
    fn dead_registers_ignore_writes() {
        // R3 is written but never read; R4 is never touched; both are dead.
        let (k, l) = live(
            ".kernel k\n.params 1\n.regs 5\n MOV R3, 7\n LDG R1, [R0]\n STG [R0], R1\n EXIT\n",
        );
        let dead = l.dead_registers(k.num_regs());
        assert!(dead.contains(&3));
        assert!(dead.contains(&4));
        assert!(!dead.contains(&0));
        assert!(!dead.contains(&1));
        assert_eq!(l.write_never_read(), vec![3]);
    }

    #[test]
    fn unreachable_reads_do_not_resurrect() {
        // The read of R2 sits after an unguarded EXIT: R2 stays dead.
        let (k, l) = live(
            ".kernel k\n.params 1\n.regs 3\n LDG R1, [R0]\n STG [R0], R1\n EXIT\n \
             STG [R0], R2\n EXIT\n",
        );
        assert!(!l.is_reachable(3));
        assert!(l.dead_registers(k.num_regs()).contains(&2));
    }

    #[test]
    fn regset_iter_and_len() {
        let mut s = RegSet::EMPTY;
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(254);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 254]);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }
}
