//! Static analysis over SASS-lite kernels: CFG, dominators, liveness, and
//! lint passes.
//!
//! The analyses serve two production roles in the fault-injection pipeline:
//!
//! 1. **Correctness tooling** — [`lint_kernel`] runs the full lint battery
//!    (uninitialized reads, divergent barriers, shared-memory races,
//!    unreachable code, write-never-read registers, malformed reconvergence
//!    points) over a kernel.  The `gpufi lint` CLI, the kernel fuzzer, and
//!    the bundled-workload test suite all gate on it.
//! 2. **ACE-style campaign pruning** — [`dead_registers`] computes, per
//!    kernel, the allocated registers no reachable instruction ever reads.
//!    A register-file fault injected into such a register is architecturally
//!    un-ACE (cannot affect correct execution), so the campaign engine
//!    classifies it Masked without simulating the run; see
//!    `gpufi_core::CampaignConfig` and its `--no-static-prune` validation
//!    mode for the equivalence harness.
//!
//! # Example
//!
//! ```
//! use gpufi_isa::{analysis, Module};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = Module::assemble(
//!     ".kernel k\n.params 1\n.regs 4\n LDG R1, [R0]\n IADD R1, R1, 1\n \
//!      STG [R0], R1\n EXIT\n",
//! )?;
//! let kernel = module.kernel("k").unwrap();
//! assert!(analysis::lint_kernel(kernel).is_empty());
//! // R2 and R3 are allocated but never read: fault-prunable.
//! assert_eq!(analysis::dead_registers(kernel), vec![2, 3]);
//! # Ok(())
//! # }
//! ```

pub mod cfg;
pub mod dom;
pub mod lints;
pub mod liveness;

pub use cfg::{instr_succs, BasicBlock, Cfg};
pub use dom::{reconvergence_violations, DomInfo};
pub use lints::{lint_kernel, Finding};
pub use liveness::{dead_registers, LiveSet, Liveness, RegSet};

use crate::Module;

/// Lints every kernel of a module; returns `(kernel_name, finding)` pairs
/// in kernel order.
pub fn lint_module(module: &Module) -> Vec<(String, Finding)> {
    let mut out = Vec::new();
    for k in module.kernels() {
        for f in lint_kernel(k) {
            out.push((k.name().to_string(), f));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_module_reports_per_kernel() {
        let m = Module::assemble(
            ".kernel clean\n.params 1\n LDG R1, [R0]\n STG [R0], R1\n EXIT\n\
             .kernel dirty\n.params 1\n IADD R2, R1, 1\n STG [R0], R2\n EXIT\n",
        )
        .unwrap();
        let findings = lint_module(&m);
        assert!(findings.iter().all(|(k, _)| k == "dirty"), "{findings:?}");
        assert!(!findings.is_empty());
    }
}
