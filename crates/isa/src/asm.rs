//! The SASS-lite text assembler.
//!
//! Source is line-oriented:
//!
//! ```text
//! .kernel name          ; starts a kernel
//! .params N             ; N u32 parameters preloaded into R0..R(N-1)
//! .regs N               ; optional: force allocated register count
//! .smem BYTES           ; static shared memory per CTA
//! .lmem BYTES           ; local memory per thread
//! label:  @!P0 IADD R1, R2, -4   ; label, guard, mnemonic, operands
//! ```
//!
//! Comments start with `;`, `#` or `//`.  Immediates may be decimal
//! (`-12`), hex (`0xdeadbeef`) or single-precision float (`1.5f`, `2e-3f`).

use crate::error::AsmError;
use crate::instr::{Guard, Instr, MemSpace, Op, Operand};
use crate::kernel::{Kernel, Module};
use crate::op::{BitOp, CmpOp, FloatOp, FloatUnOp, IntOp};
use crate::reg::{Pred, Reg, SpecialReg, MAX_PRED, MAX_REG};
use std::collections::HashMap;

/// Assembles source text into a [`Module`]. See [`Module::assemble`].
pub fn assemble(source: &str) -> Result<Module, AsmError> {
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut current: Option<PendingKernel> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix('.') {
            handle_directive(rest, line_no, &mut kernels, &mut current)?;
            continue;
        }

        let k = current
            .as_mut()
            .ok_or_else(|| AsmError::new(line_no, "instruction before any .kernel directive"))?;
        parse_statement(line, line_no, k)?;
    }

    if let Some(k) = current.take() {
        kernels.push(k.finish()?);
    }
    if kernels.is_empty() {
        return Err(AsmError::new(0, "source contains no kernels"));
    }
    Ok(Module::from_kernels(kernels))
}

/// A kernel under construction, before label fixups are applied.
struct PendingKernel {
    name: String,
    start_line: u32,
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
    fixups: Vec<Fixup>,
    num_params: u8,
    regs_directive: Option<u8>,
    smem_bytes: u32,
    lmem_bytes: u32,
}

struct Fixup {
    instr: usize,
    label: String,
    line: u32,
}

impl PendingKernel {
    fn new(name: String, line: u32) -> Self {
        PendingKernel {
            name,
            start_line: line,
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            num_params: 0,
            regs_directive: None,
            smem_bytes: 0,
            lmem_bytes: 0,
        }
    }

    fn finish(mut self) -> Result<Kernel, AsmError> {
        if self.instrs.is_empty() {
            return Err(AsmError::new(
                self.start_line,
                format!("kernel `{}` has no instructions", self.name),
            ));
        }
        for fixup in &self.fixups {
            let target = *self.labels.get(&fixup.label).ok_or_else(|| {
                AsmError::new(fixup.line, format!("undefined label `{}`", fixup.label))
            })?;
            match &mut self.instrs[fixup.instr].op {
                Op::Bra { target: t } | Op::Ssy { target: t } => *t = target,
                _ => unreachable!("fixups only point at branch-like ops"),
            }
        }
        let max_ref = self
            .instrs
            .iter()
            .filter_map(|i| i.op.max_reg())
            .max()
            .map_or(0, |m| m + 1);
        let mut num_regs = max_ref.max(self.num_params);
        if let Some(forced) = self.regs_directive {
            if forced < num_regs {
                return Err(AsmError::new(
                    self.start_line,
                    format!(
                        ".regs {forced} is below the {num_regs} registers kernel `{}` references",
                        self.name
                    ),
                ));
            }
            num_regs = forced;
        }
        Ok(Kernel::new(
            self.name,
            self.instrs,
            self.num_params,
            num_regs,
            self.smem_bytes,
            self.lmem_bytes,
        ))
    }
}

fn handle_directive(
    rest: &str,
    line: u32,
    kernels: &mut Vec<Kernel>,
    current: &mut Option<PendingKernel>,
) -> Result<(), AsmError> {
    let mut parts = rest.split_whitespace();
    let name = parts.next().unwrap_or("");
    let arg = parts.next();
    if parts.next().is_some() {
        return Err(AsmError::new(
            line,
            format!("too many operands for .{name}"),
        ));
    }
    match name {
        "kernel" => {
            let kname = arg
                .ok_or_else(|| AsmError::new(line, ".kernel requires a name"))?
                .to_string();
            if let Some(prev) = current.take() {
                kernels.push(prev.finish()?);
            }
            if kernels.iter().any(|k| k.name() == kname) {
                return Err(AsmError::new(
                    line,
                    format!("duplicate kernel name `{kname}`"),
                ));
            }
            *current = Some(PendingKernel::new(kname, line));
            Ok(())
        }
        "params" | "regs" | "smem" | "lmem" => {
            let k = current
                .as_mut()
                .ok_or_else(|| AsmError::new(line, format!(".{name} before .kernel")))?;
            let value: u32 = arg.and_then(|a| a.parse().ok()).ok_or_else(|| {
                AsmError::new(line, format!(".{name} requires an unsigned integer"))
            })?;
            match name {
                "params" => {
                    if value > MAX_REG as u32 + 1 {
                        return Err(AsmError::new(line, "too many parameters"));
                    }
                    k.num_params = value as u8;
                }
                "regs" => {
                    if value == 0 || value > MAX_REG as u32 + 1 {
                        return Err(AsmError::new(line, ".regs out of range"));
                    }
                    k.regs_directive = Some(value as u8);
                }
                "smem" => k.smem_bytes = value,
                "lmem" => k.lmem_bytes = value,
                _ => unreachable!(),
            }
            Ok(())
        }
        other => Err(AsmError::new(line, format!("unknown directive .{other}"))),
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, c) in line.char_indices() {
        if c == ';' || c == '#' {
            end = i;
            break;
        }
        if c == '/' && line[i..].starts_with("//") {
            end = i;
            break;
        }
    }
    &line[..end]
}

fn parse_statement(line: &str, line_no: u32, k: &mut PendingKernel) -> Result<(), AsmError> {
    let mut rest = line;

    // Leading labels (there may be several on one line).
    while let Some(colon) = find_label_colon(rest) {
        let label = rest[..colon].trim();
        if !is_ident(label) {
            return Err(AsmError::new(line_no, format!("invalid label `{label}`")));
        }
        let pos = k.instrs.len() as u32;
        if k.labels.insert(label.to_string(), pos).is_some() {
            return Err(AsmError::new(line_no, format!("duplicate label `{label}`")));
        }
        rest = rest[colon + 1..].trim_start();
    }
    if rest.is_empty() {
        return Ok(());
    }

    // Optional guard.
    let mut guard = None;
    if let Some(g) = rest.strip_prefix('@') {
        let (gtok, after) = g
            .split_once(char::is_whitespace)
            .ok_or_else(|| AsmError::new(line_no, "guard must be followed by an instruction"))?;
        let (negate, ptok) = match gtok.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, gtok),
        };
        let pred = parse_pred(ptok, line_no)?;
        guard = Some(Guard { pred, negate });
        rest = after.trim_start();
    }

    let (mnemonic, operand_str) = match rest.split_once(char::is_whitespace) {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let operands = split_operands(operand_str);
    let op = parse_op(mnemonic, &operands, line_no, k)?;
    k.instrs.push(Instr { guard, op });
    Ok(())
}

/// Finds the colon ending a leading label, if the line starts with one.
fn find_label_colon(s: &str) -> Option<usize> {
    let mut chars = s.char_indices();
    let (_, first) = chars.next()?;
    if !(first.is_ascii_alphabetic() || first == '_') {
        return None;
    }
    for (i, c) in chars {
        if c == ':' {
            return Some(i);
        }
        if !(c.is_ascii_alphanumeric() || c == '_') {
            return None;
        }
    }
    None
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits an operand list on top-level commas (commas never appear inside
/// `[...]` memory operands, but tolerate them for robustness).
fn split_operands(s: &str) -> Vec<&str> {
    if s.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

fn parse_reg(tok: &str, line: u32) -> Result<Reg, AsmError> {
    let idx = tok
        .strip_prefix('R')
        .and_then(|n| n.parse::<u16>().ok())
        .ok_or_else(|| AsmError::new(line, format!("expected register, found `{tok}`")))?;
    if idx > MAX_REG as u16 {
        return Err(AsmError::new(
            line,
            format!("register R{idx} out of range (max R{MAX_REG})"),
        ));
    }
    Ok(Reg::new(idx as u8).expect("bounds checked"))
}

fn parse_pred(tok: &str, line: u32) -> Result<Pred, AsmError> {
    let idx = tok
        .strip_prefix('P')
        .and_then(|n| n.parse::<u16>().ok())
        .ok_or_else(|| AsmError::new(line, format!("expected predicate, found `{tok}`")))?;
    if idx > MAX_PRED as u16 {
        return Err(AsmError::new(
            line,
            format!("predicate P{idx} out of range (max P{MAX_PRED})"),
        ));
    }
    Ok(Pred::new(idx as u8).expect("bounds checked"))
}

fn parse_operand(tok: &str, line: u32) -> Result<Operand, AsmError> {
    if tok.starts_with('R') && tok[1..].chars().all(|c| c.is_ascii_digit()) && tok.len() > 1 {
        return Ok(Operand::Reg(parse_reg(tok, line)?));
    }
    parse_imm(tok, line).map(Operand::Imm)
}

fn parse_imm(tok: &str, line: u32) -> Result<u32, AsmError> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16)
            .map_err(|_| AsmError::new(line, format!("bad hex immediate `{tok}`")));
    }
    let is_float = tok.ends_with('f')
        || tok.ends_with('F')
        || tok.contains('.')
        || (tok.contains(['e', 'E']) && !tok.starts_with("0x"));
    if is_float {
        let t = tok.trim_end_matches(['f', 'F']);
        return t
            .parse::<f32>()
            .map(f32::to_bits)
            .map_err(|_| AsmError::new(line, format!("bad float immediate `{tok}`")));
    }
    if let Ok(v) = tok.parse::<i64>() {
        if (i32::MIN as i64..=u32::MAX as i64).contains(&v) {
            return Ok(v as u32);
        }
        return Err(AsmError::new(
            line,
            format!("immediate `{tok}` out of 32-bit range"),
        ));
    }
    Err(AsmError::new(line, format!("bad operand `{tok}`")))
}

/// Parses a `[Rn]`, `[Rn+off]` or `[Rn-off]` memory operand.
fn parse_mem(tok: &str, line: u32) -> Result<(Reg, i32), AsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError::new(line, format!("expected [Rn+off], found `{tok}`")))?
        .trim();
    let (reg_tok, off) = match inner.find(['+', '-']) {
        Some(pos) => {
            let sign = if inner.as_bytes()[pos] == b'-' {
                -1i64
            } else {
                1
            };
            let off_tok = inner[pos + 1..].trim();
            let magnitude: i64 = off_tok
                .parse()
                .map_err(|_| AsmError::new(line, format!("bad address offset `{off_tok}`")))?;
            let off = sign * magnitude;
            if off < i32::MIN as i64 || off > i32::MAX as i64 {
                return Err(AsmError::new(line, "address offset out of range"));
            }
            (inner[..pos].trim(), off as i32)
        }
        None => (inner, 0),
    };
    Ok((parse_reg(reg_tok, line)?, off))
}

fn expect_n<'a>(
    ops: &'a [&'a str],
    n: usize,
    m: &str,
    line: u32,
) -> Result<&'a [&'a str], AsmError> {
    if ops.len() != n {
        return Err(AsmError::new(
            line,
            format!("{m} expects {n} operand(s), found {}", ops.len()),
        ));
    }
    Ok(ops)
}

fn parse_op(
    mnemonic: &str,
    ops: &[&str],
    line: u32,
    k: &mut PendingKernel,
) -> Result<Op, AsmError> {
    // Split dotted suffix (ISETP.GE).
    let (base, suffix) = match mnemonic.split_once('.') {
        Some((b, s)) => (b, Some(s)),
        None => (mnemonic, None),
    };

    let int_ops = [
        ("IADD", IntOp::Add),
        ("ISUB", IntOp::Sub),
        ("IMUL", IntOp::Mul),
        ("IMIN", IntOp::Min),
        ("IMAX", IntOp::Max),
    ];
    let float_ops = [
        ("FADD", FloatOp::Add),
        ("FSUB", FloatOp::Sub),
        ("FMUL", FloatOp::Mul),
        ("FDIV", FloatOp::Div),
        ("FMIN", FloatOp::Min),
        ("FMAX", FloatOp::Max),
    ];
    let bit_ops = [
        ("AND", BitOp::And),
        ("OR", BitOp::Or),
        ("XOR", BitOp::Xor),
        ("SHL", BitOp::Shl),
        ("SHR", BitOp::Shr),
        ("SAR", BitOp::Sar),
    ];
    let fun_ops = [
        ("FRCP", FloatUnOp::Rcp),
        ("FSQRT", FloatUnOp::Sqrt),
        ("FEX2", FloatUnOp::Ex2),
        ("FLG2", FloatUnOp::Lg2),
        ("FABS", FloatUnOp::Abs),
        ("FNEG", FloatUnOp::Neg),
        ("FFLOOR", FloatUnOp::Floor),
    ];

    if let Some((_, op)) = int_ops.iter().find(|(m, _)| *m == base) {
        let o = expect_n(ops, 3, base, line)?;
        return Ok(Op::IArith {
            op: *op,
            d: parse_reg(o[0], line)?,
            a: parse_reg(o[1], line)?,
            b: parse_operand(o[2], line)?,
        });
    }
    if let Some((_, op)) = float_ops.iter().find(|(m, _)| *m == base) {
        let o = expect_n(ops, 3, base, line)?;
        return Ok(Op::FArith {
            op: *op,
            d: parse_reg(o[0], line)?,
            a: parse_reg(o[1], line)?,
            b: parse_operand(o[2], line)?,
        });
    }
    if let Some((_, op)) = bit_ops.iter().find(|(m, _)| *m == base) {
        let o = expect_n(ops, 3, base, line)?;
        return Ok(Op::Bit {
            op: *op,
            d: parse_reg(o[0], line)?,
            a: parse_reg(o[1], line)?,
            b: parse_operand(o[2], line)?,
        });
    }
    if let Some((_, op)) = fun_ops.iter().find(|(m, _)| *m == base) {
        let o = expect_n(ops, 2, base, line)?;
        return Ok(Op::FUnary {
            op: *op,
            d: parse_reg(o[0], line)?,
            a: parse_reg(o[1], line)?,
        });
    }

    match base {
        "MOV" => {
            let o = expect_n(ops, 2, base, line)?;
            Ok(Op::Mov {
                d: parse_reg(o[0], line)?,
                src: parse_operand(o[1], line)?,
            })
        }
        "S2R" => {
            let o = expect_n(ops, 2, base, line)?;
            let sr = SpecialReg::from_name(o[1]).ok_or_else(|| {
                AsmError::new(line, format!("unknown special register `{}`", o[1]))
            })?;
            Ok(Op::S2r {
                d: parse_reg(o[0], line)?,
                sr,
            })
        }
        "IMAD" | "FFMA" => {
            let o = expect_n(ops, 4, base, line)?;
            let (d, a, b, c) = (
                parse_reg(o[0], line)?,
                parse_reg(o[1], line)?,
                parse_operand(o[2], line)?,
                parse_reg(o[3], line)?,
            );
            Ok(if base == "IMAD" {
                Op::IMad { d, a, b, c }
            } else {
                Op::FFma { d, a, b, c }
            })
        }
        "NOT" => {
            let o = expect_n(ops, 2, base, line)?;
            Ok(Op::Not {
                d: parse_reg(o[0], line)?,
                a: parse_reg(o[1], line)?,
            })
        }
        "I2F" | "F2I" => {
            let o = expect_n(ops, 2, base, line)?;
            let (d, a) = (parse_reg(o[0], line)?, parse_reg(o[1], line)?);
            Ok(if base == "I2F" {
                Op::I2f { d, a }
            } else {
                Op::F2i { d, a }
            })
        }
        "ISETP" | "FSETP" => {
            let cmp = suffix.and_then(CmpOp::from_suffix).ok_or_else(|| {
                AsmError::new(
                    line,
                    format!("{base} requires a .EQ/.NE/.LT/.LE/.GT/.GE suffix"),
                )
            })?;
            let o = expect_n(ops, 3, base, line)?;
            let p = parse_pred(o[0], line)?;
            let a = parse_reg(o[1], line)?;
            let b = parse_operand(o[2], line)?;
            Ok(if base == "ISETP" {
                Op::ISetp { cmp, p, a, b }
            } else {
                Op::FSetp { cmp, p, a, b }
            })
        }
        "SEL" => {
            let o = expect_n(ops, 4, base, line)?;
            Ok(Op::Sel {
                d: parse_reg(o[0], line)?,
                a: parse_reg(o[1], line)?,
                b: parse_operand(o[2], line)?,
                p: parse_pred(o[3], line)?,
            })
        }
        "BRA" | "SSY" => {
            let o = expect_n(ops, 1, base, line)?;
            let target = if o[0].chars().all(|c| c.is_ascii_digit()) {
                o[0].parse::<u32>()
                    .map_err(|_| AsmError::new(line, "bad branch target"))?
            } else {
                if !is_ident(o[0]) {
                    return Err(AsmError::new(line, format!("bad branch target `{}`", o[0])));
                }
                k.fixups.push(Fixup {
                    instr: k.instrs.len(),
                    label: o[0].to_string(),
                    line,
                });
                u32::MAX // patched by the fixup pass
            };
            Ok(if base == "BRA" {
                Op::Bra { target }
            } else {
                Op::Ssy { target }
            })
        }
        "SYNC" => expect_n(ops, 0, base, line).map(|_| Op::Sync),
        "BAR" => expect_n(ops, 0, base, line).map(|_| Op::Bar),
        "EXIT" => expect_n(ops, 0, base, line).map(|_| Op::Exit),
        "NOP" => expect_n(ops, 0, base, line).map(|_| Op::Nop),
        "LDG" | "LDS" | "LDL" | "LDT" | "LDC" => {
            let space = match base {
                "LDG" => MemSpace::Global,
                "LDS" => MemSpace::Shared,
                "LDL" => MemSpace::Local,
                "LDT" => MemSpace::Texture,
                _ => MemSpace::Const,
            };
            let o = expect_n(ops, 2, base, line)?;
            let d = parse_reg(o[0], line)?;
            let (addr, offset) = parse_mem(o[1], line)?;
            Ok(Op::Ld {
                space,
                d,
                addr,
                offset,
            })
        }
        "STG" | "STS" | "STL" => {
            let space = match base {
                "STG" => MemSpace::Global,
                "STS" => MemSpace::Shared,
                _ => MemSpace::Local,
            };
            let o = expect_n(ops, 2, base, line)?;
            let (addr, offset) = parse_mem(o[0], line)?;
            let v = parse_reg(o[1], line)?;
            Ok(Op::St {
                space,
                addr,
                offset,
                v,
            })
        }
        other => Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{MemSpace, Op, Operand};
    use crate::op::{CmpOp, IntOp};

    #[test]
    fn assembles_minimal_kernel() {
        let m = Module::assemble(".kernel k\n EXIT\n").unwrap();
        let k = m.kernel("k").unwrap();
        assert_eq!(k.instrs().len(), 1);
        assert_eq!(k.instrs()[0].op, Op::Exit);
        assert_eq!(k.num_regs(), 0);
    }

    #[test]
    fn resolves_forward_and_backward_labels() {
        let m =
            Module::assemble(".kernel k\nstart: BRA done\n NOP\ndone: BRA start\n EXIT\n").unwrap();
        let k = m.kernel("k").unwrap();
        assert_eq!(k.instrs()[0].op, Op::Bra { target: 2 });
        assert_eq!(k.instrs()[2].op, Op::Bra { target: 0 });
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let m = Module::assemble(".kernel k\nloop: IADD R1, R1, 1\n BRA loop\n").unwrap();
        let k = m.kernel("k").unwrap();
        assert_eq!(k.instrs()[1].op, Op::Bra { target: 0 });
    }

    #[test]
    fn guards_parse() {
        let m = Module::assemble(".kernel k\n@P0 EXIT\n@!P3 NOP\n EXIT\n").unwrap();
        let k = m.kernel("k").unwrap();
        let g0 = k.instrs()[0].guard.unwrap();
        assert!(!g0.negate);
        assert_eq!(g0.pred.index(), 0);
        let g1 = k.instrs()[1].guard.unwrap();
        assert!(g1.negate);
        assert_eq!(g1.pred.index(), 3);
    }

    #[test]
    fn immediates_decimal_hex_float() {
        let m = Module::assemble(
            ".kernel k\n MOV R0, -7\n MOV R1, 0xff00\n MOV R2, 1.5f\n MOV R3, 2e2f\n EXIT\n",
        )
        .unwrap();
        let k = m.kernel("k").unwrap();
        let imm = |i: usize| match k.instrs()[i].op {
            Op::Mov {
                src: Operand::Imm(v),
                ..
            } => v,
            ref o => panic!("not a mov-imm: {o:?}"),
        };
        assert_eq!(imm(0) as i32, -7);
        assert_eq!(imm(1), 0xff00);
        assert_eq!(f32::from_bits(imm(2)), 1.5);
        assert_eq!(f32::from_bits(imm(3)), 200.0);
    }

    #[test]
    fn memory_operands_with_offsets() {
        let m = Module::assemble(
            ".kernel k\n LDG R1, [R0]\n LDS R2, [R0+64]\n STL [R0-4], R1\n EXIT\n",
        )
        .unwrap();
        let k = m.kernel("k").unwrap();
        assert!(matches!(
            k.instrs()[0].op,
            Op::Ld {
                space: MemSpace::Global,
                offset: 0,
                ..
            }
        ));
        assert!(matches!(
            k.instrs()[1].op,
            Op::Ld {
                space: MemSpace::Shared,
                offset: 64,
                ..
            }
        ));
        assert!(matches!(
            k.instrs()[2].op,
            Op::St {
                space: MemSpace::Local,
                offset: -4,
                ..
            }
        ));
    }

    #[test]
    fn setp_suffixes() {
        let m = Module::assemble(".kernel k\n ISETP.GE P0, R1, 10\n EXIT\n").unwrap();
        assert!(matches!(
            m.kernel("k").unwrap().instrs()[0].op,
            Op::ISetp { cmp: CmpOp::Ge, .. }
        ));
        let err = Module::assemble(".kernel k\n ISETP P0, R1, 10\n EXIT\n").unwrap_err();
        assert!(err.message().contains("suffix"));
    }

    #[test]
    fn register_count_inference_and_directive() {
        let m = Module::assemble(".kernel k\n.params 2\n IADD R5, R0, R1\n EXIT\n").unwrap();
        assert_eq!(m.kernel("k").unwrap().num_regs(), 6);
        let m = Module::assemble(".kernel k\n.regs 12\n MOV R0, 1\n EXIT\n").unwrap();
        assert_eq!(m.kernel("k").unwrap().num_regs(), 12);
        let err = Module::assemble(".kernel k\n.regs 2\n MOV R5, 1\n EXIT\n").unwrap_err();
        assert!(err.message().contains(".regs"));
    }

    #[test]
    fn errors_have_line_numbers() {
        let err = Module::assemble(".kernel k\n NOP\n FROB R1\n").unwrap_err();
        assert_eq!(err.line(), 3);
        let err = Module::assemble(".kernel k\n BRA nowhere\n EXIT\n").unwrap_err();
        assert!(err.message().contains("undefined label"));
    }

    #[test]
    fn rejects_duplicates() {
        let err = Module::assemble(".kernel k\n EXIT\n.kernel k\n EXIT\n").unwrap_err();
        assert!(err.message().contains("duplicate kernel"));
        let err = Module::assemble(".kernel k\na: NOP\na: EXIT\n").unwrap_err();
        assert!(err.message().contains("duplicate label"));
    }

    #[test]
    fn rejects_out_of_range_registers() {
        let err = Module::assemble(".kernel k\n MOV R255, 0\n EXIT\n").unwrap_err();
        assert!(err.message().contains("out of range"));
        let err = Module::assemble(".kernel k\n@P7 NOP\n EXIT\n").unwrap_err();
        assert!(err.message().contains("out of range"));
    }

    #[test]
    fn comments_are_ignored() {
        let m = Module::assemble(".kernel k ; trailing\n NOP # hash comment\n EXIT // slashes\n")
            .unwrap();
        assert_eq!(m.kernel("k").unwrap().instrs().len(), 2);
    }

    #[test]
    fn iarith_with_imm_operand() {
        let m = Module::assemble(".kernel k\n ISUB R1, R2, 42\n EXIT\n").unwrap();
        assert!(matches!(
            m.kernel("k").unwrap().instrs()[0].op,
            Op::IArith {
                op: IntOp::Sub,
                b: Operand::Imm(42),
                ..
            }
        ));
    }

    #[test]
    fn instruction_before_kernel_is_an_error() {
        let err = Module::assemble(" NOP\n").unwrap_err();
        assert!(err.message().contains("before any .kernel"));
    }

    #[test]
    fn empty_kernel_is_an_error() {
        let err = Module::assemble(".kernel k\n").unwrap_err();
        assert!(err.message().contains("no instructions"));
    }

    #[test]
    fn disassembly_reassembles_identically() {
        let src = r#"
.kernel roundtrip
.params 3
.smem 128
.lmem 16
    S2R   R3, SR_TID.X
    ISETP.GE P0, R3, R2
@P0 EXIT
    SSY join
    ISETP.LT P1, R3, 16
@!P1 BRA other
    FADD  R4, R4, 1.25f
    BRA join
other:
    FMUL  R4, R4, -2.0f
join:
    SYNC
    BAR
    SHL   R5, R3, 2
    IADD  R6, R0, R5
    LDG   R7, [R6+4]
    FFMA  R7, R7, R4, R7
    IADD  R6, R1, R5
    STG   [R6], R7
    EXIT
"#;
        let m1 = Module::assemble(src).unwrap();
        let text = m1.to_string();
        let m2 = Module::assemble(&text).unwrap();
        assert_eq!(m1, m2);
    }
}
