//! Assembler error type.

use std::error::Error;
use std::fmt;

/// An error produced while assembling SASS-lite source text.
///
/// Carries the 1-based source line and a human-readable message.
///
/// ```
/// use gpufi_isa::Module;
/// let err = Module::assemble(".kernel k\n BOGUS R0, R1\n").unwrap_err();
/// assert_eq!(err.line(), 2);
/// assert!(err.to_string().contains("unknown mnemonic"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: u32,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line on which the error occurred.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The error message without position information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}
