//! Decoded instruction representation and its textual form.

use crate::op::{BitOp, CmpOp, FloatOp, FloatUnOp, IntOp, OpClass};
use crate::reg::{Pred, Reg, SpecialReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The memory space named by a load/store mnemonic.
///
/// The mapping to on-chip memories follows Table II of the paper: global and
/// local accesses are serviced by the L1 data cache, texture accesses by the
/// L1 texture cache, shared accesses by the per-CTA shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device (global) memory — `LDG` / `STG`, cached in L1D and L2.
    Global,
    /// Per-CTA shared memory — `LDS` / `STS`, on-chip, uncached.
    Shared,
    /// Per-thread local memory — `LDL` / `STL`, resides in device memory,
    /// cached write-back in L1D.
    Local,
    /// Read-only texture path — `LDT`, cached in the L1 texture cache.
    Texture,
    /// Read-only constant space — `LDC`, cached in the L1 constant cache
    /// (0-based addresses into the module's constant bank).
    Const,
}

impl MemSpace {
    /// Load mnemonic for this space.
    pub fn load_mnemonic(self) -> &'static str {
        match self {
            MemSpace::Global => "LDG",
            MemSpace::Shared => "LDS",
            MemSpace::Local => "LDL",
            MemSpace::Texture => "LDT",
            MemSpace::Const => "LDC",
        }
    }

    /// Store mnemonic, or `None` for the read-only texture and constant
    /// paths.
    pub fn store_mnemonic(self) -> Option<&'static str> {
        match self {
            MemSpace::Global => Some("STG"),
            MemSpace::Shared => Some("STS"),
            MemSpace::Local => Some("STL"),
            MemSpace::Texture | MemSpace::Const => None,
        }
    }
}

/// A source operand: either a register or a 32-bit immediate.
///
/// Immediates hold a raw bit pattern; float immediates are stored as their
/// IEEE-754 bits (the assembler accepts `1.5f` spellings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A general-purpose register source.
    Reg(Reg),
    /// An immediate value (raw 32-bit pattern).
    Imm(u32),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                // Print small values as signed decimal, others as hex, to
                // keep disassembly readable and reassemblable.
                let s = *v as i32;
                if (-4096..=4096).contains(&s) {
                    write!(f, "{s}")
                } else {
                    write!(f, "0x{v:08x}")
                }
            }
        }
    }
}

/// An instruction operation (the part after the optional `@P` guard).
///
/// Branch-like operations (`Bra`, `Ssy`) hold resolved instruction indices;
/// the assembler resolves label names during assembly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// `MOV Rd, src` — copy a register or immediate.
    Mov {
        /// Destination register.
        d: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `S2R Rd, SR_x` — read a special register.
    S2r {
        /// Destination register.
        d: Reg,
        /// Special register to read.
        sr: SpecialReg,
    },
    /// Two-operand integer arithmetic, e.g. `IADD Rd, Ra, src`.
    IArith {
        /// Operation selector.
        op: IntOp,
        /// Destination register.
        d: Reg,
        /// First source register.
        a: Reg,
        /// Second source operand.
        b: Operand,
    },
    /// `IMAD Rd, Ra, b, Rc` — `Rd = Ra * b + Rc` (32-bit wrapping).
    IMad {
        /// Destination register.
        d: Reg,
        /// Multiplicand register.
        a: Reg,
        /// Multiplier operand.
        b: Operand,
        /// Addend register.
        c: Reg,
    },
    /// Bitwise / shift operation, e.g. `XOR Rd, Ra, src`.
    Bit {
        /// Operation selector.
        op: BitOp,
        /// Destination register.
        d: Reg,
        /// First source register.
        a: Reg,
        /// Second source operand.
        b: Operand,
    },
    /// `NOT Rd, Ra` — bitwise complement.
    Not {
        /// Destination register.
        d: Reg,
        /// Source register.
        a: Reg,
    },
    /// Two-operand float arithmetic, e.g. `FMUL Rd, Ra, src`.
    FArith {
        /// Operation selector.
        op: FloatOp,
        /// Destination register.
        d: Reg,
        /// First source register.
        a: Reg,
        /// Second source operand.
        b: Operand,
    },
    /// `FFMA Rd, Ra, b, Rc` — fused multiply-add `Rd = Ra * b + Rc`.
    FFma {
        /// Destination register.
        d: Reg,
        /// Multiplicand register.
        a: Reg,
        /// Multiplier operand.
        b: Operand,
        /// Addend register.
        c: Reg,
    },
    /// Unary float (SFU) operation, e.g. `FRCP Rd, Ra`.
    FUnary {
        /// Operation selector.
        op: FloatUnOp,
        /// Destination register.
        d: Reg,
        /// Source register.
        a: Reg,
    },
    /// `I2F Rd, Ra` — signed integer to float conversion.
    I2f {
        /// Destination register.
        d: Reg,
        /// Source register.
        a: Reg,
    },
    /// `F2I Rd, Ra` — float to signed integer conversion (round toward zero).
    F2i {
        /// Destination register.
        d: Reg,
        /// Source register.
        a: Reg,
    },
    /// `ISETP.<cmp> Pd, Ra, src` — signed integer compare into a predicate.
    ISetp {
        /// Comparison selector.
        cmp: CmpOp,
        /// Destination predicate.
        p: Pred,
        /// First source register.
        a: Reg,
        /// Second source operand.
        b: Operand,
    },
    /// `FSETP.<cmp> Pd, Ra, src` — float compare into a predicate.
    FSetp {
        /// Comparison selector.
        cmp: CmpOp,
        /// Destination predicate.
        p: Pred,
        /// First source register.
        a: Reg,
        /// Second source operand.
        b: Operand,
    },
    /// `SEL Rd, Ra, b, Pc` — `Rd = Pc ? Ra : b`.
    Sel {
        /// Destination register.
        d: Reg,
        /// Value when the predicate is true.
        a: Reg,
        /// Value when the predicate is false.
        b: Operand,
        /// Selector predicate.
        p: Pred,
    },
    /// `BRA target` — (conditionally, via the guard) branch.
    Bra {
        /// Resolved instruction index of the branch target.
        target: u32,
    },
    /// `SSY target` — push the divergence-reconvergence point.
    Ssy {
        /// Resolved instruction index of the reconvergence point.
        target: u32,
    },
    /// `SYNC` — pop the SIMT stack at a reconvergence point.
    Sync,
    /// `BAR` — CTA-wide barrier (`__syncthreads()`).
    Bar,
    /// `EXIT` — terminate the active lanes.
    Exit,
    /// `NOP` — no operation.
    Nop,
    /// Load: `LDG/LDS/LDL/LDT Rd, [Ra + offset]`.
    Ld {
        /// Memory space.
        space: MemSpace,
        /// Destination register.
        d: Reg,
        /// Address base register (byte address).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// Store: `STG/STS/STL [Ra + offset], Rv`.
    St {
        /// Memory space (never [`MemSpace::Texture`]).
        space: MemSpace,
        /// Address base register (byte address).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
        /// Value register.
        v: Reg,
    },
}

impl Op {
    /// The functional-unit class used by the timing model.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Mov { .. }
            | Op::S2r { .. }
            | Op::Bit { .. }
            | Op::Not { .. }
            | Op::ISetp { .. }
            | Op::FSetp { .. }
            | Op::Sel { .. }
            | Op::I2f { .. }
            | Op::F2i { .. }
            | Op::Nop => OpClass::Alu,
            Op::IArith { op, .. } => match op {
                IntOp::Mul => OpClass::Mul,
                _ => OpClass::Alu,
            },
            Op::FArith { op, .. } => match op {
                FloatOp::Mul | FloatOp::Div => OpClass::Mul,
                _ => OpClass::Alu,
            },
            Op::IMad { .. } | Op::FFma { .. } => OpClass::Mul,
            Op::FUnary { .. } => OpClass::Sfu,
            Op::Bra { .. } | Op::Ssy { .. } | Op::Sync | Op::Exit => OpClass::Ctrl,
            Op::Bar => OpClass::Barrier,
            Op::Ld { .. } | Op::St { .. } => OpClass::Mem,
        }
    }

    /// The destination general-purpose register written, if any.
    pub fn dest_reg(&self) -> Option<Reg> {
        match *self {
            Op::Mov { d, .. }
            | Op::S2r { d, .. }
            | Op::IArith { d, .. }
            | Op::IMad { d, .. }
            | Op::Bit { d, .. }
            | Op::Not { d, .. }
            | Op::FArith { d, .. }
            | Op::FFma { d, .. }
            | Op::FUnary { d, .. }
            | Op::I2f { d, .. }
            | Op::F2i { d, .. }
            | Op::Sel { d, .. }
            | Op::Ld { d, .. } => Some(d),
            _ => None,
        }
    }

    /// The general-purpose registers *read* by this operation (up to 3),
    /// in operand order.  Used by ACE-style liveness analysis.
    pub fn src_regs(&self) -> [Option<Reg>; 3] {
        fn op_reg(o: Operand) -> Option<Reg> {
            match o {
                Operand::Reg(r) => Some(r),
                Operand::Imm(_) => None,
            }
        }
        match *self {
            Op::Mov { src, .. } => [op_reg(src), None, None],
            Op::S2r { .. }
            | Op::Bra { .. }
            | Op::Ssy { .. }
            | Op::Sync
            | Op::Bar
            | Op::Exit
            | Op::Nop => [None, None, None],
            Op::IArith { a, b, .. } | Op::Bit { a, b, .. } | Op::FArith { a, b, .. } => {
                [Some(a), op_reg(b), None]
            }
            Op::IMad { a, b, c, .. } | Op::FFma { a, b, c, .. } => [Some(a), op_reg(b), Some(c)],
            Op::Not { a, .. } | Op::FUnary { a, .. } | Op::I2f { a, .. } | Op::F2i { a, .. } => {
                [Some(a), None, None]
            }
            Op::ISetp { a, b, .. } | Op::FSetp { a, b, .. } => [Some(a), op_reg(b), None],
            Op::Sel { a, b, .. } => [Some(a), op_reg(b), None],
            Op::Ld { addr, .. } => [Some(addr), None, None],
            Op::St { addr, v, .. } => [Some(addr), Some(v), None],
        }
    }

    /// The highest general-purpose register index referenced, if any.
    ///
    /// Used by the assembler to infer a kernel's allocated register count.
    pub fn max_reg(&self) -> Option<u8> {
        fn op_max(o: Operand) -> Option<u8> {
            match o {
                Operand::Reg(r) => Some(r.index()),
                Operand::Imm(_) => None,
            }
        }
        let regs: [Option<u8>; 4] = match *self {
            Op::Mov { d, src } => [Some(d.index()), op_max(src), None, None],
            Op::S2r { d, .. } => [Some(d.index()), None, None, None],
            Op::IArith { d, a, b, .. } | Op::Bit { d, a, b, .. } | Op::FArith { d, a, b, .. } => {
                [Some(d.index()), Some(a.index()), op_max(b), None]
            }
            Op::IMad { d, a, b, c } | Op::FFma { d, a, b, c } => {
                [Some(d.index()), Some(a.index()), op_max(b), Some(c.index())]
            }
            Op::Not { d, a } | Op::FUnary { d, a, .. } | Op::I2f { d, a } | Op::F2i { d, a } => {
                [Some(d.index()), Some(a.index()), None, None]
            }
            Op::ISetp { a, b, .. } | Op::FSetp { a, b, .. } => {
                [Some(a.index()), op_max(b), None, None]
            }
            Op::Sel { d, a, b, .. } => [Some(d.index()), Some(a.index()), op_max(b), None],
            Op::Ld { d, addr, .. } => [Some(d.index()), Some(addr.index()), None, None],
            Op::St { addr, v, .. } => [Some(addr.index()), Some(v.index()), None, None],
            Op::Bra { .. } | Op::Ssy { .. } | Op::Sync | Op::Bar | Op::Exit | Op::Nop => {
                [None, None, None, None]
            }
        };
        regs.into_iter().flatten().max()
    }
}

/// A guard predicate, the `@P0` / `@!P0` prefix of a predicated instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guard {
    /// The predicate register tested.
    pub pred: Pred,
    /// Whether the test is negated (`@!P`).
    pub negate: bool,
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// A complete instruction: an optional guard plus the operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    /// Optional guard predicate; `None` executes unconditionally.
    pub guard: Option<Guard>,
    /// The operation performed.
    pub op: Op,
}

impl Instr {
    /// An unguarded instruction.
    pub fn new(op: Op) -> Self {
        Instr { guard: None, op }
    }

    /// A guarded instruction (`@P op` or `@!P op`).
    pub fn guarded(pred: Pred, negate: bool, op: Op) -> Self {
        Instr {
            guard: Some(Guard { pred, negate }),
            op,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.op)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Mov { d, src } => write!(f, "MOV {d}, {src}"),
            Op::S2r { d, sr } => write!(f, "S2R {d}, {sr}"),
            Op::IArith { op, d, a, b } => write!(f, "{} {d}, {a}, {b}", op.mnemonic()),
            Op::IMad { d, a, b, c } => write!(f, "IMAD {d}, {a}, {b}, {c}"),
            Op::Bit { op, d, a, b } => write!(f, "{} {d}, {a}, {b}", op.mnemonic()),
            Op::Not { d, a } => write!(f, "NOT {d}, {a}"),
            Op::FArith { op, d, a, b } => write!(f, "{} {d}, {a}, {b}", op.mnemonic()),
            Op::FFma { d, a, b, c } => write!(f, "FFMA {d}, {a}, {b}, {c}"),
            Op::FUnary { op, d, a } => write!(f, "{} {d}, {a}", op.mnemonic()),
            Op::I2f { d, a } => write!(f, "I2F {d}, {a}"),
            Op::F2i { d, a } => write!(f, "F2I {d}, {a}"),
            Op::ISetp { cmp, p, a, b } => write!(f, "ISETP.{cmp} {p}, {a}, {b}"),
            Op::FSetp { cmp, p, a, b } => write!(f, "FSETP.{cmp} {p}, {a}, {b}"),
            Op::Sel { d, a, b, p } => write!(f, "SEL {d}, {a}, {b}, {p}"),
            Op::Bra { target } => write!(f, "BRA {target}"),
            Op::Ssy { target } => write!(f, "SSY {target}"),
            Op::Sync => f.write_str("SYNC"),
            Op::Bar => f.write_str("BAR"),
            Op::Exit => f.write_str("EXIT"),
            Op::Nop => f.write_str("NOP"),
            Op::Ld {
                space,
                d,
                addr,
                offset,
            } => {
                write!(
                    f,
                    "{} {d}, [{addr}{}]",
                    space.load_mnemonic(),
                    FmtOff(offset)
                )
            }
            Op::St {
                space,
                addr,
                offset,
                v,
            } => {
                let m = space.store_mnemonic().expect("texture space has no stores");
                write!(f, "{m} [{addr}{}], {v}", FmtOff(offset))
            }
        }
    }
}

/// Formats a byte offset as `+N` / `-N`, or nothing when zero.
struct FmtOff(i32);

impl fmt::Display for FmtOff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => Ok(()),
            n if n > 0 => write!(f, "+{n}"),
            n => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn max_reg_covers_all_fields() {
        let op = Op::IMad {
            d: r(1),
            a: r(9),
            b: Operand::Reg(r(4)),
            c: r(7),
        };
        assert_eq!(op.max_reg(), Some(9));
        assert_eq!(Op::Exit.max_reg(), None);
        let st = Op::St {
            space: MemSpace::Global,
            addr: r(3),
            offset: 4,
            v: r(12),
        };
        assert_eq!(st.max_reg(), Some(12));
    }

    #[test]
    fn src_regs_cover_reads() {
        let imad = Op::IMad {
            d: r(1),
            a: r(2),
            b: Operand::Reg(r(3)),
            c: r(4),
        };
        assert_eq!(imad.src_regs(), [Some(r(2)), Some(r(3)), Some(r(4))]);
        let st = Op::St {
            space: MemSpace::Global,
            addr: r(5),
            offset: 0,
            v: r(6),
        };
        assert_eq!(st.src_regs(), [Some(r(5)), Some(r(6)), None]);
        let mov_imm = Op::Mov {
            d: r(1),
            src: Operand::Imm(3),
        };
        assert_eq!(mov_imm.src_regs(), [None, None, None]);
        assert_eq!(Op::Exit.src_regs(), [None, None, None]);
    }

    #[test]
    fn dest_reg_for_loads_and_none_for_stores() {
        let ld = Op::Ld {
            space: MemSpace::Shared,
            d: r(5),
            addr: r(1),
            offset: 0,
        };
        assert_eq!(ld.dest_reg(), Some(r(5)));
        let st = Op::St {
            space: MemSpace::Shared,
            addr: r(1),
            offset: 0,
            v: r(5),
        };
        assert_eq!(st.dest_reg(), None);
    }

    #[test]
    fn display_round_forms() {
        let i = Instr::guarded(Pred::new(0).unwrap(), true, Op::Bra { target: 7 });
        assert_eq!(i.to_string(), "@!P0 BRA 7");
        let ld = Instr::new(Op::Ld {
            space: MemSpace::Global,
            d: r(2),
            addr: r(1),
            offset: -8,
        });
        assert_eq!(ld.to_string(), "LDG R2, [R1-8]");
    }

    #[test]
    fn op_classes() {
        assert_eq!(Op::Bar.class(), OpClass::Barrier);
        assert_eq!(
            Op::FUnary {
                op: FloatUnOp::Rcp,
                d: r(0),
                a: r(0)
            }
            .class(),
            OpClass::Sfu
        );
        assert_eq!(
            Op::IArith {
                op: IntOp::Mul,
                d: r(0),
                a: r(0),
                b: Operand::Imm(3)
            }
            .class(),
            OpClass::Mul
        );
    }
}
