//! Kernel and module containers.

use crate::asm;
use crate::error::AsmError;
use crate::instr::Instr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An assembled kernel: the instruction stream plus launch metadata.
///
/// The metadata mirrors what a CUDA toolchain records for a real kernel —
/// register footprint, static shared-memory usage, per-thread local-memory
/// usage — because the fault-injection methodology (derating factors,
/// occupancy limits) depends on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instr>,
    num_params: u8,
    num_regs: u8,
    smem_bytes: u32,
    lmem_bytes: u32,
}

impl Kernel {
    pub(crate) fn new(
        name: String,
        instrs: Vec<Instr>,
        num_params: u8,
        num_regs: u8,
        smem_bytes: u32,
        lmem_bytes: u32,
    ) -> Self {
        Kernel {
            name,
            instrs,
            num_params,
            num_regs,
            smem_bytes,
            lmem_bytes,
        }
    }

    /// The kernel name (the `.kernel` directive operand).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream; branch targets are indices into this slice.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of `u32` parameters preloaded into `R0..` at thread start.
    pub fn num_params(&self) -> u8 {
        self.num_params
    }

    /// Allocated registers per thread (covers parameters and all referenced
    /// registers; may be raised by a `.regs` directive).
    pub fn num_regs(&self) -> u8 {
        self.num_regs
    }

    /// Static shared memory per CTA, in bytes.
    pub fn smem_bytes(&self) -> u32 {
        self.smem_bytes
    }

    /// Local memory per thread, in bytes.
    pub fn lmem_bytes(&self) -> u32 {
        self.lmem_bytes
    }
}

impl fmt::Display for Kernel {
    /// Disassembles the kernel in a form [`Module::assemble`] accepts back.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {}", self.name)?;
        writeln!(f, ".params {}", self.num_params)?;
        // `.regs 0` is not accepted by the assembler (a register count of
        // zero is only possible when nothing is referenced, which the
        // assembler infers on its own).
        if self.num_regs > 0 {
            writeln!(f, ".regs {}", self.num_regs)?;
        }
        writeln!(f, ".smem {}", self.smem_bytes)?;
        writeln!(f, ".lmem {}", self.lmem_bytes)?;
        for (idx, i) in self.instrs.iter().enumerate() {
            writeln!(f, "L{idx}: {i}")?;
        }
        Ok(())
    }
}

/// A collection of kernels assembled from one source text, analogous to a
/// CUDA module / cubin.
///
/// ```
/// use gpufi_isa::Module;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = Module::assemble(".kernel a\n EXIT\n.kernel b\n EXIT\n")?;
/// assert_eq!(m.kernels().len(), 2);
/// assert!(m.kernel("a").is_some());
/// assert!(m.kernel("missing").is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    kernels: Vec<Kernel>,
}

impl Module {
    pub(crate) fn from_kernels(kernels: Vec<Kernel>) -> Self {
        Module { kernels }
    }

    /// Assembles SASS-lite source text into a module.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] carrying the offending source line when the
    /// text contains unknown mnemonics, malformed operands, undefined or
    /// duplicate labels, out-of-range registers, or stores to the read-only
    /// texture space.
    pub fn assemble(source: &str) -> Result<Self, AsmError> {
        asm::assemble(source)
    }

    /// All kernels, in source order.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for k in &self.kernels {
            writeln!(f, "{k}")?;
        }
        Ok(())
    }
}
