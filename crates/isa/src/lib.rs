//! # gpufi-isa — the SASS-lite instruction set
//!
//! The gpuFI-4 paper injects faults while benchmarks execute on the *actual
//! physical instruction set* (SASS) inside GPGPU-Sim 4.0.  Real SASS is
//! undocumented, and GPGPU-Sim itself executes PTXPlus — a PTX dialect with a
//! one-to-one mapping to SASS.  This crate plays the same role for our
//! from-scratch simulator: it defines **SASS-lite**, a register-based,
//! predicated, SIMT instruction set that is close in spirit to Kepler-era
//! SASS (explicit `SSY`/`SYNC` reconvergence, `@P` guards, special-register
//! reads via `S2R`, typed memory spaces `LDG/LDS/LDL/LDT`).
//!
//! The crate provides:
//!
//! * the decoded instruction representation ([`Instr`], [`Op`], [`Operand`]),
//! * registers and predicates ([`Reg`], [`Pred`], [`SpecialReg`]),
//! * kernel and module containers ([`Kernel`], [`Module`]),
//! * a text assembler ([`Module::assemble`]) and disassembler
//!   (`Display` impls on every instruction type).
//!
//! # Example
//!
//! ```
//! use gpufi_isa::Module;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = Module::assemble(
//!     r#"
//! .kernel scale       ; y[i] = 2 * x[i]; params: R0=x, R1=y, R2=n
//! .params 3
//!     S2R   R3, SR_TID.X
//!     S2R   R4, SR_CTAID.X
//!     S2R   R5, SR_NTID.X
//!     IMAD  R3, R4, R5, R3
//!     ISETP.GE P0, R3, R2
//! @P0 EXIT
//!     SHL   R4, R3, 2
//!     IADD  R5, R0, R4
//!     LDG   R6, [R5]
//!     IADD  R6, R6, R6
//!     IADD  R5, R1, R4
//!     STG   [R5], R6
//!     EXIT
//! "#,
//! )?;
//! let kernel = module.kernel("scale").expect("kernel exists");
//! assert_eq!(kernel.num_params(), 3);
//! assert!(kernel.num_regs() >= 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod asm;
mod error;
mod instr;
mod kernel;
mod op;
pub mod predecode;
mod reg;
pub mod semantics;

pub use asm::assemble;
pub use error::AsmError;
pub use instr::{Guard, Instr, MemSpace, Op, Operand};
pub use kernel::{Kernel, Module};
pub use op::{BitOp, CmpOp, FloatOp, FloatUnOp, IntOp, OpClass};
pub use predecode::{MicroOp, Predecoded};
pub use reg::{Pred, Reg, SpecialReg, MAX_PRED, MAX_REG};
