//! Operation kinds shared by the instruction representation and the
//! simulator's functional/timing models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Two-operand integer arithmetic selectors for [`Op::IArith`].
///
/// [`Op::IArith`]: crate::Op::IArith
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum IntOp {
    Add,
    Sub,
    Mul,
    Min,
    Max,
}

impl IntOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntOp::Add => "IADD",
            IntOp::Sub => "ISUB",
            IntOp::Mul => "IMUL",
            IntOp::Min => "IMIN",
            IntOp::Max => "IMAX",
        }
    }
}

/// Two-operand IEEE-754 single-precision selectors for [`Op::FArith`].
///
/// [`Op::FArith`]: crate::Op::FArith
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FloatOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FloatOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatOp::Add => "FADD",
            FloatOp::Sub => "FSUB",
            FloatOp::Mul => "FMUL",
            FloatOp::Div => "FDIV",
            FloatOp::Min => "FMIN",
            FloatOp::Max => "FMAX",
        }
    }
}

/// Unary single-precision selectors for [`Op::FUnary`] — the operations a
/// real GPU routes to its special-function units (SFUs).
///
/// [`Op::FUnary`]: crate::Op::FUnary
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FloatUnOp {
    /// Reciprocal, `1.0 / a`.
    Rcp,
    Sqrt,
    /// Base-2 exponential (`exp2f`).
    Ex2,
    /// Base-2 logarithm (`log2f`).
    Lg2,
    Abs,
    Neg,
    Floor,
}

impl FloatUnOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatUnOp::Rcp => "FRCP",
            FloatUnOp::Sqrt => "FSQRT",
            FloatUnOp::Ex2 => "FEX2",
            FloatUnOp::Lg2 => "FLG2",
            FloatUnOp::Abs => "FABS",
            FloatUnOp::Neg => "FNEG",
            FloatUnOp::Floor => "FFLOOR",
        }
    }
}

/// Bitwise / shift selectors for [`Op::Bit`].
///
/// Shift amounts use the low 5 bits of the second operand, like the
/// hardware's 32-bit shifter.
///
/// [`Op::Bit`]: crate::Op::Bit
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BitOp {
    And,
    Or,
    Xor,
    /// Logical left shift.
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

impl BitOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BitOp::And => "AND",
            BitOp::Or => "OR",
            BitOp::Xor => "XOR",
            BitOp::Shl => "SHL",
            BitOp::Shr => "SHR",
            BitOp::Sar => "SAR",
        }
    }
}

/// Comparison selectors for `ISETP` / `FSETP`.
///
/// Integer comparisons are **signed** (SASS-lite integers are `i32` unless an
/// instruction says otherwise); float comparisons follow IEEE-754 semantics
/// (any comparison with a NaN is false except `Ne`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Assembler suffix, e.g. the `GE` in `ISETP.GE`.
    pub fn suffix(self) -> &'static str {
        match self {
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
        }
    }

    /// Parses an assembler suffix; inverse of [`CmpOp::suffix`].
    pub fn from_suffix(s: &str) -> Option<Self> {
        Some(match s {
            "EQ" => CmpOp::Eq,
            "NE" => CmpOp::Ne,
            "LT" => CmpOp::Lt,
            "LE" => CmpOp::Le,
            "GT" => CmpOp::Gt,
            "GE" => CmpOp::Ge,
            _ => return None,
        })
    }

    /// Evaluates the comparison on signed integers.
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the comparison on single-precision floats.
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Coarse functional-unit class of an instruction, used by the timing model
/// to pick issue latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer/logic ALU operation.
    Alu,
    /// Integer or float multiply / FMA.
    Mul,
    /// Special-function unit (reciprocal, sqrt, transcendental).
    Sfu,
    /// Memory access (load or store, any space).
    Mem,
    /// Control flow (branch, reconvergence, exit).
    Ctrl,
    /// CTA-wide barrier.
    Barrier,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_suffix_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(CmpOp::from_suffix(op.suffix()), Some(op));
        }
        assert_eq!(CmpOp::from_suffix("XX"), None);
    }

    #[test]
    fn cmp_eval_i32() {
        assert!(CmpOp::Lt.eval_i32(-1, 0));
        assert!(CmpOp::Ge.eval_i32(5, 5));
        assert!(!CmpOp::Gt.eval_i32(5, 5));
        assert!(CmpOp::Ne.eval_i32(i32::MIN, i32::MAX));
    }

    #[test]
    fn cmp_eval_f32_nan_semantics() {
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
        assert!(CmpOp::Ne.eval_f32(f32::NAN, 1.0));
        assert!(!CmpOp::Lt.eval_f32(f32::NAN, 1.0));
    }
}
