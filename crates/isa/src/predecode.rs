//! Ahead-of-time kernel predecoding for the interpreter hot path.
//!
//! The cycle-level simulator issues one instruction per core per cycle;
//! everything it derives from an [`Instr`] at issue time — the latency
//! class, the guard predicate, the source/destination register sets —
//! is the same on every issue of that static instruction.  This module
//! computes it once per kernel: [`Predecoded::from_kernel`] lowers the
//! instruction stream into a flat [`MicroOp`] array with those facts
//! resolved, register indices already scaled to lane-slot bases
//! (`reg * 32`, matching the simulator's structure-of-arrays register
//! file), and branch targets kept absolute as the assembler resolved
//! them.
//!
//! The original [`Op`] payload rides along in each micro-op: semantics
//! still dispatch on it, but the per-issue calls to [`Op::class`],
//! [`Op::src_regs`] and [`Op::dest_reg`] — each a full match over the
//! instruction — disappear from the hot loop.

use crate::instr::{Instr, Op};
use crate::kernel::Kernel;
use crate::op::OpClass;

/// Warp width the lane-slot bases are scaled by (SASS-lite fixes the warp
/// at 32 lanes).
pub const WARP_LANES: usize = 32;

/// Sentinel value of [`MicroOp::dst`] for operations that write no
/// general-purpose register.
pub const NO_DST: u16 = u16::MAX;

/// One predecoded instruction: the facts the scheduler and the ACE/taint
/// bookkeeping need every issue, computed once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// The operation payload; branch targets are absolute instruction
    /// indices (resolved by the assembler).
    pub op: Op,
    /// Latency class, resolved from [`Op::class`].
    pub class: OpClass,
    /// Guard as `(predicate index, negate)`, or `None` for unguarded
    /// instructions.
    pub guard: Option<(u8, bool)>,
    /// Lane-slot bases (`reg * 32`) of the general-purpose register
    /// sources, in operand order; the first [`MicroOp::nsrcs`] entries are
    /// valid.
    pub srcs: [u16; 3],
    /// Number of valid entries in [`MicroOp::srcs`].
    pub nsrcs: u8,
    /// Lane-slot base of the destination register, or [`NO_DST`].
    pub dst: u16,
}

impl MicroOp {
    /// Lowers one decoded instruction.
    pub fn from_instr(instr: &Instr) -> Self {
        let mut srcs = [0u16; 3];
        let mut nsrcs = 0u8;
        for s in instr.op.src_regs().into_iter().flatten() {
            srcs[usize::from(nsrcs)] = u16::from(s.index()) * WARP_LANES as u16;
            nsrcs += 1;
        }
        MicroOp {
            op: instr.op,
            class: instr.op.class(),
            guard: instr.guard.map(|g| (g.pred.index(), g.negate)),
            srcs,
            nsrcs,
            dst: instr
                .op
                .dest_reg()
                .map_or(NO_DST, |d| u16::from(d.index()) * WARP_LANES as u16),
        }
    }

    /// The valid source lane-slot bases.
    pub fn src_bases(&self) -> &[u16] {
        &self.srcs[..usize::from(self.nsrcs)]
    }
}

/// A kernel's instruction stream lowered to micro-ops, indexed by the same
/// program counter as [`Kernel::instrs`].
#[derive(Debug, Clone, Default)]
pub struct Predecoded {
    /// One micro-op per instruction, in program order.
    pub uops: Vec<MicroOp>,
}

impl Predecoded {
    /// Predecodes every instruction of `kernel`.
    pub fn from_kernel(kernel: &Kernel) -> Self {
        Predecoded {
            uops: kernel.instrs().iter().map(MicroOp::from_instr).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Module;

    #[test]
    fn lowers_classes_guards_and_slots() {
        let m = Module::assemble(
            ".kernel k\n\
             .params 1\n\
                 S2R R2, SR_TID.X\n\
                 ISETP.GE P1, R2, R0\n\
             @!P1 IMAD R3, R2, R0, R2\n\
                 STG [R0], R3\n\
                 EXIT\n",
        )
        .unwrap();
        let pre = Predecoded::from_kernel(m.kernel("k").unwrap());
        assert_eq!(pre.uops.len(), 5);

        let s2r = &pre.uops[0];
        assert_eq!(s2r.class, OpClass::Alu);
        assert_eq!(s2r.guard, None);
        assert_eq!(s2r.src_bases(), &[] as &[u16]);
        assert_eq!(s2r.dst, 2 * WARP_LANES as u16);

        let setp = &pre.uops[1];
        assert_eq!(setp.dst, NO_DST);
        assert_eq!(setp.src_bases(), &[2 * WARP_LANES as u16, 0]);

        let imad = &pre.uops[2];
        assert_eq!(imad.class, OpClass::Mul);
        assert_eq!(imad.guard, Some((1, true)));
        assert_eq!(
            imad.src_bases(),
            &[2 * WARP_LANES as u16, 0, 2 * WARP_LANES as u16]
        );
        assert_eq!(imad.dst, 3 * WARP_LANES as u16);

        let stg = &pre.uops[3];
        assert_eq!(stg.class, OpClass::Mem);
        assert_eq!(stg.dst, NO_DST);
        assert_eq!(stg.src_bases(), &[0, 3 * WARP_LANES as u16]);

        assert_eq!(pre.uops[4].class, OpClass::Ctrl);
    }

    #[test]
    fn immediate_operands_contribute_no_source_slots() {
        let m = Module::assemble(".kernel k\n IADD R1, R1, 7\n EXIT\n").unwrap();
        let pre = Predecoded::from_kernel(m.kernel("k").unwrap());
        assert_eq!(pre.uops[0].src_bases(), &[WARP_LANES as u16]);
    }
}
