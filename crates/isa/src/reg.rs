//! Architectural register and predicate names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Highest addressable general-purpose register index (`R254`).
///
/// `R255` is reserved (real SASS uses it as the zero register `RZ`; SASS-lite
/// has no zero register, so the encoding space is simply capped).
pub const MAX_REG: u8 = 254;

/// Highest addressable predicate register index (`P6`).
///
/// `P7` is the always-true predicate `PT` in real SASS; SASS-lite spells an
/// unguarded instruction by omitting the `@P` prefix instead.
pub const MAX_PRED: u8 = 6;

/// A 32-bit general-purpose register, `R0` … `R254`.
///
/// Kernel parameters are preloaded into `R0..Rk` at thread start (the
/// SASS-lite launch ABI), so the allocated register count of a kernel always
/// covers its parameters — faults in a parameter pointer register are
/// therefore injectable, exactly like a live pointer in hardware.
///
/// ```
/// use gpufi_isa::Reg;
/// let r = Reg::new(3).unwrap();
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "R3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index.
    ///
    /// Returns `None` if `index` exceeds [`MAX_REG`].
    pub fn new(index: u8) -> Option<Self> {
        (index <= MAX_REG).then_some(Reg(index))
    }

    /// The register index (0-based).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A 1-bit predicate register, `P0` … `P6`.
///
/// ```
/// use gpufi_isa::Pred;
/// assert_eq!(Pred::new(0).unwrap().to_string(), "P0");
/// assert!(Pred::new(7).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pred(u8);

impl Pred {
    /// Creates a predicate register from its index.
    ///
    /// Returns `None` if `index` exceeds [`MAX_PRED`].
    pub fn new(index: u8) -> Option<Self> {
        (index <= MAX_PRED).then_some(Pred(index))
    }

    /// The predicate index (0-based).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Read-only special registers, read with `S2R`.
///
/// These mirror the CUDA built-ins (`threadIdx`, `blockIdx`, `blockDim`,
/// `gridDim`) plus the intra-warp lane id and the warp id within the CTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecialReg {
    TidX,
    TidY,
    TidZ,
    CtaIdX,
    CtaIdY,
    CtaIdZ,
    NTidX,
    NTidY,
    NTidZ,
    NCtaIdX,
    NCtaIdY,
    NCtaIdZ,
    LaneId,
    WarpId,
}

impl SpecialReg {
    /// All special registers, in assembler-name order.
    pub const ALL: [SpecialReg; 14] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::TidZ,
        SpecialReg::CtaIdX,
        SpecialReg::CtaIdY,
        SpecialReg::CtaIdZ,
        SpecialReg::NTidX,
        SpecialReg::NTidY,
        SpecialReg::NTidZ,
        SpecialReg::NCtaIdX,
        SpecialReg::NCtaIdY,
        SpecialReg::NCtaIdZ,
        SpecialReg::LaneId,
        SpecialReg::WarpId,
    ];

    /// The assembler spelling, e.g. `SR_TID.X`.
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::TidY => "SR_TID.Y",
            SpecialReg::TidZ => "SR_TID.Z",
            SpecialReg::CtaIdX => "SR_CTAID.X",
            SpecialReg::CtaIdY => "SR_CTAID.Y",
            SpecialReg::CtaIdZ => "SR_CTAID.Z",
            SpecialReg::NTidX => "SR_NTID.X",
            SpecialReg::NTidY => "SR_NTID.Y",
            SpecialReg::NTidZ => "SR_NTID.Z",
            SpecialReg::NCtaIdX => "SR_NCTAID.X",
            SpecialReg::NCtaIdY => "SR_NCTAID.Y",
            SpecialReg::NCtaIdZ => "SR_NCTAID.Z",
            SpecialReg::LaneId => "SR_LANEID",
            SpecialReg::WarpId => "SR_WARPID",
        }
    }

    /// Parses an assembler spelling; inverse of [`SpecialReg::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|sr| sr.name() == name)
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(0).unwrap().index(), 0);
        assert_eq!(Reg::new(MAX_REG).unwrap().index(), MAX_REG);
        assert!(Reg::new(MAX_REG + 1).is_none());
    }

    #[test]
    fn pred_bounds() {
        assert_eq!(Pred::new(MAX_PRED).unwrap().index(), MAX_PRED);
        assert!(Pred::new(MAX_PRED + 1).is_none());
    }

    #[test]
    fn special_reg_name_roundtrip() {
        for sr in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_name(sr.name()), Some(sr));
        }
        assert_eq!(SpecialReg::from_name("SR_BOGUS"), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg::new(42).unwrap().to_string(), "R42");
        assert_eq!(Pred::new(5).unwrap().to_string(), "P5");
        assert_eq!(SpecialReg::LaneId.to_string(), "SR_LANEID");
    }
}
