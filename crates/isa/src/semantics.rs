//! Pure functional evaluation of SASS-lite ALU operations.
//!
//! All values are raw 32-bit patterns; float operations reinterpret bits as
//! IEEE-754 single precision.  Integer arithmetic wraps (like the hardware),
//! float division by zero produces ±inf / NaN (GPUs do not trap on float
//! exceptions), and `F2I` saturates like CUDA's `cvt.rzi.s32.f32`.
//!
//! These functions are the *single* definition of SASS-lite data-path
//! semantics: both the cycle-level simulator and the functional reference
//! oracle evaluate every ALU instruction through them, so a sim-vs-oracle
//! divergence can never be explained by two diverging arithmetic
//! implementations — only by control flow, scheduling or memory modelling.

use crate::op::{BitOp, FloatOp, FloatUnOp, IntOp};

/// Evaluates a two-operand integer operation.
pub fn int_op(op: IntOp, a: u32, b: u32) -> u32 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Min => (a as i32).min(b as i32) as u32,
        IntOp::Max => (a as i32).max(b as i32) as u32,
    }
}

/// Evaluates `a * b + c` with 32-bit wrapping (IMAD).
pub fn imad(a: u32, b: u32, c: u32) -> u32 {
    a.wrapping_mul(b).wrapping_add(c)
}

/// Evaluates a two-operand float operation on raw bit patterns.
pub fn float_op(op: FloatOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f32::from_bits(a), f32::from_bits(b));
    let r = match op {
        FloatOp::Add => x + y,
        FloatOp::Sub => x - y,
        FloatOp::Mul => x * y,
        FloatOp::Div => x / y,
        FloatOp::Min => x.min(y),
        FloatOp::Max => x.max(y),
    };
    r.to_bits()
}

/// Evaluates a fused multiply-add `a * b + c` on raw bit patterns.
pub fn ffma(a: u32, b: u32, c: u32) -> u32 {
    f32::from_bits(a)
        .mul_add(f32::from_bits(b), f32::from_bits(c))
        .to_bits()
}

/// Evaluates a unary float (SFU) operation on a raw bit pattern.
pub fn float_un(op: FloatUnOp, a: u32) -> u32 {
    let x = f32::from_bits(a);
    let r = match op {
        FloatUnOp::Rcp => 1.0 / x,
        FloatUnOp::Sqrt => x.sqrt(),
        FloatUnOp::Ex2 => x.exp2(),
        FloatUnOp::Lg2 => x.log2(),
        FloatUnOp::Abs => x.abs(),
        FloatUnOp::Neg => -x,
        FloatUnOp::Floor => x.floor(),
    };
    r.to_bits()
}

/// Evaluates a bitwise / shift operation.
pub fn bit_op(op: BitOp, a: u32, b: u32) -> u32 {
    match op {
        BitOp::And => a & b,
        BitOp::Or => a | b,
        BitOp::Xor => a ^ b,
        BitOp::Shl => a << (b & 31),
        BitOp::Shr => a >> (b & 31),
        BitOp::Sar => ((a as i32) >> (b & 31)) as u32,
    }
}

/// Signed integer → float conversion.
pub fn i2f(a: u32) -> u32 {
    (a as i32 as f32).to_bits()
}

/// Float → signed integer conversion, round toward zero, saturating.
pub fn f2i(a: u32) -> u32 {
    (f32::from_bits(a) as i32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_wrapping_and_signed_minmax() {
        assert_eq!(int_op(IntOp::Add, u32::MAX, 1), 0);
        assert_eq!(int_op(IntOp::Mul, 1 << 31, 2), 0);
        assert_eq!(int_op(IntOp::Min, (-5i32) as u32, 3) as i32, -5);
        assert_eq!(int_op(IntOp::Max, (-5i32) as u32, 3), 3);
    }

    #[test]
    fn imad_wraps() {
        assert_eq!(imad(2, 3, 4), 10);
        assert_eq!(imad(u32::MAX, 2, 3), 1);
    }

    #[test]
    fn float_div_by_zero_is_inf_not_trap() {
        let r = f32::from_bits(float_op(FloatOp::Div, 1.0f32.to_bits(), 0.0f32.to_bits()));
        assert!(r.is_infinite());
        let n = f32::from_bits(float_op(FloatOp::Div, 0.0f32.to_bits(), 0.0f32.to_bits()));
        assert!(n.is_nan());
    }

    #[test]
    fn ffma_is_fused() {
        // Fused multiply-add keeps the intermediate at full precision.
        let a = 1.0f32 + 2f32.powi(-12);
        let r = f32::from_bits(ffma(a.to_bits(), a.to_bits(), (-1.0f32).to_bits()));
        let unfused = a * a - 1.0;
        assert_eq!(r, a.mul_add(a, -1.0));
        // The two differ for this input, proving fusion.
        assert_ne!(r, unfused);
    }

    #[test]
    fn sfu_ops() {
        let f = |op, x: f32| f32::from_bits(float_un(op, x.to_bits()));
        assert_eq!(f(FloatUnOp::Rcp, 4.0), 0.25);
        assert_eq!(f(FloatUnOp::Sqrt, 9.0), 3.0);
        assert_eq!(f(FloatUnOp::Ex2, 3.0), 8.0);
        assert_eq!(f(FloatUnOp::Lg2, 8.0), 3.0);
        assert_eq!(f(FloatUnOp::Abs, -2.5), 2.5);
        assert_eq!(f(FloatUnOp::Neg, 2.5), -2.5);
        assert_eq!(f(FloatUnOp::Floor, 2.9), 2.0);
        assert!(f(FloatUnOp::Sqrt, -1.0).is_nan());
    }

    #[test]
    fn shifts_mask_to_five_bits() {
        assert_eq!(bit_op(BitOp::Shl, 1, 33), 2);
        assert_eq!(bit_op(BitOp::Shr, 0x8000_0000, 31), 1);
        assert_eq!(bit_op(BitOp::Sar, 0x8000_0000, 31), u32::MAX);
    }

    #[test]
    fn conversions() {
        assert_eq!(f32::from_bits(i2f((-3i32) as u32)), -3.0);
        assert_eq!(f2i(2.9f32.to_bits()) as i32, 2);
        assert_eq!(f2i((-2.9f32).to_bits()) as i32, -2);
        // Saturation on overflow and NaN -> 0 (Rust `as` semantics, matching
        // CUDA's saturating cvt).
        assert_eq!(f2i(1e20f32.to_bits()) as i32, i32::MAX);
        assert_eq!(f2i(f32::NAN.to_bits()), 0);
    }
}
