//! Property tests: any well-formed instruction stream survives a
//! disassemble → reassemble round trip, and the assembler never panics on
//! arbitrary input.

use gpufi_isa::{
    BitOp, CmpOp, FloatOp, FloatUnOp, Instr, IntOp, MemSpace, Module, Op, Operand, Pred, Reg,
    SpecialReg,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..=254).prop_map(|i| Reg::new(i).expect("in range"))
}

fn pred() -> impl Strategy<Value = Pred> {
    (0u8..=6).prop_map(|i| Pred::new(i).expect("in range"))
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg().prop_map(Operand::Reg),
        any::<u32>().prop_map(Operand::Imm),
    ]
}

fn int_op() -> impl Strategy<Value = IntOp> {
    prop_oneof![
        Just(IntOp::Add),
        Just(IntOp::Sub),
        Just(IntOp::Mul),
        Just(IntOp::Min),
        Just(IntOp::Max),
    ]
}

fn float_op() -> impl Strategy<Value = FloatOp> {
    prop_oneof![
        Just(FloatOp::Add),
        Just(FloatOp::Sub),
        Just(FloatOp::Mul),
        Just(FloatOp::Div),
        Just(FloatOp::Min),
        Just(FloatOp::Max),
    ]
}

fn bit_op() -> impl Strategy<Value = BitOp> {
    prop_oneof![
        Just(BitOp::And),
        Just(BitOp::Or),
        Just(BitOp::Xor),
        Just(BitOp::Shl),
        Just(BitOp::Shr),
        Just(BitOp::Sar),
    ]
}

fn fun_op() -> impl Strategy<Value = FloatUnOp> {
    prop_oneof![
        Just(FloatUnOp::Rcp),
        Just(FloatUnOp::Sqrt),
        Just(FloatUnOp::Ex2),
        Just(FloatUnOp::Lg2),
        Just(FloatUnOp::Abs),
        Just(FloatUnOp::Neg),
        Just(FloatUnOp::Floor),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn special_reg() -> impl Strategy<Value = SpecialReg> {
    prop::sample::select(SpecialReg::ALL.to_vec())
}

fn loadable_space() -> impl Strategy<Value = MemSpace> {
    prop_oneof![
        Just(MemSpace::Global),
        Just(MemSpace::Shared),
        Just(MemSpace::Local),
        Just(MemSpace::Texture),
    ]
}

fn storable_space() -> impl Strategy<Value = MemSpace> {
    prop_oneof![
        Just(MemSpace::Global),
        Just(MemSpace::Shared),
        Just(MemSpace::Local),
    ]
}

/// Non-control ops (branch targets need to stay in range, handled below).
fn straightline_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (reg(), operand()).prop_map(|(d, src)| Op::Mov { d, src }),
        (reg(), special_reg()).prop_map(|(d, sr)| Op::S2r { d, sr }),
        (int_op(), reg(), reg(), operand()).prop_map(|(op, d, a, b)| Op::IArith { op, d, a, b }),
        (reg(), reg(), operand(), reg()).prop_map(|(d, a, b, c)| Op::IMad { d, a, b, c }),
        (bit_op(), reg(), reg(), operand()).prop_map(|(op, d, a, b)| Op::Bit { op, d, a, b }),
        (reg(), reg()).prop_map(|(d, a)| Op::Not { d, a }),
        (float_op(), reg(), reg(), operand()).prop_map(|(op, d, a, b)| Op::FArith { op, d, a, b }),
        (reg(), reg(), operand(), reg()).prop_map(|(d, a, b, c)| Op::FFma { d, a, b, c }),
        (fun_op(), reg(), reg()).prop_map(|(op, d, a)| Op::FUnary { op, d, a }),
        (reg(), reg()).prop_map(|(d, a)| Op::I2f { d, a }),
        (reg(), reg()).prop_map(|(d, a)| Op::F2i { d, a }),
        (cmp_op(), pred(), reg(), operand()).prop_map(|(cmp, p, a, b)| Op::ISetp { cmp, p, a, b }),
        (cmp_op(), pred(), reg(), operand()).prop_map(|(cmp, p, a, b)| Op::FSetp { cmp, p, a, b }),
        (reg(), reg(), operand(), pred()).prop_map(|(d, a, b, p)| Op::Sel { d, a, b, p }),
        Just(Op::Sync),
        Just(Op::Bar),
        Just(Op::Exit),
        Just(Op::Nop),
        (loadable_space(), reg(), reg(), -4096i32..4096)
            .prop_map(|(space, d, addr, offset)| Op::Ld { space, d, addr, offset }),
        (storable_space(), reg(), -4096i32..4096, reg())
            .prop_map(|(space, addr, offset, v)| Op::St { space, addr, offset, v }),
    ]
}

fn instr(op: Op, guard: Option<(bool, u8)>) -> Instr {
    match guard {
        None => Instr::new(op),
        Some((negate, p)) => Instr::guarded(Pred::new(p % 7).expect("in range"), negate, op),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(asm) parsed back yields the identical module.
    #[test]
    fn disassembly_reassembles(
        ops in prop::collection::vec((straightline_op(), prop::option::of((any::<bool>(), 0u8..7))), 1..40),
        branches in prop::collection::vec((any::<bool>(), 0usize..40), 0..6),
    ) {
        let mut instrs: Vec<Instr> = ops.into_iter().map(|(op, g)| instr(op, g)).collect();
        // Insert branch-like ops with in-range targets.
        let len = instrs.len() as u32;
        for (is_ssy, pos) in branches {
            let target = (pos as u32) % len;
            let op = if is_ssy { Op::Ssy { target } } else { Op::Bra { target } };
            instrs.insert(pos % instrs.len(), Instr::new(op));
        }
        // Build a module by assembling a hand-printed form.
        let mut text = String::from(".kernel prop\n.params 0\n");
        for i in &instrs {
            text.push_str(&format!("{i}\n"));
        }
        let m1 = Module::assemble(&text).expect("printed form assembles");
        let m2 = Module::assemble(&m1.to_string()).expect("roundtrip assembles");
        prop_assert_eq!(m1, m2);
    }

    /// The assembler returns errors, never panics, on arbitrary text.
    #[test]
    fn assembler_never_panics(text in "\\PC{0,200}") {
        let _ = Module::assemble(&text);
    }

    /// Register-count inference covers every register referenced.
    #[test]
    fn num_regs_covers_references(
        ops in prop::collection::vec(straightline_op(), 1..30),
    ) {
        let instrs: Vec<Instr> = ops.into_iter().map(Instr::new).collect();
        let max_ref = instrs.iter().filter_map(|i| i.op.max_reg()).max();
        let mut text = String::from(".kernel k\n");
        for i in &instrs {
            text.push_str(&format!("{i}\n"));
        }
        let m = Module::assemble(&text).expect("assembles");
        let k = m.kernel("k").expect("kernel exists");
        if let Some(max_ref) = max_ref {
            prop_assert!(u16::from(k.num_regs()) > u16::from(max_ref));
        }
    }
}
