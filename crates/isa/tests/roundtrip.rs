//! Round-trip tests: any well-formed instruction stream survives a
//! disassemble → reassemble round trip, and the assembler never panics on
//! arbitrary input. A seeded inline PRNG plus an exhaustive per-variant
//! sweep replace the former `proptest` strategies so the suite runs
//! hermetically offline.

use gpufi_isa::{
    BitOp, CmpOp, FloatOp, FloatUnOp, Instr, IntOp, MemSpace, Module, Op, Operand, Pred, Reg,
    SpecialReg,
};

/// splitmix64 — tiny, seedable, deterministic.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn reg(&mut self) -> Reg {
        Reg::new(self.below(255) as u8).expect("in range")
    }

    fn pred(&mut self) -> Pred {
        Pred::new(self.below(7) as u8).expect("in range")
    }

    fn operand(&mut self) -> Operand {
        if self.below(2) == 0 {
            Operand::Reg(self.reg())
        } else {
            Operand::Imm(self.next() as u32)
        }
    }

    fn offset(&mut self) -> i32 {
        self.below(8192) as i32 - 4096
    }

    /// One random non-control op (branch targets are handled separately).
    fn straightline_op(&mut self) -> Op {
        const INT_OPS: [IntOp; 5] = [IntOp::Add, IntOp::Sub, IntOp::Mul, IntOp::Min, IntOp::Max];
        const FLOAT_OPS: [FloatOp; 6] = [
            FloatOp::Add,
            FloatOp::Sub,
            FloatOp::Mul,
            FloatOp::Div,
            FloatOp::Min,
            FloatOp::Max,
        ];
        const BIT_OPS: [BitOp; 6] = [
            BitOp::And,
            BitOp::Or,
            BitOp::Xor,
            BitOp::Shl,
            BitOp::Shr,
            BitOp::Sar,
        ];
        const FUN_OPS: [FloatUnOp; 7] = [
            FloatUnOp::Rcp,
            FloatUnOp::Sqrt,
            FloatUnOp::Ex2,
            FloatUnOp::Lg2,
            FloatUnOp::Abs,
            FloatUnOp::Neg,
            FloatUnOp::Floor,
        ];
        const CMP_OPS: [CmpOp; 6] = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        const LOADABLE: [MemSpace; 4] = [
            MemSpace::Global,
            MemSpace::Shared,
            MemSpace::Local,
            MemSpace::Texture,
        ];
        const STORABLE: [MemSpace; 3] = [MemSpace::Global, MemSpace::Shared, MemSpace::Local];

        match self.below(20) {
            0 => Op::Mov {
                d: self.reg(),
                src: self.operand(),
            },
            1 => Op::S2r {
                d: self.reg(),
                sr: SpecialReg::ALL[self.below(SpecialReg::ALL.len() as u64) as usize],
            },
            2 => Op::IArith {
                op: INT_OPS[self.below(5) as usize],
                d: self.reg(),
                a: self.reg(),
                b: self.operand(),
            },
            3 => Op::IMad {
                d: self.reg(),
                a: self.reg(),
                b: self.operand(),
                c: self.reg(),
            },
            4 => Op::Bit {
                op: BIT_OPS[self.below(6) as usize],
                d: self.reg(),
                a: self.reg(),
                b: self.operand(),
            },
            5 => Op::Not {
                d: self.reg(),
                a: self.reg(),
            },
            6 => Op::FArith {
                op: FLOAT_OPS[self.below(6) as usize],
                d: self.reg(),
                a: self.reg(),
                b: self.operand(),
            },
            7 => Op::FFma {
                d: self.reg(),
                a: self.reg(),
                b: self.operand(),
                c: self.reg(),
            },
            8 => Op::FUnary {
                op: FUN_OPS[self.below(7) as usize],
                d: self.reg(),
                a: self.reg(),
            },
            9 => Op::I2f {
                d: self.reg(),
                a: self.reg(),
            },
            10 => Op::F2i {
                d: self.reg(),
                a: self.reg(),
            },
            11 => Op::ISetp {
                cmp: CMP_OPS[self.below(6) as usize],
                p: self.pred(),
                a: self.reg(),
                b: self.operand(),
            },
            12 => Op::FSetp {
                cmp: CMP_OPS[self.below(6) as usize],
                p: self.pred(),
                a: self.reg(),
                b: self.operand(),
            },
            13 => Op::Sel {
                d: self.reg(),
                a: self.reg(),
                b: self.operand(),
                p: self.pred(),
            },
            14 => Op::Sync,
            15 => Op::Bar,
            16 => Op::Exit,
            17 => Op::Nop,
            18 => Op::Ld {
                space: LOADABLE[self.below(4) as usize],
                d: self.reg(),
                addr: self.reg(),
                offset: self.offset(),
            },
            _ => Op::St {
                space: STORABLE[self.below(3) as usize],
                addr: self.reg(),
                offset: self.offset(),
                v: self.reg(),
            },
        }
    }

    fn instr(&mut self) -> Instr {
        let op = self.straightline_op();
        match self.below(3) {
            0 => Instr::new(op),
            1 => Instr::guarded(self.pred(), false, op),
            _ => Instr::guarded(self.pred(), true, op),
        }
    }
}

/// One instance of every straight-line op variant with edge-case operands,
/// each also exercised under a guard.
fn one_of_each() -> Vec<Instr> {
    let r0 = Reg::new(0).expect("in range");
    let r254 = Reg::new(254).expect("in range");
    let p0 = Pred::new(0).expect("in range");
    let p6 = Pred::new(6).expect("in range");
    let ops = vec![
        Op::Mov {
            d: r0,
            src: Operand::Imm(u32::MAX),
        },
        Op::Mov {
            d: r254,
            src: Operand::Reg(r0),
        },
        Op::S2r {
            d: r0,
            sr: SpecialReg::ALL[0],
        },
        Op::IArith {
            op: IntOp::Add,
            d: r0,
            a: r254,
            b: Operand::Imm(0),
        },
        Op::IMad {
            d: r0,
            a: r0,
            b: Operand::Reg(r254),
            c: r0,
        },
        Op::Bit {
            op: BitOp::Sar,
            d: r254,
            a: r0,
            b: Operand::Imm(31),
        },
        Op::Not { d: r0, a: r254 },
        Op::FArith {
            op: FloatOp::Div,
            d: r0,
            a: r0,
            b: Operand::Reg(r0),
        },
        Op::FFma {
            d: r0,
            a: r0,
            b: Operand::Imm(0x3f80_0000),
            c: r254,
        },
        Op::FUnary {
            op: FloatUnOp::Floor,
            d: r0,
            a: r0,
        },
        Op::I2f { d: r0, a: r0 },
        Op::F2i { d: r254, a: r254 },
        Op::ISetp {
            cmp: CmpOp::Ge,
            p: p0,
            a: r0,
            b: Operand::Imm(7),
        },
        Op::FSetp {
            cmp: CmpOp::Ne,
            p: p6,
            a: r254,
            b: Operand::Reg(r0),
        },
        Op::Sel {
            d: r0,
            a: r0,
            b: Operand::Reg(r254),
            p: p0,
        },
        Op::Sync,
        Op::Bar,
        Op::Exit,
        Op::Nop,
        Op::Ld {
            space: MemSpace::Texture,
            d: r0,
            addr: r254,
            offset: -4096,
        },
        Op::Ld {
            space: MemSpace::Global,
            d: r0,
            addr: r0,
            offset: 4095,
        },
        Op::St {
            space: MemSpace::Shared,
            addr: r0,
            offset: 0,
            v: r254,
        },
        Op::St {
            space: MemSpace::Local,
            addr: r254,
            offset: -1,
            v: r0,
        },
    ];
    let mut instrs = Vec::new();
    for op in ops {
        instrs.push(Instr::new(op));
        instrs.push(Instr::guarded(p0, false, op));
        instrs.push(Instr::guarded(p6, true, op));
    }
    instrs
}

fn assert_roundtrip(mut instrs: Vec<Instr>, rng: &mut Prng, branches: usize) {
    // Insert branch-like ops with in-range targets.
    let len = instrs.len() as u32;
    for _ in 0..branches {
        let target = rng.below(u64::from(len)) as u32;
        let op = if rng.below(2) == 0 {
            Op::Ssy { target }
        } else {
            Op::Bra { target }
        };
        let pos = rng.below(instrs.len() as u64) as usize;
        instrs.insert(pos, Instr::new(op));
    }
    // Build a module by assembling a hand-printed form.
    let mut text = String::from(".kernel prop\n.params 0\n");
    for i in &instrs {
        text.push_str(&format!("{i}\n"));
    }
    let m1 = Module::assemble(&text).expect("printed form assembles");
    let m2 = Module::assemble(&m1.to_string()).expect("roundtrip assembles");
    assert_eq!(m1, m2);
}

/// print(asm) parsed back yields the identical module, for every op
/// variant and for random streams.
#[test]
fn disassembly_reassembles() {
    let mut rng = Prng(11);
    assert_roundtrip(one_of_each(), &mut rng, 6);
    for case in 0..64 {
        let n = 1 + rng.below(39) as usize;
        let instrs: Vec<Instr> = (0..n).map(|_| rng.instr()).collect();
        let branches = (case % 6) as usize;
        assert_roundtrip(instrs, &mut rng, branches);
    }
}

/// The assembler returns errors, never panics, on arbitrary text.
#[test]
fn assembler_never_panics() {
    let fixed = [
        "",
        ".kernel",
        ".kernel \n.params x\n",
        ".params 4\nIADD",
        "IADD R1, R2, R3",
        ".kernel k\nBOGUS R1\n",
        ".kernel k\n.params 0\nIADD R999, R0, R0\n",
        ".kernel k\nLDG R1, [R2+]\n",
        "@@P0 EXIT",
        ".kernel κ\nπ ρ σ\n",
        "\u{0}\u{1}\u{2}",
        ".kernel k\nBRA 4294967295\n",
    ];
    for text in fixed {
        let _ = Module::assemble(text);
    }
    let mut rng = Prng(12);
    for _ in 0..256 {
        let n = rng.below(200) as usize;
        let text: String = (0..n)
            .map(|_| char::from_u32(rng.below(0xd800) as u32).unwrap_or(' '))
            .collect();
        let _ = Module::assemble(&text);
    }
}

/// Register-count inference covers every register referenced.
#[test]
fn num_regs_covers_references() {
    let mut rng = Prng(13);
    for _ in 0..64 {
        let n = 1 + rng.below(29) as usize;
        let instrs: Vec<Instr> = (0..n).map(|_| Instr::new(rng.straightline_op())).collect();
        let max_ref = instrs.iter().filter_map(|i| i.op.max_reg()).max();
        let mut text = String::from(".kernel k\n");
        for i in &instrs {
            text.push_str(&format!("{i}\n"));
        }
        let m = Module::assemble(&text).expect("assembles");
        let k = m.kernel("k").expect("kernel exists");
        if let Some(max_ref) = max_ref {
            assert!(u16::from(k.num_regs()) > u16::from(max_ref));
        }
    }
}
