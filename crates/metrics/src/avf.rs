//! AVF computation: equations (1)–(3) of the paper plus the derating
//! factors.

use crate::effect::Tally;
use serde::{Deserialize, Serialize};

/// The `df_reg` derating factor (§V.A): the fraction of a physical
/// per-SM register file that is actually targetable in a given cycle.
///
/// ```text
/// df_reg = (#REGS_PER_THREAD × #THREADS_MEAN) / #REGFILE_SIZE_SM
/// ```
///
/// Clamped to `[0, 1]`.
pub fn df_reg(regs_per_thread: u32, mean_threads_per_sm: f64, regfile_regs_per_sm: u32) -> f64 {
    if regfile_regs_per_sm == 0 {
        return 0.0;
    }
    (f64::from(regs_per_thread) * mean_threads_per_sm / f64::from(regfile_regs_per_sm))
        .clamp(0.0, 1.0)
}

/// The `df_smem` derating factor (§V.A): the fraction of an SM's shared
/// memory that is actually targetable in a given cycle.
///
/// ```text
/// df_smem = (#CTA_SMEM_SIZE × #CTAS_MEAN) / #SMEM_SIZE
/// ```
///
/// All sizes in the same unit (bytes here).  Clamped to `[0, 1]`.
pub fn df_smem(cta_smem_bytes: u32, mean_ctas_per_sm: f64, smem_bytes_per_sm: u32) -> f64 {
    if smem_bytes_per_sm == 0 {
        return 0.0;
    }
    (f64::from(cta_smem_bytes) * mean_ctas_per_sm / f64::from(smem_bytes_per_sm)).clamp(0.0, 1.0)
}

/// One structure's campaign result for a kernel, ready for equation (2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureResult {
    /// Structure name (paper terminology), for reports.
    pub structure: String,
    /// The campaign tally.
    pub tally: Tally,
    /// Chip-wide size of the structure in bits (Table I values).
    pub size_bits: u64,
    /// Derating factor (`df_reg` / `df_smem`; 1.0 for caches).
    pub derate: f64,
}

impl StructureResult {
    /// Derated failure ratio: `FR × df`.
    pub fn effective_fr(&self) -> f64 {
        self.tally.failure_ratio() * self.derate
    }

    /// This structure's contribution to the numerator of equation (2).
    pub fn weighted_fr(&self) -> f64 {
        self.effective_fr() * self.size_bits as f64
    }
}

/// The kernel AVF — equation (2): size-weighted mean of the (derated)
/// structure failure ratios.
///
/// Returns 0 when the structure list is empty or total size is zero.
pub fn avf_kernel(structures: &[StructureResult]) -> f64 {
    let total: u64 = structures.iter().map(|s| s.size_bits).sum();
    if total == 0 {
        return 0.0;
    }
    structures
        .iter()
        .map(StructureResult::weighted_fr)
        .sum::<f64>()
        / total as f64
}

/// One kernel's AVF with its cycle weight, for equation (3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelAvf {
    /// The kernel AVF from [`avf_kernel`].
    pub avf: f64,
    /// Total cycles of all invocations of this kernel.
    pub cycles: u64,
}

/// The application (chip) AVF — equation (3): cycle-weighted mean of the
/// kernel AVFs.
///
/// Returns 0 when there are no cycles.
pub fn wavf(kernels: &[KernelAvf]) -> f64 {
    let total: u64 = kernels.iter().map(|k| k.cycles).sum();
    if total == 0 {
        return 0.0;
    }
    kernels.iter().map(|k| k.avf * k.cycles as f64).sum::<f64>() / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::FaultEffect;

    fn tally(failures: u64, total: u64) -> Tally {
        let mut t = Tally::default();
        for _ in 0..failures {
            t.record(FaultEffect::Sdc);
        }
        for _ in failures..total {
            t.record(FaultEffect::Masked);
        }
        t
    }

    #[test]
    fn df_reg_formula() {
        // 16 regs/thread × 1024 mean threads / 65536 regs = 0.25
        assert!((df_reg(16, 1024.0, 65536) - 0.25).abs() < 1e-12);
        assert_eq!(df_reg(16, 0.0, 65536), 0.0);
        assert_eq!(df_reg(255, 1e9, 65536), 1.0, "clamped");
        assert_eq!(df_reg(8, 100.0, 0), 0.0);
    }

    #[test]
    fn df_smem_formula() {
        // 8 KB per CTA × 4 CTAs / 64 KB = 0.5
        assert!((df_smem(8 * 1024, 4.0, 64 * 1024) - 0.5).abs() < 1e-12);
        assert_eq!(df_smem(0, 10.0, 64 * 1024), 0.0);
    }

    #[test]
    fn avf_kernel_is_size_weighted() {
        let s = vec![
            StructureResult {
                structure: "register file".into(),
                tally: tally(50, 100), // FR 0.5
                size_bits: 300,
                derate: 1.0,
            },
            StructureResult {
                structure: "L2 cache".into(),
                tally: tally(10, 100), // FR 0.1
                size_bits: 100,
                derate: 1.0,
            },
        ];
        // (0.5×300 + 0.1×100) / 400 = 0.4
        assert!((avf_kernel(&s) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn derating_scales_fr() {
        let s = vec![StructureResult {
            structure: "register file".into(),
            tally: tally(100, 100), // FR 1.0
            size_bits: 100,
            derate: 0.25,
        }];
        assert!((avf_kernel(&s) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn wavf_is_cycle_weighted() {
        let k = vec![
            KernelAvf {
                avf: 0.8,
                cycles: 100,
            },
            KernelAvf {
                avf: 0.2,
                cycles: 300,
            },
        ];
        // (0.8×100 + 0.2×300) / 400 = 0.35
        assert!((wavf(&k) - 0.35).abs() < 1e-12);
        assert_eq!(wavf(&[]), 0.0);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(avf_kernel(&[]), 0.0);
        let s = vec![StructureResult {
            structure: "x".into(),
            tally: Tally::default(),
            size_bits: 0,
            derate: 1.0,
        }];
        assert_eq!(avf_kernel(&s), 0.0);
    }
}
