//! Fault-effect classes and campaign tallies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome class of one fault-injection run (paper §V.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultEffect {
    /// Application completed, output and total cycles identical to the
    /// fault-free run.
    Masked,
    /// Application completed but produced a wrong result, with no abnormal
    /// indication — the most severe class.
    Sdc,
    /// Execution reached an unrecoverable abnormal state (trap).
    Crash,
    /// Simulation did not finish within 2× the fault-free execution time.
    Timeout,
    /// Functionally masked, but total cycles differ from the fault-free
    /// run — only a microarchitecture-level injector can observe this
    /// class (§VI.D).  Excluded from AVF.
    Performance,
}

impl FaultEffect {
    /// All classes, in the paper's reporting order.
    pub const ALL: [FaultEffect; 5] = [
        FaultEffect::Masked,
        FaultEffect::Sdc,
        FaultEffect::Crash,
        FaultEffect::Timeout,
        FaultEffect::Performance,
    ];

    /// Whether this effect counts as a failure in equation (1)
    /// (SDC, Crash or Timeout).
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            FaultEffect::Sdc | FaultEffect::Crash | FaultEffect::Timeout
        )
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FaultEffect::Masked => "Masked",
            FaultEffect::Sdc => "SDC",
            FaultEffect::Crash => "Crash",
            FaultEffect::Timeout => "Timeout",
            FaultEffect::Performance => "Performance",
        }
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts of fault effects over a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tally {
    /// Masked runs.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Crashes.
    pub crash: u64,
    /// Timeouts.
    pub timeout: u64,
    /// Performance-only deviations.
    pub performance: u64,
}

impl Tally {
    /// Records one run's effect.
    pub fn record(&mut self, e: FaultEffect) {
        match e {
            FaultEffect::Masked => self.masked += 1,
            FaultEffect::Sdc => self.sdc += 1,
            FaultEffect::Crash => self.crash += 1,
            FaultEffect::Timeout => self.timeout += 1,
            FaultEffect::Performance => self.performance += 1,
        }
    }

    /// Count of a single class.
    pub fn count(&self, e: FaultEffect) -> u64 {
        match e {
            FaultEffect::Masked => self.masked,
            FaultEffect::Sdc => self.sdc,
            FaultEffect::Crash => self.crash,
            FaultEffect::Timeout => self.timeout,
            FaultEffect::Performance => self.performance,
        }
    }

    /// Total runs recorded.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.crash + self.timeout + self.performance
    }

    /// Runs that count as failures (SDC + Crash + Timeout).
    pub fn failures(&self) -> u64 {
        self.sdc + self.crash + self.timeout
    }

    /// The structure failure ratio — equation (1).  Zero when empty.
    pub fn failure_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.failures() as f64 / t as f64
        }
    }

    /// Fraction of a class over the total.  Zero when empty.
    pub fn fraction(&self, e: FaultEffect) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(e) as f64 / t as f64
        }
    }

    /// Performance-affected runs as a fraction of all functionally masked
    /// runs (the paper's Fig. 4 metric: "as high as 8.6% of the total
    /// masked faults").  Zero when no run was functionally masked.
    pub fn performance_share_of_masked(&self) -> f64 {
        let functionally_masked = self.masked + self.performance;
        if functionally_masked == 0 {
            0.0
        } else {
            self.performance as f64 / functionally_masked as f64
        }
    }
}

impl std::ops::Add for Tally {
    type Output = Tally;

    fn add(self, rhs: Tally) -> Tally {
        Tally {
            masked: self.masked + rhs.masked,
            sdc: self.sdc + rhs.sdc,
            crash: self.crash + rhs.crash,
            timeout: self.timeout + rhs.timeout,
            performance: self.performance + rhs.performance,
        }
    }
}

impl FromIterator<FaultEffect> for Tally {
    fn from_iter<I: IntoIterator<Item = FaultEffect>>(iter: I) -> Self {
        let mut t = Tally::default();
        for e in iter {
            t.record(e);
        }
        t
    }
}

impl fmt::Display for Tally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "masked={} sdc={} crash={} timeout={} performance={}",
            self.masked, self.sdc, self.crash, self.timeout, self.performance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_classes() {
        assert!(FaultEffect::Sdc.is_failure());
        assert!(FaultEffect::Crash.is_failure());
        assert!(FaultEffect::Timeout.is_failure());
        assert!(!FaultEffect::Masked.is_failure());
        assert!(!FaultEffect::Performance.is_failure());
    }

    #[test]
    fn tally_bookkeeping() {
        let t: Tally = [
            FaultEffect::Masked,
            FaultEffect::Masked,
            FaultEffect::Sdc,
            FaultEffect::Performance,
        ]
        .into_iter()
        .collect();
        assert_eq!(t.total(), 4);
        assert_eq!(t.failures(), 1);
        assert!((t.failure_ratio() - 0.25).abs() < 1e-12);
        assert!((t.fraction(FaultEffect::Masked) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn performance_share() {
        let t: Tally = [
            FaultEffect::Masked,
            FaultEffect::Masked,
            FaultEffect::Masked,
            FaultEffect::Performance,
        ]
        .into_iter()
        .collect();
        assert!((t.performance_share_of_masked() - 0.25).abs() < 1e-12);
        assert_eq!(Tally::default().performance_share_of_masked(), 0.0);
    }

    #[test]
    fn empty_tally_ratios_are_zero() {
        let t = Tally::default();
        assert_eq!(t.failure_ratio(), 0.0);
        assert_eq!(t.fraction(FaultEffect::Sdc), 0.0);
    }

    #[test]
    fn tally_addition() {
        let mut a = Tally::default();
        a.record(FaultEffect::Sdc);
        let mut b = Tally::default();
        b.record(FaultEffect::Crash);
        b.record(FaultEffect::Timeout);
        let c = a + b;
        assert_eq!(c.total(), 3);
        assert_eq!(c.failures(), 3);
    }
}
