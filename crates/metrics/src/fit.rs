//! Failures-in-Time (FIT) rates — §VI.F.

use crate::avf::StructureResult;

/// The raw FIT rate per bit for a fabrication process, as used in the
/// paper (§VI.F): `1.8e-6` at 12 nm (RTX 2060, Quadro GV100) and `1.2e-5`
/// at 28 nm (GTX Titan).
///
/// Other processes interpolate/extrapolate log-linearly between those two
/// published points, which is sufficient for trend studies.
pub fn raw_fit_per_bit(process_nm: u32) -> f64 {
    match process_nm {
        12 => 1.8e-6,
        28 => 1.2e-5,
        nm => {
            // log-linear in feature size through the two anchor points
            let (x0, y0) = (12f64.ln(), 1.8e-6f64.ln());
            let (x1, y1) = (28f64.ln(), 1.2e-5f64.ln());
            let x = f64::from(nm.max(1)).ln();
            let y = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            y.exp()
        }
    }
}

/// FIT of one hardware structure:
/// `FIT = AVF_struct × rawFIT_bit × #bits` where `AVF_struct` is the
/// structure's derated failure ratio.
pub fn structure_fit(s: &StructureResult, raw_fit_bit: f64) -> f64 {
    s.effective_fr() * raw_fit_bit * s.size_bits as f64
}

/// FIT of the entire GPU: the sum of the individual structure FITs
/// (§VI.F: "The FIT rate of the entire GPU is calculated by adding the
/// individual FITs of the structures").
pub fn chip_fit(structures: &[StructureResult], raw_fit_bit: f64) -> f64 {
    structures
        .iter()
        .map(|s| structure_fit(s, raw_fit_bit))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::{FaultEffect, Tally};

    #[test]
    fn paper_anchor_points() {
        assert_eq!(raw_fit_per_bit(12), 1.8e-6);
        assert_eq!(raw_fit_per_bit(28), 1.2e-5);
    }

    #[test]
    fn interpolation_is_monotone() {
        let r16 = raw_fit_per_bit(16);
        let r22 = raw_fit_per_bit(22);
        assert!(raw_fit_per_bit(12) < r16 && r16 < r22 && r22 < raw_fit_per_bit(28));
        // Extrapolation stays positive and ordered.
        assert!(raw_fit_per_bit(7) < raw_fit_per_bit(12));
        assert!(raw_fit_per_bit(40) > raw_fit_per_bit(28));
    }

    #[test]
    fn fit_formula() {
        let mut tally = Tally::default();
        tally.record(FaultEffect::Sdc);
        tally.record(FaultEffect::Masked);
        let s = StructureResult {
            structure: "register file".into(),
            tally, // FR 0.5
            size_bits: 1_000_000,
            derate: 0.5,
        };
        // 0.5 × 0.5 × 1.8e-6 × 1e6 = 0.45
        let fit = structure_fit(&s, 1.8e-6);
        assert!((fit - 0.45).abs() < 1e-9);
        assert!((chip_fit(&[s.clone(), s], 1.8e-6) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn older_process_dominates_for_same_avf() {
        // The paper's Fig. 7 shape: the 28 nm GTX Titan has higher FIT than
        // the 12 nm cards despite smaller structures, because the raw rate
        // is ~6.7× higher.
        let mk = |bits: u64| {
            let mut t = Tally::default();
            t.record(FaultEffect::Sdc);
            t.record(FaultEffect::Masked);
            StructureResult {
                structure: "register file".into(),
                tally: t,
                size_bits: bits,
                derate: 1.0,
            }
        };
        let titan = chip_fit(&[mk(3_500_000 * 8)], raw_fit_per_bit(28));
        let rtx = chip_fit(&[mk(7_500_000 * 8)], raw_fit_per_bit(12));
        assert!(titan > rtx);
    }
}
