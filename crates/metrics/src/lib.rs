//! # gpufi-metrics — AVF, derating, FIT and campaign statistics
//!
//! Implements the quantitative methodology of the gpuFI-4 paper (§V, §VI.F):
//!
//! * fault-effect classification tallies ([`FaultEffect`], [`Tally`]);
//! * the structure failure ratio, equation (1);
//! * the size-weighted kernel AVF, equation (2), including the `df_reg`
//!   and `df_smem` derating factors that correct for GPGPU-Sim-style
//!   per-thread register files and per-CTA shared-memory instances;
//! * the cycle-weighted application AVF (wAVF), equation (3);
//! * Failures-in-Time rates, `FIT = AVF × rawFIT_bit × bits` (§VI.F),
//!   with the paper's raw FIT rates per fabrication process;
//! * the statistical sample-size / error-margin machinery of Leveugle et
//!   al. used to justify the 3 000-injection campaigns (§VI.A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avf;
mod effect;
mod fit;
mod stat;

pub use avf::{avf_kernel, df_reg, df_smem, wavf, KernelAvf, StructureResult};
pub use effect::{FaultEffect, Tally};
pub use fit::{chip_fit, raw_fit_per_bit, structure_fit};
pub use stat::{margin_of_error, sample_size, z_score};
