//! Statistical sample-size machinery (Leveugle et al., DATE 2009) — the
//! basis of the paper's 3 000-injection campaigns (§VI.A).

/// The two-sided z-score for a confidence level in `(0, 1)`.
///
/// Exact table values for the common levels; a rational approximation
/// (Beasley–Springer–Moro style) elsewhere.
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`.
pub fn z_score(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    // Common levels, to the precision usually quoted.
    if (confidence - 0.90).abs() < 1e-9 {
        return 1.6449;
    }
    if (confidence - 0.95).abs() < 1e-9 {
        return 1.9600;
    }
    if (confidence - 0.99).abs() < 1e-9 {
        return 2.5758;
    }
    // Inverse normal CDF at p = 1 - (1-confidence)/2 via the Acklam
    // rational approximation (|relative error| < 1.15e-9).
    let p = 1.0 - (1.0 - confidence) / 2.0;
    inverse_normal_cdf(p)
}

/// Acklam's rational approximation of the inverse standard-normal CDF.
fn inverse_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        return (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
    }
    if p > 1.0 - plow {
        return -inverse_normal_cdf(1.0 - p);
    }
    let q = p - 0.5;
    let r = q * q;
    (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
        / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
}

/// The number of fault injections required for a given confidence level
/// and error margin over a fault population of `population` bits
/// (Leveugle et al.):
///
/// ```text
/// n = N / (1 + e² · (N − 1) / (z² · p(1 − p)))        with p = 0.5
/// ```
///
/// Pass `u64::MAX` (or any huge population) for the infinite-population
/// limit `n = z² / (4e²)`.
///
/// # Panics
///
/// Panics unless `0 < margin < 1` and `0 < confidence < 1`.
pub fn sample_size(confidence: f64, margin: f64, population: u64) -> u64 {
    assert!(margin > 0.0 && margin < 1.0, "margin must be in (0,1)");
    let z = z_score(confidence);
    let p = 0.5;
    let n = population as f64;
    let num = n;
    let den = 1.0 + margin * margin * (n - 1.0) / (z * z * p * (1.0 - p));
    (num / den).ceil() as u64
}

/// The error margin achieved by `runs` injections at a confidence level
/// over `population` bits (the inverse of [`sample_size`]).
///
/// # Panics
///
/// Panics if `runs == 0` or the confidence is out of `(0, 1)`.
pub fn margin_of_error(confidence: f64, runs: u64, population: u64) -> f64 {
    assert!(runs > 0, "runs must be positive");
    let z = z_score(confidence);
    let p = 0.5;
    let n = population as f64;
    let t = runs as f64;
    ((n - t) / (t * (n - 1.0).max(1.0)) * z * z * p * (1.0 - p)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_scores_match_tables() {
        assert!((z_score(0.90) - 1.6449).abs() < 1e-3);
        assert!((z_score(0.95) - 1.9600).abs() < 1e-3);
        assert!((z_score(0.99) - 2.5758).abs() < 1e-3);
        // Approximated value close to the table for an uncommon level.
        assert!((z_score(0.98) - 2.3263).abs() < 1e-3);
    }

    #[test]
    fn infinite_population_limit() {
        // n = z²/(4e²) for 99%/2.35% ≈ 3000 (the paper's campaign size).
        let n = sample_size(0.99, 0.0235, u64::MAX);
        assert!((2900..3150).contains(&n), "got {n}");
    }

    #[test]
    fn paper_campaign_margin() {
        // 3 000 runs at 99% over a huge population: margin ≈ 2.35 %,
        // i.e. "less than ~2–2.5 %" as the paper quotes.
        let e = margin_of_error(0.99, 3000, u64::MAX);
        assert!((0.02..0.025).contains(&e), "got {e}");
    }

    #[test]
    fn finite_population_reduces_sample() {
        let inf = sample_size(0.99, 0.02, u64::MAX);
        let fin = sample_size(0.99, 0.02, 10_000);
        assert!(fin < inf);
        assert!(fin >= 1);
    }

    #[test]
    fn margin_shrinks_with_more_runs() {
        let e1 = margin_of_error(0.99, 100, u64::MAX);
        let e2 = margin_of_error(0.99, 1000, u64::MAX);
        assert!(e2 < e1);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn rejects_bad_margin() {
        sample_size(0.99, 0.0, 1000);
    }
}
