//! Randomised (but deterministic) tests on the AVF / FIT / statistics
//! invariants. A seeded inline PRNG replaces the former `proptest`
//! strategies so the suite runs hermetically offline; every case is
//! reproducible from the fixed seeds below.

use gpufi_metrics::{
    avf_kernel, chip_fit, df_reg, df_smem, margin_of_error, sample_size, structure_fit, wavf,
    FaultEffect, KernelAvf, StructureResult, Tally,
};

/// splitmix64 — tiny, seedable, good enough to explore the input space.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn effect(&mut self) -> FaultEffect {
        FaultEffect::ALL[self.below(FaultEffect::ALL.len() as u64) as usize]
    }

    fn effects(&mut self, max_len: u64) -> Vec<FaultEffect> {
        let n = self.below(max_len);
        (0..n).map(|_| self.effect()).collect()
    }

    fn structure_result(&mut self) -> StructureResult {
        StructureResult {
            structure: "s".to_string(),
            tally: self.effects(200).into_iter().collect(),
            size_bits: self.below(1 << 30),
            derate: self.unit_f64(),
        }
    }
}

/// Counts are conserved and the failure ratio is a probability.
#[test]
fn tally_invariants() {
    let mut rng = Prng(1);
    for _ in 0..128 {
        let effects = rng.effects(300);
        let t: Tally = effects.iter().copied().collect();
        assert_eq!(t.total(), effects.len() as u64);
        let by_class: u64 = FaultEffect::ALL.iter().map(|&e| t.count(e)).sum();
        assert_eq!(by_class, t.total());
        assert!((0.0..=1.0).contains(&t.failure_ratio()));
        let frac_sum: f64 = FaultEffect::ALL.iter().map(|&e| t.fraction(e)).sum();
        assert!(t.total() == 0 || (frac_sum - 1.0).abs() < 1e-9);
        assert_eq!(
            t.failures(),
            effects.iter().filter(|e| e.is_failure()).count() as u64
        );
    }
}

/// The kernel AVF is a convex combination: bounded by the extreme derated
/// failure ratios.
#[test]
fn avf_kernel_is_bounded_by_extremes() {
    let mut rng = Prng(2);
    for _ in 0..128 {
        let structures: Vec<StructureResult> = (0..1 + rng.below(7))
            .map(|_| rng.structure_result())
            .collect();
        let avf = avf_kernel(&structures);
        assert!((0.0..=1.0).contains(&avf), "avf {avf}");
        let total_size: u64 = structures.iter().map(|s| s.size_bits).sum();
        if total_size > 0 {
            let hi = structures
                .iter()
                .map(|s| s.effective_fr())
                .fold(0.0, f64::max);
            assert!(avf <= hi + 1e-12, "avf {avf} above max component {hi}");
        }
    }
}

/// wAVF is bounded by the min/max kernel AVFs.
#[test]
fn wavf_is_a_weighted_mean() {
    let mut rng = Prng(3);
    for _ in 0..128 {
        let ks: Vec<KernelAvf> = (0..1 + rng.below(9))
            .map(|_| KernelAvf {
                avf: rng.unit_f64(),
                cycles: rng.below(1_000_000),
            })
            .collect();
        let w = wavf(&ks);
        assert!((0.0..=1.0).contains(&w));
        if ks.iter().any(|k| k.cycles > 0) {
            let lo = ks
                .iter()
                .filter(|k| k.cycles > 0)
                .map(|k| k.avf)
                .fold(f64::MAX, f64::min);
            let hi = ks
                .iter()
                .filter(|k| k.cycles > 0)
                .map(|k| k.avf)
                .fold(0.0, f64::max);
            assert!(w >= lo - 1e-12 && w <= hi + 1e-12);
        }
    }
}

/// The chip FIT is additive over structures and scales linearly in the raw
/// rate.
#[test]
fn fit_is_additive_and_linear() {
    let mut rng = Prng(4);
    for _ in 0..128 {
        let structures: Vec<StructureResult> = (0..1 + rng.below(5))
            .map(|_| rng.structure_result())
            .collect();
        let raw = 1e-8 + rng.unit_f64() * (1e-3 - 1e-8);
        let total = chip_fit(&structures, raw);
        let by_parts: f64 = structures.iter().map(|s| structure_fit(s, raw)).sum();
        assert!((total - by_parts).abs() <= 1e-9 * total.abs().max(1.0));
        let doubled = chip_fit(&structures, raw * 2.0);
        assert!((doubled - 2.0 * total).abs() <= 1e-9 * doubled.abs().max(1.0));
        assert!(total >= 0.0);
    }
}

/// Derating factors are probabilities and monotone in residency.
#[test]
fn derating_monotone() {
    let mut rng = Prng(5);
    for _ in 0..256 {
        let regs = 1 + rng.below(255) as u32;
        let t1 = rng.unit_f64() * 2048.0;
        let t2 = rng.unit_f64() * 2048.0;
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let d_lo = df_reg(regs, lo, 65536);
        let d_hi = df_reg(regs, hi, 65536);
        assert!((0.0..=1.0).contains(&d_lo));
        assert!(d_lo <= d_hi + 1e-12);
        let s_lo = df_smem(1024, lo, 64 * 1024);
        let s_hi = df_smem(1024, hi, 64 * 1024);
        assert!(s_lo <= s_hi + 1e-12);
    }
}

/// Sample size and error margin are mutually consistent: n runs give a
/// margin whose required sample is at most n (ceil-rounding may add a run;
/// allow 1% slack).
#[test]
fn sample_size_margin_roundtrip() {
    let mut rng = Prng(6);
    for _ in 0..256 {
        let runs = 10 + rng.below(100_000 - 10);
        let margin = margin_of_error(0.99, runs, u64::MAX);
        if !(margin > 1e-6 && margin < 1.0) {
            continue;
        }
        let needed = sample_size(0.99, margin, u64::MAX);
        assert!(
            needed <= runs + runs / 100 + 2,
            "needed {needed} for {runs} runs"
        );
    }
}
