//! Property tests on the AVF / FIT / statistics invariants.

use gpufi_metrics::{
    avf_kernel, chip_fit, df_reg, df_smem, margin_of_error, sample_size, structure_fit, wavf,
    FaultEffect, KernelAvf, StructureResult, Tally,
};
use proptest::prelude::*;

fn effect() -> impl Strategy<Value = FaultEffect> {
    prop::sample::select(FaultEffect::ALL.to_vec())
}

fn tally() -> impl Strategy<Value = Tally> {
    prop::collection::vec(effect(), 0..200).prop_map(|v| v.into_iter().collect())
}

fn structure_result() -> impl Strategy<Value = StructureResult> {
    (tally(), 0u64..1 << 30, 0.0f64..=1.0).prop_map(|(tally, size_bits, derate)| {
        StructureResult {
            structure: "s".to_string(),
            tally,
            size_bits,
            derate,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Counts are conserved and the failure ratio is a probability.
    #[test]
    fn tally_invariants(effects in prop::collection::vec(effect(), 0..300)) {
        let t: Tally = effects.iter().copied().collect();
        prop_assert_eq!(t.total(), effects.len() as u64);
        let by_class: u64 = FaultEffect::ALL.iter().map(|&e| t.count(e)).sum();
        prop_assert_eq!(by_class, t.total());
        prop_assert!((0.0..=1.0).contains(&t.failure_ratio()));
        let frac_sum: f64 = FaultEffect::ALL.iter().map(|&e| t.fraction(e)).sum();
        prop_assert!(t.total() == 0 || (frac_sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(
            t.failures(),
            effects.iter().filter(|e| e.is_failure()).count() as u64
        );
    }

    /// The kernel AVF is a convex combination: bounded by the extreme
    /// derated failure ratios.
    #[test]
    fn avf_kernel_is_bounded_by_extremes(structures in prop::collection::vec(structure_result(), 1..8)) {
        let avf = avf_kernel(&structures);
        prop_assert!((0.0..=1.0).contains(&avf), "avf {}", avf);
        let total_size: u64 = structures.iter().map(|s| s.size_bits).sum();
        if total_size > 0 {
            let lo = structures.iter().map(|s| s.effective_fr()).fold(f64::MAX, f64::min);
            let hi = structures.iter().map(|s| s.effective_fr()).fold(0.0, f64::max);
            prop_assert!(avf <= hi + 1e-12 && (structures.iter().all(|s| s.size_bits == 0) || avf >= lo * 0.0));
        }
    }

    /// wAVF is bounded by the min/max kernel AVFs.
    #[test]
    fn wavf_is_a_weighted_mean(kernels in prop::collection::vec((0.0f64..=1.0, 0u64..1_000_000), 1..10)) {
        let ks: Vec<KernelAvf> = kernels
            .iter()
            .map(|&(avf, cycles)| KernelAvf { avf, cycles })
            .collect();
        let w = wavf(&ks);
        prop_assert!((0.0..=1.0).contains(&w));
        if ks.iter().any(|k| k.cycles > 0) {
            let lo = ks.iter().filter(|k| k.cycles > 0).map(|k| k.avf).fold(f64::MAX, f64::min);
            let hi = ks.iter().filter(|k| k.cycles > 0).map(|k| k.avf).fold(0.0, f64::max);
            prop_assert!(w >= lo - 1e-12 && w <= hi + 1e-12);
        }
    }

    /// The chip FIT is additive over structures and scales linearly in
    /// the raw rate.
    #[test]
    fn fit_is_additive_and_linear(
        structures in prop::collection::vec(structure_result(), 1..6),
        raw in 1e-8f64..1e-3,
    ) {
        let total = chip_fit(&structures, raw);
        let by_parts: f64 = structures.iter().map(|s| structure_fit(s, raw)).sum();
        prop_assert!((total - by_parts).abs() <= 1e-9 * total.abs().max(1.0));
        let doubled = chip_fit(&structures, raw * 2.0);
        prop_assert!((doubled - 2.0 * total).abs() <= 1e-9 * doubled.abs().max(1.0));
        prop_assert!(total >= 0.0);
    }

    /// Derating factors are probabilities and monotone in residency.
    #[test]
    fn derating_monotone(
        regs in 1u32..256,
        t1 in 0.0f64..2048.0,
        t2 in 0.0f64..2048.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let d_lo = df_reg(regs, lo, 65536);
        let d_hi = df_reg(regs, hi, 65536);
        prop_assert!((0.0..=1.0).contains(&d_lo));
        prop_assert!(d_lo <= d_hi + 1e-12);
        let s_lo = df_smem(1024, lo, 64 * 1024);
        let s_hi = df_smem(1024, hi, 64 * 1024);
        prop_assert!(s_lo <= s_hi + 1e-12);
    }

    /// Sample size and error margin are mutually consistent: n runs give a
    /// margin whose required sample is at most n.
    #[test]
    fn sample_size_margin_roundtrip(runs in 10u64..100_000) {
        let margin = margin_of_error(0.99, runs, u64::MAX);
        prop_assume!(margin > 1e-6 && margin < 1.0);
        let needed = sample_size(0.99, margin, u64::MAX);
        // ceil-rounding may add a run; allow 1% slack.
        prop_assert!(needed <= runs + runs / 100 + 2, "needed {} for {} runs", needed, runs);
    }
}
