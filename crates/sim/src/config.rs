//! GPU chip configurations.
//!
//! The three presets reproduce Table V of the gpuFI-4 paper: RTX 2060
//! (Turing), Quadro GV100 (Volta) and GTX Titan (Kepler).  Cache sizes are
//! quoted both as raw data capacity and — for the vulnerability analysis —
//! with the paper's modelled 57 tag bits per 128-byte line included
//! (Table I / Table V footnote).

use serde::{Deserialize, Serialize};

/// Number of tag bits modelled per cache line (paper §IV.C.2).
pub const TAG_BITS: u32 = 57;

/// Fixed SIMT width of every modelled architecture.
pub const WARP_SIZE: u32 = 32;

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: u32,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheConfig {
    /// A cache with the given total data capacity, associativity and line
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into `ways × line_bytes`
    /// sets, or any argument is zero.
    pub fn with_capacity(total_bytes: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(
            total_bytes > 0 && ways > 0 && line_bytes > 0,
            "zero cache dimension"
        );
        let way_bytes = ways * line_bytes;
        assert_eq!(
            total_bytes % way_bytes,
            0,
            "capacity {total_bytes} not divisible by ways*line {way_bytes}"
        );
        CacheConfig {
            sets: total_bytes / way_bytes,
            ways,
            line_bytes,
        }
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u32 {
        self.sets * self.ways
    }

    /// Data capacity in bytes (tags excluded).
    pub fn data_bytes(&self) -> u32 {
        self.num_lines() * self.line_bytes
    }

    /// Storage bits per line including the modelled tag.
    pub fn bits_per_line(&self) -> u64 {
        u64::from(self.line_bytes) * 8 + u64::from(TAG_BITS)
    }

    /// Total storage bits including tags — the injection target space and
    /// the size used in AVF weighting (paper Table I).
    pub fn total_bits(&self) -> u64 {
        u64::from(self.num_lines()) * self.bits_per_line()
    }
}

/// Latency parameters of the memory system and execution pipelines, in core
/// cycles.
///
/// The defaults are in the range GPGPU-Sim uses for the modelled
/// generations; the paper's conclusions depend on relative, not absolute,
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Simple ALU op issue-to-writeback latency.
    pub alu: u32,
    /// Multiply / FMA latency.
    pub mul: u32,
    /// Special-function unit latency.
    pub sfu: u32,
    /// Shared-memory access latency.
    pub smem: u32,
    /// L1 hit latency.
    pub l1: u32,
    /// One-way interconnect latency core-cluster → memory partition.
    pub icnt: u32,
    /// L2 hit latency (beyond interconnect).
    pub l2: u32,
    /// DRAM access latency (beyond L2).
    pub dram: u32,
    /// L2 bank service (occupancy) time per request.
    pub l2_service: u32,
    /// DRAM channel service (occupancy) time per request.
    pub dram_service: u32,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            alu: 4,
            mul: 6,
            sfu: 16,
            smem: 24,
            l1: 28,
            icnt: 8,
            l2: 64,
            dram: 160,
            l2_service: 2,
            dram_service: 8,
        }
    }
}

/// Warp scheduling policy of the SIMT cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest (GPGPU-Sim's default and ours).
    #[default]
    Gto,
    /// Loose round-robin over the resident warps.
    RoundRobin,
}

/// Full configuration of one GPU chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, e.g. `"RTX 2060"`.
    pub name: String,
    /// Number of SIMT cores (streaming multiprocessors).
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident CTAs per SM.
    pub max_ctas_per_sm: u32,
    /// 32-bit registers per SM (65 536 on all three cards).
    pub registers_per_sm: u32,
    /// Shared memory per SM, bytes.
    pub smem_per_sm: u32,
    /// L1 data cache per SM; `None` when the generation has no L1D
    /// (GTX Titan in the paper's setup).
    pub l1d: Option<CacheConfig>,
    /// L1 texture cache per SM.
    pub l1t: CacheConfig,
    /// L1 constant cache per SM (64-byte lines, like the paper's Table V
    /// starred sizes).  Injectable as an extension — the paper lists the
    /// constant cache as future work (§IV.C.1).
    pub l1c: CacheConfig,
    /// L2 cache, whole chip (split into [`GpuConfig::num_l2_banks`] banks).
    pub l2: CacheConfig,
    /// Number of memory partitions / L2 banks.
    pub num_l2_banks: u32,
    /// Fabrication process in nanometres (drives the raw FIT rate).
    pub process_nm: u32,
    /// Timing parameters.
    pub lat: LatencyConfig,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
}

impl GpuConfig {
    /// RTX 2060 (Turing, 12 nm): 30 SMs, 1024 threads/SM, 64 KB shared
    /// memory, 64 KB L1D, 128 KB L1T, 3 MB L2.
    pub fn rtx2060() -> Self {
        GpuConfig {
            name: "RTX 2060".to_string(),
            num_sms: 30,
            max_threads_per_sm: 1024,
            max_ctas_per_sm: 32,
            registers_per_sm: 65536,
            smem_per_sm: 64 * 1024,
            l1d: Some(CacheConfig::with_capacity(64 * 1024, 4, 128)),
            l1t: CacheConfig::with_capacity(128 * 1024, 4, 128),
            l1c: CacheConfig::with_capacity(64 * 1024, 4, 64),
            l2: CacheConfig::with_capacity(3 * 1024 * 1024, 8, 128),
            num_l2_banks: 12,
            process_nm: 12,
            lat: LatencyConfig::default(),
            scheduler: SchedulerPolicy::default(),
        }
    }

    /// Quadro GV100 (Volta, 12 nm): 80 SMs, 2048 threads/SM, 96 KB shared
    /// memory, 32 KB L1D, 128 KB L1T, 6 MB L2.
    pub fn quadro_gv100() -> Self {
        GpuConfig {
            name: "Quadro GV100".to_string(),
            num_sms: 80,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 32,
            registers_per_sm: 65536,
            smem_per_sm: 96 * 1024,
            l1d: Some(CacheConfig::with_capacity(32 * 1024, 4, 128)),
            l1t: CacheConfig::with_capacity(128 * 1024, 4, 128),
            l1c: CacheConfig::with_capacity(64 * 1024, 4, 64),
            l2: CacheConfig::with_capacity(6 * 1024 * 1024, 16, 128),
            num_l2_banks: 16,
            process_nm: 12,
            lat: LatencyConfig::default(),
            scheduler: SchedulerPolicy::default(),
        }
    }

    /// GTX Titan (Kepler, 28 nm): 14 SMs, 2048 threads/SM, 48 KB shared
    /// memory, no injectable L1D, 48 KB L1T, 1.5 MB L2.
    pub fn gtx_titan() -> Self {
        GpuConfig {
            name: "GTX Titan".to_string(),
            num_sms: 14,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 16,
            registers_per_sm: 65536,
            smem_per_sm: 48 * 1024,
            l1d: None,
            l1t: CacheConfig::with_capacity(48 * 1024, 4, 128),
            // Table V quotes 12 KB raw but 17.78 KB starred; only a 16 KB
            // cache with 64-byte lines yields 17.78 KB (and Table I's
            // 248.92 KB chip total), so the starred value wins here.
            l1c: CacheConfig::with_capacity(16 * 1024, 4, 64),
            l2: CacheConfig::with_capacity((3 * 1024 / 2) * 1024, 8, 128),
            num_l2_banks: 6,
            process_nm: 28,
            lat: LatencyConfig::default(),
            scheduler: SchedulerPolicy::default(),
        }
    }

    /// The three paper configurations, in the paper's order.
    pub fn paper_cards() -> Vec<GpuConfig> {
        vec![Self::rtx2060(), Self::quadro_gv100(), Self::gtx_titan()]
    }

    /// Maximum warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / WARP_SIZE
    }

    /// Register-file bits per SM (4-byte registers).
    pub fn regfile_bits_per_sm(&self) -> u64 {
        u64::from(self.registers_per_sm) * 32
    }

    /// Chip-wide register-file bits (Table I row 1).
    pub fn regfile_bits_total(&self) -> u64 {
        self.regfile_bits_per_sm() * u64::from(self.num_sms)
    }

    /// Chip-wide shared-memory bits (Table I row 2).
    pub fn smem_bits_total(&self) -> u64 {
        u64::from(self.smem_per_sm) * 8 * u64::from(self.num_sms)
    }

    /// Chip-wide L1 data cache bits including tags (Table I row 3), zero if
    /// the card has no L1D.
    pub fn l1d_bits_total(&self) -> u64 {
        self.l1d
            .map_or(0, |c| c.total_bits() * u64::from(self.num_sms))
    }

    /// Chip-wide L1 texture cache bits including tags (Table I row 4).
    pub fn l1t_bits_total(&self) -> u64 {
        self.l1t.total_bits() * u64::from(self.num_sms)
    }

    /// Chip-wide L1 constant cache bits including tags (Table I row 6).
    pub fn l1c_bits_total(&self) -> u64 {
        self.l1c.total_bits() * u64::from(self.num_sms)
    }

    /// L2 bits including tags (Table I row 7).
    pub fn l2_bits_total(&self) -> u64 {
        self.l2.total_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn cache_with_capacity_geometry() {
        let c = CacheConfig::with_capacity(64 * 1024, 4, 128);
        assert_eq!(c.sets, 128);
        assert_eq!(c.num_lines(), 512);
        assert_eq!(c.data_bytes(), 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn cache_capacity_must_divide() {
        CacheConfig::with_capacity(1000, 4, 128);
    }

    /// Table V footnote: a 64 KB cache is 67.56 KB with 57 tag bits per
    /// 128-byte line.
    #[test]
    fn tagged_size_matches_paper_footnote() {
        let c = CacheConfig::with_capacity(64 * 1024, 4, 128);
        let kb = c.total_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 67.56).abs() < 0.01, "got {kb}");
    }

    /// Table I: register file 7.5 MB (RTX 2060), 20 MB (GV100), 3.5 MB
    /// (GTX Titan).
    #[test]
    fn regfile_sizes_match_table1() {
        assert_eq!(GpuConfig::rtx2060().regfile_bits_total(), 30 * 65536 * 32);
        let mb = |c: &GpuConfig| c.regfile_bits_total() as f64 / 8.0 / MB;
        assert!((mb(&GpuConfig::rtx2060()) - 7.5).abs() < 1e-9);
        assert!((mb(&GpuConfig::quadro_gv100()) - 20.0).abs() < 1e-9);
        assert!((mb(&GpuConfig::gtx_titan()) - 3.5).abs() < 1e-9);
    }

    /// Table I: shared memory 1.875 MB / 7.5 MB / 672 KB.
    #[test]
    fn smem_sizes_match_table1() {
        let mb = |c: &GpuConfig| c.smem_bits_total() as f64 / 8.0 / MB;
        assert!((mb(&GpuConfig::rtx2060()) - 1.875).abs() < 1e-9);
        assert!((mb(&GpuConfig::quadro_gv100()) - 7.5).abs() < 1e-9);
        let kb = GpuConfig::gtx_titan().smem_bits_total() as f64 / 8.0 / 1024.0;
        assert!((kb - 672.0).abs() < 1e-9);
    }

    /// Table I: L1D 1.98 MB (RTX 2060) and 2.64 MB (GV100); N/A for Titan.
    #[test]
    fn l1d_sizes_match_table1() {
        let mb = |c: &GpuConfig| c.l1d_bits_total() as f64 / 8.0 / MB;
        assert!((mb(&GpuConfig::rtx2060()) - 1.98).abs() < 0.01);
        assert!((mb(&GpuConfig::quadro_gv100()) - 2.64).abs() < 0.01);
        assert_eq!(GpuConfig::gtx_titan().l1d_bits_total(), 0);
    }

    /// Table I: L1T 3.96 MB / 10.56 MB / 709.38 KB.
    #[test]
    fn l1t_sizes_match_table1() {
        let mb = |c: &GpuConfig| c.l1t_bits_total() as f64 / 8.0 / MB;
        assert!((mb(&GpuConfig::rtx2060()) - 3.96).abs() < 0.01);
        assert!((mb(&GpuConfig::quadro_gv100()) - 10.56).abs() < 0.01);
        let kb = GpuConfig::gtx_titan().l1t_bits_total() as f64 / 8.0 / 1024.0;
        assert!((kb - 709.38).abs() < 0.05);
    }

    /// Table I: L1 constant cache 2.08 MB / 5.56 MB / 248.92 KB (the
    /// paper's starred sizes imply 64-byte constant-cache lines).
    #[test]
    fn l1c_sizes_match_table1() {
        let mb = |c: &GpuConfig| c.l1c_bits_total() as f64 / 8.0 / MB;
        assert!((mb(&GpuConfig::rtx2060()) - 2.08).abs() < 0.01);
        assert!((mb(&GpuConfig::quadro_gv100()) - 5.56).abs() < 0.01);
        let kb = GpuConfig::gtx_titan().l1c_bits_total() as f64 / 8.0 / 1024.0;
        assert!((kb - 248.92).abs() < 0.15, "got {kb}");
    }

    /// Table I: L2 3.17 MB / 6.33 MB / 1.58 MB (with tags).
    #[test]
    fn l2_sizes_match_table1() {
        let mb = |c: &GpuConfig| c.l2_bits_total() as f64 / 8.0 / MB;
        assert!((mb(&GpuConfig::rtx2060()) - 3.17).abs() < 0.01);
        assert!((mb(&GpuConfig::quadro_gv100()) - 6.33).abs() < 0.01);
        assert!((mb(&GpuConfig::gtx_titan()) - 1.58).abs() < 0.01);
    }

    #[test]
    fn warp_capacity() {
        assert_eq!(GpuConfig::rtx2060().max_warps_per_sm(), 32);
        assert_eq!(GpuConfig::quadro_gv100().max_warps_per_sm(), 64);
        assert_eq!(GpuConfig::gtx_titan().max_warps_per_sm(), 64);
    }
}
