//! Text configuration files — the analogue of GPGPU-Sim's
//! `gpgpusim.config`, through which the original gpuFI-4 passes all of
//! its parameters (§III.A).
//!
//! The format is line-oriented `key = value` with `#`/`;` comments:
//!
//! ```text
//! # my_gpu.config
//! base = rtx2060            # start from a preset
//! name = Cut-down Turing
//! num_sms = 16
//! l1d = 32768:4:128         # capacity:ways:line_bytes, or `none`
//! lat_dram = 220
//! ```
//!
//! Unknown keys are rejected with their line number, so typos fail loudly
//! instead of silently simulating the wrong chip.

use crate::config::{CacheConfig, GpuConfig, SchedulerPolicy};
use std::error::Error;
use std::fmt;

/// An error produced while parsing a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    line: u32,
    message: String,
}

impl ConfigError {
    fn new(line: u32, message: impl Into<String>) -> Self {
        ConfigError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line the error occurred on (0 for file-level errors).
    pub fn line(&self) -> u32 {
        self.line
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl Error for ConfigError {}

fn parse_cache(value: &str, line: u32) -> Result<Option<CacheConfig>, ConfigError> {
    if value.eq_ignore_ascii_case("none") {
        return Ok(None);
    }
    let parts: Vec<&str> = value.split(':').collect();
    if parts.len() != 3 {
        return Err(ConfigError::new(
            line,
            format!("cache spec `{value}` must be capacity:ways:line_bytes or `none`"),
        ));
    }
    let nums: Vec<u32> = parts
        .iter()
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| ConfigError::new(line, format!("bad number `{p}` in cache spec")))
        })
        .collect::<Result<_, _>>()?;
    let (capacity, ways, line_bytes) = (nums[0], nums[1], nums[2]);
    if capacity == 0 || ways == 0 || line_bytes == 0 || capacity % (ways * line_bytes) != 0 {
        return Err(ConfigError::new(
            line,
            format!("cache capacity {capacity} is not divisible into {ways} ways of {line_bytes}-byte lines"),
        ));
    }
    Ok(Some(CacheConfig::with_capacity(capacity, ways, line_bytes)))
}

impl GpuConfig {
    /// Resolves a preset name (`rtx2060`, `gv100`, `titan`).
    pub fn preset(name: &str) -> Option<GpuConfig> {
        match name.to_ascii_lowercase().as_str() {
            "rtx2060" | "rtx" | "turing" => Some(GpuConfig::rtx2060()),
            "gv100" | "quadro" | "quadro_gv100" | "volta" => Some(GpuConfig::quadro_gv100()),
            "titan" | "gtx_titan" | "gtxtitan" | "kepler" => Some(GpuConfig::gtx_titan()),
            _ => None,
        }
    }

    /// Parses a configuration-file text into a chip configuration.
    ///
    /// Starts from the `base` preset (default: `rtx2060`) and applies each
    /// `key = value` override in order.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] with the offending line for unknown keys,
    /// malformed values, or inconsistent cache geometry.
    pub fn from_config_text(text: &str) -> Result<GpuConfig, ConfigError> {
        let mut cfg = GpuConfig::rtx2060();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = raw.split(['#', ';']).next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::new(
                    line_no,
                    format!("expected key = value, found `{line}`"),
                ));
            };
            let key = key.trim();
            let value = value.trim();
            let parse_u32 = |v: &str| -> Result<u32, ConfigError> {
                v.parse()
                    .map_err(|_| ConfigError::new(line_no, format!("bad number `{v}` for {key}")))
            };
            match key {
                "base" => {
                    cfg = GpuConfig::preset(value).ok_or_else(|| {
                        ConfigError::new(line_no, format!("unknown base preset `{value}`"))
                    })?;
                }
                "name" => cfg.name = value.to_string(),
                "num_sms" => cfg.num_sms = parse_u32(value)?.max(1),
                "max_threads_per_sm" => cfg.max_threads_per_sm = parse_u32(value)?.max(32),
                "max_ctas_per_sm" => cfg.max_ctas_per_sm = parse_u32(value)?.max(1),
                "registers_per_sm" => cfg.registers_per_sm = parse_u32(value)?,
                "smem_per_sm" => cfg.smem_per_sm = parse_u32(value)?,
                "l1d" => cfg.l1d = parse_cache(value, line_no)?,
                "l1t" => {
                    cfg.l1t = parse_cache(value, line_no)?
                        .ok_or_else(|| ConfigError::new(line_no, "l1t cannot be `none`"))?;
                }
                "l1c" => {
                    cfg.l1c = parse_cache(value, line_no)?
                        .ok_or_else(|| ConfigError::new(line_no, "l1c cannot be `none`"))?;
                }
                "l2" => {
                    cfg.l2 = parse_cache(value, line_no)?
                        .ok_or_else(|| ConfigError::new(line_no, "l2 cannot be `none`"))?;
                }
                "l2_banks" => cfg.num_l2_banks = parse_u32(value)?.max(1),
                "process_nm" => cfg.process_nm = parse_u32(value)?.max(1),
                "lat_alu" => cfg.lat.alu = parse_u32(value)?,
                "lat_mul" => cfg.lat.mul = parse_u32(value)?,
                "lat_sfu" => cfg.lat.sfu = parse_u32(value)?,
                "lat_smem" => cfg.lat.smem = parse_u32(value)?,
                "lat_l1" => cfg.lat.l1 = parse_u32(value)?,
                "lat_icnt" => cfg.lat.icnt = parse_u32(value)?,
                "lat_l2" => cfg.lat.l2 = parse_u32(value)?,
                "lat_dram" => cfg.lat.dram = parse_u32(value)?,
                "lat_l2_service" => cfg.lat.l2_service = parse_u32(value)?,
                "lat_dram_service" => cfg.lat.dram_service = parse_u32(value)?,
                "scheduler" => {
                    cfg.scheduler = match value.to_ascii_lowercase().as_str() {
                        "gto" => SchedulerPolicy::Gto,
                        "rr" | "round_robin" | "roundrobin" => SchedulerPolicy::RoundRobin,
                        other => {
                            return Err(ConfigError::new(
                                line_no,
                                format!("unknown scheduler `{other}` (gto | rr)"),
                            ))
                        }
                    };
                }
                other => {
                    return Err(ConfigError::new(line_no, format!("unknown key `{other}`")));
                }
            }
        }
        if !cfg.l2.sets.is_multiple_of(cfg.num_l2_banks) {
            return Err(ConfigError::new(
                0,
                format!(
                    "L2 has {} sets, not divisible into {} banks",
                    cfg.l2.sets, cfg.num_l2_banks
                ),
            ));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_yields_default_preset() {
        let cfg = GpuConfig::from_config_text("").unwrap();
        assert_eq!(cfg, GpuConfig::rtx2060());
    }

    #[test]
    fn base_and_overrides() {
        let cfg = GpuConfig::from_config_text(
            "# cut-down Volta\nbase = gv100\nname = Mini GV\nnum_sms = 8\nlat_dram = 300\n",
        )
        .unwrap();
        assert_eq!(cfg.name, "Mini GV");
        assert_eq!(cfg.num_sms, 8);
        assert_eq!(cfg.lat.dram, 300);
        // untouched fields keep the preset values
        assert_eq!(cfg.smem_per_sm, 96 * 1024);
    }

    #[test]
    fn cache_specs() {
        let cfg = GpuConfig::from_config_text("l1d = 32768:4:128\n").unwrap();
        let l1d = cfg.l1d.unwrap();
        assert_eq!(l1d.data_bytes(), 32768);
        assert_eq!(l1d.ways, 4);
        let cfg = GpuConfig::from_config_text("l1d = none\n").unwrap();
        assert!(cfg.l1d.is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = GpuConfig::from_config_text("num_sms = 4\nfrobnicate = 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("frobnicate"));
        let err = GpuConfig::from_config_text("l1d = 1000:3:128\n").unwrap_err();
        assert!(err.to_string().contains("divisible"));
        let err = GpuConfig::from_config_text("base = amd\n").unwrap_err();
        assert!(err.to_string().contains("preset"));
        let err = GpuConfig::from_config_text("just words\n").unwrap_err();
        assert!(err.to_string().contains("key = value"));
    }

    #[test]
    fn scheduler_key() {
        let cfg = GpuConfig::from_config_text("scheduler = rr\n").unwrap();
        assert_eq!(cfg.scheduler, SchedulerPolicy::RoundRobin);
        assert!(GpuConfig::from_config_text("scheduler = fancy\n").is_err());
    }

    #[test]
    fn bank_divisibility_checked() {
        let err = GpuConfig::from_config_text("l2 = 3145728:8:128\nl2_banks = 7\n").unwrap_err();
        assert!(err.to_string().contains("banks"));
    }

    #[test]
    fn parsed_config_builds_a_working_gpu() {
        let cfg = GpuConfig::from_config_text("base = titan\nnum_sms = 2\n").unwrap();
        let gpu = crate::Gpu::new(cfg);
        assert_eq!(gpu.config().num_sms, 2);
    }
}
