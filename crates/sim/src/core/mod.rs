//! The SIMT core (streaming multiprocessor) model.
//!
//! Each core holds a set of resident CTAs; each CTA owns its shared-memory
//! instance and its warps; each warp owns a program counter, an active
//! mask, a SIMT reconvergence stack, and the registers of its 32 threads.
//!
//! Scheduling is greedy-then-oldest (GTO): the core keeps issuing from the
//! last warp until it stalls, then falls back to the oldest ready warp.
//! One instruction issues per core per cycle; warps stall until their
//! instruction's latency (ALU class or computed memory completion time)
//! elapses — the standard stall-warp timing model.
//!
//! The issue path executes **predecoded micro-ops**
//! ([`gpufi_isa::predecode`]): the guard predicate, latency class and
//! source/destination register slots of every static instruction are
//! resolved once per launch, and both the register file and the predicate
//! file are stored structure-of-arrays (`regs[reg * 32 + lane]`, one lane
//! mask per predicate) so each op's 32 lanes run as a tight loop over
//! contiguous memory and guard evaluation is a single mask operation.

use crate::config::{GpuConfig, SchedulerPolicy};
use crate::error::Trap;
use crate::grid::LaunchDims;
use crate::mem::{AccessKind, MemSystem, LOCAL_BASE};
use crate::oracle::ThreadState;
use gpufi_isa::predecode::{MicroOp, Predecoded, NO_DST};
use gpufi_isa::semantics as exec;
use gpufi_isa::{Kernel, MemSpace, Op, OpClass, Operand, Reg, SpecialReg, MAX_PRED};

/// Warp width; SASS-lite fixes this at 32 like every modelled generation.
const LANES: usize = 32;

/// Predicate registers per thread (`P0..P6`).
const NUM_PREDS: usize = MAX_PRED as usize + 1;

/// Per-launch immutable context shared by all cores.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx<'a> {
    /// The kernel being executed.
    pub kernel: &'a Kernel,
    /// Launch geometry.
    pub dims: LaunchDims,
    /// Launch parameters (preloaded into `R0..`).
    pub args: &'a [u32],
    /// The kernel's instruction stream predecoded into micro-ops
    /// (computed once at launch; see [`gpufi_isa::predecode`]).
    pub pre: &'a Predecoded,
}

impl KernelCtx<'_> {
    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.dims.threads_per_cta()
    }

    /// Warps per CTA (rounded up).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta().div_ceil(LANES as u32)
    }
}

/// A frame of the per-warp SIMT reconvergence stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    /// A not-yet-executed divergent path.
    Pending { pc: u32, mask: u32 },
    /// A reconvergence point pushed by `SSY`; `pc` is the `SYNC` location.
    Reconv { pc: u32, mask: u32 },
}

impl Frame {
    fn mask_mut(&mut self) -> &mut u32 {
        match self {
            Frame::Pending { mask, .. } | Frame::Reconv { mask, .. } => mask,
        }
    }
}

/// One warp's architectural and microarchitectural state.
#[derive(Debug, Clone)]
struct Warp {
    /// Warp index within its CTA.
    widx: u32,
    pc: u32,
    /// Lanes executing the current path.
    active: u32,
    /// Lanes that have not exited.
    live: u32,
    stack: Vec<Frame>,
    ready_at: u64,
    at_barrier: bool,
    finished: bool,
    /// Lane-major register file slice: `regs[reg * 32 + lane]`.
    regs: Vec<u32>,
    /// Per-predicate lane masks: bit `lane` of `preds[p]` is predicate
    /// `p` of that lane (structure-of-arrays, so a guard evaluates as one
    /// mask operation instead of a 32-lane loop).
    preds: [u32; NUM_PREDS],
    /// ACE liveness: cycle of the last definition or use per register
    /// slot (same layout as `regs`).
    touch: Vec<u64>,
    /// Register slots (same layout as `regs`) holding fault-flipped values
    /// that no instruction has observed yet.
    tainted_regs: Vec<usize>,
}

impl Warp {
    /// Predicate bits of one lane packed into a byte (bit `p` = `Pp`),
    /// the exit-capture and oracle interchange format.
    fn pred_byte(&self, lane: usize) -> u8 {
        let mut b = 0u8;
        for (p, &mask) in self.preds.iter().enumerate() {
            b |= (((mask >> lane) & 1) as u8) << p;
        }
        b
    }

    fn issuable(&self, now: u64) -> bool {
        !self.finished && !self.at_barrier && self.ready_at <= now
    }
}

/// Lane-slot base of a register in the structure-of-arrays layout.
#[inline]
fn rbase(r: Reg) -> usize {
    usize::from(r.index()) * LANES
}

/// Applies `f` to each lane set in `mask`.  A full mask takes the
/// straight-line `0..32` loop (the common case, and the shape the
/// compiler vectorizes); sparse masks walk set bits only.
#[inline]
fn for_lanes(mask: u32, mut f: impl FnMut(usize)) {
    if mask == u32::MAX {
        for lane in 0..LANES {
            f(lane);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            f(lane);
        }
    }
}

/// One resident CTA: its shared memory, warps and barrier state.
#[derive(Debug, Clone)]
struct Cta {
    /// Linear CTA index within the grid.
    linear: u64,
    /// Launch sequence number (for GTO age ordering).
    seq: u64,
    smem: Vec<u8>,
    warps: Vec<Warp>,
    barrier_arrived: u32,
    live_warps: u32,
    /// Fault-flipped shared-memory bit indices not yet observed by a load.
    smem_taints: Vec<u64>,
}

/// Identifies a warp for fault-injection bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpHandle {
    /// SM index.
    pub sm: usize,
    /// Resident-CTA slot within the SM.
    pub cta_slot: usize,
    /// Warp index within the CTA.
    pub warp: usize,
}

/// A streaming multiprocessor.
/// `Clone` is the checkpoint mechanism: every field is cloned wholesale so
/// a snapshot can never silently omit state (see `crate::snapshot`).
#[derive(Debug, Clone)]
pub struct SimtCore {
    id: usize,
    max_threads: u32,
    ctas: Vec<Cta>,
    cta_limit: u32,
    launch_seq: u64,
    policy: SchedulerPolicy,
    rr_cursor: usize,
    /// No warp can issue before this cycle (cached from `next_ready` on a
    /// scheduling miss; reset whenever a CTA is installed).  Purely a
    /// fast path: skipping `pick_warp` while `now < idle_until` is
    /// decision-identical because only an instruction of this core (which
    /// requires a successful pick) or a CTA launch (which resets the
    /// cache) can make a warp ready earlier.
    idle_until: u64,
    /// Incremental count of live (not-exited) threads across resident
    /// CTAs — equals the sum the occupancy integration used to recompute
    /// by scanning every warp each cycle.
    live_threads: u32,
    /// Incremental count of unfinished warps across resident CTAs.
    unfinished_warps: u32,
    lat_alu: u32,
    lat_mul: u32,
    lat_sfu: u32,
    lat_smem: u32,
    /// Dynamic instructions issued (all lanes of a warp count as one).
    pub instructions: u64,
    /// ACE liveness: accumulated register def-to-last-use span cycles
    /// (one 32-bit register of one thread for one cycle = one unit).
    pub ace_reg_cycles: u64,
    /// Latched when a fault-flipped register or shared-memory value was
    /// read by an executing instruction.
    escaped: bool,
    /// When set, `exit_lanes` records each exiting thread's architectural
    /// state (registers, predicates) for the differential oracle.
    capture_exits: bool,
    /// Exit-state log of the current launch (drained by the oracle hook).
    exit_log: Vec<ThreadState>,
}

impl SimtCore {
    /// Creates an idle core for the given chip configuration.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        SimtCore {
            id,
            max_threads: cfg.max_threads_per_sm,
            ctas: Vec::new(),
            cta_limit: 0,
            launch_seq: 0,
            policy: cfg.scheduler,
            rr_cursor: 0,
            idle_until: 0,
            live_threads: 0,
            unfinished_warps: 0,
            lat_alu: cfg.lat.alu,
            lat_mul: cfg.lat.mul,
            lat_sfu: cfg.lat.sfu,
            lat_smem: cfg.lat.smem,
            instructions: 0,
            ace_reg_cycles: 0,
            escaped: false,
            capture_exits: false,
            exit_log: Vec::new(),
        }
    }

    /// Enables (or disables) per-thread exit-state capture for the
    /// differential oracle's lockstep register comparison.
    pub fn set_exit_capture(&mut self, on: bool) {
        self.capture_exits = on;
        self.exit_log.clear();
    }

    /// Drains the exit-state log accumulated since the last drain.
    pub fn take_exit_log(&mut self) -> Vec<ThreadState> {
        std::mem::take(&mut self.exit_log)
    }

    /// Approximate heap footprint of the resident CTAs (register files,
    /// shared memory, SIMT stacks), for checkpoint-store budgeting.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .ctas
                .iter()
                .map(|cta| {
                    std::mem::size_of::<Cta>()
                        + cta.smem.len()
                        + cta.smem_taints.len() * 8
                        + cta
                            .warps
                            .iter()
                            .map(|w| {
                                std::mem::size_of::<Warp>()
                                    + w.regs.len() * 4
                                    + w.touch.len() * 8
                                    + w.tainted_regs.len() * 8
                                    + w.stack.len() * std::mem::size_of::<Frame>()
                            })
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Unobserved fault-flipped state on this core: tainted register slots
    /// plus tainted shared-memory bits of resident CTAs.
    pub fn taint_count(&self) -> u64 {
        self.ctas
            .iter()
            .map(|c| {
                c.smem_taints.len() as u64
                    + c.warps
                        .iter()
                        .map(|w| w.tainted_regs.len() as u64)
                        .sum::<u64>()
            })
            .sum()
    }

    /// Whether a fault-flipped value on this core has been observed.
    pub fn taint_escaped(&self) -> bool {
        self.escaped
    }

    /// Prepares the core for a kernel whose per-SM CTA residency limit has
    /// been computed by the dispatcher.
    pub fn configure_kernel(&mut self, cta_limit: u32) {
        assert!(self.ctas.is_empty(), "core busy at kernel start");
        self.cta_limit = cta_limit;
        self.idle_until = 0;
        self.live_threads = 0;
        self.unfinished_warps = 0;
    }

    /// Whether another CTA of the current kernel fits right now.
    pub fn can_accept_cta(&self, ctx: &KernelCtx<'_>) -> bool {
        (self.ctas.len() as u32) < self.cta_limit
            && self.resident_threads() + ctx.threads_per_cta() <= self.max_threads
    }

    /// Installs CTA `cta_linear` at cycle `now`, initialising shared
    /// memory, warps and registers (parameters preloaded into `R0..`).
    pub fn launch_cta(&mut self, ctx: &KernelCtx<'_>, cta_linear: u64, now: u64) {
        debug_assert!(self.can_accept_cta(ctx));
        let tpc = ctx.threads_per_cta();
        let num_regs = ctx.kernel.num_regs().max(ctx.kernel.num_params()) as usize;
        let warps = (0..ctx.warps_per_cta())
            .map(|w| {
                let mut live = 0u32;
                for lane in 0..LANES as u32 {
                    if w * LANES as u32 + lane < tpc {
                        live |= 1 << lane;
                    }
                }
                let mut regs = vec![0u32; num_regs.max(1) * LANES];
                for (p, &arg) in ctx.args.iter().enumerate() {
                    for lane in 0..LANES {
                        regs[p * LANES + lane] = arg;
                    }
                }
                let touch = vec![now; regs.len()];
                Warp {
                    widx: w,
                    pc: 0,
                    active: live,
                    live,
                    stack: Vec::new(),
                    ready_at: now,
                    at_barrier: false,
                    finished: live == 0,
                    regs,
                    preds: [0; NUM_PREDS],
                    touch,
                    tainted_regs: Vec::new(),
                }
            })
            .collect::<Vec<_>>();
        let live_warps = warps.iter().filter(|w| !w.finished).count() as u32;
        self.live_threads += warps.iter().map(|w| w.live.count_ones()).sum::<u32>();
        self.unfinished_warps += live_warps;
        // A fresh CTA is ready now: drop any cached idle window.
        self.idle_until = 0;
        // `seq` backs the GTO age order: slots stay sorted by it (push
        // appends the newest, retain preserves order), which is what lets
        // `pick_gto` stop at the first issuable warp.
        debug_assert!(self.ctas.iter().all(|c| c.seq < self.launch_seq));
        self.ctas.push(Cta {
            linear: cta_linear,
            seq: self.launch_seq,
            smem: vec![0; ctx.kernel.smem_bytes() as usize],
            warps,
            barrier_arrived: 0,
            live_warps,
            smem_taints: Vec::new(),
        });
        self.launch_seq += 1;
    }

    /// Removes completed CTAs and returns how many finished.
    pub fn harvest_finished(&mut self) -> u32 {
        let before = self.ctas.len();
        self.ctas.retain(|c| c.live_warps > 0);
        (before - self.ctas.len()) as u32
    }

    /// Whether the core holds no CTAs.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.ctas.is_empty()
    }

    /// Whether [`cycle`](Self::cycle) at `now` could do anything: false
    /// while `now < idle_until`, where `cycle` returns without issuing.
    /// Inlined into the chip run loop so the (mostly idle) cores cost one
    /// load and compare per iteration instead of a call.
    #[inline]
    pub fn maybe_ready(&self, now: u64) -> bool {
        now >= self.idle_until
    }

    /// Resident (not-yet-completed) CTA count.
    #[inline]
    pub fn resident_ctas(&self) -> u32 {
        self.ctas.len() as u32
    }

    /// Resident live threads (incrementally maintained).
    #[inline]
    pub fn resident_threads(&self) -> u32 {
        self.live_threads
    }

    /// Resident live warps (for occupancy; incrementally maintained).
    #[inline]
    pub fn resident_live_warps(&self) -> u32 {
        self.unfinished_warps
    }

    /// The earliest cycle at which some warp can issue, or `None` when all
    /// warps are blocked on barriers or finished.
    pub fn next_ready(&self) -> Option<u64> {
        self.ctas
            .iter()
            .flat_map(|c| &c.warps)
            .filter(|w| !w.finished && !w.at_barrier)
            .map(|w| w.ready_at)
            .min()
    }

    /// Runs one scheduler cycle: issues at most one instruction.
    ///
    /// Returns `true` if an instruction issued.
    ///
    /// # Errors
    ///
    /// Propagates any [`Trap`] raised by the issued instruction.
    pub fn cycle(
        &mut self,
        now: u64,
        ctx: &KernelCtx<'_>,
        mem: &mut MemSystem,
    ) -> Result<bool, Trap> {
        if !self.maybe_ready(now) {
            return Ok(false);
        }
        let Some((slot, widx)) = self.pick_warp(now) else {
            // Nothing can become ready before the earliest stalled warp
            // without installing a CTA (which resets the cache), so the
            // scheduler can sleep until then.
            self.idle_until = self.next_ready().unwrap_or(u64::MAX);
            return Ok(false);
        };
        self.exec(slot, widx, now, ctx, mem)?;
        self.instructions += 1;
        Ok(true)
    }

    /// Warp selection per the configured policy.
    fn pick_warp(&mut self, now: u64) -> Option<(usize, usize)> {
        match self.policy {
            SchedulerPolicy::Gto => self.pick_gto(now),
            SchedulerPolicy::RoundRobin => self.pick_rr(now),
        }
    }

    /// Greedy-then-oldest.  The dispatcher harvests every core each cycle,
    /// which drops any greedy pointer before the next pick, so GTO always
    /// resolves to the *oldest* ready warp; CTA slots are in ascending
    /// launch-sequence order (push + retain preserve order) and warps in
    /// ascending index order, so the first issuable warp in iteration
    /// order is the oldest — the scan stops at the first hit.
    fn pick_gto(&self, now: u64) -> Option<(usize, usize)> {
        for (s, cta) in self.ctas.iter().enumerate() {
            for (w, warp) in cta.warps.iter().enumerate() {
                if warp.issuable(now) {
                    return Some((s, w));
                }
            }
        }
        None
    }

    /// Loose round-robin: the first issuable warp at or after the rotating
    /// cursor over the flattened (CTA slot, warp) order.
    fn pick_rr(&mut self, now: u64) -> Option<(usize, usize)> {
        let total: usize = self.ctas.iter().map(|c| c.warps.len()).sum();
        if total == 0 {
            return None;
        }
        let cursor = self.rr_cursor % total;
        let mut best: Option<(usize, usize, usize)> = None; // (distance, slot, warp)
        let mut g = 0usize;
        for (s, cta) in self.ctas.iter().enumerate() {
            for (w, warp) in cta.warps.iter().enumerate() {
                if warp.issuable(now) {
                    let dist = (g + total - cursor) % total;
                    if best.is_none_or(|(bd, _, _)| dist < bd) {
                        best = Some((dist, s, w));
                    }
                }
                g += 1;
            }
        }
        best.map(|(dist, s, w)| {
            self.rr_cursor = (cursor + dist + 1) % total;
            (s, w)
        })
    }

    /// Executes one micro-op of warp (`slot`, `widx`).
    fn exec(
        &mut self,
        slot: usize,
        widx: usize,
        now: u64,
        ctx: &KernelCtx<'_>,
        mem: &mut MemSystem,
    ) -> Result<(), Trap> {
        let pc = self.ctas[slot].warps[widx].pc;
        let uop: MicroOp = *ctx
            .pre
            .uops
            .get(pc as usize)
            .ok_or(Trap::InvalidPc { pc })?;

        // Guard evaluation: one mask operation against the predicate SoA.
        let warp = &self.ctas[slot].warps[widx];
        let active = warp.active;
        let exec_mask = match uop.guard {
            None => active,
            Some((p, negate)) => {
                let pm = warp.preds[usize::from(p)];
                active & if negate { !pm } else { pm }
            }
        };

        // ACE liveness (register file): a read extends the enclosing
        // def-to-last-use span; a write starts a new one.  The same pass
        // drives fault liveness: reading a tainted slot makes the flip
        // architecturally observable; a full 32-bit write kills it.  The
        // slot bases are predecoded, so each register's 32 lanes are one
        // contiguous walk, and the taint probes (a per-slot vector scan)
        // are skipped entirely while no flip is pending on the warp.
        {
            let warp = &mut self.ctas[slot].warps[widx];
            let check_taints = !warp.tainted_regs.is_empty();
            let mut ace = 0u64;
            let mut escape = false;
            for &b in uop.src_bases() {
                let base = usize::from(b);
                // The allocation covers every assembled register; guard
                // anyway so a hand-built kernel reading past it charges
                // nothing (as the old per-lane bounds check did).
                if base + LANES > warp.touch.len() {
                    continue;
                }
                for_lanes(exec_mask, |lane| {
                    let t = &mut warp.touch[base + lane];
                    ace += now - *t;
                    *t = now;
                });
                if check_taints {
                    for_lanes(exec_mask, |lane| {
                        escape |= warp.tainted_regs.contains(&(base + lane));
                    });
                }
            }
            if uop.dst != NO_DST {
                let base = usize::from(uop.dst);
                if base + LANES <= warp.touch.len() {
                    for_lanes(exec_mask, |lane| {
                        warp.touch[base + lane] = now;
                    });
                    if check_taints {
                        for_lanes(exec_mask, |lane| {
                            let idx = base + lane;
                            if let Some(i) = warp.tainted_regs.iter().position(|&t| t == idx) {
                                warp.tainted_regs.swap_remove(i);
                            }
                        });
                    }
                }
            }
            self.ace_reg_cycles += ace;
            self.escaped |= escape;
        }

        let mut next_pc = pc + 1;
        let mut ready_at = now
            + u64::from(match uop.class {
                OpClass::Alu | OpClass::Ctrl => self.lat_alu,
                OpClass::Mul => self.lat_mul,
                OpClass::Sfu => self.lat_sfu,
                OpClass::Barrier => self.lat_alu,
                OpClass::Mem => self.lat_alu, // overwritten below
            });

        // Binary-op arms: destination/source slot bases resolved once,
        // then the masked lanes run over contiguous slices.
        macro_rules! bin {
            ($d:ident, $a:ident, $b:ident, $f:expr) => {{
                let warp = &mut self.ctas[slot].warps[widx];
                let (db, ab) = (rbase($d), rbase($a));
                match $b {
                    Operand::Imm(v) => for_lanes(exec_mask, |l| {
                        warp.regs[db + l] = $f(warp.regs[ab + l], v);
                    }),
                    Operand::Reg(rb) => {
                        let bb = rbase(rb);
                        for_lanes(exec_mask, |l| {
                            warp.regs[db + l] = $f(warp.regs[ab + l], warp.regs[bb + l]);
                        });
                    }
                }
            }};
        }
        macro_rules! un {
            ($d:ident, $a:ident, $f:expr) => {{
                let warp = &mut self.ctas[slot].warps[widx];
                let (db, ab) = (rbase($d), rbase($a));
                for_lanes(exec_mask, |l| {
                    warp.regs[db + l] = $f(warp.regs[ab + l]);
                });
            }};
        }

        match uop.op {
            // ---------------- ALU ----------------
            Op::Mov { d, src } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let db = rbase(d);
                match src {
                    Operand::Imm(v) => for_lanes(exec_mask, |l| {
                        warp.regs[db + l] = v;
                    }),
                    Operand::Reg(rs) => {
                        let sb = rbase(rs);
                        for_lanes(exec_mask, |l| {
                            warp.regs[db + l] = warp.regs[sb + l];
                        });
                    }
                }
            }
            Op::S2r { d, sr } => {
                let cta_linear = self.ctas[slot].linear;
                let w32 = self.ctas[slot].warps[widx].widx;
                let dims = ctx.dims;
                let warp = &mut self.ctas[slot].warps[widx];
                let db = rbase(d);
                for_lanes(exec_mask, |l| {
                    let tid_linear = u64::from(w32) * LANES as u64 + l as u64;
                    let tid = dims.block.index_at(tid_linear);
                    let cta = dims.grid.index_at(cta_linear);
                    let v = match sr {
                        SpecialReg::TidX => tid.x,
                        SpecialReg::TidY => tid.y,
                        SpecialReg::TidZ => tid.z,
                        SpecialReg::CtaIdX => cta.x,
                        SpecialReg::CtaIdY => cta.y,
                        SpecialReg::CtaIdZ => cta.z,
                        SpecialReg::NTidX => dims.block.x,
                        SpecialReg::NTidY => dims.block.y,
                        SpecialReg::NTidZ => dims.block.z,
                        SpecialReg::NCtaIdX => dims.grid.x,
                        SpecialReg::NCtaIdY => dims.grid.y,
                        SpecialReg::NCtaIdZ => dims.grid.z,
                        SpecialReg::LaneId => l as u32,
                        SpecialReg::WarpId => w32,
                    };
                    warp.regs[db + l] = v;
                });
            }
            Op::IArith { op, d, a, b } => bin!(d, a, b, |x, y| exec::int_op(op, x, y)),
            Op::IMad { d, a, b, c } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let (db, ab, cb) = (rbase(d), rbase(a), rbase(c));
                match b {
                    Operand::Imm(v) => for_lanes(exec_mask, |l| {
                        warp.regs[db + l] = exec::imad(warp.regs[ab + l], v, warp.regs[cb + l]);
                    }),
                    Operand::Reg(rb) => {
                        let bb = rbase(rb);
                        for_lanes(exec_mask, |l| {
                            warp.regs[db + l] =
                                exec::imad(warp.regs[ab + l], warp.regs[bb + l], warp.regs[cb + l]);
                        });
                    }
                }
            }
            Op::Bit { op, d, a, b } => bin!(d, a, b, |x, y| exec::bit_op(op, x, y)),
            Op::Not { d, a } => un!(d, a, |x: u32| !x),
            Op::FArith { op, d, a, b } => bin!(d, a, b, |x, y| exec::float_op(op, x, y)),
            Op::FFma { d, a, b, c } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let (db, ab, cb) = (rbase(d), rbase(a), rbase(c));
                match b {
                    Operand::Imm(v) => for_lanes(exec_mask, |l| {
                        warp.regs[db + l] = exec::ffma(warp.regs[ab + l], v, warp.regs[cb + l]);
                    }),
                    Operand::Reg(rb) => {
                        let bb = rbase(rb);
                        for_lanes(exec_mask, |l| {
                            warp.regs[db + l] =
                                exec::ffma(warp.regs[ab + l], warp.regs[bb + l], warp.regs[cb + l]);
                        });
                    }
                }
            }
            Op::FUnary { op, d, a } => un!(d, a, |x| exec::float_un(op, x)),
            Op::I2f { d, a } => un!(d, a, exec::i2f),
            Op::F2i { d, a } => un!(d, a, exec::f2i),
            Op::ISetp { cmp, p, a, b } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let ab = rbase(a);
                let mut set = 0u32;
                match b {
                    Operand::Imm(v) => for_lanes(exec_mask, |l| {
                        if cmp.eval_i32(warp.regs[ab + l] as i32, v as i32) {
                            set |= 1 << l;
                        }
                    }),
                    Operand::Reg(rb) => {
                        let bb = rbase(rb);
                        for_lanes(exec_mask, |l| {
                            if cmp.eval_i32(warp.regs[ab + l] as i32, warp.regs[bb + l] as i32) {
                                set |= 1 << l;
                            }
                        });
                    }
                }
                let pm = &mut warp.preds[usize::from(p.index())];
                *pm = (*pm & !exec_mask) | set;
            }
            Op::FSetp { cmp, p, a, b } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let ab = rbase(a);
                let mut set = 0u32;
                match b {
                    Operand::Imm(v) => {
                        let y = f32::from_bits(v);
                        for_lanes(exec_mask, |l| {
                            if cmp.eval_f32(f32::from_bits(warp.regs[ab + l]), y) {
                                set |= 1 << l;
                            }
                        });
                    }
                    Operand::Reg(rb) => {
                        let bb = rbase(rb);
                        for_lanes(exec_mask, |l| {
                            if cmp.eval_f32(
                                f32::from_bits(warp.regs[ab + l]),
                                f32::from_bits(warp.regs[bb + l]),
                            ) {
                                set |= 1 << l;
                            }
                        });
                    }
                }
                let pm = &mut warp.preds[usize::from(p.index())];
                *pm = (*pm & !exec_mask) | set;
            }
            Op::Sel { d, a, b, p } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let (db, ab) = (rbase(d), rbase(a));
                let pm = warp.preds[usize::from(p.index())];
                match b {
                    Operand::Imm(v) => for_lanes(exec_mask, |l| {
                        warp.regs[db + l] = if pm & (1 << l) != 0 {
                            warp.regs[ab + l]
                        } else {
                            v
                        };
                    }),
                    Operand::Reg(rb) => {
                        let bb = rbase(rb);
                        for_lanes(exec_mask, |l| {
                            warp.regs[db + l] = if pm & (1 << l) != 0 {
                                warp.regs[ab + l]
                            } else {
                                warp.regs[bb + l]
                            };
                        });
                    }
                }
            }
            Op::Nop => {}

            // ---------------- Control ----------------
            Op::Ssy { target } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let mask = warp.active;
                warp.stack.push(Frame::Reconv { pc: target, mask });
            }
            Op::Bra { target } => {
                let warp = &mut self.ctas[slot].warps[widx];
                let taken = exec_mask;
                let not_taken = active & !exec_mask;
                if taken == 0 {
                    // fall through
                } else if not_taken == 0 {
                    next_pc = target;
                } else {
                    warp.stack.push(Frame::Pending {
                        pc: pc + 1,
                        mask: not_taken,
                    });
                    warp.active = taken;
                    next_pc = target;
                }
            }
            Op::Sync => {
                let warp = &mut self.ctas[slot].warps[widx];
                match warp.stack.pop() {
                    Some(Frame::Pending { pc: p, mask }) => {
                        warp.active = mask;
                        next_pc = p;
                    }
                    Some(Frame::Reconv { pc: p, mask }) => {
                        warp.active = mask;
                        next_pc = p + 1;
                    }
                    // SYNC with an empty stack (possible under corrupted
                    // control flow): treated as a no-op.
                    None => {}
                }
            }
            Op::Exit => {
                self.exit_lanes(slot, widx, exec_mask, &mut next_pc, now);
            }
            Op::Bar => {
                let cta = &mut self.ctas[slot];
                cta.warps[widx].at_barrier = true;
                cta.warps[widx].pc = next_pc;
                cta.barrier_arrived += 1;
                if cta.barrier_arrived >= cta.live_warps {
                    Self::release_barrier(cta, now + 1);
                }
                // pc already stored; skip the common tail.
                return Ok(());
            }

            // ---------------- Memory ----------------
            Op::Ld {
                space,
                d,
                addr,
                offset,
            }
            | Op::St {
                space,
                addr,
                offset,
                v: d,
            } => {
                let is_store = matches!(uop.op, Op::St { .. });
                match space {
                    MemSpace::Shared => {
                        let Cta {
                            smem,
                            smem_taints,
                            warps,
                            ..
                        } = &mut self.ctas[slot];
                        let warp = &mut warps[widx];
                        let smem_len = smem.len() as u32;
                        let (ab, db) = (rbase(addr), rbase(d));
                        let mut escape = false;
                        for lane in 0..LANES {
                            if exec_mask & (1 << lane) == 0 {
                                continue;
                            }
                            let a = warp.regs[ab + lane].wrapping_add(offset as u32);
                            if !a.is_multiple_of(4) {
                                return Err(Trap::Misaligned { addr: a });
                            }
                            // Compare in u64: a fault-corrupted base plus a
                            // negative offset can wrap `a` to 0xFFFFFFFC+,
                            // where `a + 4` overflows u32 (debug panic /
                            // release bounds bypass) instead of trapping.
                            if u64::from(a) + 4 > u64::from(smem_len) {
                                return Err(Trap::SmemOutOfBounds { offset: a });
                            }
                            if is_store {
                                let val = warp.regs[db + lane];
                                smem[a as usize..a as usize + 4]
                                    .copy_from_slice(&val.to_le_bytes());
                                // Overwritten bytes no longer diverge.
                                let lo = u64::from(a) * 8;
                                smem_taints.retain(|&b| b < lo || b >= lo + 32);
                            } else {
                                let lo = u64::from(a) * 8;
                                if !smem_taints.is_empty()
                                    && smem_taints.iter().any(|&b| b >= lo && b < lo + 32)
                                {
                                    escape = true;
                                }
                                let b: [u8; 4] = smem[a as usize..a as usize + 4]
                                    .try_into()
                                    .expect("4-byte slice");
                                warp.regs[db + lane] = u32::from_le_bytes(b);
                            }
                        }
                        self.escaped |= escape;
                        ready_at = now + u64::from(self.lat_smem);
                    }
                    MemSpace::Const => {
                        ready_at = self.const_access(
                            slot, widx, exec_mask, d, addr, offset, is_store, now, mem,
                        )?;
                    }
                    MemSpace::Global | MemSpace::Local | MemSpace::Texture => {
                        ready_at = self.device_mem_access(
                            slot, widx, exec_mask, space, d, addr, offset, is_store, now, ctx, mem,
                        )?;
                    }
                }
            }
        }

        {
            let warp = &mut self.ctas[slot].warps[widx];
            if !warp.finished && !warp.at_barrier {
                warp.pc = next_pc;
                warp.ready_at = ready_at;
            }
        }
        // A warp that finished via EXIT may unblock a pending barrier.
        let cta = &mut self.ctas[slot];
        if cta.warps[widx].finished && cta.live_warps > 0 && cta.barrier_arrived >= cta.live_warps {
            Self::release_barrier(cta, now + 1);
        }
        Ok(())
    }

    /// Terminates `mask` lanes of a warp, unwinding the SIMT stack when the
    /// current path empties.
    fn exit_lanes(&mut self, slot: usize, widx: usize, mask: u32, next_pc: &mut u32, now: u64) {
        if self.capture_exits && mask != 0 {
            let cta_linear = self.ctas[slot].linear;
            let warp = &self.ctas[slot].warps[widx];
            let num_regs = warp.regs.len() / LANES;
            let mut captured = Vec::new();
            for lane in 0..LANES {
                if mask & (1 << lane) != 0 {
                    captured.push(ThreadState {
                        cta: cta_linear,
                        tid: warp.widx * LANES as u32 + lane as u32,
                        regs: (0..num_regs).map(|r| warp.regs[r * LANES + lane]).collect(),
                        preds: warp.pred_byte(lane),
                    });
                }
            }
            self.exit_log.extend(captured);
        }
        let cta = &mut self.ctas[slot];
        let warp = &mut cta.warps[widx];
        let exited = (warp.live & mask).count_ones();
        warp.live &= !mask;
        warp.active &= !mask;
        self.live_threads -= exited;
        // Registers of exited lanes can never be read again: their taints
        // die with the threads, exactly as in the golden run.
        warp.tainted_regs
            .retain(|&idx| mask & (1 << (idx % LANES)) == 0);
        for f in &mut warp.stack {
            *f.mask_mut() &= !mask;
        }
        if warp.active != 0 {
            return; // remaining lanes continue at pc+1
        }
        // Unwind: resume the nearest path with surviving lanes.
        while let Some(frame) = warp.stack.pop() {
            match frame {
                Frame::Pending { pc, mask } if mask != 0 => {
                    warp.active = mask;
                    *next_pc = pc;
                    return;
                }
                Frame::Reconv { pc, mask } if mask != 0 => {
                    warp.active = mask;
                    *next_pc = pc + 1;
                    return;
                }
                _ => {}
            }
        }
        // No lanes anywhere: the warp is done.
        warp.finished = true;
        cta.live_warps -= 1;
        self.unfinished_warps -= 1;
        let _ = now;
    }

    fn release_barrier(cta: &mut Cta, at: u64) {
        cta.barrier_arrived = 0;
        for w in &mut cta.warps {
            if w.at_barrier {
                w.at_barrier = false;
                w.ready_at = at;
            }
        }
    }

    /// Executes a global / local / texture access: computes per-lane
    /// effective addresses, coalesces them into line transactions for the
    /// timing model, then performs the functional 4-byte operations.
    #[allow(clippy::too_many_arguments)]
    fn device_mem_access(
        &mut self,
        slot: usize,
        widx: usize,
        exec_mask: u32,
        space: MemSpace,
        data_reg: Reg,
        addr_reg: Reg,
        offset: i32,
        is_store: bool,
        now: u64,
        ctx: &KernelCtx<'_>,
        mem: &mut MemSystem,
    ) -> Result<u64, Trap> {
        let kind = match space {
            MemSpace::Global => AccessKind::Global,
            MemSpace::Local => AccessKind::Local,
            MemSpace::Texture => AccessKind::Texture,
            MemSpace::Shared | MemSpace::Const => {
                unreachable!("shared/const handled by caller")
            }
        };
        let id = self.id;
        let lmem = ctx.kernel.lmem_bytes();
        let tpc = u64::from(ctx.threads_per_cta());
        let cta_linear = self.ctas[slot].linear;
        let warp = &mut self.ctas[slot].warps[widx];
        let w32 = u64::from(warp.widx);
        let (ab, db) = (rbase(addr_reg), rbase(data_reg));

        // Effective addresses (stack-allocated: this is the hot path).
        let mut lanes = [(0usize, 0u32); LANES];
        let mut n = 0usize;
        for lane in 0..LANES {
            if exec_mask & (1 << lane) == 0 {
                continue;
            }
            let base = warp.regs[ab + lane].wrapping_add(offset as u32);
            let eff = if space == MemSpace::Local {
                if !base.is_multiple_of(4) {
                    return Err(Trap::Misaligned { addr: base });
                }
                // u64 compare: a corrupted base near u32::MAX wraps `base + 4`
                // to 0, silently passing the u32 bounds check.
                if u64::from(base) + 4 > u64::from(lmem) {
                    return Err(Trap::LmemOutOfBounds { offset: base });
                }
                let tid_global = cta_linear * tpc + w32 * LANES as u64 + lane as u64;
                // Resolve the per-thread slot in u64 and trap before
                // truncating: a slot past the 32-bit space must fault, not
                // alias another thread's local memory.
                let eff64 = u64::from(LOCAL_BASE) + tid_global * u64::from(lmem) + u64::from(base);
                if eff64 > u64::from(u32::MAX) {
                    return Err(Trap::LmemOutOfBounds { offset: base });
                }
                eff64 as u32
            } else {
                base
            };
            lanes[n] = (lane, eff);
            n += 1;
        }
        let lanes = &lanes[..n];

        // Timing: one transaction per unique line, issued back to back.
        let line = u64::from(mem.line_bytes());
        let mut lines = [0u64; LANES];
        for (i, &(_, a)) in lanes.iter().enumerate() {
            lines[i] = u64::from(a) / line;
        }
        let lines = &mut lines[..n];
        lines.sort_unstable();
        let mut done = now + u64::from(self.lat_alu);
        let mut prev = None;
        let mut uniq = 0u64;
        for &la in lines.iter() {
            if prev == Some(la) {
                continue;
            }
            prev = Some(la);
            let t = mem.line_latency(id, kind, la, is_store, now + uniq);
            done = done.max(t);
            uniq += 1;
        }

        // Function: per-lane 4-byte operations.
        for &(lane, eff) in lanes {
            if is_store {
                let v = warp.regs[db + lane];
                mem.store4(id, kind, eff, v)?;
            } else {
                let v = mem.load4(id, kind, eff)?;
                warp.regs[db + lane] = v;
            }
        }
        Ok(done)
    }

    /// Executes a constant-space load through the L1 constant cache
    /// (0-based bank addresses; the constant path is read-only).
    #[allow(clippy::too_many_arguments)]
    fn const_access(
        &mut self,
        slot: usize,
        widx: usize,
        exec_mask: u32,
        data_reg: Reg,
        addr_reg: Reg,
        offset: i32,
        is_store: bool,
        now: u64,
        mem: &mut MemSystem,
    ) -> Result<u64, Trap> {
        if is_store {
            // The constant space is read-only; a (programmatically built)
            // store to it faults like a write to a read-only page.
            return Err(Trap::InvalidAddress { addr: 0 });
        }
        let id = self.id;
        let warp = &mut self.ctas[slot].warps[widx];
        let (ab, db) = (rbase(addr_reg), rbase(data_reg));
        let mut lanes = [(0usize, 0u32); LANES];
        let mut n = 0usize;
        for lane in 0..LANES {
            if exec_mask & (1 << lane) != 0 {
                let a = warp.regs[ab + lane].wrapping_add(offset as u32);
                // Alignment is validated before the timing loop (matching
                // the shared-memory path's order) so a faulting access is
                // never charged transaction latency.
                if !a.is_multiple_of(4) {
                    return Err(Trap::Misaligned { addr: a });
                }
                lanes[n] = (lane, a);
                n += 1;
            }
        }
        let lanes = &lanes[..n];
        let line = u64::from(mem.const_line_bytes());
        let mut line_addrs = [0u64; LANES];
        for (i, &(_, a)) in lanes.iter().enumerate() {
            line_addrs[i] = u64::from(a) / line;
        }
        let line_addrs = &mut line_addrs[..n];
        line_addrs.sort_unstable();
        let mut done = now + u64::from(self.lat_alu);
        let mut prev = None;
        let mut uniq = 0u64;
        for &la in line_addrs.iter() {
            if prev == Some(la) {
                continue;
            }
            prev = Some(la);
            done = done.max(mem.const_line_latency(id, la, now + uniq));
            uniq += 1;
        }
        for &(lane, a) in lanes {
            let v = mem.load4_const(id, a)?;
            warp.regs[db + lane] = v;
        }
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Fault-injection surface
    // ------------------------------------------------------------------

    /// Number of live (created, not yet exited) threads on this core.
    pub fn live_thread_count(&self) -> u64 {
        u64::from(self.live_threads)
    }

    /// Number of live warps on this core.
    pub fn live_warp_count(&self) -> u64 {
        u64::from(self.unfinished_warps)
    }

    /// Number of resident CTAs (for shared-memory targeting).
    pub fn cta_count(&self) -> u64 {
        self.ctas.len() as u64
    }

    /// Flips `bits` of register `reg` in the `n`-th live thread.
    ///
    /// Returns the handle of the affected warp, or `None` when `n` exceeds
    /// the live-thread count or the register is out of the kernel's
    /// allocation.
    pub fn flip_thread_reg(&mut self, n: u64, reg: u32, bits: &[u8]) -> Option<WarpHandle> {
        let mut remaining = n;
        let id = self.id;
        for (s, cta) in self.ctas.iter_mut().enumerate() {
            for (wi, warp) in cta.warps.iter_mut().enumerate() {
                let cnt = u64::from(warp.live.count_ones());
                if remaining < cnt {
                    let lane = set_bit_at(warp.live, remaining as u32)?;
                    let idx = reg as usize * LANES + lane;
                    if idx >= warp.regs.len() {
                        return None;
                    }
                    for &b in bits {
                        warp.regs[idx] ^= 1 << (b % 32);
                    }
                    if !warp.tainted_regs.contains(&idx) {
                        warp.tainted_regs.push(idx);
                    }
                    return Some(WarpHandle {
                        sm: id,
                        cta_slot: s,
                        warp: wi,
                    });
                }
                remaining -= cnt;
            }
        }
        None
    }

    /// Flips `bits` of register `reg` in every live lane of the `n`-th live
    /// warp (the paper's warp-scope register injection).
    pub fn flip_warp_reg(&mut self, n: u64, reg: u32, bits: &[u8]) -> Option<WarpHandle> {
        let mut remaining = n;
        let id = self.id;
        for (s, cta) in self.ctas.iter_mut().enumerate() {
            for (wi, warp) in cta.warps.iter_mut().enumerate() {
                if warp.finished {
                    continue;
                }
                if remaining == 0 {
                    for lane in 0..LANES {
                        if warp.live & (1 << lane) == 0 {
                            continue;
                        }
                        let idx = reg as usize * LANES + lane;
                        if idx >= warp.regs.len() {
                            return None;
                        }
                        for &b in bits {
                            warp.regs[idx] ^= 1 << (b % 32);
                        }
                        if !warp.tainted_regs.contains(&idx) {
                            warp.tainted_regs.push(idx);
                        }
                    }
                    return Some(WarpHandle {
                        sm: id,
                        cta_slot: s,
                        warp: wi,
                    });
                }
                remaining -= 1;
            }
        }
        None
    }

    /// Flips bit `bit` of the `n`-th resident CTA's shared-memory instance.
    ///
    /// Returns `false` when the CTA or bit is out of range.
    pub fn flip_cta_smem(&mut self, n: u64, bit: u64) -> bool {
        let Some(cta) = self.ctas.get_mut(n as usize) else {
            return false;
        };
        let byte = (bit / 8) as usize;
        if byte >= cta.smem.len() {
            return false;
        }
        cta.smem[byte] ^= 1 << (bit % 8);
        // A repeated flip restores the golden bit, so taint is a toggle.
        if let Some(i) = cta.smem_taints.iter().position(|&b| b == bit) {
            cta.smem_taints.swap_remove(i);
        } else {
            cta.smem_taints.push(bit);
        }
        true
    }

    /// The global linear thread id of the `n`-th live thread (for local
    /// memory targeting), if it exists.
    pub fn nth_live_thread_global_id(&self, n: u64, ctx: &KernelCtx<'_>) -> Option<u64> {
        let mut remaining = n;
        let tpc = u64::from(ctx.threads_per_cta());
        for cta in &self.ctas {
            for warp in &cta.warps {
                let cnt = u64::from(warp.live.count_ones());
                if remaining < cnt {
                    let lane = set_bit_at(warp.live, remaining as u32)?;
                    return Some(
                        cta.linear * tpc + u64::from(warp.widx) * LANES as u64 + lane as u64,
                    );
                }
                remaining -= cnt;
            }
        }
        None
    }
}

/// Index of the `n`-th set bit of `mask` (0-based), if present.
fn set_bit_at(mask: u32, n: u32) -> Option<usize> {
    let mut seen = 0;
    for lane in 0..32 {
        if mask & (1 << lane) != 0 {
            if seen == n {
                return Some(lane);
            }
            seen += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_bit_at_finds_nth() {
        assert_eq!(set_bit_at(0b1010, 0), Some(1));
        assert_eq!(set_bit_at(0b1010, 1), Some(3));
        assert_eq!(set_bit_at(0b1010, 2), None);
        assert_eq!(set_bit_at(u32::MAX, 31), Some(31));
    }

    #[test]
    fn for_lanes_walks_dense_and_sparse_masks() {
        let mut seen = Vec::new();
        for_lanes(u32::MAX, |l| seen.push(l));
        assert_eq!(seen, (0..LANES).collect::<Vec<_>>());
        seen.clear();
        for_lanes(0b1000_0101, |l| seen.push(l));
        assert_eq!(seen, vec![0, 2, 7]);
        seen.clear();
        for_lanes(0, |l| seen.push(l));
        assert!(seen.is_empty());
    }
}
