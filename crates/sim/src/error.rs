//! Simulator error and trap types.

use std::error::Error;
use std::fmt;

/// A fatal condition raised during simulated execution.
///
/// A trap aborts the current kernel launch; the fault-injection classifier
/// maps traps to the **Crash** fault-effect class (except [`Trap::Watchdog`],
/// which maps to **Timeout**).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Access to an unmapped device address.
    InvalidAddress {
        /// The faulting byte address.
        addr: u32,
    },
    /// Access not aligned to the 4-byte access size.
    Misaligned {
        /// The faulting byte address.
        addr: u32,
    },
    /// Program counter left the kernel's instruction stream.
    InvalidPc {
        /// The out-of-range instruction index.
        pc: u32,
    },
    /// Shared-memory access beyond the CTA's allocation.
    SmemOutOfBounds {
        /// The faulting byte offset.
        offset: u32,
    },
    /// Local-memory access beyond the thread's allocation.
    LmemOutOfBounds {
        /// The faulting byte offset.
        offset: u32,
    },
    /// The watchdog cycle limit was exceeded (maps to **Timeout**).
    Watchdog,
    /// The wall-clock run limit was exceeded (maps to **Timeout**).  The
    /// cycle watchdog only fires when the application cycle advances; this
    /// trap covers a fault that livelocks the simulator *inside* a cycle,
    /// where real time passes but simulated time does not.
    WallClock,
    /// No warp can make progress (e.g. a diverged or corrupted barrier).
    Deadlock,
    /// Every planned fault's lifetime has provably ended: the flips either
    /// never applied or died unobserved, so the remaining execution equals
    /// the golden run.  Raised only in early-exit mode; the campaign engine
    /// intercepts it and classifies the run **Masked**.
    FaultsExpired,
}

impl Trap {
    /// Whether the classifier treats this trap as a timeout rather than a
    /// crash.
    pub fn is_timeout(self) -> bool {
        matches!(self, Trap::Watchdog | Trap::WallClock)
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::InvalidAddress { addr } => write!(f, "invalid device address 0x{addr:08x}"),
            Trap::Misaligned { addr } => write!(f, "misaligned access at 0x{addr:08x}"),
            Trap::InvalidPc { pc } => write!(f, "program counter {pc} out of range"),
            Trap::SmemOutOfBounds { offset } => {
                write!(f, "shared-memory access at offset {offset} out of bounds")
            }
            Trap::LmemOutOfBounds { offset } => {
                write!(f, "local-memory access at offset {offset} out of bounds")
            }
            Trap::Watchdog => f.write_str("watchdog cycle limit exceeded"),
            Trap::WallClock => f.write_str("wall-clock run limit exceeded"),
            Trap::Deadlock => f.write_str("no warp can make progress"),
            Trap::FaultsExpired => {
                f.write_str("all planned faults expired unobserved (early exit)")
            }
        }
    }
}

impl Error for Trap {}

/// An error raised when configuring or launching work on the simulated GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The requested block shape exceeds hardware limits.
    BadBlockShape {
        /// The requested threads per block.
        threads: u32,
    },
    /// A single CTA of this kernel does not fit on one SM.
    TooManyResources {
        /// Human-readable description of the exceeded resource.
        resource: String,
    },
    /// Kernel parameter count does not match the kernel's `.params`.
    BadParamCount {
        /// Parameters the kernel expects.
        expected: u8,
        /// Parameters supplied at launch.
        supplied: usize,
    },
    /// Device memory exhausted.
    OutOfMemory,
    /// A host copy touched an unallocated device range.
    BadDevicePointer,
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::BadBlockShape { threads } => {
                write!(f, "block of {threads} threads exceeds the hardware limit")
            }
            LaunchError::TooManyResources { resource } => {
                write!(f, "kernel CTA does not fit on an SM: {resource}")
            }
            LaunchError::BadParamCount { expected, supplied } => {
                write!(
                    f,
                    "kernel expects {expected} parameters, {supplied} supplied"
                )
            }
            LaunchError::OutOfMemory => f.write_str("device memory exhausted"),
            LaunchError::BadDevicePointer => f.write_str("invalid device pointer"),
        }
    }
}

impl Error for LaunchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_display_nonempty() {
        for t in [
            Trap::InvalidAddress { addr: 0x10 },
            Trap::Misaligned { addr: 3 },
            Trap::InvalidPc { pc: 99 },
            Trap::SmemOutOfBounds { offset: 1 },
            Trap::LmemOutOfBounds { offset: 1 },
            Trap::Watchdog,
            Trap::WallClock,
            Trap::Deadlock,
            Trap::FaultsExpired,
        ] {
            assert!(!t.to_string().is_empty());
        }
    }

    #[test]
    fn only_watchdog_is_timeout() {
        assert!(Trap::Watchdog.is_timeout());
        assert!(Trap::WallClock.is_timeout());
        assert!(!Trap::Deadlock.is_timeout());
        assert!(!Trap::InvalidAddress { addr: 0 }.is_timeout());
        assert!(!Trap::FaultsExpired.is_timeout());
    }
}
