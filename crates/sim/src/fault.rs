//! The fault-injection plan: what to flip, where, and when.
//!
//! A campaign arms the GPU with [`PlannedFault`]s before running the
//! application.  Every *dynamic* choice the paper's injector makes at the
//! injection cycle — which active thread, which active warp, which resident
//! CTA, which SIMT core — is expressed as a pre-drawn random **lot**
//! (a uniform `u64`) that the simulator reduces modulo the size of the
//! live population at that cycle.  This keeps runs bit-for-bit
//! reproducible from a campaign seed while still targeting only *active*
//! state, exactly like gpuFI-4 (§IV.B.1: "chooses a random active thread
//! and injects the transient fault at a random register of that thread").
//!
//! Static choices (which register, which bit offsets) are concrete values,
//! drawn by the mask generator in `gpufi-faults` from the profiled fault
//! space.

use crate::mem::FlipOutcome;
use serde::{Deserialize, Serialize};

/// Whether a register-file or local-memory fault targets one thread or a
/// whole warp (every lane receives the same flips — Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// A single active thread.
    Thread,
    /// Every live thread of one active warp.
    Warp,
}

/// Where a planned fault lands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// Register-file bit flips in one thread or one warp.
    RegisterFile {
        /// Thread- or warp-level injection.
        scope: Scope,
        /// Lot selecting the active thread/warp (reduced modulo the live
        /// population at the injection cycle).
        entry_lot: u64,
        /// Register index within the kernel's allocated registers.
        reg: u32,
        /// Bit positions within the 32-bit register (distinct).
        bits: Vec<u8>,
    },
    /// Local-memory bit flips in one thread's local segment.
    LocalMemory {
        /// Lot selecting the active thread.
        entry_lot: u64,
        /// Bit offsets within the thread's local memory.
        bits: Vec<u64>,
    },
    /// Shared-memory bit flips, replicated over one or more active CTAs
    /// (shared memory is private per CTA — Table IV).
    SharedMemory {
        /// Lot selecting the first active CTA.
        cta_lot: u64,
        /// How many consecutive active CTAs receive the same flips.
        replicate: u32,
        /// Bit offsets within the CTA's shared-memory instance.
        bits: Vec<u64>,
    },
    /// L1 data-cache bit flips on one or more SIMT cores.
    L1Data {
        /// Lot selecting the first core.
        core_lot: u64,
        /// How many consecutive cores receive the same flips.
        replicate: u32,
        /// Bit offsets within the cache's tag+data space.
        bits: Vec<u64>,
    },
    /// L1 texture-cache bit flips on one or more SIMT cores.
    L1Tex {
        /// Lot selecting the first core.
        core_lot: u64,
        /// How many consecutive cores receive the same flips.
        replicate: u32,
        /// Bit offsets within the cache's tag+data space.
        bits: Vec<u64>,
    },
    /// L1 constant-cache bit flips on one or more SIMT cores — an
    /// extension implementing the paper's future work (§IV.C.1).
    L1Const {
        /// Lot selecting the first core.
        core_lot: u64,
        /// How many consecutive cores receive the same flips.
        replicate: u32,
        /// Bit offsets within the cache's tag+data space.
        bits: Vec<u64>,
    },
    /// L2 bit flips in the flat line space across banks (§IV.B.5).
    L2 {
        /// Bit offsets within the L2's tag+data space.
        bits: Vec<u64>,
    },
}

impl FaultTarget {
    /// The paper's name for the targeted hardware structure.
    pub fn structure_name(&self) -> &'static str {
        match self {
            FaultTarget::RegisterFile { .. } => "register file",
            FaultTarget::LocalMemory { .. } => "local memory",
            FaultTarget::SharedMemory { .. } => "shared memory",
            FaultTarget::L1Data { .. } => "L1 data cache",
            FaultTarget::L1Tex { .. } => "L1 texture cache",
            FaultTarget::L1Const { .. } => "L1 constant cache",
            FaultTarget::L2 { .. } => "L2 cache",
        }
    }
}

/// One fault scheduled at an absolute application cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// Application cycle at which to inject.
    pub cycle: u64,
    /// What to flip.
    pub target: FaultTarget,
}

/// A set of planned faults — single-bit, multi-bit, multi-entry and
/// multi-structure campaigns are all expressed as lists of
/// [`PlannedFault`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionPlan {
    /// The faults, in any order (the GPU sorts by cycle when armed).
    pub faults: Vec<PlannedFault>,
}

impl InjectionPlan {
    /// A plan with a single fault.
    pub fn single(cycle: u64, target: FaultTarget) -> Self {
        InjectionPlan {
            faults: vec![PlannedFault { cycle, target }],
        }
    }
}

/// What actually happened when a planned fault was applied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// The cycle the fault was applied at (may exceed the planned cycle if
    /// the planned cycle fell between launches).
    pub cycle: u64,
    /// The targeted structure (paper terminology).
    pub structure: &'static str,
    /// Whether any bit actually changed (e.g. a cache flip on an invalid
    /// line changes nothing — §IV.B.4).
    pub applied: bool,
    /// For cache targets: whether the flips landed in tag or data bits.
    pub outcomes: Vec<FlipOutcome>,
}

/// Sizes of the injectable fault spaces for one kernel on one chip — what
/// the mask generator needs to draw concrete bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpace {
    /// Registers allocated per thread (entries of the register-file space).
    pub regs_per_thread: u32,
    /// Bits of one thread's local memory (0 when the kernel uses none).
    pub lmem_bits: u64,
    /// Bits of one CTA's shared-memory instance (0 when the kernel uses
    /// none).
    pub smem_bits: u64,
    /// Injectable bits of one SM's L1 data cache (tag + data), or `None`
    /// when the chip has no L1D.
    pub l1d_bits: Option<u64>,
    /// Injectable bits of one SM's L1 texture cache (tag + data).
    pub l1t_bits: u64,
    /// Injectable bits of one SM's L1 constant cache (tag + data) — an
    /// extension; the paper lists the constant cache as future work.
    pub l1c_bits: u64,
    /// Injectable bits of the whole L2 (tag + data).
    pub l2_bits: u64,
    /// SIMT cores on the chip.
    pub num_sms: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_names_match_paper() {
        let t = FaultTarget::RegisterFile {
            scope: Scope::Thread,
            entry_lot: 0,
            reg: 0,
            bits: vec![0],
        };
        assert_eq!(t.structure_name(), "register file");
        assert_eq!(
            FaultTarget::L2 { bits: vec![] }.structure_name(),
            "L2 cache"
        );
    }

    #[test]
    fn single_plan() {
        let p = InjectionPlan::single(5, FaultTarget::L2 { bits: vec![1, 2] });
        assert_eq!(p.faults.len(), 1);
        assert_eq!(p.faults[0].cycle, 5);
    }
}
