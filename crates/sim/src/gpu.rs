//! The whole-chip GPU device: memory management, kernel launch, the cycle
//! loop, and the fault-injection port.

use crate::config::GpuConfig;
use crate::core::{KernelCtx, SimtCore};
use crate::error::{LaunchError, Trap};
use crate::fault::{FaultSpace, FaultTarget, InjectionPlan, InjectionRecord, PlannedFault, Scope};
use crate::grid::LaunchDims;
use crate::mem::{FlipOutcome, MemSystem};
use crate::oracle::{DivergenceReport, OracleMirror, ThreadState};
use crate::snapshot::{CheckpointStore, HostOp, LaunchProgress, Recorder, Replay, Snapshot};
use crate::stats::{AppStats, LaunchStats};
use gpufi_isa::Kernel;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// A simulated CUDA-capable GPU.
///
/// The host-side API mirrors the CUDA driver model: allocate device memory
/// ([`Gpu::malloc`]), copy data in ([`Gpu::memcpy_h2d`]), launch kernels
/// synchronously ([`Gpu::launch`]), copy results out
/// ([`Gpu::memcpy_d2h`]).  Cycles accumulate across launches so a
/// multi-kernel application has one global cycle axis, which is what the
/// injection campaign samples (§VI.A).
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    mem: MemSystem,
    cores: Vec<SimtCore>,
    cycle: u64,
    watchdog: Option<u64>,
    wall_deadline: Option<std::time::Instant>,
    faults: Vec<PlannedFault>,
    next_fault: usize,
    records: Vec<InjectionRecord>,
    stats: AppStats,
    early_exit: bool,
    // Checkpoint recording state (golden recording run only).
    recorder: Option<Recorder>,
    // Journal-replay state (forked injection runs only).
    replay: Option<Replay>,
    // Lockstep differential oracle (RefCell: `memcpy_d2h` takes `&self`).
    oracle: Option<RefCell<OracleMirror>>,
    // Early-exit *probe*: evaluate the fault-lifetime exit predicate
    // without acting on it, latching `ee_would_exit`.
    ee_probe: bool,
    ee_would_exit: bool,
}

impl Gpu {
    /// Creates an idle GPU with the given chip configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        let mem = MemSystem::new(&cfg);
        let cores = (0..cfg.num_sms as usize)
            .map(|i| SimtCore::new(i, &cfg))
            .collect();
        Gpu {
            cfg,
            mem,
            cores,
            cycle: 0,
            watchdog: None,
            wall_deadline: None,
            faults: Vec::new(),
            next_fault: 0,
            records: Vec::new(),
            stats: AppStats::default(),
            early_exit: false,
            recorder: None,
            replay: None,
            oracle: None,
            ee_probe: false,
            ee_would_exit: false,
        }
    }

    /// Attaches the lockstep differential oracle: from now on every host
    /// API call is mirrored into a functional reference machine and every
    /// launch's final architectural state is diffed against it.  The first
    /// divergence is latched ([`Gpu::oracle_divergence`]).
    ///
    /// Attach on a fresh GPU, before any allocation, and do not combine
    /// with checkpoint forking ([`Gpu::resume_from`]) — a forked run
    /// skips the journaled host prefix the mirror would need to observe.
    pub fn attach_oracle(&mut self) {
        self.oracle = Some(RefCell::new(OracleMirror::new(self.cfg.l2.line_bytes)));
        for c in &mut self.cores {
            c.set_exit_capture(true);
        }
    }

    /// The first sim-vs-oracle divergence latched by an attached oracle,
    /// if any ([`Gpu::attach_oracle`]).
    pub fn oracle_divergence(&self) -> Option<DivergenceReport> {
        self.oracle
            .as_ref()
            .and_then(|o| o.borrow().divergence().cloned())
    }

    /// The attached oracle's final global-memory image (the reference
    /// prediction a Masked injection run must land on).
    pub fn oracle_global_image(&self) -> Option<Vec<u8>> {
        self.oracle
            .as_ref()
            .map(|o| o.borrow().global_image().to_vec())
    }

    /// The chip configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The current application cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Per-launch statistics accumulated so far.
    pub fn stats(&self) -> &AppStats {
        &self.stats
    }

    /// Direct access to the memory system (cache statistics etc.).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    // ------------------------------------------------------------------
    // Host API
    // ------------------------------------------------------------------
    //
    // Each primitive call below participates in checkpoint-and-fork: while
    // *recording* it journals its result, and while *replaying* a forked
    // run's prefix it returns the journaled result without touching device
    // state (the restored snapshot already reflects every journaled op).
    // Convenience wrappers (`write_u32s`, `read_f32s`, …) call these
    // primitives, so each host action is journaled exactly once.

    /// While replaying a fork's journaled host-op prefix, yields the next
    /// recorded op (advancing the cursor); `None` once execution is live.
    fn replay_next(&self) -> Option<&HostOp> {
        let rep = self.replay.as_ref()?;
        let i = rep.cursor.get();
        if i >= rep.resume_at {
            return None;
        }
        rep.cursor.set(i + 1);
        Some(&rep.store.journal[i])
    }

    /// Allocates zeroed device memory and returns its device address.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::OutOfMemory`] past the simulated capacity.
    ///
    /// # Panics
    ///
    /// Panics when a forked run's host calls diverge from the recorded
    /// golden run before its first fault fires — a workload determinism
    /// violation, not an injection effect.
    pub fn malloc(&mut self, bytes: u32) -> Result<u32, LaunchError> {
        if let Some(op) = self.replay_next() {
            match op {
                HostOp::Malloc { bytes: b, ptr } if *b == bytes => return Ok(*ptr),
                other => panic!(
                    "checkpoint replay mismatch: journal has {other:?}, \
                     workload called malloc({bytes})"
                ),
            }
        }
        let ptr = self.mem.alloc(bytes)?;
        if let Some(orc) = &self.oracle {
            orc.borrow_mut().on_malloc(bytes, ptr);
        }
        if let Some(rec) = &self.recorder {
            rec.journal.borrow_mut().push(HostOp::Malloc { bytes, ptr });
        }
        Ok(ptr)
    }

    /// Copies bytes host → device.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::BadDevicePointer`] for unmapped ranges.
    ///
    /// # Panics
    ///
    /// Panics when a forked run's host calls diverge from the recorded
    /// golden run (see [`Gpu::malloc`]).
    pub fn memcpy_h2d(&mut self, ptr: u32, data: &[u8]) -> Result<(), LaunchError> {
        if let Some(op) = self.replay_next() {
            match op {
                HostOp::H2d { ptr: p, len } if *p == ptr && *len == data.len() => return Ok(()),
                other => panic!(
                    "checkpoint replay mismatch: journal has {other:?}, \
                     workload called memcpy_h2d({ptr}, {} bytes)",
                    data.len()
                ),
            }
        }
        self.mem.host_write(ptr, data)?;
        if let Some(orc) = &self.oracle {
            orc.borrow_mut().on_h2d(ptr, data);
        }
        if let Some(rec) = &self.recorder {
            rec.journal.borrow_mut().push(HostOp::H2d {
                ptr,
                len: data.len(),
            });
        }
        Ok(())
    }

    /// Copies bytes device → host (coherently through the L2).
    ///
    /// During fork replay this returns the bytes the *recording* run read,
    /// not the restored memory contents: the in-flight launch may already
    /// have overwritten the range by the snapshot cycle, and host control
    /// flow (e.g. BFS's stop-flag loop) branches on these bytes.  Both
    /// runs are fault-free over the replayed prefix, so the journaled
    /// bytes are exactly what a cold run would have read.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::BadDevicePointer`] for unmapped ranges.
    ///
    /// # Panics
    ///
    /// Panics when a forked run's host calls diverge from the recorded
    /// golden run (see [`Gpu::malloc`]).
    pub fn memcpy_d2h(&self, ptr: u32, out: &mut [u8]) -> Result<(), LaunchError> {
        if let Some(op) = self.replay_next() {
            match op {
                HostOp::D2h { ptr: p, data } if *p == ptr && data.len() == out.len() => {
                    out.copy_from_slice(data);
                    return Ok(());
                }
                other => panic!(
                    "checkpoint replay mismatch: journal has {other:?}, \
                     workload called memcpy_d2h({ptr}, {} bytes)",
                    out.len()
                ),
            }
        }
        self.mem.host_read(ptr, out)?;
        if let Some(orc) = &self.oracle {
            orc.borrow_mut().on_d2h(ptr, out);
        }
        if let Some(rec) = &self.recorder {
            rec.journal.borrow_mut().push(HostOp::D2h {
                ptr,
                data: out.to_vec(),
            });
        }
        Ok(())
    }

    /// Convenience: uploads a `u32` slice.
    ///
    /// # Errors
    ///
    /// See [`Gpu::memcpy_h2d`].
    pub fn write_u32s(&mut self, ptr: u32, data: &[u32]) -> Result<(), LaunchError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.memcpy_h2d(ptr, &bytes)
    }

    /// Convenience: downloads a `u32` slice.
    ///
    /// # Errors
    ///
    /// See [`Gpu::memcpy_d2h`].
    pub fn read_u32s(&self, ptr: u32, count: usize) -> Result<Vec<u32>, LaunchError> {
        let mut bytes = vec![0u8; count * 4];
        self.memcpy_d2h(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Convenience: uploads an `f32` slice.
    ///
    /// # Errors
    ///
    /// See [`Gpu::memcpy_h2d`].
    pub fn write_f32s(&mut self, ptr: u32, data: &[f32]) -> Result<(), LaunchError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.memcpy_h2d(ptr, &bytes)
    }

    /// Convenience: downloads an `f32` slice.
    ///
    /// # Errors
    ///
    /// See [`Gpu::memcpy_d2h`].
    pub fn read_f32s(&self, ptr: u32, count: usize) -> Result<Vec<f32>, LaunchError> {
        Ok(self
            .read_u32s(ptr, count)?
            .into_iter()
            .map(f32::from_bits)
            .collect())
    }

    /// Writes into the 64 KB constant bank (CUDA `cudaMemcpyToSymbol`).
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::OutOfMemory`] past the constant capacity.
    ///
    /// # Panics
    ///
    /// Panics when a forked run's host calls diverge from the recorded
    /// golden run (see [`Gpu::malloc`]).
    pub fn write_const(&mut self, offset: u32, data: &[u8]) -> Result<(), LaunchError> {
        if let Some(op) = self.replay_next() {
            match op {
                HostOp::ConstWrite { offset: o, len } if *o == offset && *len == data.len() => {
                    return Ok(())
                }
                other => panic!(
                    "checkpoint replay mismatch: journal has {other:?}, \
                     workload called write_const({offset}, {} bytes)",
                    data.len()
                ),
            }
        }
        self.mem.const_write(offset, data)?;
        if let Some(orc) = &self.oracle {
            orc.borrow_mut().on_const_write(offset, data);
        }
        if let Some(rec) = &self.recorder {
            rec.journal.borrow_mut().push(HostOp::ConstWrite {
                offset,
                len: data.len(),
            });
        }
        Ok(())
    }

    /// Convenience: uploads an `f32` slice into the constant bank.
    ///
    /// # Errors
    ///
    /// See [`Gpu::write_const`].
    pub fn write_const_f32s(&mut self, offset: u32, data: &[f32]) -> Result<(), LaunchError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_const(offset, &bytes)
    }

    // ------------------------------------------------------------------
    // Fault-injection port
    // ------------------------------------------------------------------

    /// Arms the GPU with an injection plan; faults fire when the
    /// application cycle reaches each fault's cycle.
    pub fn arm_faults(&mut self, plan: InjectionPlan) {
        let mut faults = plan.faults;
        faults.sort_by_key(|f| f.cycle);
        self.faults = faults;
        self.next_fault = 0;
        self.records.clear();
        self.ee_would_exit = false;
    }

    /// What happened to each armed fault so far.
    pub fn injection_records(&self) -> &[InjectionRecord] {
        &self.records
    }

    /// Aborts the run once the application cycle exceeds `limit`
    /// (the campaign sets this to 2× the fault-free cycles — §V.B).
    pub fn set_watchdog(&mut self, limit: u64) {
        self.watchdog = Some(limit);
    }

    /// Aborts the run with [`Trap::WallClock`] once `limit` of real time
    /// has elapsed (measured from this call).  Complements the cycle
    /// watchdog: that one only fires when the application cycle advances,
    /// while this one also catches a fault that livelocks the simulator
    /// *inside* a cycle.  The deadline spans every subsequent launch of
    /// the run, so a multi-kernel application shares one budget.
    pub fn set_wall_watchdog(&mut self, limit: std::time::Duration) {
        self.wall_deadline = Some(std::time::Instant::now() + limit);
    }

    /// Enables fault-lifetime early exit: once every armed fault's cycle
    /// has passed and no flipped state survives unobserved, the launch
    /// aborts with [`Trap::FaultsExpired`] — the rest of the run provably
    /// equals the golden execution.
    pub fn set_early_exit(&mut self, on: bool) {
        self.early_exit = on;
    }

    /// Enables the early-exit *probe*: the fault-lifetime exit predicate
    /// is evaluated exactly as under [`Gpu::set_early_exit`], but instead
    /// of aborting, the launch runs to completion and
    /// [`Gpu::would_early_exit`] reports whether it would have fired.
    /// The `--oracle-check` campaign mode uses this to prove that every
    /// run the early-exit optimization would classify as Masked really
    /// does end in the oracle-predicted state.
    pub fn set_early_exit_probe(&mut self, on: bool) {
        self.ee_probe = on;
    }

    /// Whether the armed faults' lifetimes all ended without escaping —
    /// i.e. early exit would have classified this run as Masked
    /// ([`Gpu::set_early_exit_probe`]).
    pub fn would_early_exit(&self) -> bool {
        self.ee_would_exit
    }

    /// Unobserved fault-flipped state across cores and the memory system.
    fn taint_count(&self) -> u64 {
        self.cores.iter().map(SimtCore::taint_count).sum::<u64>() + self.mem.taint_count()
    }

    /// Whether any fault-flipped state has been observed anywhere.
    fn taint_escaped(&self) -> bool {
        self.mem.taint_escaped() || self.cores.iter().any(SimtCore::taint_escaped)
    }

    /// The injectable fault-space sizes for `kernel` on this chip.
    pub fn fault_space(&self, kernel: &Kernel) -> FaultSpace {
        FaultSpace {
            regs_per_thread: u32::from(kernel.num_regs()),
            lmem_bits: u64::from(kernel.lmem_bytes()) * 8,
            smem_bits: u64::from(kernel.smem_bytes()) * 8,
            l1d_bits: self.mem.l1d_bits(),
            l1t_bits: self.mem.l1t_bits(),
            l1c_bits: self.mem.l1c_bits(),
            l2_bits: self.mem.l2_bits(),
            num_sms: self.cfg.num_sms,
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint-and-fork
    // ------------------------------------------------------------------

    /// Captures the complete architectural + microarchitectural device
    /// state: memory system (global/local/constant segments, every cache's
    /// tag and data arrays, timing queues), every SIMT core (register
    /// files, predicates, SIMT stacks, scheduler and barrier state, CTA
    /// residency), the application cycle and the statistics counters.
    ///
    /// Use between launches; the campaign's recorder
    /// ([`Gpu::record_checkpoints`]) additionally captures *mid-launch*
    /// snapshots that [`Gpu::resume_from`] can fork from.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycle: self.cycle,
            mem: self.mem.clone(),
            cores: self.cores.clone(),
            stats: self.stats.clone(),
            progress: None,
            host_ops_done: 0,
        }
    }

    /// Restores machine state from a snapshot.  The injection-run fields —
    /// armed faults, watchdog, early-exit mode, injection records — are
    /// deliberately untouched: they belong to the run doing the
    /// restoring, not to the recorded execution.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.mem = snap.mem.clone();
        self.cores = snap.cores.clone();
        self.cycle = snap.cycle;
        self.stats = snap.stats.clone();
    }

    /// Starts checkpoint recording: every host API call is journaled, and
    /// the launch cycle loop captures a full [`Snapshot`] each time the
    /// application cycle crosses the next `interval` boundary.  Whenever
    /// the snapshot set would exceed `budget_bytes`, every other snapshot
    /// is dropped and the stride doubles, so the store stays within budget
    /// for any golden-run length.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn record_checkpoints(&mut self, interval: u64, budget_bytes: usize) {
        self.recorder = Some(Recorder::new(interval, budget_bytes));
    }

    /// Stops checkpoint recording and returns the store.
    ///
    /// # Panics
    ///
    /// Panics if [`Gpu::record_checkpoints`] was never called.
    pub fn finish_checkpoint_recording(&mut self) -> CheckpointStore {
        self.recorder
            .take()
            .expect("checkpoint recording not started")
            .into_store()
    }

    /// Forks this GPU from snapshot `idx` of a recorded store: restores
    /// the machine state and arms journal replay, so the next
    /// `Workload::run` invocation fast-forwards through the
    /// already-executed host prefix (journaled results, no device effects)
    /// and resumes the in-flight launch's cycle loop at the snapshot
    /// cycle.
    ///
    /// Sound only when every armed fault fires at or after the snapshot
    /// cycle — the campaign picks
    /// [`CheckpointStore::nearest_at_or_before`] the first injection
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn resume_from(&mut self, store: &Arc<CheckpointStore>, idx: usize) {
        let snap = &store.snapshots[idx];
        self.restore(snap);
        self.replay = Some(Replay {
            store: Arc::clone(store),
            cursor: Cell::new(0),
            resume_at: snap.host_ops_done,
            snapshot: idx,
        });
    }

    // ------------------------------------------------------------------
    // Kernel launch
    // ------------------------------------------------------------------

    /// Launches `kernel` synchronously and runs it to completion,
    /// advancing the application cycle counter.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] when execution faults (invalid address,
    /// watchdog, deadlock, …).  Traps map to the **Crash** / **Timeout**
    /// fault-effect classes.
    ///
    /// # Panics
    ///
    /// Panics on launch-configuration errors — block larger than the
    /// hardware limit, wrong parameter count, or a CTA that cannot fit on
    /// an SM.  These indicate workload bugs, not injected faults.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        dims: LaunchDims,
        args: &[u32],
    ) -> Result<LaunchStats, Trap> {
        // Fork replay, case 1: a launch the journal says completed before
        // the snapshot.  Its effects are already in the restored state —
        // return the recorded stats without executing anything.
        if let Some(rep) = &self.replay {
            let i = rep.cursor.get();
            if i < rep.resume_at {
                rep.cursor.set(i + 1);
                match &rep.store.journal[i] {
                    HostOp::Launch { kernel: k, stats } if k == kernel.name() => {
                        return Ok(stats.clone());
                    }
                    other => panic!(
                        "checkpoint replay mismatch: journal has {other:?}, \
                         workload launched `{}`",
                        kernel.name()
                    ),
                }
            }
        }

        let tpc = dims.threads_per_cta();
        assert!(
            (1..=1024).contains(&tpc) && tpc <= self.cfg.max_threads_per_sm,
            "block of {tpc} threads exceeds hardware limits"
        );
        assert!(dims.grid.count() >= 1, "empty grid");
        assert_eq!(
            args.len(),
            kernel.num_params() as usize,
            "kernel `{}` expects {} parameters",
            kernel.name(),
            kernel.num_params()
        );

        // CTA residency limit (occupancy): threads, CTA slots, shared
        // memory and register file.
        let mut limit = self
            .cfg
            .max_ctas_per_sm
            .min(self.cfg.max_threads_per_sm / tpc);
        if kernel.smem_bytes() > 0 {
            limit = limit.min(self.cfg.smem_per_sm / kernel.smem_bytes());
        }
        let regs_per_cta = u32::from(kernel.num_regs()) * tpc;
        if let Some(reg_limit) = self.cfg.registers_per_sm.checked_div(regs_per_cta) {
            limit = limit.min(reg_limit);
        }
        assert!(
            limit >= 1,
            "kernel `{}` CTA does not fit on an SM",
            kernel.name()
        );

        // Fork replay, case 2: the in-flight launch the snapshot was taken
        // inside.  Consume the replay state (execution goes live from
        // here) and pick the cycle loop up exactly where the recording's
        // snapshot left it — the restored cores/memory already hold the
        // mid-launch state, so kernel setup (local-memory reset, core
        // configuration, the initial CTA fill) must be skipped.
        let resumed: Option<LaunchProgress> = self.replay.take().map(|rep| {
            let p = rep.store.snapshots[rep.snapshot]
                .progress
                .clone()
                .expect("campaign checkpoints are mid-launch snapshots");
            assert_eq!(
                p.kernel,
                kernel.name(),
                "resumed launch does not match the recorded in-flight kernel"
            );
            p
        });

        // Predecode once per launch: the cores execute micro-ops with
        // latency class, guard and register slots already resolved.
        let pre = gpufi_isa::Predecoded::from_kernel(kernel);
        let ctx = KernelCtx {
            kernel,
            dims,
            args,
            pre: &pre,
        };
        let total_ctas = dims.grid.count();
        let mut next_cta = 0u64;
        if resumed.is_none() {
            self.mem
                .reset_local(dims.total_threads(), kernel.lmem_bytes())
                .expect("local-memory segment exceeds the simulated capacity");
            for c in &mut self.cores {
                c.configure_kernel(limit);
            }

            'fill: loop {
                let mut placed = false;
                for c in &mut self.cores {
                    if next_cta >= total_ctas {
                        break 'fill;
                    }
                    if c.can_accept_cta(&ctx) {
                        c.launch_cta(&ctx, next_cta, self.cycle);
                        next_cta += 1;
                        placed = true;
                    }
                }
                if !placed {
                    break;
                }
            }
        }

        let max_warps = f64::from(self.cfg.max_warps_per_sm());
        let start_cycle;
        let instr0: u64;
        let ace0: u64;
        let mut thread_cycles;
        let (l1d0, l1t0, l20);
        let (mut occ_int, mut thr_int, mut cta_int, mut t_int);
        match &resumed {
            Some(p) => {
                next_cta = p.next_cta;
                start_cycle = p.start_cycle;
                instr0 = p.instr0;
                ace0 = p.ace0;
                thread_cycles = p.thread_cycles;
                (l1d0, l1t0, l20) = (p.l1d0, p.l1t0, p.l20);
                (occ_int, thr_int, cta_int, t_int) = (p.occ_int, p.thr_int, p.cta_int, p.t_int);
            }
            None => {
                start_cycle = self.cycle;
                instr0 = self.cores.iter().map(|c| c.instructions).sum();
                ace0 = self.cores.iter().map(|c| c.ace_reg_cycles).sum();
                thread_cycles = 0u64;
                (l1d0, l1t0, l20) = (
                    self.mem.l1d_stats(),
                    self.mem.l1t_stats(),
                    self.mem.l2_stats(),
                );
                (occ_int, thr_int, cta_int, t_int) = (0.0f64, 0.0f64, 0.0f64, 0u64);
            }
        }

        // Latched once a flip is observed: the run can no longer early-exit,
        // so stop scanning taint state.
        let mut ee_dead = false;
        // The taint scan walks every core and cache bank; doing that each
        // cycle costs more than the exit saves.  Scan on a stride instead —
        // an exit delayed by up to EE_STRIDE-1 cycles is still sound (no
        // faults remain, so a zero taint count can only stay zero).
        const EE_STRIDE: u32 = 32;
        let mut ee_tick = 0u32;
        // The wall-clock watchdog reads `Instant::now()` on a stride so its
        // cost stays negligible against the per-cycle work; a 255-iteration
        // overshoot is noise next to a multi-second limit.
        const WALL_STRIDE: u32 = 256;
        // First check on the first iteration, so an already-expired
        // deadline aborts before any work (and short kernels cannot slip
        // under the stride).
        let mut wall_tick = 1u32;
        let outcome: Result<(), Trap> = 'run: loop {
            if self.wall_deadline.is_some() {
                wall_tick -= 1;
                if wall_tick == 0 {
                    wall_tick = WALL_STRIDE;
                    if self
                        .wall_deadline
                        .is_some_and(|d| std::time::Instant::now() >= d)
                    {
                        break 'run Err(Trap::WallClock);
                    }
                }
            }
            // Checkpoint capture (recording run only), at the top of the
            // loop *before* fault firing: a fork resuming here sees the
            // same pending-fault semantics a cold run reaching this cycle
            // would (a fault planned at exactly this cycle fires now in
            // both).  Every iteration advances the cycle, so each
            // top-of-loop cycle value is captured at most once.
            if self
                .recorder
                .as_ref()
                .is_some_and(|r| self.cycle >= r.next_at)
            {
                let snap = Snapshot {
                    cycle: self.cycle,
                    mem: self.mem.clone(),
                    cores: self.cores.clone(),
                    stats: self.stats.clone(),
                    progress: Some(LaunchProgress {
                        kernel: kernel.name().to_string(),
                        next_cta,
                        start_cycle,
                        instr0,
                        ace0,
                        thread_cycles,
                        l1d0,
                        l1t0,
                        l20,
                        occ_int,
                        thr_int,
                        cta_int,
                        t_int,
                    }),
                    host_ops_done: self
                        .recorder
                        .as_ref()
                        .expect("recorder checked above")
                        .journal
                        .borrow()
                        .len(),
                };
                self.recorder
                    .as_mut()
                    .expect("recorder checked above")
                    .push(snap);
            }

            // Fire due faults.
            while self.next_fault < self.faults.len()
                && self.faults[self.next_fault].cycle <= self.cycle
            {
                let fault = self.faults[self.next_fault].clone();
                self.next_fault += 1;
                let record = self.apply_fault(&fault, &ctx);
                self.records.push(record);
            }

            // Fault-lifetime early exit: every planned fault has fired and
            // no flipped bit survives unobserved — the machine state equals
            // the golden run's, so the remaining execution is determined.
            if (self.early_exit || self.ee_probe)
                && !ee_dead
                && !self.faults.is_empty()
                && self.next_fault == self.faults.len()
            {
                if ee_tick == 0 {
                    ee_tick = EE_STRIDE;
                    if self.taint_escaped() {
                        ee_dead = true;
                    } else if self.taint_count() == 0 {
                        if self.early_exit {
                            break 'run Err(Trap::FaultsExpired);
                        }
                        // Probe mode: latch the verdict, keep executing so
                        // the final state can be checked against it.
                        self.ee_would_exit = true;
                        ee_dead = true;
                    }
                }
                ee_tick -= 1;
            }

            // Issue one instruction per core.  The readiness test is
            // hoisted out of `cycle` so cores sleeping until a future
            // cycle (most of them, on low-occupancy grids) cost a load
            // and compare instead of a call — `cycle` itself would
            // return `Ok(false)` on the same test.
            let mut any = false;
            for i in 0..self.cores.len() {
                if !self.cores[i].maybe_ready(self.cycle) {
                    continue;
                }
                match self.cores[i].cycle(self.cycle, &ctx, &mut self.mem) {
                    Ok(true) => any = true,
                    Ok(false) => {}
                    Err(t) => break 'run Err(t),
                }
            }

            // Retire finished CTAs and dispatch pending ones.  An idle
            // core harvests nothing and fails the dispatch condition
            // (`harvest == 0 || is_idle`), so it can be skipped outright.
            let now = self.cycle;
            for c in &mut self.cores {
                if c.is_idle() {
                    continue;
                }
                if c.harvest_finished() > 0 || !c.is_idle() {
                    while next_cta < total_ctas && c.can_accept_cta(&ctx) {
                        c.launch_cta(&ctx, next_cta, now);
                        next_cta += 1;
                    }
                }
            }
            // Idle cores can also accept (covers the first dispatch of a
            // core that was skipped above).
            if next_cta < total_ctas {
                for c in &mut self.cores {
                    while next_cta < total_ctas && c.can_accept_cta(&ctx) {
                        c.launch_cta(&ctx, next_cta, now);
                        next_cta += 1;
                    }
                }
            }

            let done = next_cta >= total_ctas && self.cores.iter().all(SimtCore::is_idle);
            if done {
                break Ok(());
            }

            // Time advance: 1 cycle while issuing, else fast-forward to the
            // next event (capped at the next armed fault).
            let mut dt = if any {
                1
            } else {
                let next = self.cores.iter().filter_map(SimtCore::next_ready).min();
                match next {
                    Some(t) if t > self.cycle => t - self.cycle,
                    Some(_) => 1,
                    None => break Err(Trap::Deadlock),
                }
            };
            if self.next_fault < self.faults.len() {
                let fc = self.faults[self.next_fault].cycle;
                if fc > self.cycle && fc < self.cycle + dt {
                    dt = fc - self.cycle;
                }
            }

            // Integrate occupancy / residency over [cycle, cycle + dt).
            let mut live_warps = 0u64;
            let mut live_threads = 0u64;
            let mut live_ctas = 0u64;
            let mut active_sms = 0u64;
            for c in &self.cores {
                if !c.is_idle() {
                    active_sms += 1;
                    live_warps += u64::from(c.resident_live_warps());
                    live_threads += u64::from(c.resident_threads());
                    live_ctas += u64::from(c.resident_ctas());
                }
            }
            if active_sms > 0 {
                let dtf = dt as f64;
                occ_int += live_warps as f64 / (active_sms as f64 * max_warps) * dtf;
                thr_int += live_threads as f64 / active_sms as f64 * dtf;
                cta_int += live_ctas as f64 / active_sms as f64 * dtf;
                t_int += dt;
                thread_cycles += live_threads * dt;
            }

            self.cycle += dt;
            if let Some(limit) = self.watchdog {
                if self.cycle > limit {
                    break Err(Trap::Watchdog);
                }
            }
        };

        // L1s are invalidated between launches on real GPUs.
        self.mem.flush_l1s();

        // Lockstep oracle: diff the launch's final architectural state
        // against the reference interpreter (drains the cores' exit logs
        // even on a trap, so a later launch starts clean).
        if let Some(orc) = &self.oracle {
            let mut exited: Vec<ThreadState> = Vec::new();
            for c in &mut self.cores {
                exited.extend(c.take_exit_log());
            }
            orc.borrow_mut()
                .on_launch(kernel, dims, args, outcome.err(), &self.mem, &exited);
        }

        outcome?;
        let t = t_int.max(1) as f64;
        let stats = LaunchStats {
            kernel: kernel.name().to_string(),
            start_cycle,
            end_cycle: self.cycle,
            instructions: self.cores.iter().map(|c| c.instructions).sum::<u64>() - instr0,
            occupancy: occ_int / t,
            mean_threads_per_sm: thr_int / t,
            mean_ctas_per_sm: cta_int / t,
            regs_per_thread: u32::from(kernel.num_regs()),
            smem_per_cta: kernel.smem_bytes(),
            lmem_per_thread: kernel.lmem_bytes(),
            ace_reg_cycles: self.cores.iter().map(|c| c.ace_reg_cycles).sum::<u64>() - ace0,
            thread_cycles,
            l1d_stats: self.mem.l1d_stats().since(&l1d0),
            l1t_stats: self.mem.l1t_stats().since(&l1t0),
            l2_stats: self.mem.l2_stats().since(&l20),
        };
        self.stats.launches.push(stats.clone());
        if let Some(rec) = &self.recorder {
            rec.journal.borrow_mut().push(HostOp::Launch {
                kernel: kernel.name().to_string(),
                stats: stats.clone(),
            });
        }
        Ok(stats)
    }

    // ------------------------------------------------------------------
    // Fault application
    // ------------------------------------------------------------------

    /// Resolves and applies one planned fault against the current dynamic
    /// state (the paper's back-end, §IV.B).
    fn apply_fault(&mut self, fault: &PlannedFault, ctx: &KernelCtx<'_>) -> InjectionRecord {
        let structure = fault.target.structure_name();
        let mut outcomes = Vec::new();
        let applied = match &fault.target {
            FaultTarget::RegisterFile {
                scope,
                entry_lot,
                reg,
                bits,
            } => match scope {
                Scope::Thread => {
                    let total: u64 = self.cores.iter().map(SimtCore::live_thread_count).sum();
                    if total == 0 {
                        false
                    } else {
                        let mut n = entry_lot % total;
                        let mut hit = false;
                        for c in &mut self.cores {
                            let cnt = c.live_thread_count();
                            if n < cnt {
                                hit = c.flip_thread_reg(n, *reg, bits).is_some();
                                break;
                            }
                            n -= cnt;
                        }
                        hit
                    }
                }
                Scope::Warp => {
                    let total: u64 = self.cores.iter().map(SimtCore::live_warp_count).sum();
                    if total == 0 {
                        false
                    } else {
                        let mut n = entry_lot % total;
                        let mut hit = false;
                        for c in &mut self.cores {
                            let cnt = c.live_warp_count();
                            if n < cnt {
                                hit = c.flip_warp_reg(n, *reg, bits).is_some();
                                break;
                            }
                            n -= cnt;
                        }
                        hit
                    }
                }
            },
            FaultTarget::LocalMemory { entry_lot, bits } => {
                let lmem_bits = u64::from(ctx.kernel.lmem_bytes()) * 8;
                let total: u64 = self.cores.iter().map(SimtCore::live_thread_count).sum();
                if total == 0 || lmem_bits == 0 {
                    false
                } else {
                    let mut n = entry_lot % total;
                    let mut tid = None;
                    for c in &self.cores {
                        let cnt = c.live_thread_count();
                        if n < cnt {
                            tid = c.nth_live_thread_global_id(n, ctx);
                            break;
                        }
                        n -= cnt;
                    }
                    match tid {
                        Some(t) => {
                            let base = t * u64::from(ctx.kernel.lmem_bytes()) * 8;
                            let mut any = false;
                            for &b in bits {
                                any |= self.mem.flip_local_bit(base + (b % lmem_bits));
                            }
                            any
                        }
                        None => false,
                    }
                }
            }
            FaultTarget::SharedMemory {
                cta_lot,
                replicate,
                bits,
            } => {
                let total: u64 = self.cores.iter().map(SimtCore::cta_count).sum();
                if total == 0 {
                    false
                } else {
                    let mut any = false;
                    for r in 0..u64::from((*replicate).max(1)) {
                        let mut n = (cta_lot + r) % total;
                        for c in &mut self.cores {
                            let cnt = c.cta_count();
                            if n < cnt {
                                for &b in bits {
                                    any |= c.flip_cta_smem(n, b);
                                }
                                break;
                            }
                            n -= cnt;
                        }
                    }
                    any
                }
            }
            FaultTarget::L1Data {
                core_lot,
                replicate,
                bits,
            } => {
                let Some(space) = self.mem.l1d_bits() else {
                    return InjectionRecord {
                        cycle: self.cycle,
                        structure,
                        applied: false,
                        outcomes,
                    };
                };
                let n = u64::from(self.cfg.num_sms);
                for r in 0..u64::from((*replicate).max(1)) {
                    let sm = ((core_lot + r) % n) as usize;
                    for &b in bits {
                        if let Some(o) = self.mem.flip_l1d_bit(sm, b % space) {
                            outcomes.push(o);
                        }
                    }
                }
                outcomes.iter().any(|o| *o != FlipOutcome::InvalidLine)
            }
            FaultTarget::L1Tex {
                core_lot,
                replicate,
                bits,
            } => {
                let space = self.mem.l1t_bits();
                let n = u64::from(self.cfg.num_sms);
                for r in 0..u64::from((*replicate).max(1)) {
                    let sm = ((core_lot + r) % n) as usize;
                    for &b in bits {
                        outcomes.push(self.mem.flip_l1t_bit(sm, b % space));
                    }
                }
                outcomes.iter().any(|o| *o != FlipOutcome::InvalidLine)
            }
            FaultTarget::L1Const {
                core_lot,
                replicate,
                bits,
            } => {
                let space = self.mem.l1c_bits();
                let n = u64::from(self.cfg.num_sms);
                for r in 0..u64::from((*replicate).max(1)) {
                    let sm = ((core_lot + r) % n) as usize;
                    for &b in bits {
                        outcomes.push(self.mem.flip_l1c_bit(sm, b % space));
                    }
                }
                outcomes.iter().any(|o| *o != FlipOutcome::InvalidLine)
            }
            FaultTarget::L2 { bits } => {
                let space = self.mem.l2_bits();
                for &b in bits {
                    outcomes.push(self.mem.flip_l2_bit(b % space));
                }
                outcomes.iter().any(|o| *o != FlipOutcome::InvalidLine)
            }
        };
        InjectionRecord {
            cycle: self.cycle,
            structure,
            applied,
            outcomes,
        }
    }
}
