//! Grid and block geometry types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 3-component extent or index, mirroring CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// X component.
    pub x: u32,
    /// Y component.
    pub y: u32,
    /// Z component.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent `(x, 1, 1)`.
    pub fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count, `x * y * z`.
    pub fn count(&self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }

    /// The index at linear position `i` in x-major order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.count()`.
    pub fn index_at(&self, i: u64) -> Dim3 {
        assert!(i < self.count(), "linear index {i} out of {}", self.count());
        let x = (i % u64::from(self.x)) as u32;
        let rest = i / u64::from(self.x);
        let y = (rest % u64::from(self.y)) as u32;
        let z = (rest / u64::from(self.y)) as u32;
        Dim3 { x, y, z }
    }

    /// The linear position of `idx` in x-major order.
    pub fn linear_of(&self, idx: Dim3) -> u64 {
        u64::from(idx.x)
            + u64::from(idx.y) * u64::from(self.x)
            + u64::from(idx.z) * u64::from(self.x) * u64::from(self.y)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A kernel launch shape: grid of CTAs × block of threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchDims {
    /// CTAs in the grid.
    pub grid: Dim3,
    /// Threads in each CTA.
    pub block: Dim3,
}

impl LaunchDims {
    /// Creates launch dimensions from anything convertible to [`Dim3`].
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchDims {
            grid: grid.into(),
            block: block.into(),
        }
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.block.count() as u32
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_roundtrip() {
        let d = Dim3 { x: 4, y: 3, z: 2 };
        for i in 0..d.count() {
            let idx = d.index_at(i);
            assert_eq!(d.linear_of(idx), i);
            assert!(idx.x < 4 && idx.y < 3 && idx.z < 2);
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn index_at_bounds() {
        Dim3::x(4).index_at(4);
    }

    #[test]
    fn launch_dims_counts() {
        let d = LaunchDims::new((8, 2), 128);
        assert_eq!(d.threads_per_cta(), 128);
        assert_eq!(d.total_threads(), 8 * 2 * 128);
    }
}
