//! # gpufi-sim — a cycle-level SIMT GPU simulator
//!
//! This crate is the reproduction's stand-in for GPGPU-Sim 4.0: a
//! from-scratch, cycle-level simulator of CUDA-style GPUs executing the
//! SASS-lite ISA defined in [`gpufi_isa`].  It models:
//!
//! * SIMT cores (SMs) with greedy-then-oldest warp scheduling, SIMT
//!   reconvergence stacks, CTA barriers and per-thread register files;
//! * per-CTA shared memory and per-thread local memory;
//! * private per-SM L1 data and texture caches, a banked write-back L2,
//!   an interconnect and a DRAM latency model — with **real tag and data
//!   arrays**, so transient faults can be injected by flipping stored bits;
//! * a GigaThread-style CTA dispatcher with occupancy limits (threads,
//!   CTAs, shared memory, registers);
//! * chip configurations reproducing the paper's RTX 2060, Quadro GV100
//!   and GTX Titan (Table V).
//!
//! The fault-injection surface ([`InjectionPlan`], [`Gpu::arm_faults`])
//! lets a campaign flip bits in any of the six structures the paper
//! targets, at an exact cycle, with deterministic pre-drawn random "lots"
//! resolving the dynamic choices (which active thread, which warp, which
//! CTA).
//!
//! # Example
//!
//! ```
//! use gpufi_isa::Module;
//! use gpufi_sim::{Gpu, GpuConfig, LaunchDims};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = Module::assemble(
//!     ".kernel set42\n.params 1\n S2R R1, SR_TID.X\n SHL R1, R1, 2\n \
//!      IADD R1, R0, R1\n MOV R2, 42\n STG [R1], R2\n EXIT\n",
//! )?;
//! let mut gpu = Gpu::new(GpuConfig::rtx2060());
//! let buf = gpu.malloc(32 * 4)?;
//! gpu.launch(
//!     module.kernel("set42").unwrap(),
//!     LaunchDims::new(1, 32),
//!     &[buf],
//! )?;
//! let mut out = vec![0u8; 4];
//! gpu.memcpy_d2h(buf, &mut out)?;
//! assert_eq!(u32::from_le_bytes(out.try_into().unwrap()), 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod config_file;
mod core;
mod error;
mod fault;
mod gpu;
mod grid;
pub mod mem;
pub mod oracle;
mod snapshot;
mod stats;

pub use crate::core::{KernelCtx, SimtCore, WarpHandle};
pub use config::{CacheConfig, GpuConfig, LatencyConfig, SchedulerPolicy, TAG_BITS, WARP_SIZE};
pub use config_file::ConfigError;
pub use error::{LaunchError, Trap};
pub use fault::{FaultSpace, FaultTarget, InjectionPlan, InjectionRecord, PlannedFault, Scope};
pub use gpu::Gpu;
pub use grid::{Dim3, LaunchDims};
pub use mem::{AccessKind, CacheStats, FlipOutcome, MemSystem, GLOBAL_BASE, LOCAL_BASE};
pub use oracle::{Divergence, DivergenceReport, OracleMirror, ThreadState};
pub use snapshot::{CheckpointStore, Snapshot};
pub use stats::{AppStats, KernelWindow, LaunchStats};

// Unwind-safety boundary of the campaign supervisor: every piece of shared
// state a `catch_unwind`-wrapped injection run borrows must be
// `RefUnwindSafe`, or a panicking run could leak a broken-invariant view to
// its siblings.  The supervisor constructs the `Gpu` *inside* the guarded
// closure (so `Gpu`'s interior mutability never crosses the boundary) and
// only ever *reads* these types across it.  These compile-time assertions
// keep that contract from silently regressing when someone adds a
// `Cell`/`RefCell` to a snapshot or config type.
const _: () = {
    const fn assert_ref_unwind_safe<T: std::panic::RefUnwindSafe>() {}
    assert_ref_unwind_safe::<CheckpointStore>();
    assert_ref_unwind_safe::<Snapshot>();
    assert_ref_unwind_safe::<GpuConfig>();
    assert_ref_unwind_safe::<InjectionPlan>();
    assert_ref_unwind_safe::<Trap>();
};
