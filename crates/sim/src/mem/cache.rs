//! Set-associative cache with real tag and data arrays.
//!
//! Unlike GPGPU-Sim — whose caches hold only tags, forcing gpuFI-4 to attach
//! deferred injection "hooks" resolved at access time — this cache stores its
//! data array directly.  A flipped data bit is therefore immediately visible
//! to the next read hit, vanishes when the line is replaced, and propagates
//! to the next level when a dirty victim is written back: exactly the
//! observable semantics the paper's hooks implement (§IV.B.4).
//!
//! Each line additionally models [`TAG_BITS`] of tag storage (§IV.C.2); tag
//! bits are part of the injectable bit space and a flipped tag makes the
//! line unreachable under its old address and aliased under a new one.

use crate::config::{CacheConfig, TAG_BITS};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};

/// A set-through-`&self` boolean latch for "tainted state was observed"
/// events.
///
/// Host-coherence reads are `&self`, so the latch needs interior
/// mutability; checkpoint snapshots are shared read-only across campaign
/// worker threads, so it must also be `Sync` — which rules out `Cell`.
/// A relaxed `AtomicBool` gives both (each `Gpu` is only ever driven by
/// one thread, so no ordering is required).
#[derive(Debug, Default)]
pub(crate) struct EscapeLatch(AtomicBool);

impl EscapeLatch {
    pub(crate) fn new(v: bool) -> Self {
        EscapeLatch(AtomicBool::new(v))
    }

    pub(crate) fn get(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn set(&self, v: bool) {
        self.0.store(v, Ordering::Relaxed);
    }
}

impl Clone for EscapeLatch {
    fn clone(&self) -> Self {
        EscapeLatch::new(self.get())
    }
}

/// One cache line: valid/dirty state, tag, LRU stamp, and the data bytes.
///
/// `tainted` marks a line whose data bits were changed by an injected
/// fault but not yet observed — the fault-lifetime tracker uses it to
/// decide when an armed fault can no longer influence execution.
#[derive(Debug, Clone)]
struct Line {
    valid: bool,
    dirty: bool,
    tainted: bool,
    tag: u64,
    lru: u64,
    /// Flush epoch the line was filled in; a line is only live when its
    /// epoch matches the cache's (see [`Cache::flush`]).
    epoch: u64,
    /// Lazily allocated on first fill — empty until then, so constructing
    /// and dropping a `Gpu` never touches the (large, mostly unused) data
    /// arrays.
    data: Vec<u8>,
}

/// Hit/miss counters, per cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookup operations that hit.
    pub hits: u64,
    /// Lookup operations that missed.
    pub misses: u64,
    /// Dirty lines evicted (written back).
    pub writebacks: u64,
    /// Lines filled.
    pub fills: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; zero when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Counter-wise difference `self - earlier` (for per-launch deltas).
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counters (not a prior snapshot).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            writebacks: self.writebacks - earlier.writebacks,
            fills: self.fills - earlier.fills,
        }
    }
}

/// A dirty victim produced by a fill or invalidation; the caller must write
/// it to the next memory level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Writeback {
    /// The line address (byte address / line size) the victim maps to
    /// according to its — possibly fault-corrupted — tag.
    pub line_addr: u64,
    /// The line's data bytes.
    pub data: Vec<u8>,
}

/// Where an injected bit flip landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlipOutcome {
    /// The targeted line was invalid; the flip has no architectural effect.
    InvalidLine,
    /// A tag bit was flipped on a valid line.
    Tag,
    /// A data bit was flipped on a valid line.
    Data,
}

/// A set-associative, write-back-capable cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
    taints: u32,
    /// Current flush epoch.  A line whose `epoch` lags this value is stale
    /// (architecturally invalid) even if its `valid` flag is still set:
    /// bumping the epoch invalidates every line in O(1), which turns the
    /// per-kernel-launch L1 flush from a full line walk into a counter
    /// increment whenever nothing needs writeback.
    epoch: u64,
    /// Number of lines whose raw `dirty` flag is set (stale or live).  The
    /// O(1) flush fast path requires this to be zero, which also maintains
    /// the invariant that stale lines are never dirty.
    dirty_lines: u32,
    // Latched when fault-flipped state becomes observable: a read (or host
    // peek) hits a tainted line, a tainted dirty victim is written back to
    // the next level, or a tag flip lands on a valid line (tag flips change
    // hit/miss timing immediately).  A latch because the host-coherence
    // read path is `&self`.
    escaped: EscapeLatch,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let lines = (0..cfg.num_lines())
            .map(|_| Line {
                valid: false,
                dirty: false,
                tainted: false,
                tag: 0,
                lru: 0,
                epoch: 0,
                data: Vec::new(),
            })
            .collect();
        Cache {
            cfg,
            lines,
            tick: 0,
            stats: CacheStats::default(),
            taints: 0,
            epoch: 0,
            dirty_lines: 0,
            escaped: EscapeLatch::new(false),
        }
    }

    /// Whether line `i` is architecturally valid: its `valid` flag is set
    /// *and* it was filled in the current flush epoch.
    fn live(&self, i: usize) -> bool {
        let l = &self.lines[i];
        l.valid && l.epoch == self.epoch
    }

    /// Lines currently holding unobserved fault-flipped data.
    pub fn taint_count(&self) -> u32 {
        self.taints
    }

    /// Approximate heap footprint of the tag and data arrays, for
    /// checkpoint-store budgeting.
    ///
    /// Counted at configured capacity — as if every line's data were
    /// allocated — not at the current lazy allocation.  The budget is a
    /// peak bound (a resumed run fills lines on demand), and capacity
    /// accounting keeps checkpoint placement independent of how many
    /// lines happen to be filled at capture time.
    pub fn resident_bytes(&self) -> usize {
        self.lines.len() * (std::mem::size_of::<Line>() + self.cfg.line_bytes as usize)
    }

    /// Whether fault-flipped state has become observable (see the field
    /// docs); once set, the fault-lifetime tracker must run the simulation
    /// to completion.
    pub fn taint_escaped(&self) -> bool {
        self.escaped.get()
    }

    fn clear_taint(&mut self, i: usize) {
        if self.lines[i].tainted {
            self.lines[i].tainted = false;
            self.taints -= 1;
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics counters (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, line_addr: u64) -> u32 {
        (line_addr % u64::from(self.cfg.sets)) as u32
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr / u64::from(self.cfg.sets)
    }

    fn line_addr_of(&self, set: u32, tag: u64) -> u64 {
        tag * u64::from(self.cfg.sets) + u64::from(set)
    }

    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let base = (set * self.cfg.ways) as usize;
        base..base + self.cfg.ways as usize
    }

    fn find(&self, line_addr: u64) -> Option<usize> {
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        self.set_range(set)
            .find(|&i| self.live(i) && self.lines[i].tag == tag)
    }

    /// Whether `line_addr` is currently resident, without touching LRU or
    /// statistics.  Used by the timing model to price an access before the
    /// functional operations run.
    pub fn probe(&self, line_addr: u64) -> bool {
        self.find(line_addr).is_some()
    }

    /// Reads `out.len()` bytes at `offset` within the line, if resident.
    ///
    /// Returns `true` on a hit (LRU and statistics updated).
    ///
    /// # Panics
    ///
    /// Panics if `offset + out.len()` exceeds the line size.
    pub fn read(&mut self, line_addr: u64, offset: u32, out: &mut [u8]) -> bool {
        match self.find(line_addr) {
            Some(i) => {
                self.tick += 1;
                self.lines[i].lru = self.tick;
                if self.lines[i].tainted {
                    self.escaped.set(true);
                }
                let o = offset as usize;
                out.copy_from_slice(&self.lines[i].data[o..o + out.len()]);
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Writes `bytes` at `offset` within the line, if resident, marking the
    /// line dirty when `dirty` is requested.
    ///
    /// Returns `true` on a hit.
    pub fn write(&mut self, line_addr: u64, offset: u32, bytes: &[u8], dirty: bool) -> bool {
        match self.find(line_addr) {
            Some(i) => {
                self.tick += 1;
                self.lines[i].lru = self.tick;
                let o = offset as usize;
                self.lines[i].data[o..o + bytes.len()].copy_from_slice(bytes);
                if dirty && !self.lines[i].dirty {
                    self.lines[i].dirty = true;
                    self.dirty_lines += 1;
                }
                // A full-line overwrite provably erases any flipped bits; a
                // partial write keeps the taint (the flip may sit outside
                // the written range).
                if o == 0 && bytes.len() == self.cfg.line_bytes as usize {
                    self.clear_taint(i);
                }
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Reads one byte at `offset` within a resident line without touching
    /// LRU state or statistics (host-coherence path).
    pub fn peek(&self, line_addr: u64, offset: u32) -> Option<u8> {
        self.find(line_addr).map(|i| {
            if self.lines[i].tainted {
                self.escaped.set(true);
            }
            self.lines[i].data[offset as usize]
        })
    }

    /// Overwrites one byte of a resident line without touching LRU state,
    /// statistics or the dirty flag (host-coherence path).
    ///
    /// Returns `true` when the line was resident.
    pub fn poke(&mut self, line_addr: u64, offset: u32, byte: u8) -> bool {
        match self.find(line_addr) {
            Some(i) => {
                self.lines[i].data[offset as usize] = byte;
                true
            }
            None => false,
        }
    }

    /// Installs `data` as the line for `line_addr`, evicting the set's LRU
    /// victim if necessary.
    ///
    /// Returns the dirty victim (to be written back by the caller), if any.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line long.
    pub fn fill(&mut self, line_addr: u64, data: &[u8], dirty: bool) -> Option<Writeback> {
        assert_eq!(
            data.len(),
            self.cfg.line_bytes as usize,
            "fill size mismatch"
        );
        let set = self.set_of(line_addr);
        let tag = self.tag_of(line_addr);
        // Refill of a resident line overwrites it in place (never create a
        // duplicate way for the same address, and never write the stale
        // copy back).  Otherwise prefer an invalid way, then evict LRU.
        let resident = self.find(line_addr);
        let victim = resident.unwrap_or_else(|| {
            self.set_range(set)
                .min_by_key(|&i| (self.live(i), self.lines[i].lru))
                .expect("sets are non-empty")
        });
        let evicted = if resident.is_some() {
            None
        } else {
            let line = &self.lines[victim];
            if self.live(victim) && line.dirty {
                // Writing a tainted victim back carries flipped bits into
                // the next memory level — they become observable there.
                if line.tainted {
                    self.escaped.set(true);
                }
                self.stats.writebacks += 1;
                Some(Writeback {
                    line_addr: self.line_addr_of(set, line.tag),
                    data: line.data.clone(),
                })
            } else {
                None
            }
        };
        // The victim's bytes are replaced wholesale; a clean tainted victim
        // is silently dropped, which matches the golden run's state.
        self.clear_taint(victim);
        self.tick += 1;
        let epoch = self.epoch;
        let line = &mut self.lines[victim];
        if line.dirty != dirty {
            if dirty {
                self.dirty_lines += 1;
            } else {
                self.dirty_lines -= 1;
            }
        }
        line.valid = true;
        line.dirty = dirty;
        line.tag = tag;
        line.lru = self.tick;
        line.epoch = epoch;
        // First fill of this way allocates the data array; later fills
        // reuse the buffer.
        line.data.clear();
        line.data.extend_from_slice(data);
        self.stats.fills += 1;
        evicted
    }

    /// Drops the line for `line_addr` if resident (no writeback — used for
    /// the L1 evict-on-write policy on global stores, where the line is
    /// never dirty).
    pub fn invalidate(&mut self, line_addr: u64) {
        if let Some(i) = self.find(line_addr) {
            self.lines[i].valid = false;
            if self.lines[i].dirty {
                self.lines[i].dirty = false;
                self.dirty_lines -= 1;
            }
            self.clear_taint(i);
        }
    }

    /// Invalidates every line, returning dirty victims for writeback.
    /// Models the L1 flush at kernel boundaries.
    ///
    /// When no line is dirty and no line is tainted — the common case for
    /// the write-evict L1s, which are flushed after *every* kernel launch —
    /// the flush is O(1): bumping the epoch makes every resident line stale
    /// without walking the array.
    pub fn flush(&mut self) -> Vec<Writeback> {
        if self.dirty_lines == 0 && self.taints == 0 {
            self.epoch += 1;
            return Vec::new();
        }
        let mut out = Vec::new();
        let (sets, ways) = (u64::from(self.cfg.sets), self.cfg.ways as usize);
        let epoch = self.epoch;
        for i in 0..self.lines.len() {
            let set = (i / ways) as u64;
            let line = &mut self.lines[i];
            if line.valid && line.epoch == epoch && line.dirty {
                if line.tainted {
                    self.escaped.set(true);
                }
                out.push(Writeback {
                    line_addr: line.tag * sets + set,
                    data: line.data.clone(),
                });
                self.stats.writebacks += 1;
            }
            line.valid = false;
            line.dirty = false;
            if line.tainted {
                line.tainted = false;
                self.taints -= 1;
            }
        }
        self.dirty_lines = 0;
        out
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> u32 {
        (0..self.lines.len()).filter(|&i| self.live(i)).count() as u32
    }

    /// Total injectable bits: every line contributes its data bits plus
    /// [`TAG_BITS`] modelled tag bits.
    pub fn total_bits(&self) -> u64 {
        self.cfg.total_bits()
    }

    /// Flips one bit of the injectable bit space.
    ///
    /// The space is laid out line-major: bit `b` belongs to line
    /// `b / bits_per_line`; within a line the first [`TAG_BITS`] bits are
    /// the tag and the rest the data bytes (LSB-first within each byte).
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the injectable space.
    pub fn flip_bit(&mut self, bit: u64) -> FlipOutcome {
        let bpl = self.cfg.bits_per_line();
        assert!(bit < self.total_bits(), "bit {bit} out of cache space");
        let line_idx = (bit / bpl) as usize;
        let within = bit % bpl;
        if !self.live(line_idx) {
            return FlipOutcome::InvalidLine;
        }
        let line = &mut self.lines[line_idx];
        if within < u64::from(TAG_BITS) {
            line.tag ^= 1 << within;
            // A corrupted tag changes hit/miss behaviour (and thus timing)
            // from the very next lookup — it is immediately observable.
            self.escaped.set(true);
            FlipOutcome::Tag
        } else {
            let data_bit = within - u64::from(TAG_BITS);
            let byte = (data_bit / 8) as usize;
            line.data[byte] ^= 1 << (data_bit % 8);
            if !line.tainted {
                line.tainted = true;
                self.taints += 1;
            }
            FlipOutcome::Data
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets × 2 ways × 8-byte lines.
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 8,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let mut buf = [0u8; 4];
        assert!(!c.read(5, 0, &mut buf));
        assert!(c.fill(5, &[1, 2, 3, 4, 5, 6, 7, 8], false).is_none());
        assert!(c.read(5, 2, &mut buf));
        assert_eq!(buf, [3, 4, 5, 6]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_prefers_invalid_then_oldest() {
        let mut c = small();
        // Line addresses 0, 2, 4 all map to set 0 (even line addrs).
        c.fill(0, &[0; 8], false);
        c.fill(2, &[0; 8], false);
        let mut buf = [0u8; 1];
        c.read(0, 0, &mut buf); // touch 0 so 2 is LRU
        c.fill(4, &[0; 8], false); // evicts 2
        assert!(c.probe(0));
        assert!(!c.probe(2));
        assert!(c.probe(4));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        c.fill(0, &[9; 8], true);
        c.fill(2, &[0; 8], false);
        let wb = c.fill(4, &[0; 8], false).expect("dirty victim");
        assert_eq!(wb.line_addr, 0);
        assert_eq!(wb.data, vec![9; 8]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(1, &[0; 8], false);
        assert!(c.write(1, 4, &[7, 7], true));
        let mut buf = [0u8; 2];
        c.read(1, 4, &mut buf);
        assert_eq!(buf, [7, 7]);
        // Evict it: set 1 holds odd line addrs 1, 3, 5.
        c.fill(3, &[0; 8], false);
        let wb = c.fill(5, &[0; 8], false).expect("dirty after write");
        assert_eq!(wb.line_addr, 1);
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let mut c = small();
        c.fill(0, &[1; 8], true);
        c.invalidate(0);
        assert!(!c.probe(0));
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn flip_data_bit_corrupts_read() {
        let mut c = small();
        c.fill(0, &[0; 8], false);
        // Line 0 occupies ways 0..2 of set 0; the fill above used way 0 =
        // flat line index 0.  Flip the first data bit (after the tag).
        let out = c.flip_bit(u64::from(TAG_BITS));
        assert_eq!(out, FlipOutcome::Data);
        let mut buf = [0u8; 1];
        assert!(c.read(0, 0, &mut buf));
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn flip_tag_bit_aliases_line() {
        let mut c = small();
        c.fill(0, &[3; 8], false);
        assert_eq!(c.flip_bit(0), FlipOutcome::Tag); // tag 0 -> 1
        assert!(!c.probe(0), "old address must miss after tag flip");
        // tag 1, set 0 => line_addr = 1 * sets + 0 = 2
        assert!(c.probe(2), "line must alias the new address");
    }

    #[test]
    fn flip_invalid_line_is_inert() {
        let mut c = small();
        assert_eq!(c.flip_bit(0), FlipOutcome::InvalidLine);
    }

    #[test]
    #[should_panic(expected = "out of cache space")]
    fn flip_out_of_space_panics() {
        let mut c = small();
        let total = c.total_bits();
        c.flip_bit(total);
    }

    #[test]
    fn total_bits_accounts_for_tags() {
        let c = small();
        assert_eq!(c.total_bits(), 4 * (64 + u64::from(TAG_BITS)));
    }

    #[test]
    fn valid_line_count() {
        let mut c = small();
        assert_eq!(c.valid_lines(), 0);
        c.fill(0, &[0; 8], false);
        c.fill(1, &[0; 8], false);
        assert_eq!(c.valid_lines(), 2);
    }

    #[test]
    fn data_flip_taints_until_observed() {
        let mut c = small();
        c.fill(0, &[0; 8], false);
        assert_eq!(c.flip_bit(u64::from(TAG_BITS)), FlipOutcome::Data);
        assert_eq!(c.taint_count(), 1);
        assert!(!c.taint_escaped());
        let mut buf = [0u8; 1];
        c.read(0, 0, &mut buf);
        assert!(c.taint_escaped(), "reading tainted data must escape");
    }

    #[test]
    fn tag_flip_escapes_immediately() {
        let mut c = small();
        c.fill(0, &[0; 8], false);
        assert_eq!(c.flip_bit(0), FlipOutcome::Tag);
        assert!(c.taint_escaped());
        assert_eq!(c.taint_count(), 0);
    }

    #[test]
    fn clean_eviction_clears_taint_silently() {
        let mut c = small();
        c.fill(0, &[0; 8], false);
        c.flip_bit(u64::from(TAG_BITS));
        c.fill(2, &[0; 8], false);
        c.fill(4, &[0; 8], false); // evicts the clean, tainted line 0
        assert!(!c.probe(0));
        assert_eq!(c.taint_count(), 0);
        assert!(
            !c.taint_escaped(),
            "an unread clean victim matches golden state"
        );
    }

    #[test]
    fn dirty_tainted_eviction_escapes() {
        let mut c = small();
        c.fill(0, &[0; 8], true);
        c.flip_bit(u64::from(TAG_BITS));
        c.fill(2, &[0; 8], false);
        let wb = c.fill(4, &[0; 8], false);
        assert!(wb.is_some(), "dirty victim written back");
        assert!(
            c.taint_escaped(),
            "tainted writeback reaches the next level"
        );
    }

    #[test]
    fn invalidate_and_full_overwrite_clear_taint() {
        let mut c = small();
        c.fill(0, &[0; 8], false);
        c.flip_bit(u64::from(TAG_BITS));
        c.write(0, 0, &[7; 8], false); // full-line overwrite erases the flip
        assert_eq!(c.taint_count(), 0);
        c.flip_bit(u64::from(TAG_BITS));
        assert_eq!(c.taint_count(), 1);
        c.invalidate(0);
        assert_eq!(c.taint_count(), 0);
        assert!(!c.taint_escaped());
    }
}
