//! The GPU memory system: DRAM backing store, banked L2, and per-SM L1
//! data / texture caches.

mod cache;
mod system;

pub use cache::{Cache, CacheStats, FlipOutcome, Writeback};
pub use system::{AccessKind, MemSystem, GLOBAL_BASE, LOCAL_BASE};
