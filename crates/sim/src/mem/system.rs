//! The chip-level memory system.
//!
//! Functional data and timing are resolved together, against the *same*
//! arrays the fault injector mutates:
//!
//! * DRAM is the backing store for the global and per-thread local segments.
//! * The L2 is a banked write-back, write-allocate cache over DRAM;
//!   following the paper's setup it services **all** memory requests
//!   (§II.B: "For our analysis L2 cache is configured to service all
//!   memory requests").
//! * Each SM owns a private L1 data cache (global loads allocate; global
//!   stores are write-through + evict-on-write, no-allocate; local
//!   accesses are write-back, write-allocate — Table II) and a private
//!   read-only L1 texture cache.
//!
//! Timing uses per-bank and per-channel service queues, so cache behaviour
//! (and therefore injected tag faults) perturbs execution time — the source
//! of the paper's **Performance** fault-effect class.

use super::cache::{Cache, CacheStats, EscapeLatch, FlipOutcome};
use crate::config::{GpuConfig, LatencyConfig};
use crate::error::{LaunchError, Trap};

/// First byte address of the global (device-malloc) segment.
pub const GLOBAL_BASE: u32 = 0x1000;

/// First byte address of the per-thread local-memory segment.
pub const LOCAL_BASE: u32 = 0x8000_0000;

/// Hard cap on simulated global allocations (keeps host memory bounded).
const GLOBAL_CAP: u32 = 256 * 1024 * 1024;

/// Hard cap on the local-memory backing segment.
const LOCAL_CAP: u64 = 256 * 1024 * 1024;

/// The kind of device-memory access, which selects the L1 path and write
/// policy (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Global load/store: L1D allocate-on-read, evict-on-write.
    Global,
    /// Local load/store: L1D write-back, write-allocate.
    Local,
    /// Texture load: read-only through the L1 texture cache.
    Texture,
}

/// The chip-level memory system: backing segments, banked L2, per-SM L1s,
/// and the timing queues.
///
/// `Clone` is the checkpoint mechanism: every field is cloned wholesale so
/// a snapshot can never silently omit state (see `crate::snapshot`).
#[derive(Debug, Clone)]
pub struct MemSystem {
    line_bytes: u32,
    lat: LatencyConfig,
    num_banks: u32,
    global: Vec<u8>,
    local: Vec<u8>,
    constant: Vec<u8>,
    l1d: Vec<Option<Cache>>,
    l1t: Vec<Cache>,
    l1c: Vec<Cache>,
    l2: Vec<Cache>,
    bank_busy: Vec<u64>,
    dram_busy: Vec<u64>,
    // Fault-lifetime tracking for the local-memory backing segment: bit
    // indices flipped by injection but not yet read back through a fill.
    local_taints: Vec<u64>,
    // Latched when tainted local-backing bytes are read (fills are `&self`
    // on some paths, hence the latch).
    escaped: EscapeLatch,
}

/// Capacity of the constant bank (CUDA's `__constant__` space is 64 KB).
const CONST_CAP: usize = 64 * 1024;

impl MemSystem {
    /// Builds the memory system for a GPU configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's cache line sizes disagree or the L2
    /// does not divide evenly into its banks.
    pub fn new(cfg: &GpuConfig) -> Self {
        let line_bytes = cfg.l2.line_bytes;
        if let Some(l1d) = cfg.l1d {
            assert_eq!(l1d.line_bytes, line_bytes, "L1D line size must match L2");
        }
        assert_eq!(
            cfg.l1t.line_bytes, line_bytes,
            "L1T line size must match L2"
        );
        assert_eq!(
            cfg.l2.sets % cfg.num_l2_banks,
            0,
            "L2 sets must divide evenly into banks"
        );
        let bank_cfg = crate::config::CacheConfig {
            sets: cfg.l2.sets / cfg.num_l2_banks,
            ways: cfg.l2.ways,
            line_bytes,
        };
        MemSystem {
            line_bytes,
            lat: cfg.lat,
            num_banks: cfg.num_l2_banks,
            global: Vec::new(),
            local: Vec::new(),
            constant: Vec::new(),
            l1d: (0..cfg.num_sms).map(|_| cfg.l1d.map(Cache::new)).collect(),
            l1t: (0..cfg.num_sms).map(|_| Cache::new(cfg.l1t)).collect(),
            l1c: (0..cfg.num_sms).map(|_| Cache::new(cfg.l1c)).collect(),
            l2: (0..cfg.num_l2_banks)
                .map(|_| Cache::new(bank_cfg))
                .collect(),
            bank_busy: vec![0; cfg.num_l2_banks as usize],
            dram_busy: vec![0; cfg.num_l2_banks as usize],
            local_taints: Vec::new(),
            escaped: EscapeLatch::new(false),
        }
    }

    /// Approximate heap footprint of the backing segments, caches and
    /// timing queues — what one checkpoint of this memory system costs.
    pub fn resident_bytes(&self) -> usize {
        let caches: usize = self
            .l1d
            .iter()
            .flatten()
            .chain(self.l1t.iter())
            .chain(self.l1c.iter())
            .chain(self.l2.iter())
            .map(Cache::resident_bytes)
            .sum();
        self.global.len()
            + self.local.len()
            + self.constant.len()
            + caches
            + (self.bank_busy.len() + self.dram_busy.len() + self.local_taints.len()) * 8
    }

    /// Unobserved fault-flipped state across the whole memory system:
    /// tainted cache lines plus flipped local-backing bits.
    pub fn taint_count(&self) -> u64 {
        let caches = self
            .l1d
            .iter()
            .flatten()
            .chain(self.l1t.iter())
            .chain(self.l1c.iter())
            .chain(self.l2.iter())
            .map(|c| u64::from(c.taint_count()))
            .sum::<u64>();
        caches + self.local_taints.len() as u64
    }

    /// Whether any fault-flipped memory state has become observable
    /// (read, written back to a lower level, or a tag corrupted).
    pub fn taint_escaped(&self) -> bool {
        self.escaped.get()
            || self
                .l1d
                .iter()
                .flatten()
                .chain(self.l1t.iter())
                .chain(self.l1c.iter())
                .chain(self.l2.iter())
                .any(Cache::taint_escaped)
    }

    /// Escapes if the local-backing byte range `[start, start+len)` holds a
    /// tainted bit (it is about to be observed by a fill).
    fn observe_local_range(&self, start: usize, len: usize) {
        if !self.local_taints.is_empty()
            && self
                .local_taints
                .iter()
                .any(|&b| ((b / 8) as usize) >= start && ((b / 8) as usize) < start + len)
        {
            self.escaped.set(true);
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    // ------------------------------------------------------------------
    // Allocation and host access
    // ------------------------------------------------------------------

    /// Allocates `bytes` of zeroed global memory, 1-line aligned.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::OutOfMemory`] past the simulated capacity.
    pub fn alloc(&mut self, bytes: u32) -> Result<u32, LaunchError> {
        let align = self.line_bytes as usize;
        let padded = (bytes as usize).div_ceil(align) * align;
        if self.global.len() + padded > GLOBAL_CAP as usize {
            return Err(LaunchError::OutOfMemory);
        }
        let ptr = GLOBAL_BASE + self.global.len() as u32;
        self.global.resize(self.global.len() + padded, 0);
        Ok(ptr)
    }

    /// (Re)creates the local-memory backing segment for a launch of
    /// `total_threads` threads with `lmem_bytes` of local memory each.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::OutOfMemory`] past the simulated capacity.
    pub fn reset_local(&mut self, total_threads: u64, lmem_bytes: u32) -> Result<(), LaunchError> {
        let need = total_threads * u64::from(lmem_bytes);
        let padded = need.div_ceil(u64::from(self.line_bytes)) * u64::from(self.line_bytes);
        if padded > LOCAL_CAP {
            return Err(LaunchError::OutOfMemory);
        }
        self.local.clear();
        self.local.resize(padded as usize, 0);
        // The reset destroys any flipped-but-unread local bits, exactly as it
        // wipes the golden contents: the divergence is gone, not observed.
        self.local_taints.clear();
        Ok(())
    }

    /// Copies device memory to the host, coherently through the L2.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::BadDevicePointer`] when the range is not
    /// mapped in the global segment.
    pub fn host_read(&self, addr: u32, out: &mut [u8]) -> Result<(), LaunchError> {
        self.check_host_range(addr, out.len())?;
        for (i, byte) in out.iter_mut().enumerate() {
            let a = addr + i as u32;
            *byte = self.coherent_byte(a);
        }
        Ok(())
    }

    /// Copies host memory to the device, updating any resident L2 copy in
    /// place so the hierarchy stays coherent.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::BadDevicePointer`] when the range is not
    /// mapped in the global segment.
    pub fn host_write(&mut self, addr: u32, data: &[u8]) -> Result<(), LaunchError> {
        self.check_host_range(addr, data.len())?;
        for (i, &byte) in data.iter().enumerate() {
            let a = addr + i as u32;
            self.global[(a - GLOBAL_BASE) as usize] = byte;
            let la = u64::from(a) / u64::from(self.line_bytes);
            let off = a % self.line_bytes;
            let (bank, local_la) = self.bank_of(la);
            // Preserve the line's dirty state; only refresh the byte.
            self.l2[bank].poke(local_la, off, byte);
        }
        Ok(())
    }

    /// Writes into the constant bank at `offset`, growing it (up to the
    /// 64 KB CUDA constant-space limit).
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::OutOfMemory`] past the constant-bank
    /// capacity.
    pub fn const_write(&mut self, offset: u32, data: &[u8]) -> Result<(), LaunchError> {
        let end = offset as usize + data.len();
        if end > CONST_CAP {
            return Err(LaunchError::OutOfMemory);
        }
        if end > self.constant.len() {
            self.constant.resize(end, 0);
        }
        self.constant[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    /// Bytes currently written to the constant bank.
    pub fn const_len(&self) -> usize {
        self.constant.len()
    }

    /// Line size of the L1 constant cache, bytes.
    pub fn const_line_bytes(&self) -> u32 {
        self.l1c[0].config().line_bytes
    }

    /// Functionally loads a 4-byte word from the constant space through
    /// the SM's L1 constant cache.  Addresses are 0-based into the bank;
    /// reads past the written extent return zeros.
    ///
    /// # Errors
    ///
    /// Traps on misaligned addresses.
    pub fn load4_const(&mut self, sm: usize, addr: u32) -> Result<u32, Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Misaligned { addr });
        }
        let line_bytes = self.l1c[sm].config().line_bytes;
        let la = u64::from(addr) / u64::from(line_bytes);
        let off = addr % line_bytes;
        let mut buf = [0u8; 4];
        if !self.l1c[sm].read(la, off, &mut buf) {
            let start = (la * u64::from(line_bytes)) as usize;
            let mut data = vec![0u8; line_bytes as usize];
            for (i, b) in data.iter_mut().enumerate() {
                *b = self.constant.get(start + i).copied().unwrap_or(0);
            }
            self.l1c[sm].fill(la, &data, false);
            self.l1c[sm].read(la, off, &mut buf);
        }
        Ok(u32::from_le_bytes(buf))
    }

    /// Prices a constant-cache transaction (the constant path does not
    /// cross the interconnect in this model — see DESIGN.md).
    pub fn const_line_latency(&mut self, sm: usize, line_addr: u64, issue: u64) -> u64 {
        if self.l1c[sm].probe(line_addr) {
            issue + u64::from(self.lat.l1) / 2
        } else {
            issue + u64::from(self.lat.l1) + u64::from(self.lat.l2)
        }
    }

    fn check_host_range(&self, addr: u32, len: usize) -> Result<(), LaunchError> {
        let end = u64::from(addr) + len as u64;
        if addr < GLOBAL_BASE || end > u64::from(GLOBAL_BASE) + self.global.len() as u64 {
            return Err(LaunchError::BadDevicePointer);
        }
        Ok(())
    }

    fn coherent_byte(&self, addr: u32) -> u8 {
        let la = u64::from(addr) / u64::from(self.line_bytes);
        let off = addr % self.line_bytes;
        let (bank, local_la) = self.bank_of(la);
        // Read through the L2 when the line is resident (it may hold newer
        // — or fault-corrupted — data than the backing store).
        match self.l2[bank].peek(local_la, off) {
            Some(b) => b,
            None => self.global[(addr - GLOBAL_BASE) as usize],
        }
    }

    /// Bytes currently allocated in the global segment.
    pub fn global_len(&self) -> usize {
        self.global.len()
    }

    /// A coherent byte-for-byte image of the whole allocated global
    /// segment, read through the L2 (dirty cached lines included) without
    /// perturbing cache statistics.  This is the memory half of the
    /// architectural state the differential oracle diffs.
    pub fn global_image(&self) -> Vec<u8> {
        (0..self.global.len() as u32)
            .map(|i| self.coherent_byte(GLOBAL_BASE + i))
            .collect()
    }

    /// Peeks 4 bytes coherently (through L2) without perturbing cache
    /// statistics — used by golden-output capture.
    pub fn peek4(&self, addr: u32) -> Option<u32> {
        self.check_host_range(addr, 4).ok()?;
        let mut b = [0u8; 4];
        for (i, out) in b.iter_mut().enumerate() {
            *out = self.coherent_byte(addr + i as u32);
        }
        Some(u32::from_le_bytes(b))
    }

    // ------------------------------------------------------------------
    // Segment resolution
    // ------------------------------------------------------------------

    /// Validates a device access.
    ///
    /// Device memory is **demand-paged** like GPGPU-Sim's functional
    /// memory: accesses beyond the allocated ranges do not fault — they
    /// read zeros (and stores to unbacked lines vanish on eviction).  This
    /// is what keeps the paper's Crash class near zero (§VI.B): a
    /// fault-corrupted pointer usually produces an SDC, not an abort.
    /// Only two conditions trap, matching the simulator aborts GPGPU-Sim
    /// does have: misaligned accesses, and the null page (`< GLOBAL_BASE`).
    fn check_access(&self, addr: u32) -> Result<(), Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Misaligned { addr });
        }
        if addr < GLOBAL_BASE {
            return Err(Trap::InvalidAddress { addr });
        }
        Ok(())
    }

    /// Reads one line from the DRAM backing; unbacked regions read as
    /// zeros (demand paging), addresses outside the 32-bit space as `None`.
    fn dram_line(&self, line_addr: u64) -> Option<Vec<u8>> {
        let lb = u64::from(self.line_bytes);
        let start = line_addr.checked_mul(lb)?;
        if start > u64::from(u32::MAX) {
            return None;
        }
        let start = start as u32;
        let zeros = vec![0u8; self.line_bytes as usize];
        if start >= LOCAL_BASE {
            let o = (start - LOCAL_BASE) as usize;
            let end = o + self.line_bytes as usize;
            Some(if end <= self.local.len() {
                self.observe_local_range(o, self.line_bytes as usize);
                self.local[o..end].to_vec()
            } else {
                zeros
            })
        } else if start >= GLOBAL_BASE {
            let o = (start - GLOBAL_BASE) as usize;
            let end = o + self.line_bytes as usize;
            Some(if end <= self.global.len() {
                self.global[o..end].to_vec()
            } else {
                zeros
            })
        } else {
            Some(zeros)
        }
    }

    /// Writes one line to the DRAM backing; unmapped victims (e.g. from a
    /// fault-corrupted tag) are dropped silently, like a stray DMA landing
    /// outside the simulated allocations.
    fn dram_write_line(&mut self, line_addr: u64, data: &[u8]) {
        let lb = u64::from(self.line_bytes);
        let Some(start) = line_addr.checked_mul(lb) else {
            return;
        };
        if start > u64::from(u32::MAX) {
            return;
        }
        let start = start as u32;
        if start >= LOCAL_BASE {
            let o = (start - LOCAL_BASE) as usize;
            if o + data.len() <= self.local.len() {
                self.local[o..o + data.len()].copy_from_slice(data);
                self.local_taints
                    .retain(|&b| ((b / 8) as usize) < o || ((b / 8) as usize) >= o + data.len());
            }
        } else if start >= GLOBAL_BASE {
            let o = (start - GLOBAL_BASE) as usize;
            if o + data.len() <= self.global.len() {
                self.global[o..o + data.len()].copy_from_slice(data);
            }
        }
    }

    fn bank_of(&self, line_addr: u64) -> (usize, u64) {
        (
            (line_addr % u64::from(self.num_banks)) as usize,
            line_addr / u64::from(self.num_banks),
        )
    }

    // ------------------------------------------------------------------
    // L2 operations
    // ------------------------------------------------------------------

    /// Reads a full line through the L2 (filling from DRAM on a miss).
    fn l2_read_line(&mut self, line_addr: u64) -> Result<Vec<u8>, Trap> {
        let (bank, local_la) = self.bank_of(line_addr);
        let mut buf = vec![0u8; self.line_bytes as usize];
        if self.l2[bank].read(local_la, 0, &mut buf) {
            return Ok(buf);
        }
        let data = self.dram_line(line_addr).ok_or(Trap::InvalidAddress {
            addr: (line_addr * u64::from(self.line_bytes)).min(u64::from(u32::MAX)) as u32,
        })?;
        if let Some(wb) = self.l2[bank].fill(local_la, &data, false) {
            let victim_la = wb.line_addr * u64::from(self.num_banks) + bank as u64;
            self.dram_write_line(victim_la, &wb.data);
        }
        Ok(data)
    }

    /// Writes bytes through the L2 (write-allocate, write-back).
    fn l2_write(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Trap> {
        let la = u64::from(addr) / u64::from(self.line_bytes);
        let off = addr % self.line_bytes;
        let (bank, local_la) = self.bank_of(la);
        if self.l2[bank].write(local_la, off, bytes, true) {
            return Ok(());
        }
        let mut data = self.dram_line(la).ok_or(Trap::InvalidAddress { addr })?;
        data[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        if let Some(wb) = self.l2[bank].fill(la / u64::from(self.num_banks), &data, true) {
            let victim_la = wb.line_addr * u64::from(self.num_banks) + bank as u64;
            self.dram_write_line(victim_la, &wb.data);
        }
        Ok(())
    }

    /// Accepts a (possibly fault-corrupted) dirty line evicted from an L1;
    /// unmapped targets are dropped.
    fn l2_accept_writeback(&mut self, line_addr: u64, data: &[u8]) {
        let (bank, local_la) = self.bank_of(line_addr);
        if self.l2[bank].write(local_la, 0, data, true) {
            return;
        }
        if self.dram_line(line_addr).is_some() {
            if let Some(wb) = self.l2[bank].fill(local_la, data, true) {
                let victim_la = wb.line_addr * u64::from(self.num_banks) + bank as u64;
                self.dram_write_line(victim_la, &wb.data);
            }
        }
        // Unmapped (corrupted) target: dropped.
    }

    // ------------------------------------------------------------------
    // Device access: functional
    // ------------------------------------------------------------------

    /// Functionally loads a 4-byte word, applying fills and policies.
    ///
    /// # Errors
    ///
    /// Traps on misaligned or unmapped addresses.
    pub fn load4(&mut self, sm: usize, kind: AccessKind, addr: u32) -> Result<u32, Trap> {
        self.check_access(addr)?;
        let la = u64::from(addr) / u64::from(self.line_bytes);
        let off = addr % self.line_bytes;
        let mut buf = [0u8; 4];
        match kind {
            AccessKind::Global | AccessKind::Local => {
                if self.l1d[sm].is_some() {
                    let hit = self.l1d[sm]
                        .as_mut()
                        .expect("checked")
                        .read(la, off, &mut buf);
                    if !hit {
                        let data = self.l2_read_line(la)?;
                        let l1 = self.l1d[sm].as_mut().expect("checked");
                        let wb = l1.fill(la, &data, false);
                        l1.read(la, off, &mut buf);
                        if let Some(wb) = wb {
                            self.l2_accept_writeback(wb.line_addr, &wb.data);
                        }
                    }
                } else {
                    let data = self.l2_read_line(la)?;
                    buf.copy_from_slice(&data[off as usize..off as usize + 4]);
                }
            }
            AccessKind::Texture => {
                let hit = self.l1t[sm].read(la, off, &mut buf);
                if !hit {
                    let data = self.l2_read_line(la)?;
                    self.l1t[sm].fill(la, &data, false);
                    self.l1t[sm].read(la, off, &mut buf);
                }
            }
        }
        Ok(u32::from_le_bytes(buf))
    }

    /// Functionally stores a 4-byte word, applying write policies.
    ///
    /// # Errors
    ///
    /// Traps on misaligned or unmapped addresses, and on texture stores
    /// (the texture path is read-only).
    pub fn store4(
        &mut self,
        sm: usize,
        kind: AccessKind,
        addr: u32,
        value: u32,
    ) -> Result<(), Trap> {
        self.check_access(addr)?;
        let la = u64::from(addr) / u64::from(self.line_bytes);
        let off = addr % self.line_bytes;
        let bytes = value.to_le_bytes();
        match kind {
            AccessKind::Global => {
                // Write-through to L2; evict-on-write in L1 (global lines in
                // L1 are never dirty, so a plain invalidate suffices).
                self.l2_write(addr, &bytes)?;
                if let Some(l1) = self.l1d[sm].as_mut() {
                    l1.invalidate(la);
                }
            }
            AccessKind::Local => {
                if self.l1d[sm].is_some() {
                    let hit = self.l1d[sm]
                        .as_mut()
                        .expect("checked")
                        .write(la, off, &bytes, true);
                    if !hit {
                        // Write-allocate: fetch, fill, then write.
                        let data = self.l2_read_line(la)?;
                        let l1 = self.l1d[sm].as_mut().expect("checked");
                        let wb = l1.fill(la, &data, false);
                        l1.write(la, off, &bytes, true);
                        if let Some(wb) = wb {
                            self.l2_accept_writeback(wb.line_addr, &wb.data);
                        }
                    }
                } else {
                    self.l2_write(addr, &bytes)?;
                }
            }
            AccessKind::Texture => {
                return Err(Trap::InvalidAddress { addr });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Device access: timing
    // ------------------------------------------------------------------

    /// Prices one line-sized transaction issued at `issue`, reserving bank
    /// and channel slots, and returns its completion cycle.
    ///
    /// Must be called *before* the functional operations of the same
    /// instruction so hit/miss reflects the pre-access state.
    pub fn line_latency(
        &mut self,
        sm: usize,
        kind: AccessKind,
        line_addr: u64,
        write: bool,
        issue: u64,
    ) -> u64 {
        let l1_hit = match kind {
            AccessKind::Global | AccessKind::Local => {
                self.l1d[sm].as_ref().map(|c| c.probe(line_addr))
            }
            AccessKind::Texture => Some(self.l1t[sm].probe(line_addr)),
        };
        let global_store = write && kind == AccessKind::Global;
        // L1 hit (and not a write-through global store): done at L1 latency.
        if l1_hit == Some(true) && !global_store {
            return issue + u64::from(self.lat.l1);
        }
        // Otherwise the transaction crosses the interconnect to a partition.
        let (bank, local_la) = self.bank_of(line_addr);
        let l1_lat = if l1_hit.is_some() { self.lat.l1 } else { 0 };
        let arrive = issue + u64::from(l1_lat) + u64::from(self.lat.icnt);
        let start = arrive.max(self.bank_busy[bank]);
        self.bank_busy[bank] = start + u64::from(self.lat.l2_service);
        let l2_hit = self.l2[bank].probe(local_la);
        let l2_done = start + u64::from(self.lat.l2);
        let done = if l2_hit {
            l2_done
        } else {
            let dstart = l2_done.max(self.dram_busy[bank]);
            self.dram_busy[bank] = dstart + u64::from(self.lat.dram_service);
            dstart + u64::from(self.lat.dram)
        };
        if global_store {
            // Posted store: the warp only pays a small issue cost, but the
            // bank/channel reservations above still create back-pressure.
            return issue + u64::from(self.lat.alu);
        }
        done + u64::from(self.lat.icnt)
    }

    // ------------------------------------------------------------------
    // Kernel-boundary maintenance
    // ------------------------------------------------------------------

    /// Flushes and invalidates every L1 (data and texture), writing dirty
    /// local lines back to the L2.  Models the L1 invalidation real GPUs
    /// perform between kernel launches.
    pub fn flush_l1s(&mut self) {
        for sm in 0..self.l1d.len() {
            if let Some(l1) = self.l1d[sm].as_mut() {
                for wb in l1.flush() {
                    self.l2_accept_writeback(wb.line_addr, &wb.data);
                }
            }
            self.l1t[sm].flush(); // read-only: victims are never dirty
            self.l1c[sm].flush();
        }
    }

    // ------------------------------------------------------------------
    // Fault-injection surface
    // ------------------------------------------------------------------

    /// Injectable bits of one SM's L1 data cache, or `None` when the card
    /// has no L1D.
    pub fn l1d_bits(&self) -> Option<u64> {
        self.l1d
            .first()
            .and_then(|c| c.as_ref())
            .map(Cache::total_bits)
    }

    /// Injectable bits of one SM's L1 texture cache.
    pub fn l1t_bits(&self) -> u64 {
        self.l1t[0].total_bits()
    }

    /// Injectable bits of one SM's L1 constant cache (an extension: the
    /// paper lists the constant cache as future work, §IV.C.1).
    pub fn l1c_bits(&self) -> u64 {
        self.l1c[0].total_bits()
    }

    /// Injectable bits of the whole L2 (flat across banks: the first
    /// `lines_per_bank` lines belong to bank 0, and so on — §IV.B.5).
    pub fn l2_bits(&self) -> u64 {
        u64::from(self.num_banks) * self.l2[0].total_bits()
    }

    /// Flips a bit in one SM's L1 data cache.
    ///
    /// Returns `None` when the card has no L1D.
    pub fn flip_l1d_bit(&mut self, sm: usize, bit: u64) -> Option<FlipOutcome> {
        self.l1d[sm].as_mut().map(|c| c.flip_bit(bit))
    }

    /// Flips a bit in one SM's L1 texture cache.
    pub fn flip_l1t_bit(&mut self, sm: usize, bit: u64) -> FlipOutcome {
        self.l1t[sm].flip_bit(bit)
    }

    /// Flips a bit in one SM's L1 constant cache.
    pub fn flip_l1c_bit(&mut self, sm: usize, bit: u64) -> FlipOutcome {
        self.l1c[sm].flip_bit(bit)
    }

    /// Flips a bit in the flat L2 space.
    ///
    /// # Panics
    ///
    /// Panics if `bit` exceeds [`MemSystem::l2_bits`].
    pub fn flip_l2_bit(&mut self, bit: u64) -> FlipOutcome {
        let per_bank = self.l2[0].total_bits();
        let bank = (bit / per_bank) as usize;
        assert!(bank < self.l2.len(), "L2 bit out of range");
        self.l2[bank].flip_bit(bit % per_bank)
    }

    /// Flips a bit in the local-memory backing segment.
    ///
    /// Returns `false` when the segment is smaller than the bit index
    /// (no local memory in use).
    pub fn flip_local_bit(&mut self, bit: u64) -> bool {
        let byte = (bit / 8) as usize;
        if byte >= self.local.len() {
            return false;
        }
        self.local[byte] ^= 1 << (bit % 8);
        // A repeated flip restores the golden bit, so taint is a toggle.
        if let Some(i) = self.local_taints.iter().position(|&b| b == bit) {
            self.local_taints.swap_remove(i);
        } else {
            self.local_taints.push(bit);
        }
        true
    }

    /// Size of the local backing segment in bytes.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Aggregate L1D statistics across SMs (cards without L1D report zeros).
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d
            .iter()
            .flatten()
            .fold(CacheStats::default(), |a, c| {
                let s = c.stats();
                CacheStats {
                    hits: a.hits + s.hits,
                    misses: a.misses + s.misses,
                    writebacks: a.writebacks + s.writebacks,
                    fills: a.fills + s.fills,
                }
            })
    }

    /// Aggregate L1T statistics across SMs.
    pub fn l1t_stats(&self) -> CacheStats {
        self.l1t.iter().fold(CacheStats::default(), |a, c| {
            let s = c.stats();
            CacheStats {
                hits: a.hits + s.hits,
                misses: a.misses + s.misses,
                writebacks: a.writebacks + s.writebacks,
                fills: a.fills + s.fills,
            }
        })
    }

    /// Aggregate L2 statistics across banks.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.iter().fold(CacheStats::default(), |a, c| {
            let s = c.stats();
            CacheStats {
                hits: a.hits + s.hits,
                misses: a.misses + s.misses,
                writebacks: a.writebacks + s.writebacks,
                fills: a.fills + s.fills,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn tiny_gpu() -> GpuConfig {
        let mut cfg = GpuConfig::rtx2060();
        cfg.num_sms = 2;
        cfg
    }

    #[test]
    fn alloc_is_line_aligned_and_zeroed() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(100).unwrap();
        let b = m.alloc(4).unwrap();
        assert_eq!(a, GLOBAL_BASE);
        assert_eq!(b % 128, 0);
        assert_eq!(b - a, 128);
        let mut buf = [1u8; 4];
        m.host_read(a, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn host_roundtrip() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(16).unwrap();
        m.host_write(a, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        m.host_read(a, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn host_access_out_of_range_fails() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(4).unwrap();
        // allocation padded to 128; past padding is unmapped
        assert!(m.host_read(a + 128, &mut [0u8; 4]).is_err());
        assert!(m.host_write(0, &[0]).is_err());
    }

    #[test]
    fn load_store_roundtrip_through_caches() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(64).unwrap();
        m.store4(0, AccessKind::Global, a + 8, 0xdead_beef).unwrap();
        assert_eq!(m.load4(0, AccessKind::Global, a + 8).unwrap(), 0xdead_beef);
        // Visible to the host through the L2.
        let mut buf = [0u8; 4];
        m.host_read(a + 8, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf), 0xdead_beef);
    }

    #[test]
    fn store_visible_to_other_sm_via_l2() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(64).unwrap();
        m.store4(0, AccessKind::Global, a, 42).unwrap();
        assert_eq!(m.load4(1, AccessKind::Global, a).unwrap(), 42);
    }

    #[test]
    fn misaligned_and_null_page_trap() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(8).unwrap();
        assert_eq!(
            m.load4(0, AccessKind::Global, a + 1),
            Err(Trap::Misaligned { addr: a + 1 })
        );
        // The null page still faults (corrupted near-zero pointers crash).
        assert!(matches!(
            m.load4(0, AccessKind::Global, 4),
            Err(Trap::InvalidAddress { .. })
        ));
    }

    /// Demand paging: accesses beyond the allocations read zeros and
    /// accept stores (visible while the line stays cached), like
    /// GPGPU-Sim's functional memory — wild pointers rarely crash.
    #[test]
    fn unbacked_addresses_are_demand_paged() {
        let mut m = MemSystem::new(&tiny_gpu());
        let _ = m.alloc(8).unwrap();
        let wild = 0x0100_0000;
        assert_eq!(m.load4(0, AccessKind::Global, wild).unwrap(), 0);
        m.store4(0, AccessKind::Global, wild, 99).unwrap();
        assert_eq!(m.load4(1, AccessKind::Global, wild).unwrap(), 99);
        // Far beyond the local backing too.
        assert_eq!(
            m.load4(0, AccessKind::Global, LOCAL_BASE + 4096).unwrap(),
            0
        );
    }

    #[test]
    fn local_memory_isolated_by_address() {
        let mut m = MemSystem::new(&tiny_gpu());
        m.reset_local(4, 16).unwrap();
        m.store4(0, AccessKind::Local, LOCAL_BASE, 7).unwrap();
        m.store4(0, AccessKind::Local, LOCAL_BASE + 16, 9).unwrap();
        assert_eq!(m.load4(0, AccessKind::Local, LOCAL_BASE).unwrap(), 7);
        assert_eq!(m.load4(0, AccessKind::Local, LOCAL_BASE + 16).unwrap(), 9);
    }

    #[test]
    fn texture_loads_are_read_only() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(16).unwrap();
        m.host_write(a, &5u32.to_le_bytes()).unwrap();
        assert_eq!(m.load4(0, AccessKind::Texture, a).unwrap(), 5);
        assert!(m.store4(0, AccessKind::Texture, a, 1).is_err());
    }

    #[test]
    fn l1_data_flip_corrupts_subsequent_read_hit() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(128).unwrap();
        m.host_write(a, &0u32.to_le_bytes()).unwrap();
        // Warm the L1.
        assert_eq!(m.load4(0, AccessKind::Global, a).unwrap(), 0);
        // Find the filled line's bit for data bit 0: line index is the way
        // chosen inside its set; scan all lines by flipping until a Data
        // outcome occurs on the valid line.
        let bpl = u64::from(128 * 8 + crate::config::TAG_BITS);
        let mut flipped = false;
        for line in 0..m.l1d_bits().unwrap() / bpl {
            let bit = line * bpl + u64::from(crate::config::TAG_BITS);
            if m.flip_l1d_bit(0, bit) == Some(FlipOutcome::Data) {
                flipped = true;
                break;
            }
        }
        assert!(flipped);
        assert_eq!(m.load4(0, AccessKind::Global, a).unwrap(), 1);
        // The other SM's L1 is unaffected.
        assert_eq!(m.load4(1, AccessKind::Global, a).unwrap(), 0);
    }

    #[test]
    fn l2_flip_reaches_host_reads() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(128).unwrap();
        // Pull the line into L2 via a load on a card path without L1 usage:
        // use texture load on SM 0 (fills L2 and L1T).
        assert_eq!(m.load4(0, AccessKind::Texture, a).unwrap(), 0);
        let bpl = u64::from(128 * 8 + crate::config::TAG_BITS);
        let lines = m.l2_bits() / bpl;
        let mut hit = false;
        for line in 0..lines {
            let bit = line * bpl + u64::from(crate::config::TAG_BITS);
            if m.flip_l2_bit(bit) == FlipOutcome::Data {
                hit = true;
                break;
            }
        }
        assert!(hit);
        let mut buf = [0u8; 4];
        m.host_read(a, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf), 1, "corruption visible through L2");
    }

    #[test]
    fn timing_hit_faster_than_miss() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(256).unwrap();
        let la = u64::from(a) / 128;
        let miss = m.line_latency(0, AccessKind::Global, la, false, 0);
        m.load4(0, AccessKind::Global, a).unwrap();
        let hit = m.line_latency(0, AccessKind::Global, la, false, 0);
        assert!(hit < miss, "hit {hit} should beat miss {miss}");
    }

    #[test]
    fn bank_contention_serializes() {
        let mut m = MemSystem::new(&tiny_gpu());
        let a = m.alloc(4096).unwrap();
        let la = u64::from(a) / 128;
        let first = m.line_latency(0, AccessKind::Global, la, false, 0);
        // Same bank (same line): second request queues behind the first.
        let second = m.line_latency(1, AccessKind::Global, la, false, 0);
        assert!(second >= first);
    }

    #[test]
    fn flush_l1s_preserves_local_data() {
        let mut m = MemSystem::new(&tiny_gpu());
        m.reset_local(1, 128).unwrap();
        m.store4(0, AccessKind::Local, LOCAL_BASE, 0x55).unwrap();
        m.flush_l1s();
        // After the flush the dirty line lives in L2; a fresh load sees it.
        assert_eq!(m.load4(0, AccessKind::Local, LOCAL_BASE).unwrap(), 0x55);
    }

    #[test]
    fn titan_has_no_l1d() {
        let m = MemSystem::new(&GpuConfig::gtx_titan());
        assert!(m.l1d_bits().is_none());
        let mut m = m;
        assert!(m.flip_l1d_bit(0, 0).is_none());
    }

    #[test]
    fn local_flip() {
        let mut m = MemSystem::new(&tiny_gpu());
        m.reset_local(1, 16).unwrap();
        assert!(m.flip_local_bit(3));
        assert_eq!(m.load4(0, AccessKind::Local, LOCAL_BASE).unwrap(), 8);
        assert!(!m.flip_local_bit(1 << 40));
    }
}
