//! Seeded random-kernel fuzzer: generates well-formed SASS-lite programs
//! and asserts the cycle-level simulator and the reference interpreter
//! agree on the final architectural state.
//!
//! Generated kernels cover the shapes that stress the simulator's
//! machinery: straight-line ALU blocks (integer, float, SFU, predicates,
//! `SEL`), branchy/divergent `SSY`/`BRA`/`SYNC` diamonds (including
//! nesting), barrier-synchronized shared-memory exchanges, per-thread
//! local-memory traffic, constant-bank loads (including reads past the
//! written extent), and global/texture loads with scattered offsets.
//! All immediates are emitted as raw `0x%08x` bit patterns so integer and
//! float operands round-trip exactly through the assembler.
//!
//! Well-formedness invariants the generator upholds (so any reported
//! divergence is a real simulator/oracle bug, not an artefact):
//!
//! * **termination** — all branches are forward, so every program is a
//!   DAG walk;
//! * **race freedom** — each thread stores only to its own output word,
//!   local slots and shared slot; cross-thread shared reads are fenced by
//!   `BAR` on both sides;
//! * **barrier placement** — `BAR` never appears inside a divergent
//!   region;
//! * **in-bounds accesses** — global/texture offsets stay inside the
//!   input buffer's slack words, shared/local offsets inside `.smem` /
//!   `.lmem` (constant reads may run past the written extent: both sides
//!   define them to read zeros);
//! * **lint cleanliness** — every prologue register is live (the first
//!   working register always loads through the input pointer) and every
//!   working register folds into the stored output word, so the whole
//!   corpus passes `gpufi_isa::analysis::lint_kernel` (enforced by the
//!   `fuzz_lint` integration test and the `gpufi fuzz` post-check).

use crate::config::GpuConfig;
use crate::error::Trap;
use crate::gpu::Gpu;
use crate::grid::LaunchDims;
use gpufi_isa::Module;
use std::fmt::Write as _;

use super::DivergenceReport;

/// Read-only slack words appended to the input buffer, giving loads an
/// offset range that stays in bounds for every thread.
const SLACK_WORDS: u32 = 64;

/// Words written to the constant bank before each launch.
const CONST_WORDS: u32 = 32;

/// Per-thread local memory of every generated kernel, bytes.
const LMEM_BYTES: u32 = 32;

/// Working registers the generated body computes in.
const WORK: [&str; 6] = ["R7", "R8", "R9", "R10", "R11", "R12"];

/// A deterministic splitmix64 generator — the only randomness source of
/// the fuzzer, so a failing seed reproduces exactly.
#[derive(Debug, Clone)]
pub struct FuzzRng(u64);

impl FuzzRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        FuzzRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u32) -> u32 {
        (self.next_u64() % u64::from(n)) as u32
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u32) as usize]
    }

    /// True with probability `pct`/100.
    fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < pct
    }
}

/// Formats a memory operand with a signed offset (`[R4+8]` / `[R4-8]`),
/// matching the assembler's `[Rn+off]` / `[Rn-off]` grammar.
fn mem_ref(base: &str, off: i64) -> String {
    if off < 0 {
        format!("[{base}-{}]", -off)
    } else {
        format!("[{base}+{off}]")
    }
}

/// One generated launch: the kernel source plus the launch geometry and
/// input data needed to run it — a self-contained repro.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The seed this case was generated from.
    pub seed: u64,
    /// SASS-lite source of the single kernel `fuzz`.
    pub source: String,
    /// Grid size (x-dimension CTAs).
    pub grid: u32,
    /// Block size (threads per CTA).
    pub block: u32,
    /// Input-buffer contents (`grid * block + SLACK` words).
    pub in_words: Vec<u32>,
    /// Constant-bank contents.
    pub const_words: Vec<u32>,
}

/// The chip the fuzzer runs on: the RTX 2060 model cut down to two SMs —
/// small enough to be fast, two cores so cross-SM CTA scheduling is still
/// exercised.
pub fn fuzz_config() -> GpuConfig {
    let mut cfg = GpuConfig::rtx2060();
    cfg.num_sms = 2;
    cfg
}

/// Generates the fuzz case for `seed`.
pub fn gen_case(seed: u64) -> FuzzCase {
    let mut rng = FuzzRng::new(seed);
    let grid = 1 + rng.below(4);
    let block = *rng.pick(&[32u32, 48, 64, 96, 128]);
    let total = grid * block;
    let in_words: Vec<u32> = (0..total + SLACK_WORDS)
        .map(|_| rng.next_u64() as u32)
        .collect();
    let const_words: Vec<u32> = (0..CONST_WORDS).map(|_| rng.next_u64() as u32).collect();

    let mut src = String::new();
    let _ = writeln!(src, ".kernel fuzz");
    let _ = writeln!(src, ".params 2");
    let _ = writeln!(src, ".smem {}", block * 4);
    let _ = writeln!(src, ".lmem {LMEM_BYTES}");
    // Prologue: R2 = tid, R3 = global tid, R5 = &out[gtid], R6 = &in[gtid].
    src.push_str(
        "    S2R   R2, SR_TID.X\n\
         \x20   S2R   R3, SR_CTAID.X\n\
         \x20   S2R   R4, SR_NTID.X\n\
         \x20   IMAD  R3, R3, R4, R2\n\
         \x20   SHL   R4, R3, 2\n\
         \x20   IADD  R5, R0, R4\n\
         \x20   IADD  R6, R1, R4\n",
    );

    // Initialize every working register from a load or an immediate.  The
    // first one always loads through `R6` so the prologue's input pointer
    // is never a dead register (the static linter runs over every
    // generated kernel, and an all-immediate draw would orphan it).
    for (i, w) in WORK.iter().enumerate() {
        match if i == 0 {
            1 + rng.below(2)
        } else {
            rng.below(4)
        } {
            0 => {
                let _ = writeln!(src, "    MOV   {w}, 0x{:08x}", rng.next_u64() as u32);
            }
            1 | 2 => {
                let mn = if rng.below(2) == 0 { "LDG" } else { "LDT" };
                let off = i64::from(4 * rng.below(SLACK_WORDS));
                if rng.chance(40) {
                    // Negative encoded offset, same effective address: the
                    // base is biased up and the offset biased down, so the
                    // sign-extension and wrapping paths are exercised
                    // without leaving the slack window.
                    let k = i64::from(4 * (1 + rng.below(16)));
                    let _ = writeln!(src, "    IADD  R4, R6, {k}");
                    let _ = writeln!(src, "    {mn}   {w}, {}", mem_ref("R4", off - k));
                } else {
                    let _ = writeln!(src, "    {mn}   {w}, [R6+{off}]");
                }
            }
            _ => {
                let _ = writeln!(
                    src,
                    "    MOV   R4, 0x{:08x}",
                    4 * rng.below(CONST_WORDS * 3)
                );
                let _ = writeln!(src, "    LDC   {w}, [R4]");
            }
        }
    }

    // Body: a random mix of segment shapes.
    let mut label = 0u32;
    let segments = 3 + rng.below(6);
    for _ in 0..segments {
        match rng.below(10) {
            0..=3 => {
                let n = 2 + rng.below(5);
                gen_alu_block(&mut rng, &mut src, n);
            }
            4..=6 => gen_diamond(&mut rng, &mut src, &mut label, 0),
            7 => gen_smem_exchange(&mut rng, &mut src, block),
            8 => gen_local(&mut rng, &mut src),
            _ => gen_const_load(&mut rng, &mut src),
        }
    }

    // Epilogue: fold the working set and store the thread's output word.
    src.push_str(
        "    XOR   R7, R7, R8\n\
         \x20   XOR   R7, R7, R9\n\
         \x20   XOR   R7, R7, R10\n\
         \x20   XOR   R7, R7, R11\n\
         \x20   XOR   R7, R7, R12\n\
         \x20   STG   [R5], R7\n\
         \x20   EXIT\n",
    );

    FuzzCase {
        seed,
        source: src,
        grid,
        block,
        in_words,
        const_words,
    }
}

/// Emits one random ALU/predicate instruction over the working set.
fn gen_alu_op(rng: &mut FuzzRng, src: &mut String) {
    // Occasional guard: generated predicates start at 0 and are set by
    // ISETP/FSETP below, so guarded ops are deterministic on both sides.
    let guard = if rng.chance(20) {
        format!(
            "@{}P{} ",
            if rng.chance(50) { "!" } else { "" },
            rng.below(4)
        )
    } else {
        "    ".to_string()
    };
    let d = *rng.pick(&WORK);
    let a = *rng.pick(&WORK);
    let b: String = if rng.chance(40) {
        format!("0x{:08x}", rng.next_u64() as u32)
    } else {
        (*rng.pick(&WORK)).to_string()
    };
    let c = *rng.pick(&WORK);
    let line = match rng.below(14) {
        0 => {
            let op = rng.pick(&["IADD", "ISUB", "IMUL", "IMIN", "IMAX"]);
            format!("{op}  {d}, {a}, {b}")
        }
        1 => {
            let op = rng.pick(&["AND", "OR", "XOR", "SHL", "SHR", "SAR"]);
            format!("{op}   {d}, {a}, {b}")
        }
        2 => format!("IMAD  {d}, {a}, {b}, {c}"),
        3 => format!("NOT   {d}, {a}"),
        4 => {
            let op = rng.pick(&["FADD", "FSUB", "FMUL", "FDIV", "FMIN", "FMAX"]);
            format!("{op}  {d}, {a}, {b}")
        }
        5 => format!("FFMA  {d}, {a}, {b}, {c}"),
        6 => {
            let op = rng.pick(&["FRCP", "FSQRT", "FEX2", "FLG2", "FABS", "FNEG", "FFLOOR"]);
            format!("{op} {d}, {a}")
        }
        7 => format!("I2F   {d}, {a}"),
        8 => format!("F2I   {d}, {a}"),
        9 => {
            let cc = rng.pick(&["EQ", "NE", "LT", "LE", "GT", "GE"]);
            format!("ISETP.{cc} P{}, {a}, {b}", rng.below(4))
        }
        10 => {
            let cc = rng.pick(&["EQ", "NE", "LT", "LE", "GT", "GE"]);
            format!("FSETP.{cc} P{}, {a}, {b}", rng.below(4))
        }
        11 => format!("SEL   {d}, {a}, {b}, P{}", rng.below(4)),
        12 => format!("MOV   {d}, {b}"),
        _ => format!("IADD  {d}, {a}, {b}"),
    };
    let _ = writeln!(src, "{guard}{line}");
}

fn gen_alu_block(rng: &mut FuzzRng, src: &mut String, n: u32) {
    for _ in 0..n {
        gen_alu_op(rng, src);
    }
    // Occasionally re-store the thread's output word mid-body.
    if rng.chance(30) {
        let _ = writeln!(src, "    STG   [R5], {}", rng.pick(&WORK));
    }
}

/// Emits a structured if/else diamond: `SSY` / guarded `BRA` / else path /
/// `BRA` join / then path / `SYNC`.  Divergence comes from predicating on
/// the thread id, the global thread id or a data value.
fn gen_diamond(rng: &mut FuzzRng, src: &mut String, label: &mut u32, depth: u32) {
    let n = *label;
    *label += 1;
    let p = rng.below(4);
    // Condition source: tid (intra-warp divergence), gtid (inter-warp) or
    // a data register.
    let cond_src = match rng.below(3) {
        0 => {
            // Odd/even lanes: maximal intra-warp divergence.
            let _ = writeln!(src, "    AND   R4, R2, 0x{:08x}", 1 + rng.below(7));
            "R4"
        }
        1 => *rng.pick(&["R2", "R3"]),
        _ => *rng.pick(&WORK),
    };
    let cc = rng.pick(&["EQ", "NE", "LT", "LE", "GT", "GE"]);
    let _ = writeln!(
        src,
        "    ISETP.{cc} P{p}, {cond_src}, 0x{:08x}",
        rng.below(64)
    );
    let _ = writeln!(src, "    SSY   Ls{n}");
    let _ = writeln!(src, "@P{p} BRA   Lt{n}");
    for _ in 0..1 + rng.below(3) {
        gen_alu_op(rng, src);
    }
    if depth < 2 && rng.chance(35) {
        gen_diamond(rng, src, label, depth + 1);
    }
    let _ = writeln!(src, "    BRA   Ls{n}");
    let _ = writeln!(src, "Lt{n}:");
    for _ in 0..1 + rng.below(3) {
        gen_alu_op(rng, src);
    }
    if depth < 2 && rng.chance(35) {
        gen_diamond(rng, src, label, depth + 1);
    }
    let _ = writeln!(src, "Ls{n}: SYNC");
}

/// Emits a barrier-fenced shared-memory exchange: every thread stores its
/// own slot, barriers, reads its (wrapped) neighbour's slot, barriers
/// again so a following exchange cannot race.
fn gen_smem_exchange(rng: &mut FuzzRng, src: &mut String, block: u32) {
    let w = *rng.pick(&WORK);
    let w2 = *rng.pick(&WORK);
    let _ = writeln!(src, "    SHL   R4, R2, 2");
    let _ = writeln!(src, "    STS   [R4], {w}");
    let _ = writeln!(src, "    BAR");
    let _ = writeln!(src, "    IADD  R4, R2, 1");
    let _ = writeln!(src, "    ISETP.GE P0, R4, {block}");
    let _ = writeln!(src, "@P0 MOV   R4, 0");
    let _ = writeln!(src, "    SHL   R4, R4, 2");
    let _ = writeln!(src, "    LDS   {w2}, [R4]");
    let _ = writeln!(src, "    BAR");
}

/// Emits a private local-memory round trip at a random aligned offset,
/// sometimes through a biased base with a negative encoded offset (same
/// effective slot).
fn gen_local(rng: &mut FuzzRng, src: &mut String) {
    let off = i64::from(4 * rng.below(LMEM_BYTES / 4));
    let w = *rng.pick(&WORK);
    let w2 = *rng.pick(&WORK);
    let k = if rng.chance(40) {
        i64::from(4 * (1 + rng.below(16)))
    } else {
        0
    };
    let _ = writeln!(src, "    MOV   R4, {}", off + k);
    let _ = writeln!(src, "    STL   {}, {w}", mem_ref("R4", -k));
    let _ = writeln!(src, "    LDL   {w2}, {}", mem_ref("R4", -k));
}

/// Emits a constant-bank load, possibly past the written extent (both
/// sides read zeros there) and possibly with a negative encoded offset.
fn gen_const_load(rng: &mut FuzzRng, src: &mut String) {
    let a = i64::from(4 * rng.below(CONST_WORDS * 3));
    let k = if rng.chance(40) {
        i64::from(4 * (1 + rng.below(16)))
    } else {
        0
    };
    let _ = writeln!(src, "    MOV   R4, {}", a + k);
    let _ = writeln!(src, "    LDC   {}, {}", rng.pick(&WORK), mem_ref("R4", -k));
}

/// Runs one case through the cycle-level simulator with the lockstep
/// oracle attached, returning the first divergence if the two disagree.
///
/// # Errors
///
/// Returns the latched [`DivergenceReport`] on any sim-vs-oracle mismatch.
///
/// # Panics
///
/// Panics if the generated source fails to assemble or a host-API call
/// fails — generator bugs, not simulator divergences.
pub fn run_case(case: &FuzzCase) -> Result<(), Box<DivergenceReport>> {
    let module = Module::assemble(&case.source).unwrap_or_else(|e| {
        panic!(
            "fuzzer (seed {}) generated invalid asm: {e}\n{}",
            case.seed, case.source
        )
    });
    let kernel = module.kernel("fuzz").expect("kernel `fuzz` exists");
    let mut gpu = Gpu::new(fuzz_config());
    gpu.attach_oracle();
    let total = case.grid * case.block;
    let out = gpu.malloc(total * 4).expect("fuzz out alloc");
    let inp = gpu
        .malloc(case.in_words.len() as u32 * 4)
        .expect("fuzz in alloc");
    gpu.write_u32s(inp, &case.in_words).expect("fuzz h2d");
    let const_bytes: Vec<u8> = case
        .const_words
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    gpu.write_const(0, &const_bytes).expect("fuzz const write");
    let res = gpu.launch(kernel, LaunchDims::new(case.grid, case.block), &[out, inp]);
    if res.is_ok() {
        // Exercise the d2h comparison path too.
        let mut sink = vec![0u8; (total * 4) as usize];
        gpu.memcpy_d2h(out, &mut sink).expect("fuzz d2h");
    }
    match gpu.oracle_divergence() {
        Some(d) => Err(Box::new(d)),
        None => Ok(()),
    }
}

/// Generates and runs `count` cases from `seed`, panicking with the full
/// repro on the first divergence.  Returns the number of cases run.
///
/// # Panics
///
/// Panics with the divergence report and kernel source on any mismatch.
pub fn fuzz_sweep(seed: u64, count: u32) -> u32 {
    for i in 0..count {
        let case = gen_case(seed.wrapping_add(u64::from(i)));
        if let Err(d) = run_case(&case) {
            panic!(
                "sim-vs-oracle divergence at seed {} (case {i}):\n{d}\nsource:\n{}",
                case.seed, case.source
            );
        }
    }
    count
}

/// One generated trap case: a kernel constructed to fault with a known
/// trap kind through the address shapes register faults produce (bases
/// near `u32::MAX`, negative offsets that wrap, null-page pointers).
///
/// Campaign injections can corrupt any address register, so the timing
/// engine and the reference interpreter must not merely both fail — they
/// must raise the *same kind* of trap, or the DUE sub-classification the
/// campaign journal records would depend on which engine ran.
#[derive(Debug, Clone)]
pub struct TrapCase {
    /// The seed this case was generated from.
    pub seed: u64,
    /// SASS-lite source of the single kernel `fuzz_trap`.
    pub source: String,
    /// Block size (threads per CTA).
    pub block: u32,
    /// The trap both engines must raise; the payload is a placeholder —
    /// agreement is on the kind (discriminant).
    pub expected: Trap,
}

/// Generates the trap case for `seed`.
pub fn gen_trap_case(seed: u64) -> TrapCase {
    let mut rng = FuzzRng::new(seed);
    let block = *rng.pick(&[32u32, 64]);

    let mut src = String::new();
    let _ = writeln!(src, ".kernel fuzz_trap");
    let _ = writeln!(src, ".params 0");
    let _ = writeln!(src, ".smem {}", block * 4);
    let _ = writeln!(src, ".lmem {LMEM_BYTES}");
    // A short healthy prelude so the fault is not the first issue slot.
    src.push_str(
        "    S2R   R2, SR_TID.X\n\
         \x20   SHL   R3, R2, 2\n\
         \x20   STS   [R3], R2\n",
    );

    let expected = match rng.below(4) {
        0 => {
            // Shared access whose small base plus a larger negative offset
            // wraps to the top of the 32-bit space (aligned, far past
            // `.smem`): the shape of a cleared base register.
            let base = 4 * rng.below(8);
            let k = i64::from(4 * (2 + rng.below(16))) + i64::from(base);
            if rng.chance(50) {
                let _ = writeln!(src, "    MOV   R4, {base}");
                let _ = writeln!(src, "    LDS   R7, {}", mem_ref("R4", -k));
            } else {
                let _ = writeln!(src, "    MOV   R4, {base}");
                let _ = writeln!(src, "    STS   {}, R2", mem_ref("R4", -k));
            }
            Trap::SmemOutOfBounds { offset: 0 }
        }
        1 => {
            // Local access with an aligned base parked near `u32::MAX` —
            // the region where `base + 4` used to overflow the bounds
            // check before trapping.
            let base = 0xFFFF_FFFCu32 - 4 * rng.below(16);
            let _ = writeln!(src, "    MOV   R4, 0x{base:08x}");
            if rng.chance(50) {
                let _ = writeln!(src, "    LDL   R7, [R4]");
            } else {
                let _ = writeln!(src, "    STL   [R4], R2");
            }
            Trap::LmemOutOfBounds { offset: 0 }
        }
        2 => {
            // Odd address near `u32::MAX` into a word-aligned space.
            let base = (0xFFFF_FFFFu32 - 4 * rng.below(16)) | 1;
            let _ = writeln!(src, "    MOV   R4, 0x{base:08x}");
            match rng.below(3) {
                0 => {
                    let _ = writeln!(src, "    LDC   R7, [R4]");
                }
                1 => {
                    let _ = writeln!(src, "    LDS   R7, [R4]");
                }
                _ => {
                    let _ = writeln!(src, "    LDL   R7, [R4]");
                }
            }
            Trap::Misaligned { addr: 0 }
        }
        _ => {
            // Null-page global pointer (aligned, below `GLOBAL_BASE`).
            let base = 4 * rng.below(0x1000 / 4);
            let _ = writeln!(src, "    MOV   R4, {base}");
            if rng.chance(50) {
                let _ = writeln!(src, "    LDG   R7, [R4]");
            } else {
                let _ = writeln!(src, "    STG   [R4], R2");
            }
            Trap::InvalidAddress { addr: 0 }
        }
    };
    src.push_str("    EXIT\n");

    TrapCase {
        seed,
        source: src,
        block,
        expected,
    }
}

/// Runs one trap case on the cycle-level simulator with the lockstep
/// oracle attached, asserting the launch traps with the expected kind and
/// that the oracle raised the same kind (via the mirror's both-trapped
/// discriminant check).
///
/// # Errors
///
/// Returns the latched [`DivergenceReport`] when the two engines trap
/// with different kinds.
///
/// # Panics
///
/// Panics if the generated source fails to assemble, the launch does not
/// trap, or it traps with an unexpected kind — generator or simulator
/// bugs, not divergences.
pub fn run_trap_case(case: &TrapCase) -> Result<(), Box<DivergenceReport>> {
    let module = Module::assemble(&case.source).unwrap_or_else(|e| {
        panic!(
            "trap fuzzer (seed {}) generated invalid asm: {e}\n{}",
            case.seed, case.source
        )
    });
    let kernel = module
        .kernel("fuzz_trap")
        .expect("kernel `fuzz_trap` exists");
    let mut gpu = Gpu::new(fuzz_config());
    gpu.attach_oracle();
    let res = gpu.launch(kernel, LaunchDims::new(1, case.block), &[]);
    let trap = res.expect_err("trap-corpus kernel must not complete");
    assert_eq!(
        std::mem::discriminant(&trap),
        std::mem::discriminant(&case.expected),
        "trap kind mismatch at seed {}: got {trap:?}, expected the kind of {:?}\nsource:\n{}",
        case.seed,
        case.expected,
        case.source
    );
    match gpu.oracle_divergence() {
        Some(d) => Err(Box::new(d)),
        None => Ok(()),
    }
}

/// Generates and runs `count` trap cases from `seed`, panicking with the
/// full repro on the first disagreement.  Returns the number of cases run.
///
/// # Panics
///
/// Panics with the divergence report and kernel source on any mismatch.
pub fn trap_sweep(seed: u64, count: u32) -> u32 {
    for i in 0..count {
        let case = gen_trap_case(seed.wrapping_add(u64::from(i)));
        if let Err(d) = run_trap_case(&case) {
            panic!(
                "sim-vs-oracle trap-kind divergence at seed {} (case {i}):\n{d}\nsource:\n{}",
                case.seed, case.source
            );
        }
    }
    count
}
