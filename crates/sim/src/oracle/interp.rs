//! The functional reference interpreter.
//!
//! Executes a kernel launch **thread by thread** with no timing, caches,
//! warp scheduler or reconvergence-stack machinery — only architectural
//! semantics: registers, predicates, shared/local/global/constant memory,
//! and barrier-phase ordering.  Every ALU operation is evaluated through
//! [`gpufi_isa::semantics`], the same functions the cycle-level simulator
//! uses, so a sim-vs-oracle divergence always points at control flow,
//! scheduling or memory modelling — never at two arithmetic
//! implementations drifting apart.
//!
//! The per-thread control-flow rules mirror the simulator's SIMT-stack
//! semantics exactly, collapsed to a single thread:
//!
//! * `SSY target` pushes `target` on the thread's reconvergence stack
//!   **regardless of the guard** (the simulator pushes for the whole warp
//!   without consulting the execution mask);
//! * `SYNC` pops and jumps to `target + 1`, or falls through on an empty
//!   stack — also regardless of the guard;
//! * `BRA` is taken iff the guard passes;
//! * `BAR` arrives at the barrier regardless of the guard (the simulator's
//!   barrier arm never consults the execution mask);
//! * `EXIT` retires the thread iff the guard passes.
//!
//! Threads of a CTA run sequentially in ascending thread id, each until it
//! blocks at a barrier, exits or traps; when no thread can run and some
//! wait at a barrier, the barrier releases and the next phase starts.
//! This is equivalent to any SIMT interleaving for race-free programs
//! (shared-memory communication fenced by `BAR`), which is the contract
//! the workloads and the fuzzer uphold.

use crate::error::Trap;
use crate::grid::LaunchDims;
use crate::mem::{GLOBAL_BASE, LOCAL_BASE};
use gpufi_isa::semantics as exec;
use gpufi_isa::{Kernel, MemSpace, Op, Operand, Pred, Reg, SpecialReg};

use super::ThreadState;

/// Total interpreted instructions per launch before the oracle declares a
/// (presumed) hang.  Far above any workload's dynamic instruction count;
/// guards the oracle against non-terminating generated programs.
const STEP_BUDGET: u64 = 200_000_000;

/// The oracle's functional memory: flat byte images of the global, local
/// and constant segments, with the same allocator layout, demand-paging
/// and trap rules as the simulator's [`crate::mem::MemSystem`] — minus the
/// caches.
///
/// One deliberate deviation: the simulator lets a store to an *unbacked*
/// (never-allocated) line live transiently in the L2 until eviction drops
/// it; the oracle drops such stores immediately.  Fault-free, well-formed
/// programs never touch unbacked memory, so the two agree everywhere the
/// oracle is used as a reference.
#[derive(Debug, Clone)]
pub struct FuncMem {
    line_bytes: u32,
    global: Vec<u8>,
    constant: Vec<u8>,
    local: Vec<u8>,
}

/// Simulated global-segment capacity (mirrors the simulator's cap).
const GLOBAL_CAP: u32 = 256 * 1024 * 1024;

/// CUDA constant-bank capacity.
const CONST_CAP: usize = 64 * 1024;

impl FuncMem {
    /// An empty functional memory using the given cache-line granularity
    /// for allocation padding (allocations must land at the same addresses
    /// the simulator hands out).
    pub fn new(line_bytes: u32) -> Self {
        FuncMem {
            line_bytes,
            global: Vec::new(),
            constant: Vec::new(),
            local: Vec::new(),
        }
    }

    /// Allocates zeroed global memory with the simulator's exact layout:
    /// line-padded bump allocation from [`GLOBAL_BASE`].
    pub fn alloc(&mut self, bytes: u32) -> Option<u32> {
        let align = self.line_bytes as usize;
        let padded = (bytes as usize).div_ceil(align) * align;
        if self.global.len() + padded > GLOBAL_CAP as usize {
            return None;
        }
        let ptr = GLOBAL_BASE + self.global.len() as u32;
        self.global.resize(self.global.len() + padded, 0);
        Some(ptr)
    }

    /// Host → device copy; `false` when the range is not mapped.
    pub fn host_write(&mut self, addr: u32, data: &[u8]) -> bool {
        if !self.host_range_ok(addr, data.len()) {
            return false;
        }
        let o = (addr - GLOBAL_BASE) as usize;
        self.global[o..o + data.len()].copy_from_slice(data);
        true
    }

    /// Device → host copy; `None` when the range is not mapped.
    pub fn host_read(&self, addr: u32, len: usize) -> Option<Vec<u8>> {
        if !self.host_range_ok(addr, len) {
            return None;
        }
        let o = (addr - GLOBAL_BASE) as usize;
        Some(self.global[o..o + len].to_vec())
    }

    /// Writes into the constant bank; `false` past the 64 KB capacity.
    pub fn const_write(&mut self, offset: u32, data: &[u8]) -> bool {
        let end = offset as usize + data.len();
        if end > CONST_CAP {
            return false;
        }
        if end > self.constant.len() {
            self.constant.resize(end, 0);
        }
        self.constant[offset as usize..end].copy_from_slice(data);
        true
    }

    /// The full allocated global segment (padding included), the memory
    /// half of the architectural state the divergence checker diffs.
    pub fn global_image(&self) -> &[u8] {
        &self.global
    }

    fn host_range_ok(&self, addr: u32, len: usize) -> bool {
        let end = u64::from(addr) + len as u64;
        addr >= GLOBAL_BASE && end <= u64::from(GLOBAL_BASE) + self.global.len() as u64
    }

    /// (Re)creates the zeroed local-memory segment for a launch.
    fn reset_local(&mut self, total_threads: u64, lmem_bytes: u32) {
        let need = total_threads * u64::from(lmem_bytes);
        let padded = need.div_ceil(u64::from(self.line_bytes)) * u64::from(self.line_bytes);
        self.local.clear();
        self.local.resize(padded as usize, 0);
    }

    /// The simulator's access validation: only misalignment and the null
    /// page trap; everything else is demand-paged.
    fn check_access(addr: u32) -> Result<(), Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Misaligned { addr });
        }
        if addr < GLOBAL_BASE {
            return Err(Trap::InvalidAddress { addr });
        }
        Ok(())
    }

    fn seg_byte(&self, addr: u32) -> u8 {
        if addr >= LOCAL_BASE {
            let o = (addr - LOCAL_BASE) as usize;
            self.local.get(o).copied().unwrap_or(0)
        } else {
            let o = (addr - GLOBAL_BASE) as usize;
            self.global.get(o).copied().unwrap_or(0)
        }
    }

    /// Device load: demand-paged (unbacked regions read zeros).
    fn load4(&self, addr: u32) -> Result<u32, Trap> {
        Self::check_access(addr)?;
        Ok(u32::from_le_bytes([
            self.seg_byte(addr),
            self.seg_byte(addr + 1),
            self.seg_byte(addr + 2),
            self.seg_byte(addr + 3),
        ]))
    }

    /// Device store: writes to unbacked regions vanish.
    fn store4(&mut self, addr: u32, v: u32) -> Result<(), Trap> {
        Self::check_access(addr)?;
        let (seg, o) = if addr >= LOCAL_BASE {
            (&mut self.local, (addr - LOCAL_BASE) as usize)
        } else {
            (&mut self.global, (addr - GLOBAL_BASE) as usize)
        };
        if o + 4 <= seg.len() {
            seg[o..o + 4].copy_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    /// Constant load: 0-based bank addresses, zeros past the written
    /// extent.
    fn load4_const(&self, addr: u32) -> Result<u32, Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Misaligned { addr });
        }
        let byte = |i: usize| self.constant.get(addr as usize + i).copied().unwrap_or(0);
        Ok(u32::from_le_bytes([byte(0), byte(1), byte(2), byte(3)]))
    }
}

/// Where a reference thread stands in its CTA's barrier-phase schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    AtBarrier,
    Exited,
}

/// One reference thread: program counter, registers, predicates and the
/// per-thread reconvergence stack (SSY targets only — `Pending` frames are
/// warp mechanics invisible to single-thread semantics).
#[derive(Debug)]
struct OThread {
    pc: u32,
    regs: Vec<u32>,
    preds: u8,
    stack: Vec<u32>,
    status: Status,
}

impl OThread {
    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.index() as usize] = v;
    }

    fn operand(&self, op: Operand) -> u32 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v,
        }
    }

    fn pred(&self, p: Pred) -> bool {
        self.preds & (1 << p.index()) != 0
    }

    fn set_pred(&mut self, p: Pred, v: bool) {
        if v {
            self.preds |= 1 << p.index();
        } else {
            self.preds &= !(1 << p.index());
        }
    }
}

/// Runs a full kernel launch through the reference interpreter against
/// `mem`, returning the exit-time architectural state of every thread
/// (ordered by CTA, then thread id).
///
/// # Errors
///
/// Returns the first [`Trap`] any thread raises, or [`Trap::Watchdog`]
/// when the launch exceeds the interpretation step budget.
pub fn run_reference(
    mem: &mut FuncMem,
    kernel: &Kernel,
    dims: LaunchDims,
    args: &[u32],
) -> Result<Vec<ThreadState>, Trap> {
    let tpc = dims.threads_per_cta();
    let num_regs = usize::from(kernel.num_regs().max(kernel.num_params())).max(1);
    mem.reset_local(dims.total_threads(), kernel.lmem_bytes());

    let mut out = Vec::with_capacity(dims.total_threads() as usize);
    let mut steps = 0u64;
    for cta in 0..dims.grid.count() {
        let mut smem = vec![0u8; kernel.smem_bytes() as usize];
        let mut threads: Vec<OThread> = (0..tpc)
            .map(|_| {
                let mut regs = vec![0u32; num_regs];
                regs[..args.len()].copy_from_slice(args);
                OThread {
                    pc: 0,
                    regs,
                    preds: 0,
                    stack: Vec::new(),
                    status: Status::Running,
                }
            })
            .collect();

        loop {
            for tid in 0..tpc {
                while threads[tid as usize].status == Status::Running {
                    steps += 1;
                    if steps > STEP_BUDGET {
                        return Err(Trap::Watchdog);
                    }
                    step(
                        mem,
                        kernel,
                        dims,
                        cta,
                        tid,
                        &mut threads[tid as usize],
                        &mut smem,
                    )?;
                }
            }
            if threads.iter().all(|t| t.status == Status::Exited) {
                break;
            }
            // Barrier release: no thread can run, some wait — next phase.
            for t in &mut threads {
                if t.status == Status::AtBarrier {
                    t.status = Status::Running;
                }
            }
        }

        for (tid, t) in threads.into_iter().enumerate() {
            out.push(ThreadState {
                cta,
                tid: tid as u32,
                regs: t.regs,
                preds: t.preds,
            });
        }
    }
    Ok(out)
}

/// Executes one instruction of one reference thread.
#[allow(clippy::too_many_lines)]
fn step(
    mem: &mut FuncMem,
    kernel: &Kernel,
    dims: LaunchDims,
    cta: u64,
    tid: u32,
    t: &mut OThread,
    smem: &mut [u8],
) -> Result<(), Trap> {
    let pc = t.pc;
    let instr = *kernel
        .instrs()
        .get(pc as usize)
        .ok_or(Trap::InvalidPc { pc })?;
    let pass = match instr.guard {
        None => true,
        Some(g) => t.pred(g.pred) != g.negate,
    };
    let mut next_pc = pc + 1;

    match instr.op {
        // SSY / SYNC / BAR act regardless of the guard, like the warp-level
        // simulator (see the module docs); a store to the read-only
        // constant space likewise traps before any guard is consulted.
        Op::Ssy { target } => t.stack.push(target),
        Op::Sync => {
            if let Some(target) = t.stack.pop() {
                next_pc = target + 1;
            }
        }
        Op::Bar => {
            t.status = Status::AtBarrier;
        }
        Op::St {
            space: MemSpace::Const,
            ..
        } => return Err(Trap::InvalidAddress { addr: 0 }),

        _ if !pass => {}

        Op::Mov { d, src } => {
            let v = t.operand(src);
            t.set_reg(d, v);
        }
        Op::S2r { d, sr } => {
            let tid3 = dims.block.index_at(u64::from(tid));
            let cta3 = dims.grid.index_at(cta);
            let v = match sr {
                SpecialReg::TidX => tid3.x,
                SpecialReg::TidY => tid3.y,
                SpecialReg::TidZ => tid3.z,
                SpecialReg::CtaIdX => cta3.x,
                SpecialReg::CtaIdY => cta3.y,
                SpecialReg::CtaIdZ => cta3.z,
                SpecialReg::NTidX => dims.block.x,
                SpecialReg::NTidY => dims.block.y,
                SpecialReg::NTidZ => dims.block.z,
                SpecialReg::NCtaIdX => dims.grid.x,
                SpecialReg::NCtaIdY => dims.grid.y,
                SpecialReg::NCtaIdZ => dims.grid.z,
                SpecialReg::LaneId => tid % 32,
                SpecialReg::WarpId => tid / 32,
            };
            t.set_reg(d, v);
        }
        Op::IArith { op, d, a, b } => {
            let v = exec::int_op(op, t.reg(a), t.operand(b));
            t.set_reg(d, v);
        }
        Op::IMad { d, a, b, c } => {
            let v = exec::imad(t.reg(a), t.operand(b), t.reg(c));
            t.set_reg(d, v);
        }
        Op::Bit { op, d, a, b } => {
            let v = exec::bit_op(op, t.reg(a), t.operand(b));
            t.set_reg(d, v);
        }
        Op::Not { d, a } => {
            let v = !t.reg(a);
            t.set_reg(d, v);
        }
        Op::FArith { op, d, a, b } => {
            let v = exec::float_op(op, t.reg(a), t.operand(b));
            t.set_reg(d, v);
        }
        Op::FFma { d, a, b, c } => {
            let v = exec::ffma(t.reg(a), t.operand(b), t.reg(c));
            t.set_reg(d, v);
        }
        Op::FUnary { op, d, a } => {
            let v = exec::float_un(op, t.reg(a));
            t.set_reg(d, v);
        }
        Op::I2f { d, a } => {
            let v = exec::i2f(t.reg(a));
            t.set_reg(d, v);
        }
        Op::F2i { d, a } => {
            let v = exec::f2i(t.reg(a));
            t.set_reg(d, v);
        }
        Op::ISetp { cmp, p, a, b } => {
            let v = cmp.eval_i32(t.reg(a) as i32, t.operand(b) as i32);
            t.set_pred(p, v);
        }
        Op::FSetp { cmp, p, a, b } => {
            let v = cmp.eval_f32(f32::from_bits(t.reg(a)), f32::from_bits(t.operand(b)));
            t.set_pred(p, v);
        }
        Op::Sel { d, a, b, p } => {
            let v = if t.pred(p) { t.reg(a) } else { t.operand(b) };
            t.set_reg(d, v);
        }
        Op::Nop => {}
        Op::Bra { target } => next_pc = target,
        Op::Exit => t.status = Status::Exited,
        Op::Ld {
            space,
            d,
            addr,
            offset,
        } => {
            let a = t.reg(addr).wrapping_add(offset as u32);
            let v = match space {
                MemSpace::Shared => load_shared(smem, a)?,
                MemSpace::Const => mem.load4_const(a)?,
                MemSpace::Local => mem.load4(local_eff(kernel, dims, cta, tid, a)?)?,
                MemSpace::Global | MemSpace::Texture => mem.load4(a)?,
            };
            t.set_reg(d, v);
        }
        Op::St {
            space,
            addr,
            offset,
            v,
        } => {
            let a = t.reg(addr).wrapping_add(offset as u32);
            let val = t.reg(v);
            match space {
                MemSpace::Shared => store_shared(smem, a, val)?,
                MemSpace::Local => mem.store4(local_eff(kernel, dims, cta, tid, a)?, val)?,
                MemSpace::Global => mem.store4(a, val)?,
                MemSpace::Texture => {
                    // The texture path is read-only; validation order
                    // matches the simulator (alignment first).
                    FuncMem::check_access(a)?;
                    return Err(Trap::InvalidAddress { addr: a });
                }
                MemSpace::Const => unreachable!("handled before the guard"),
            }
        }
    }

    if t.status == Status::Running || t.status == Status::AtBarrier {
        t.pc = next_pc;
    }
    Ok(())
}

/// Resolves a per-thread local-memory address to its backing-segment
/// address, with the simulator's validation order: alignment, then the
/// per-thread local-memory bound.
fn local_eff(
    kernel: &Kernel,
    dims: LaunchDims,
    cta: u64,
    tid: u32,
    base: u32,
) -> Result<u32, Trap> {
    let lmem = kernel.lmem_bytes();
    if !base.is_multiple_of(4) {
        return Err(Trap::Misaligned { addr: base });
    }
    if u64::from(base) + 4 > u64::from(lmem) {
        return Err(Trap::LmemOutOfBounds { offset: base });
    }
    let tid_global = cta * u64::from(dims.threads_per_cta()) + u64::from(tid);
    // Lockstep with the simulator's local path: resolve in u64 and trap
    // before truncating, so both engines raise the same trap kind when a
    // corrupted slot lands past the 32-bit space.
    let eff64 = u64::from(LOCAL_BASE) + tid_global * u64::from(lmem) + u64::from(base);
    if eff64 > u64::from(u32::MAX) {
        return Err(Trap::LmemOutOfBounds { offset: base });
    }
    Ok(eff64 as u32)
}

fn load_shared(smem: &[u8], a: u32) -> Result<u32, Trap> {
    check_shared(smem, a)?;
    let o = a as usize;
    Ok(u32::from_le_bytes(
        smem[o..o + 4].try_into().expect("4-byte slice"),
    ))
}

fn store_shared(smem: &mut [u8], a: u32, v: u32) -> Result<(), Trap> {
    check_shared(smem, a)?;
    let o = a as usize;
    smem[o..o + 4].copy_from_slice(&v.to_le_bytes());
    Ok(())
}

fn check_shared(smem: &[u8], a: u32) -> Result<(), Trap> {
    if !a.is_multiple_of(4) {
        return Err(Trap::Misaligned { addr: a });
    }
    if u64::from(a) + 4 > smem.len() as u64 {
        return Err(Trap::SmemOutOfBounds { offset: a });
    }
    Ok(())
}
