//! # Differential-execution oracle
//!
//! Everything the campaign measures rests on the cycle-level simulator's
//! golden run being functionally correct — and the optimized campaign
//! engines (taint early exit, checkpoint-and-fork) add new ways to
//! silently corrupt that baseline.  This module provides an independent
//! check, in the spirit of gpuFI-4's golden-vs-faulty comparison applied
//! to the simulator itself:
//!
//! * [`interp`] — a functional reference interpreter that executes a
//!   launch thread-by-thread with architectural semantics only;
//! * [`OracleMirror`] — a lockstep shadow attached to a [`crate::Gpu`]
//!   ([`crate::Gpu::attach_oracle`]): every host-API call is mirrored into
//!   the reference machine and every launch is diffed against it, latching
//!   the first [`Divergence`] (structure, address/register, thread) with a
//!   minimal repro dump;
//! * [`fuzz`] — a seeded random-kernel generator asserting sim ≡ oracle
//!   over arbitrary well-formed SASS-lite programs.

use crate::error::Trap;
use crate::grid::LaunchDims;
use crate::mem::{MemSystem, GLOBAL_BASE};
use gpufi_isa::Kernel;
use std::collections::BTreeMap;
use std::fmt;

pub mod fuzz;
pub mod interp;

pub use interp::{run_reference, FuncMem};

/// Exit-time architectural state of one thread: the registers and
/// predicates it held when its `EXIT` retired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadState {
    /// Linear CTA index within the grid.
    pub cta: u64,
    /// Linear thread id within the CTA.
    pub tid: u32,
    /// Register values `R0..` at exit.
    pub regs: Vec<u32>,
    /// Predicate bits `P0..` at exit (bit `p` of the byte).
    pub preds: u8,
}

/// The first point where the cycle-level simulator and the reference
/// interpreter disagree: which structure, at which address or register,
/// in which thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// `malloc` returned different device addresses (allocator drift).
    HostAlloc {
        /// Requested size.
        bytes: u32,
        /// Simulator's pointer.
        sim: u32,
        /// Oracle's pointer (`None` when the oracle ran out of memory).
        oracle: Option<u32>,
    },
    /// The oracle rejected a host-side range the simulator accepted.
    HostRange {
        /// Which host operation.
        op: &'static str,
        /// Offending device address.
        addr: u32,
    },
    /// A `memcpy_d2h` readout byte differs.
    Output {
        /// Device byte address.
        addr: u32,
        /// Simulator's byte.
        sim: u8,
        /// Oracle's byte.
        oracle: u8,
    },
    /// A global-memory byte differs after a launch.
    GlobalMem {
        /// Device byte address.
        addr: u32,
        /// Simulator's byte.
        sim: u8,
        /// Oracle's byte.
        oracle: u8,
    },
    /// A register differs at thread exit.
    Register {
        /// Linear CTA index.
        cta: u64,
        /// Thread id within the CTA.
        tid: u32,
        /// Register index.
        reg: u32,
        /// Simulator's value.
        sim: u32,
        /// Oracle's value.
        oracle: u32,
    },
    /// The predicate byte differs at thread exit.
    Pred {
        /// Linear CTA index.
        cta: u64,
        /// Thread id within the CTA.
        tid: u32,
        /// Simulator's predicate bits.
        sim: u8,
        /// Oracle's predicate bits.
        oracle: u8,
    },
    /// One side retired a thread the other did not.
    MissingThread {
        /// Linear CTA index.
        cta: u64,
        /// Thread id within the CTA.
        tid: u32,
        /// Which side is missing the thread (`"sim"` or `"oracle"`).
        missing_in: &'static str,
    },
    /// One side trapped and the other did not.
    TrapMismatch {
        /// Simulator's trap, if any.
        sim: Option<Trap>,
        /// Oracle's trap, if any.
        oracle: Option<Trap>,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::HostAlloc { bytes, sim, oracle } => write!(
                f,
                "host allocator: malloc({bytes}) -> sim 0x{sim:08x}, oracle {}",
                match oracle {
                    Some(p) => format!("0x{p:08x}"),
                    None => "out-of-memory".to_string(),
                }
            ),
            Divergence::HostRange { op, addr } => write!(
                f,
                "host range: oracle rejected {op} at 0x{addr:08x} the simulator accepted"
            ),
            Divergence::Output { addr, sim, oracle } => write!(
                f,
                "output (memcpy_d2h): byte at 0x{addr:08x} sim=0x{sim:02x} oracle=0x{oracle:02x}"
            ),
            Divergence::GlobalMem { addr, sim, oracle } => write!(
                f,
                "global memory: byte at 0x{addr:08x} sim=0x{sim:02x} oracle=0x{oracle:02x}"
            ),
            Divergence::Register {
                cta,
                tid,
                reg,
                sim,
                oracle,
            } => write!(
                f,
                "register file: R{reg} of thread {tid} (CTA {cta}) \
                 sim=0x{sim:08x} oracle=0x{oracle:08x}"
            ),
            Divergence::Pred {
                cta,
                tid,
                sim,
                oracle,
            } => write!(
                f,
                "predicates: thread {tid} (CTA {cta}) sim=0b{sim:08b} oracle=0b{oracle:08b}"
            ),
            Divergence::MissingThread {
                cta,
                tid,
                missing_in,
            } => write!(
                f,
                "thread retirement: thread {tid} (CTA {cta}) never exited in the {missing_in}"
            ),
            Divergence::TrapMismatch { sim, oracle } => write!(
                f,
                "trap: sim={} oracle={}",
                trap_str(*sim),
                trap_str(*oracle)
            ),
        }
    }
}

fn trap_str(t: Option<Trap>) -> String {
    match t {
        Some(t) => t.to_string(),
        None => "completed".to_string(),
    }
}

/// A latched divergence plus enough context to reproduce it: the kernel's
/// disassembly, the launch geometry and the argument values.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// What diverged, and where.
    pub divergence: Divergence,
    /// Human-readable location: which launch / host op.
    pub context: String,
    /// Minimal repro: kernel disassembly + dims + args (launches only).
    pub repro: Option<String>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sim-vs-oracle divergence in {}", self.divergence)?;
        write!(f, "  at {}", self.context)?;
        if let Some(repro) = &self.repro {
            write!(f, "\n  repro:\n{repro}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DivergenceReport {}

/// The lockstep shadow machine.
///
/// Attached to a [`crate::Gpu`] via [`crate::Gpu::attach_oracle`], it
/// replays every host-API call against a [`FuncMem`] and runs every
/// launch through [`run_reference`], diffing the final architectural
/// state (global memory, exit-time registers and predicates, host
/// readouts) after each step.  The **first** divergence is latched with a
/// repro dump; once latched, checking stops (the shadow state is no
/// longer meaningful).
#[derive(Debug)]
pub struct OracleMirror {
    mem: FuncMem,
    launches: u64,
    last_kernel: String,
    divergence: Option<DivergenceReport>,
    /// Both sides trapped: states legitimately differ (partial execution
    /// is schedule-dependent), so later comparisons are meaningless.
    trapped: bool,
}

impl OracleMirror {
    /// A fresh mirror for a chip with the given allocation granularity.
    pub fn new(line_bytes: u32) -> Self {
        OracleMirror {
            mem: FuncMem::new(line_bytes),
            launches: 0,
            last_kernel: String::new(),
            divergence: None,
            trapped: false,
        }
    }

    /// The latched first divergence, if any.
    pub fn divergence(&self) -> Option<&DivergenceReport> {
        self.divergence.as_ref()
    }

    /// The oracle's final global-memory image.
    pub fn global_image(&self) -> &[u8] {
        self.mem.global_image()
    }

    fn active(&self) -> bool {
        self.divergence.is_none() && !self.trapped
    }

    fn latch(&mut self, divergence: Divergence, context: String, repro: Option<String>) {
        if self.divergence.is_none() {
            self.divergence = Some(DivergenceReport {
                divergence,
                context,
                repro,
            });
        }
    }

    fn host_context(&self, what: &str) -> String {
        format!(
            "{what} after {} launch(es), last kernel `{}`",
            self.launches, self.last_kernel
        )
    }

    /// Mirrors a successful `malloc`.
    pub fn on_malloc(&mut self, bytes: u32, sim_ptr: u32) {
        if !self.active() {
            return;
        }
        let oracle = self.mem.alloc(bytes);
        if oracle != Some(sim_ptr) {
            let ctx = self.host_context("malloc");
            self.latch(
                Divergence::HostAlloc {
                    bytes,
                    sim: sim_ptr,
                    oracle,
                },
                ctx,
                None,
            );
        }
    }

    /// Mirrors a successful `memcpy_h2d`.
    pub fn on_h2d(&mut self, addr: u32, data: &[u8]) {
        if !self.active() {
            return;
        }
        if !self.mem.host_write(addr, data) {
            let ctx = self.host_context("memcpy_h2d");
            self.latch(
                Divergence::HostRange {
                    op: "memcpy_h2d",
                    addr,
                },
                ctx,
                None,
            );
        }
    }

    /// Mirrors a successful `write_const`.
    pub fn on_const_write(&mut self, offset: u32, data: &[u8]) {
        if !self.active() {
            return;
        }
        if !self.mem.const_write(offset, data) {
            let ctx = self.host_context("write_const");
            self.latch(
                Divergence::HostRange {
                    op: "write_const",
                    addr: offset,
                },
                ctx,
                None,
            );
        }
    }

    /// Checks a successful `memcpy_d2h` readout against the oracle's
    /// memory, byte for byte.
    pub fn on_d2h(&mut self, addr: u32, sim_out: &[u8]) {
        if !self.active() {
            return;
        }
        let Some(oracle_out) = self.mem.host_read(addr, sim_out.len()) else {
            let ctx = self.host_context("memcpy_d2h");
            self.latch(
                Divergence::HostRange {
                    op: "memcpy_d2h",
                    addr,
                },
                ctx,
                None,
            );
            return;
        };
        for (i, (&s, &o)) in sim_out.iter().zip(&oracle_out).enumerate() {
            if s != o {
                let ctx = self.host_context("memcpy_d2h");
                self.latch(
                    Divergence::Output {
                        addr: addr + i as u32,
                        sim: s,
                        oracle: o,
                    },
                    ctx,
                    None,
                );
                return;
            }
        }
    }

    /// Runs the reference interpreter over a finished launch and diffs the
    /// final architectural state: trap outcome, the whole global segment,
    /// then each thread's exit-time registers and predicates.
    pub fn on_launch(
        &mut self,
        kernel: &Kernel,
        dims: LaunchDims,
        args: &[u32],
        sim_trap: Option<Trap>,
        sim_mem: &MemSystem,
        sim_threads: &[ThreadState],
    ) {
        if !self.active() {
            return;
        }
        self.launches += 1;
        self.last_kernel = kernel.name().to_string();
        let context = format!(
            "launch {} of kernel `{}`, grid ({},{},{}) x block ({},{},{})",
            self.launches,
            kernel.name(),
            dims.grid.x,
            dims.grid.y,
            dims.grid.z,
            dims.block.x,
            dims.block.y,
            dims.block.z,
        );
        let repro = || {
            Some(format!(
                "{kernel}  ; grid ({},{},{}) block ({},{},{}) args {args:?}",
                dims.grid.x, dims.grid.y, dims.grid.z, dims.block.x, dims.block.y, dims.block.z,
            ))
        };

        let oracle_threads = match run_reference(&mut self.mem, kernel, dims, args) {
            Ok(t) => t,
            Err(oracle_trap) => {
                match sim_trap {
                    None => self.latch(
                        Divergence::TrapMismatch {
                            sim: None,
                            oracle: Some(oracle_trap),
                        },
                        context,
                        repro(),
                    ),
                    // Both sides trapped with a different *kind* of trap:
                    // the architectural fault model disagrees (e.g. one
                    // side bounds-checks where the other misaligns).  The
                    // mirror only runs on fault-free golden executions, so
                    // the kinds must match exactly; payloads may differ
                    // because the timing side reports per-lane addresses
                    // in scheduler order.
                    Some(t)
                        if std::mem::discriminant(&t) != std::mem::discriminant(&oracle_trap) =>
                    {
                        self.latch(
                            Divergence::TrapMismatch {
                                sim: Some(t),
                                oracle: Some(oracle_trap),
                            },
                            context,
                            repro(),
                        );
                    }
                    Some(_) => {
                        // Same trap kind: outcome agrees, but partial state
                        // is schedule-dependent — stop shadowing.
                        self.trapped = true;
                    }
                }
                return;
            }
        };
        if let Some(t) = sim_trap {
            self.latch(
                Divergence::TrapMismatch {
                    sim: Some(t),
                    oracle: None,
                },
                context,
                repro(),
            );
            return;
        }

        // Global memory, byte for byte (padding included — both sides pad
        // identically and zero-fill).
        let sim_img = sim_mem.global_image();
        let oracle_img = self.mem.global_image();
        debug_assert_eq!(sim_img.len(), oracle_img.len());
        for (i, (&s, &o)) in sim_img.iter().zip(oracle_img).enumerate() {
            if s != o {
                self.latch(
                    Divergence::GlobalMem {
                        addr: GLOBAL_BASE + i as u32,
                        sim: s,
                        oracle: o,
                    },
                    context,
                    repro(),
                );
                return;
            }
        }

        // Exit-time thread state, keyed and ordered by (CTA, thread).
        let oracle_map: BTreeMap<(u64, u32), &ThreadState> =
            oracle_threads.iter().map(|t| ((t.cta, t.tid), t)).collect();
        let mut sim_sorted: Vec<&ThreadState> = sim_threads.iter().collect();
        sim_sorted.sort_by_key(|t| (t.cta, t.tid));
        for st in &sim_sorted {
            let Some(ot) = oracle_map.get(&(st.cta, st.tid)) else {
                self.latch(
                    Divergence::MissingThread {
                        cta: st.cta,
                        tid: st.tid,
                        missing_in: "oracle",
                    },
                    context,
                    repro(),
                );
                return;
            };
            let nregs = st.regs.len().max(ot.regs.len());
            for r in 0..nregs {
                let s = st.regs.get(r).copied().unwrap_or(0);
                let o = ot.regs.get(r).copied().unwrap_or(0);
                if s != o {
                    self.latch(
                        Divergence::Register {
                            cta: st.cta,
                            tid: st.tid,
                            reg: r as u32,
                            sim: s,
                            oracle: o,
                        },
                        context,
                        repro(),
                    );
                    return;
                }
            }
            if st.preds != ot.preds {
                self.latch(
                    Divergence::Pred {
                        cta: st.cta,
                        tid: st.tid,
                        sim: st.preds,
                        oracle: ot.preds,
                    },
                    context,
                    repro(),
                );
                return;
            }
        }
        if sim_sorted.len() != oracle_map.len() {
            // Some oracle thread never exited in the sim.
            let sim_keys: std::collections::BTreeSet<(u64, u32)> =
                sim_sorted.iter().map(|t| (t.cta, t.tid)).collect();
            if let Some(&(cta, tid)) = oracle_map.keys().find(|k| !sim_keys.contains(k)) {
                self.latch(
                    Divergence::MissingThread {
                        cta,
                        tid,
                        missing_in: "sim",
                    },
                    context,
                    repro(),
                );
            }
        }
    }
}
