//! Checkpoint-and-fork execution: snapshots of the complete simulator
//! state, recorded during the golden run and restored by injection runs.
//!
//! Every injection run's machine state is bit-identical to the golden
//! run's until its first fault fires, so re-simulating the head of each
//! run is pure waste.  The campaign engine records [`Snapshot`]s of the
//! whole device — register files, shared/local memory, cache tag and data
//! arrays, SIMT stacks, scheduler state, CTA residency, timing queues and
//! statistics counters — on a cycle stride during one *recording* pass of
//! the golden execution, then forks each injection run from the nearest
//! snapshot at or before its first injection cycle.
//!
//! The state capture is a derive-`Clone` cascade through `core/` and
//! `mem/`: a snapshot clones [`MemSystem`] and every [`SimtCore`]
//! wholesale, so a newly added field is captured automatically instead of
//! being silently omitted.
//!
//! # Resuming through host code
//!
//! A snapshot can be taken *mid-launch*, but the host driver code of a
//! workload (`Workload::run`) is ordinary Rust whose call stack cannot be
//! snapshotted.  The recorder therefore also journals the result of every
//! primitive host API call ([`HostOp`]).  A forked run re-enters
//! `Workload::run` from the top with the restored device state and replays
//! the journaled prefix: host calls before the snapshot return their
//! journaled results without touching device state (device→host copies
//! *must* return journaled bytes — the in-flight launch may already have
//! overwritten those addresses by the snapshot cycle), and the in-flight
//! launch itself resumes the cycle loop from the saved [`LaunchProgress`].
//! Everything after that executes live.

use crate::core::SimtCore;
use crate::mem::{CacheStats, MemSystem};
use crate::stats::{AppStats, LaunchStats};

/// Loop-local state of an in-flight kernel launch, captured at the top of
/// the cycle loop so the launch can resume exactly where the recording
/// left off.
#[derive(Debug, Clone)]
pub(crate) struct LaunchProgress {
    /// Kernel name, asserted against the resuming launch call.
    pub(crate) kernel: String,
    /// Next grid-linear CTA awaiting dispatch.
    pub(crate) next_cta: u64,
    /// Application cycle at launch start.
    pub(crate) start_cycle: u64,
    /// Instruction counter baseline at launch start (all cores).
    pub(crate) instr0: u64,
    /// ACE register-cycle baseline at launch start (all cores).
    pub(crate) ace0: u64,
    /// Live-thread × cycle integral accumulated so far.
    pub(crate) thread_cycles: u64,
    /// L1D statistics baseline at launch start.
    pub(crate) l1d0: CacheStats,
    /// L1T statistics baseline at launch start.
    pub(crate) l1t0: CacheStats,
    /// L2 statistics baseline at launch start.
    pub(crate) l20: CacheStats,
    /// Occupancy integral accumulated so far.
    pub(crate) occ_int: f64,
    /// Live-threads-per-SM integral accumulated so far.
    pub(crate) thr_int: f64,
    /// Resident-CTAs-per-SM integral accumulated so far.
    pub(crate) cta_int: f64,
    /// Active-SM cycle integral accumulated so far.
    pub(crate) t_int: u64,
}

/// One complete architectural + microarchitectural state of a [`crate::Gpu`].
///
/// Restoring a snapshot puts back the memory system (global/local/constant
/// segments, L1D/L1T/L1C/L2 arrays with tags, dirty bits and LRU state,
/// timing queues), every SIMT core (register files, predicates, SIMT
/// stacks, barrier and scheduler state, CTA residency), the application
/// cycle and the statistics counters.  The injection-run fields of the
/// `Gpu` (armed faults, watchdog, early-exit mode, injection records) are
/// deliberately *not* part of a snapshot: they belong to the forked run,
/// not to the recorded golden execution.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Application cycle the snapshot was taken at.
    pub(crate) cycle: u64,
    /// The whole memory system.
    pub(crate) mem: MemSystem,
    /// Every SIMT core.
    pub(crate) cores: Vec<SimtCore>,
    /// Per-launch statistics accumulated so far.
    pub(crate) stats: AppStats,
    /// In-flight launch state (`None` for a between-launch snapshot taken
    /// with [`crate::Gpu::snapshot`]).
    pub(crate) progress: Option<LaunchProgress>,
    /// Journal length at capture: host ops that completed before this
    /// snapshot and must be replayed, not re-executed.
    pub(crate) host_ops_done: usize,
}

impl Snapshot {
    /// The application cycle this snapshot was taken at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Approximate heap footprint of the captured state.
    pub fn resident_bytes(&self) -> usize {
        self.mem.resident_bytes()
            + self
                .cores
                .iter()
                .map(SimtCore::resident_bytes)
                .sum::<usize>()
    }
}

/// One journaled host API call from the recording run, replayed verbatim
/// by forked runs up to their snapshot's `host_ops_done` cursor.
#[derive(Debug, Clone)]
pub(crate) enum HostOp {
    /// `Gpu::malloc` — the returned device pointer.
    Malloc { bytes: u32, ptr: u32 },
    /// `Gpu::memcpy_h2d` — already reflected in the snapshot's memory.
    H2d { ptr: u32, len: usize },
    /// `Gpu::memcpy_d2h` — the bytes the *recording* run read.  Replay
    /// must return these, not re-read restored memory: the in-flight
    /// launch may have overwritten the range by the snapshot cycle, and
    /// host control flow (e.g. BFS's stop-flag loop) branches on them.
    D2h { ptr: u32, data: Vec<u8> },
    /// `Gpu::write_const` — already reflected in the snapshot's memory.
    ConstWrite { offset: u32, len: usize },
    /// `Gpu::launch` — the stats the completed launch returned.
    Launch { kernel: String, stats: LaunchStats },
}

/// A read-only set of golden-run snapshots plus the host-op journal,
/// shared (via `Arc`) across every campaign worker thread.
#[derive(Debug)]
pub struct CheckpointStore {
    /// Snapshots in ascending cycle order.
    pub(crate) snapshots: Vec<Snapshot>,
    /// Every host API call of the recording run, in call order.
    pub(crate) journal: Vec<HostOp>,
    /// The final cycle stride (after any budget-driven doubling).
    pub(crate) interval: u64,
}

impl CheckpointStore {
    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The cycle stride snapshots were recorded on (after any
    /// budget-driven stride doubling).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The cycle of snapshot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn snapshot_cycle(&self, idx: usize) -> u64 {
        self.snapshots[idx].cycle
    }

    /// Approximate heap footprint of all held snapshots.
    pub fn resident_bytes(&self) -> usize {
        self.snapshots.iter().map(Snapshot::resident_bytes).sum()
    }

    /// Index of the latest snapshot taken at or before `cycle` — the one a
    /// run whose first fault fires at `cycle` can soundly fork from.
    pub fn nearest_at_or_before(&self, cycle: u64) -> Option<usize> {
        match self.snapshots.partition_point(|s| s.cycle <= cycle) {
            0 => None,
            n => Some(n - 1),
        }
    }
}

/// The in-flight recording state on a `Gpu` (see
/// [`crate::Gpu::record_checkpoints`]).
#[derive(Debug)]
pub(crate) struct Recorder {
    /// Current capture stride, doubled whenever the budget overflows.
    pub(crate) interval: u64,
    /// Next cycle at (or after) which to capture.
    pub(crate) next_at: u64,
    /// Memory budget for the snapshot set, bytes.
    pub(crate) budget_bytes: usize,
    /// Snapshots captured so far, ascending cycle order.
    pub(crate) snapshots: Vec<Snapshot>,
    /// Running footprint of `snapshots`.
    pub(crate) bytes: usize,
    /// Host-op journal.  `RefCell` because `memcpy_d2h` journals through
    /// `&self`.
    pub(crate) journal: std::cell::RefCell<Vec<HostOp>>,
}

impl Recorder {
    pub(crate) fn new(interval: u64, budget_bytes: usize) -> Self {
        assert!(interval > 0, "checkpoint interval must be at least 1 cycle");
        Recorder {
            interval,
            next_at: interval,
            budget_bytes: budget_bytes.max(1),
            snapshots: Vec::new(),
            bytes: 0,
            journal: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Adds a snapshot; when the set would exceed the budget, drops every
    /// other snapshot and doubles the stride (online adaptive re-striding,
    /// so the store never exceeds the budget whatever the golden length).
    pub(crate) fn push(&mut self, snap: Snapshot) {
        self.bytes += snap.resident_bytes();
        self.snapshots.push(snap);
        while self.snapshots.len() >= 2 && self.bytes > self.budget_bytes {
            let mut keep = false;
            self.snapshots.retain(|_| {
                keep = !keep;
                keep
            });
            self.interval = self.interval.saturating_mul(2);
            self.bytes = self.snapshots.iter().map(Snapshot::resident_bytes).sum();
        }
        let last = self.snapshots.last().expect("just pushed").cycle;
        self.next_at = last + self.interval;
    }

    pub(crate) fn into_store(self) -> CheckpointStore {
        CheckpointStore {
            snapshots: self.snapshots,
            journal: self.journal.into_inner(),
            interval: self.interval,
        }
    }
}

/// Replay state on a forked `Gpu`: journaled host calls are returned
/// without touching device state until the cursor reaches the in-flight
/// launch, which resumes the cycle loop from the snapshot.
#[derive(Debug)]
pub(crate) struct Replay {
    /// The shared store the fork came from.
    pub(crate) store: std::sync::Arc<CheckpointStore>,
    /// Next journal index to replay.  `Cell` because `memcpy_d2h` replays
    /// through `&self`.
    pub(crate) cursor: std::cell::Cell<usize>,
    /// Journal index of the in-flight launch (== the snapshot's
    /// `host_ops_done`); replay ends there and execution goes live.
    pub(crate) resume_at: usize,
    /// Index of the snapshot being resumed within `store`.
    pub(crate) snapshot: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycle: u64) -> Snapshot {
        Snapshot {
            cycle,
            mem: MemSystem::new(&crate::config::GpuConfig::rtx2060()),
            cores: Vec::new(),
            stats: AppStats::default(),
            progress: None,
            host_ops_done: 0,
        }
    }

    #[test]
    fn nearest_at_or_before_picks_the_latest_sound_snapshot() {
        let store = CheckpointStore {
            snapshots: vec![snap(100), snap(200), snap(300)],
            journal: Vec::new(),
            interval: 100,
        };
        assert_eq!(store.nearest_at_or_before(99), None);
        assert_eq!(store.nearest_at_or_before(100), Some(0));
        assert_eq!(store.nearest_at_or_before(250), Some(1));
        assert_eq!(store.nearest_at_or_before(300), Some(2));
        assert_eq!(store.nearest_at_or_before(u64::MAX), Some(2));
    }

    #[test]
    fn recorder_doubles_stride_when_over_budget() {
        // Each RTX 2060 snapshot costs megabytes (cache arrays), so a tiny
        // budget forces re-striding on every push past the first.
        let mut rec = Recorder::new(10, 1);
        for c in 1..=8u64 {
            rec.push(snap(c * 10));
        }
        assert_eq!(rec.snapshots.len(), 1, "budget of 1 byte keeps only one");
        assert!(rec.interval > 10, "stride must have doubled");
    }

    #[test]
    fn store_is_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<CheckpointStore>();
    }

    #[test]
    fn budget_below_one_snapshot_keeps_exactly_one() {
        // A budget smaller than any single snapshot must never empty the
        // store (a store with zero snapshots would silently degrade every
        // run to a cold start) — re-striding stops at one survivor.
        let sz = snap(10).resident_bytes();
        assert!(sz > 1, "rtx2060 snapshots cost real memory");
        let mut rec = Recorder::new(10, 1);
        for c in 1..=6u64 {
            rec.push(snap(c * 10));
            assert_eq!(
                rec.snapshots.len(),
                1,
                "after push {c}: over-budget store must hold exactly one"
            );
        }
        // The survivor of repeated halving is the *earliest* snapshot —
        // the one every fork point can soundly resume from.
        assert_eq!(rec.snapshots[0].cycle, 10);
        let store = rec.into_store();
        assert_eq!(store.len(), 1);
        assert_eq!(store.nearest_at_or_before(5), None);
        for cycle in [10, 35, u64::MAX] {
            assert_eq!(store.nearest_at_or_before(cycle), Some(0), "cycle {cycle}");
        }
    }

    #[test]
    fn stride_doubling_drops_every_other_snapshot() {
        // Budget for exactly two snapshots: the third push overflows,
        // drops the even-indexed survivors and doubles the stride.
        let sz = snap(10).resident_bytes();
        let mut rec = Recorder::new(10, 2 * sz);
        rec.push(snap(10));
        rec.push(snap(20));
        assert_eq!(rec.interval, 10, "within budget: stride unchanged");
        assert_eq!(rec.next_at, 30);
        rec.push(snap(30));
        let cycles: Vec<u64> = rec.snapshots.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, [10, 30], "keeps 1st and 3rd of [10, 20, 30]");
        assert_eq!(rec.interval, 20, "stride doubled once");
        assert_eq!(rec.next_at, 30 + 20, "next capture follows the new stride");
        // Overflowing again doubles again.
        rec.push(snap(50));
        let cycles: Vec<u64> = rec.snapshots.iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, [10, 50]);
        assert_eq!(rec.interval, 40);
        assert_eq!(rec.into_store().interval(), 40);
    }

    #[test]
    fn recorder_rejects_zero_interval() {
        let r = std::panic::catch_unwind(|| Recorder::new(0, 1024));
        assert!(r.is_err(), "a zero stride would capture every cycle");
    }
}
