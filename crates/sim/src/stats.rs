//! Execution statistics: per-launch and per-application.

use crate::mem::CacheStats;
use serde::{Deserialize, Serialize};

/// Statistics of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Kernel name.
    pub kernel: String,
    /// GPU cycle at launch start.
    pub start_cycle: u64,
    /// GPU cycle at launch completion.
    pub end_cycle: u64,
    /// Warp instructions issued during the launch.
    pub instructions: u64,
    /// Time-weighted mean warp occupancy on active SMs (live warps divided
    /// by the SM's maximum warps) — the red dots of the paper's Fig. 3.
    pub occupancy: f64,
    /// Time-weighted mean live threads per active SM (drives the paper's
    /// `df_reg` derating factor).
    pub mean_threads_per_sm: f64,
    /// Time-weighted mean resident CTAs per active SM (drives `df_smem`).
    pub mean_ctas_per_sm: f64,
    /// Registers allocated per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per CTA, bytes.
    pub smem_per_cta: u32,
    /// Local memory per thread, bytes.
    pub lmem_per_thread: u32,
    /// ACE analysis: accumulated register def-to-last-use span cycles
    /// (register-units x cycles).
    pub ace_reg_cycles: u64,
    /// Live-thread x cycle integral over the launch.
    pub thread_cycles: u64,
    /// L1 data-cache accesses during this launch (all SMs).
    pub l1d_stats: CacheStats,
    /// L1 texture-cache accesses during this launch (all SMs).
    pub l1t_stats: CacheStats,
    /// L2 accesses during this launch (all banks).
    pub l2_stats: CacheStats,
}

impl LaunchStats {
    /// Cycles spent in this launch.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// The ACE-analysis estimate of the register-file AVF, on the same
    /// per-thread-allocated-registers basis as an (underated) injection
    /// failure ratio: ACE register-cycles over total allocated
    /// register-cycles.  The paper (section II.C) argues residency-style
    /// ACE estimates inherently overestimate what injection measures;
    /// see `examples/ace_vs_injection.rs`.
    pub fn ace_rf_avf(&self) -> f64 {
        let total = self.thread_cycles as f64 * f64::from(self.regs_per_thread);
        if total <= 0.0 {
            0.0
        } else {
            (self.ace_reg_cycles as f64 / total).clamp(0.0, 1.0)
        }
    }
}

/// The cycle window of one kernel launch — the unit the fault-injection
/// campaign samples injection cycles from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelWindow {
    /// Kernel name.
    pub kernel: String,
    /// First cycle of the launch.
    pub start: u64,
    /// One past the last cycle of the launch.
    pub end: u64,
}

/// Statistics accumulated over a whole application run (all launches).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AppStats {
    /// One entry per kernel launch, in execution order.
    pub launches: Vec<LaunchStats>,
}

impl AppStats {
    /// Total cycles across all launches.
    pub fn total_cycles(&self) -> u64 {
        self.launches.iter().map(LaunchStats::cycles).sum()
    }

    /// Cycle windows of every invocation of the named static kernel.
    pub fn windows_of(&self, kernel: &str) -> Vec<KernelWindow> {
        self.launches
            .iter()
            .filter(|l| l.kernel == kernel)
            .map(|l| KernelWindow {
                kernel: l.kernel.clone(),
                start: l.start_cycle,
                end: l.end_cycle,
            })
            .collect()
    }

    /// Names of the static kernels launched, in first-use order, deduplicated.
    pub fn static_kernels(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for l in &self.launches {
            if !out.contains(&l.kernel) {
                out.push(l.kernel.clone());
            }
        }
        out
    }

    /// Total cycles spent in all invocations of the named static kernel.
    pub fn cycles_of(&self, kernel: &str) -> u64 {
        self.launches
            .iter()
            .filter(|l| l.kernel == kernel)
            .map(LaunchStats::cycles)
            .sum()
    }

    /// Cycle-weighted mean occupancy of the named static kernel across its
    /// invocations (paper §VI.C).
    pub fn occupancy_of(&self, kernel: &str) -> f64 {
        let total = self.cycles_of(kernel);
        if total == 0 {
            return 0.0;
        }
        self.launches
            .iter()
            .filter(|l| l.kernel == kernel)
            .map(|l| l.occupancy * l.cycles() as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(name: &str, start: u64, end: u64, occ: f64) -> LaunchStats {
        LaunchStats {
            kernel: name.to_string(),
            start_cycle: start,
            end_cycle: end,
            instructions: 0,
            occupancy: occ,
            mean_threads_per_sm: 0.0,
            mean_ctas_per_sm: 0.0,
            regs_per_thread: 8,
            smem_per_cta: 0,
            lmem_per_thread: 0,
            ace_reg_cycles: 0,
            thread_cycles: 0,
            l1d_stats: CacheStats::default(),
            l1t_stats: CacheStats::default(),
            l2_stats: CacheStats::default(),
        }
    }

    #[test]
    fn windows_and_cycles_per_static_kernel() {
        let app = AppStats {
            launches: vec![
                launch("a", 0, 10, 0.5),
                launch("b", 10, 30, 0.25),
                launch("a", 30, 40, 0.5),
            ],
        };
        assert_eq!(app.total_cycles(), 40);
        assert_eq!(app.cycles_of("a"), 20);
        assert_eq!(app.windows_of("a").len(), 2);
        assert_eq!(app.windows_of("a")[1].start, 30);
        assert_eq!(app.static_kernels(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn occupancy_is_cycle_weighted() {
        let app = AppStats {
            launches: vec![launch("a", 0, 10, 1.0), launch("a", 10, 40, 0.0)],
        };
        assert!((app.occupancy_of("a") - 0.25).abs() < 1e-12);
        assert_eq!(app.occupancy_of("missing"), 0.0);
    }
}
