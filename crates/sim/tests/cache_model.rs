//! Model-based tests: the set-associative cache must behave like a simple
//! reference model (a bounded map with per-set LRU), and fault flips must
//! change exactly the targeted bit. A seeded inline PRNG replaces the
//! former `proptest` strategies so the suite runs hermetically offline.

use gpufi_sim::mem::Cache;
use gpufi_sim::{CacheConfig, FlipOutcome, TAG_BITS};

const LINE: usize = 16;

fn cfg() -> CacheConfig {
    CacheConfig {
        sets: 4,
        ways: 2,
        line_bytes: LINE as u32,
    }
}

/// splitmix64 — tiny, seedable, deterministic.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Reference model: per-set vector of (line_addr, data, dirty) with LRU
/// order (front = most recent).
struct Model {
    sets: Vec<Vec<(u64, Vec<u8>, bool)>>,
}

impl Model {
    fn new() -> Self {
        Model {
            sets: (0..4).map(|_| Vec::new()).collect(),
        }
    }

    fn set_of(la: u64) -> usize {
        (la % 4) as usize
    }

    fn read(&mut self, la: u64) -> Option<Vec<u8>> {
        let set = &mut self.sets[Self::set_of(la)];
        let pos = set.iter().position(|(a, _, _)| *a == la)?;
        let entry = set.remove(pos);
        let data = entry.1.clone();
        set.insert(0, entry);
        Some(data)
    }

    fn write(&mut self, la: u64, offset: usize, bytes: &[u8], dirty: bool) -> bool {
        let set = &mut self.sets[Self::set_of(la)];
        let Some(pos) = set.iter().position(|(a, _, _)| *a == la) else {
            return false;
        };
        let mut entry = set.remove(pos);
        entry.1[offset..offset + bytes.len()].copy_from_slice(bytes);
        entry.2 |= dirty;
        set.insert(0, entry);
        true
    }

    fn fill(&mut self, la: u64, data: &[u8], dirty: bool) -> Option<(u64, Vec<u8>)> {
        let set = &mut self.sets[Self::set_of(la)];
        // Refill in place, no writeback.
        if let Some(pos) = set.iter().position(|(a, _, _)| *a == la) {
            set.remove(pos);
            set.insert(0, (la, data.to_vec(), dirty));
            return None;
        }
        let mut evicted = None;
        if set.len() == 2 {
            let victim = set.pop().expect("full set");
            if victim.2 {
                evicted = Some((victim.0, victim.1));
            }
        }
        set.insert(0, (la, data.to_vec(), dirty));
        evicted
    }
}

/// The cache agrees with the reference model on hits, data, and dirty
/// writebacks, for arbitrary operation sequences.
#[test]
fn cache_matches_reference_model() {
    let mut rng = Prng(21);
    for _ in 0..128 {
        let mut cache = Cache::new(cfg());
        let mut model = Model::new();
        let steps = 1 + rng.below(119);
        for _ in 0..steps {
            let la = rng.below(32);
            match rng.below(4) {
                0 => {
                    let mut buf = vec![0u8; LINE];
                    let hit = cache.read(la, 0, &mut buf);
                    let expect = model.read(la);
                    assert_eq!(hit, expect.is_some(), "hit mismatch at {la}");
                    if let Some(data) = expect {
                        assert_eq!(&buf, &data, "data mismatch at {la}");
                    }
                }
                1 => {
                    let offset = rng.below(LINE as u64) as usize;
                    let value = rng.next() as u8;
                    let dirty = rng.below(2) == 1;
                    let hit = cache.write(la, offset as u32, &[value], dirty);
                    let expect = model.write(la, offset, &[value], dirty);
                    assert_eq!(hit, expect, "write-hit mismatch at {la}");
                }
                2 => {
                    let fill_byte = rng.next() as u8;
                    let dirty = rng.below(2) == 1;
                    let data = vec![fill_byte; LINE];
                    let wb = cache.fill(la, &data, dirty);
                    let expect = model.fill(la, &data, dirty);
                    match (wb, expect) {
                        (None, None) => {}
                        (Some(w), Some((ea, ed))) => {
                            assert_eq!(w.line_addr, ea, "victim addr");
                            assert_eq!(w.data, ed, "victim data");
                        }
                        (w, e) => {
                            panic!("writeback mismatch: {:?} vs {:?}", w, e.map(|x| x.0))
                        }
                    }
                }
                _ => {
                    cache.invalidate(la);
                    let set = &mut model.sets[Model::set_of(la)];
                    set.retain(|(a, _, _)| *a != la);
                }
            }
        }
    }
}

/// Flipping a data bit changes exactly that bit of the stored line;
/// flipping it twice restores the original.
#[test]
fn data_flip_is_involutive_and_local() {
    let mut rng = Prng(22);
    for _ in 0..128 {
        let la = rng.below(8);
        let bit = rng.below(LINE as u64 * 8);
        let fill_byte = rng.next() as u8;
        let mut cache = Cache::new(cfg());
        cache.fill(la, &[fill_byte; LINE], false);
        // The fill landed somewhere in la's set; find its flat line index
        // by probing each line's bit space.
        let bpl = LINE as u64 * 8 + u64::from(TAG_BITS);
        let mut flipped_line = None;
        for line in 0..8u64 {
            let outcome = cache.flip_bit(line * bpl + u64::from(TAG_BITS) + bit);
            if outcome == FlipOutcome::Data {
                flipped_line = Some(line);
                break;
            }
        }
        let line = flipped_line.expect("one valid line exists");
        let mut buf = vec![0u8; LINE];
        assert!(cache.read(la, 0, &mut buf));
        let byte = (bit / 8) as usize;
        for (i, b) in buf.iter().enumerate() {
            if i == byte {
                assert_eq!(*b, fill_byte ^ (1 << (bit % 8)), "targeted byte");
            } else {
                assert_eq!(*b, fill_byte, "untouched byte {i}");
            }
        }
        // Second flip restores.
        cache.flip_bit(line * bpl + u64::from(TAG_BITS) + bit);
        assert!(cache.read(la, 0, &mut buf));
        assert!(buf.iter().all(|b| *b == fill_byte));
    }
}

/// A tag flip makes the old address miss and some aliased address hit,
/// preserving the data bytes.
#[test]
fn tag_flip_aliases_without_corrupting_data() {
    let mut rng = Prng(23);
    for _ in 0..128 {
        let la = rng.below(8);
        let tag_bit = rng.below(16); // keep aliases in a sane range
        let fill_byte = rng.next() as u8;
        let mut cache = Cache::new(cfg());
        cache.fill(la, &[fill_byte; LINE], false);
        let bpl = LINE as u64 * 8 + u64::from(TAG_BITS);
        let mut ok = false;
        for line in 0..8u64 {
            if cache.flip_bit(line * bpl + tag_bit) == FlipOutcome::Tag {
                ok = true;
                break;
            }
        }
        assert!(ok);
        assert!(!cache.probe(la), "old address must miss");
        // The alias keeps the set (tag flips don't move lines across sets):
        // line_addr' = (tag ^ (1<<b)) * sets + set.
        let set = la % 4;
        let tag = la / 4;
        let alias = (tag ^ (1 << tag_bit)) * 4 + set;
        assert!(cache.probe(alias), "alias {alias} must hit");
        let mut buf = vec![0u8; LINE];
        cache.read(alias, 0, &mut buf);
        assert!(buf.iter().all(|b| *b == fill_byte), "data preserved");
    }
}
