//! End-to-end execution tests: SIMT control flow, barriers, memory spaces,
//! traps and fault injection observable through the public API.

use gpufi_isa::Module;
use gpufi_sim::{FaultTarget, Gpu, GpuConfig, InjectionPlan, LaunchDims, Scope, Trap};

fn small_gpu() -> Gpu {
    let mut cfg = GpuConfig::rtx2060();
    cfg.num_sms = 4;
    Gpu::new(cfg)
}

/// y[i] = x[i] * 2 for 64 elements over 2 CTAs.
#[test]
fn simple_map_kernel() {
    let m = Module::assemble(
        r#"
.kernel double
.params 3
    S2R R3, SR_TID.X
    S2R R4, SR_CTAID.X
    S2R R5, SR_NTID.X
    IMAD R3, R4, R5, R3
    ISETP.GE P0, R3, R2
@P0 EXIT
    SHL R4, R3, 2
    IADD R5, R0, R4
    LDG R6, [R5]
    IADD R6, R6, R6
    IADD R5, R1, R4
    STG [R5], R6
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let n = 64u32;
    let x = gpu.malloc(n * 4).unwrap();
    let y = gpu.malloc(n * 4).unwrap();
    gpu.write_u32s(x, &(0..n).collect::<Vec<_>>()).unwrap();
    let stats = gpu
        .launch(
            m.kernel("double").unwrap(),
            LaunchDims::new(2, 32),
            &[x, y, n],
        )
        .unwrap();
    assert!(stats.cycles() > 0);
    assert!(stats.instructions > 0);
    let out = gpu.read_u32s(y, n as usize).unwrap();
    assert_eq!(out, (0..n).map(|v| v * 2).collect::<Vec<_>>());
}

/// Divergent if/else with SSY/SYNC: even lanes add 1, odd lanes add 2.
#[test]
fn divergence_reconverges() {
    let m = Module::assemble(
        r#"
.kernel diverge
.params 1
    S2R R1, SR_TID.X
    AND R2, R1, 1
    ISETP.EQ P0, R2, 0
    MOV R3, 100
    SSY join
@!P0 BRA odd
    IADD R3, R3, 1
    BRA join
odd:
    IADD R3, R3, 2
join:
    SYNC
    ; all lanes: R3 += 10 after reconvergence
    IADD R3, R3, 10
    SHL R4, R1, 2
    IADD R4, R0, R4
    STG [R4], R3
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let out_buf = gpu.malloc(32 * 4).unwrap();
    gpu.launch(
        m.kernel("diverge").unwrap(),
        LaunchDims::new(1, 32),
        &[out_buf],
    )
    .unwrap();
    let out = gpu.read_u32s(out_buf, 32).unwrap();
    for (i, v) in out.iter().enumerate() {
        let expect = if i % 2 == 0 { 111 } else { 112 };
        assert_eq!(*v, expect, "lane {i}");
    }
}

/// A data-dependent loop: each lane iterates `tid` times.
#[test]
fn divergent_loop() {
    let m = Module::assemble(
        r#"
.kernel looped
.params 1
    S2R R1, SR_TID.X
    MOV R2, 0          ; counter
    MOV R3, 0          ; sum
    SSY done
loop:
    ISETP.GE P0, R2, R1
@P0 BRA done
    IADD R3, R3, 5
    IADD R2, R2, 1
    BRA loop
done:
    SYNC
    SHL R4, R1, 2
    IADD R4, R0, R4
    STG [R4], R3
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let out_buf = gpu.malloc(32 * 4).unwrap();
    gpu.launch(
        m.kernel("looped").unwrap(),
        LaunchDims::new(1, 32),
        &[out_buf],
    )
    .unwrap();
    let out = gpu.read_u32s(out_buf, 32).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 5 * i as u32, "lane {i}");
    }
}

/// Shared-memory tree reduction with barriers: one CTA sums 64 values.
#[test]
fn shared_memory_reduction_with_barriers() {
    let m = Module::assemble(
        r#"
.kernel reduce
.params 2
.smem 256
    S2R R2, SR_TID.X
    SHL R3, R2, 2
    IADD R4, R0, R3
    LDG R5, [R4]
    STS [R3], R5
    BAR
    MOV R6, 32
rloop:
    ISETP.GE P0, R2, R6
@P0 BRA skip
    IADD R7, R2, R6
    SHL R7, R7, 2
    LDS R8, [R7]
    LDS R9, [R3]
    IADD R9, R9, R8
    STS [R3], R9
skip:
    BAR
    SHR R6, R6, 1
    ISETP.GT P1, R6, 0
@P1 BRA rloop
    ISETP.NE P2, R2, 0
@P2 EXIT
    LDS R10, [R3]
    STG [R1], R10
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let n = 64u32;
    let x = gpu.malloc(n * 4).unwrap();
    let out_buf = gpu.malloc(4).unwrap();
    gpu.write_u32s(x, &(1..=n).collect::<Vec<_>>()).unwrap();
    gpu.launch(
        m.kernel("reduce").unwrap(),
        LaunchDims::new(1, 64),
        &[x, out_buf],
    )
    .unwrap();
    let out = gpu.read_u32s(out_buf, 1).unwrap();
    assert_eq!(out[0], n * (n + 1) / 2);
}

/// Local memory is private per thread and persists across instructions.
#[test]
fn local_memory_private_per_thread() {
    let m = Module::assemble(
        r#"
.kernel locals
.params 1
.lmem 16
    S2R R1, SR_TID.X
    S2R R5, SR_CTAID.X
    S2R R6, SR_NTID.X
    IMAD R1, R5, R6, R1 ; global thread id
    MOV R2, 0
    STL [R2+4], R1      ; local[4] = global tid (private per thread)
    LDL R3, [R2+4]
    IADD R3, R3, 1000
    SHL R4, R1, 2
    IADD R4, R0, R4
    STG [R4], R3
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let out_buf = gpu.malloc(64 * 4).unwrap();
    gpu.launch(
        m.kernel("locals").unwrap(),
        LaunchDims::new(2, 32),
        &[out_buf],
    )
    .unwrap();
    let out = gpu.read_u32s(out_buf, 64).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 1000 + i as u32, "thread {i}");
    }
}

/// Texture loads read global memory through the texture cache.
#[test]
fn texture_path_reads_memory() {
    let m = Module::assemble(
        r#"
.kernel tex
.params 2
    S2R R2, SR_TID.X
    SHL R3, R2, 2
    IADD R4, R0, R3
    LDT R5, [R4]
    IADD R5, R5, 7
    IADD R6, R1, R3
    STG [R6], R5
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let x = gpu.malloc(32 * 4).unwrap();
    let y = gpu.malloc(32 * 4).unwrap();
    gpu.write_u32s(x, &(0..32).collect::<Vec<_>>()).unwrap();
    gpu.launch(m.kernel("tex").unwrap(), LaunchDims::new(1, 32), &[x, y])
        .unwrap();
    assert_eq!(gpu.read_u32s(y, 32).unwrap(), (7..39).collect::<Vec<u32>>());
}

/// Null-page dereferences trap; other unbacked addresses are demand-paged
/// zeros (matching GPGPU-Sim's functional memory).
#[test]
fn null_page_traps_but_wild_loads_read_zero() {
    let m =
        Module::assemble(".kernel null\n.params 0\n MOV R1, 16\n LDG R2, [R1]\n EXIT\n").unwrap();
    let mut gpu = small_gpu();
    let err = gpu
        .launch(m.kernel("null").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap_err();
    assert!(matches!(err, Trap::InvalidAddress { .. }));

    let m = Module::assemble(
        ".kernel wild\n.params 1\n MOV R1, 0x7f000000\n LDG R2, [R1]\n \
         STG [R0], R2\n EXIT\n",
    )
    .unwrap();
    let mut gpu = small_gpu();
    let out = gpu.malloc(128).unwrap();
    gpu.write_u32s(out, &[7]).unwrap();
    gpu.launch(m.kernel("wild").unwrap(), LaunchDims::new(1, 1), &[out])
        .unwrap();
    assert_eq!(gpu.read_u32s(out, 1).unwrap()[0], 0, "wild load reads zero");
}

/// Misaligned accesses trap.
#[test]
fn misaligned_store_traps() {
    let m = Module::assemble(".kernel mis\n.params 1\n IADD R1, R0, 2\n STG [R1], R0\n EXIT\n")
        .unwrap();
    let mut gpu = small_gpu();
    let buf = gpu.malloc(16).unwrap();
    let err = gpu
        .launch(m.kernel("mis").unwrap(), LaunchDims::new(1, 1), &[buf])
        .unwrap_err();
    assert!(matches!(err, Trap::Misaligned { .. }));
}

/// An infinite loop hits the watchdog.
#[test]
fn watchdog_fires() {
    let m = Module::assemble(".kernel spin\nhere: BRA here\n").unwrap();
    let mut gpu = small_gpu();
    gpu.set_watchdog(10_000);
    let err = gpu
        .launch(m.kernel("spin").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap_err();
    assert_eq!(err, Trap::Watchdog);
}

/// The wall-clock watchdog aborts with its own trap, independently of the
/// cycle count: an already-expired deadline kills even a kernel that would
/// finish in a handful of cycles, and the trap classifies as a timeout.
#[test]
fn wall_clock_watchdog_fires() {
    let m = Module::assemble(".kernel quick\n NOP\n EXIT\n").unwrap();
    let mut gpu = small_gpu();
    gpu.set_wall_watchdog(std::time::Duration::ZERO);
    let err = gpu
        .launch(m.kernel("quick").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap_err();
    assert_eq!(err, Trap::WallClock);
    assert!(err.is_timeout());

    // A generous deadline must not perturb a normal run.
    let mut gpu = small_gpu();
    gpu.set_wall_watchdog(std::time::Duration::from_secs(3600));
    gpu.launch(m.kernel("quick").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap();
}

/// Cycle counters accumulate across launches and windows are recorded.
#[test]
fn multi_launch_windows() {
    let m = Module::assemble(".kernel a\n NOP\n EXIT\n.kernel b\n NOP\n NOP\n EXIT\n").unwrap();
    let mut gpu = small_gpu();
    gpu.launch(m.kernel("a").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap();
    gpu.launch(m.kernel("b").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap();
    gpu.launch(m.kernel("a").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap();
    let stats = gpu.stats();
    assert_eq!(stats.launches.len(), 3);
    assert_eq!(stats.windows_of("a").len(), 2);
    assert_eq!(
        stats.static_kernels(),
        vec!["a".to_string(), "b".to_string()]
    );
    // Windows are disjoint and ordered.
    let w = &stats.launches;
    assert!(w[0].end_cycle <= w[1].start_cycle);
    assert!(w[1].end_cycle <= w[2].start_cycle);
}

/// A register-file fault in an active thread changes the output (or at
/// least is recorded as applied).
#[test]
fn register_fault_is_applied_and_can_corrupt() {
    let src = r#"
.kernel addone
.params 2
    S2R R2, SR_TID.X
    SHL R3, R2, 2
    IADD R4, R0, R3
    LDG R5, [R4]
    MOV R6, 0
pad0: IADD R6, R6, 1
    ISETP.LT P0, R6, 200
@P0 BRA pad0
    IADD R5, R5, 1
    IADD R7, R1, R3
    STG [R7], R5
    EXIT
"#;
    let m = Module::assemble(src).unwrap();
    // Golden run.
    let mut gpu = small_gpu();
    let x = gpu.malloc(32 * 4).unwrap();
    let y = gpu.malloc(32 * 4).unwrap();
    gpu.write_u32s(x, &[5; 32]).unwrap();
    gpu.launch(m.kernel("addone").unwrap(), LaunchDims::new(1, 32), &[x, y])
        .unwrap();
    let golden = gpu.read_u32s(y, 32).unwrap();
    assert_eq!(golden, vec![6u32; 32]);
    let golden_cycles = gpu.stats().total_cycles();

    // Faulty run: flip bit 7 of R6 (the pad counter) mid-loop in some
    // thread.  The loop self-corrects (counter compares >=) or produces a
    // timeout/longer run; either way the record must show "applied".
    let mut gpu = small_gpu();
    let x = gpu.malloc(32 * 4).unwrap();
    let y = gpu.malloc(32 * 4).unwrap();
    gpu.write_u32s(x, &[5; 32]).unwrap();
    gpu.arm_faults(InjectionPlan::single(
        golden_cycles / 2,
        FaultTarget::RegisterFile {
            scope: Scope::Thread,
            entry_lot: 3,
            reg: 5, // R5: the loaded value
            bits: vec![30],
        },
    ));
    gpu.set_watchdog(golden_cycles * 2);
    let res = gpu.launch(m.kernel("addone").unwrap(), LaunchDims::new(1, 32), &[x, y]);
    let rec = &gpu.injection_records()[0];
    assert!(rec.applied, "fault must land in an active thread");
    assert_eq!(rec.structure, "register file");
    if res.is_ok() {
        let out = gpu.read_u32s(y, 32).unwrap();
        // R5 flip at bit 30 must corrupt exactly one output element,
        // unless the flip happened after the store retired.
        let diffs = out.iter().zip(&golden).filter(|(a, b)| a != b).count();
        assert!(diffs <= 1, "at most one corrupted element, got {diffs}");
    }
}

/// Warp-scope faults hit all lanes of one warp.
#[test]
fn warp_fault_corrupts_whole_warp() {
    let src = r#"
.kernel addone
.params 2
    S2R R2, SR_TID.X
    S2R R3, SR_CTAID.X
    S2R R4, SR_NTID.X
    IMAD R2, R3, R4, R2
    MOV R6, 0
pad1: IADD R6, R6, 1
    ISETP.LT P0, R6, 100
@P0 BRA pad1
    SHL R3, R2, 2
    IADD R4, R0, R3
    LDG R5, [R4]
    IADD R5, R5, 1
    IADD R7, R1, R3
    STG [R7], R5
    EXIT
"#;
    let m = Module::assemble(src).unwrap();
    let mut gpu = small_gpu();
    let x = gpu.malloc(64 * 4).unwrap();
    let y = gpu.malloc(64 * 4).unwrap();
    gpu.write_u32s(x, &[0; 64]).unwrap();
    gpu.launch(m.kernel("addone").unwrap(), LaunchDims::new(2, 32), &[x, y])
        .unwrap();
    let golden_cycles = gpu.stats().total_cycles();

    let mut gpu = small_gpu();
    let x = gpu.malloc(64 * 4).unwrap();
    let y = gpu.malloc(64 * 4).unwrap();
    gpu.write_u32s(x, &[0; 64]).unwrap();
    gpu.arm_faults(InjectionPlan::single(
        golden_cycles / 3,
        FaultTarget::RegisterFile {
            scope: Scope::Warp,
            entry_lot: 0,
            reg: 0, // R0: the x-pointer parameter — every lane now loads junk
            bits: vec![25],
        },
    ));
    gpu.set_watchdog(golden_cycles * 4);
    let res = gpu.launch(m.kernel("addone").unwrap(), LaunchDims::new(2, 32), &[x, y]);
    assert!(gpu.injection_records()[0].applied);
    // Corrupting a pointer by bit 25 (32 MB) almost certainly leaves the
    // allocation: expect a crash; tolerate SDC if the flip aliased.
    if let Err(t) = res {
        assert!(matches!(
            t,
            Trap::InvalidAddress { .. } | Trap::Misaligned { .. }
        ));
    }
}

/// Faults armed for cycles after the application ends are recorded as
/// never-applied (skipped) — they stay pending.
#[test]
fn late_fault_never_fires() {
    let m = Module::assemble(".kernel a\n NOP\n EXIT\n").unwrap();
    let mut gpu = small_gpu();
    gpu.arm_faults(InjectionPlan::single(
        1_000_000,
        FaultTarget::L2 { bits: vec![0] },
    ));
    gpu.launch(m.kernel("a").unwrap(), LaunchDims::new(1, 32), &[])
        .unwrap();
    assert!(gpu.injection_records().is_empty());
}

/// L2 faults on valid lines corrupt data read back by the host.
#[test]
fn l2_fault_visible_after_run() {
    let m = Module::assemble(
        r#"
.kernel touch
.params 1
    S2R R1, SR_TID.X
    SHL R2, R1, 2
    IADD R2, R0, R2
    MOV R3, 0
    STG [R2], R3
    MOV R4, 0
pad2: IADD R4, R4, 1
    ISETP.LT P0, R4, 500
@P0 BRA pad2
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let buf = gpu.malloc(32 * 4).unwrap();
    gpu.launch(m.kernel("touch").unwrap(), LaunchDims::new(1, 32), &[buf])
        .unwrap();
    let golden_cycles = gpu.stats().total_cycles();

    // Re-run with L2 data faults injected mid-run over many bits to make a
    // visible corruption likely.
    let mut gpu = small_gpu();
    let buf = gpu.malloc(32 * 4).unwrap();
    let bits: Vec<u64> = (0..64).map(|i| 57 + i * 8).collect(); // data bits, first line of bank 0
    gpu.arm_faults(InjectionPlan::single(
        golden_cycles * 2 / 3,
        FaultTarget::L2 { bits },
    ));
    gpu.set_watchdog(golden_cycles * 2);
    gpu.launch(m.kernel("touch").unwrap(), LaunchDims::new(1, 32), &[buf])
        .unwrap();
    let rec = &gpu.injection_records()[0];
    assert_eq!(rec.structure, "L2 cache");
    // At least the record exists; corruption depends on line placement.
    assert_eq!(rec.outcomes.len(), 64);
}

/// Occupancy statistics are within (0, 1] and residency means are sane.
#[test]
fn occupancy_statistics() {
    let m = Module::assemble(
        ".kernel a\n MOV R1, 0\nl: IADD R1, R1, 1\n ISETP.LT P0, R1, 50\n@P0 BRA l\n EXIT\n",
    )
    .unwrap();
    let mut gpu = small_gpu();
    let stats = gpu
        .launch(m.kernel("a").unwrap(), LaunchDims::new(8, 128), &[])
        .unwrap();
    assert!(stats.occupancy > 0.0 && stats.occupancy <= 1.0);
    assert!(stats.mean_threads_per_sm > 0.0);
    assert!(stats.mean_ctas_per_sm >= 1.0);
}

/// GTX Titan (no L1D) runs the same kernels.
#[test]
fn titan_runs_without_l1d() {
    let m = Module::assemble(
        r#"
.kernel copy
.params 2
    S2R R2, SR_TID.X
    SHL R3, R2, 2
    IADD R4, R0, R3
    LDG R5, [R4]
    IADD R6, R1, R3
    STG [R6], R5
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = Gpu::new(GpuConfig::gtx_titan());
    let x = gpu.malloc(32 * 4).unwrap();
    let y = gpu.malloc(32 * 4).unwrap();
    gpu.write_u32s(x, &(100..132).collect::<Vec<_>>()).unwrap();
    gpu.launch(m.kernel("copy").unwrap(), LaunchDims::new(1, 32), &[x, y])
        .unwrap();
    assert_eq!(
        gpu.read_u32s(y, 32).unwrap(),
        (100..132).collect::<Vec<_>>()
    );
}

/// Identical configuration ⇒ bit-identical results and cycle counts
/// (determinism is what makes golden-run classification sound).
#[test]
fn execution_is_deterministic() {
    let m = Module::assemble(
        r#"
.kernel k
.params 2
    S2R R2, SR_TID.X
    S2R R3, SR_CTAID.X
    S2R R4, SR_NTID.X
    IMAD R2, R3, R4, R2
    SHL R3, R2, 2
    IADD R4, R0, R3
    LDG R5, [R4]
    I2F R5, R5
    FMUL R5, R5, 1.5f
    F2I R5, R5
    IADD R6, R1, R3
    STG [R6], R5
    EXIT
"#,
    )
    .unwrap();
    let run = || {
        let mut gpu = small_gpu();
        let x = gpu.malloc(256 * 4).unwrap();
        let y = gpu.malloc(256 * 4).unwrap();
        gpu.write_u32s(x, &(0..256).collect::<Vec<_>>()).unwrap();
        gpu.launch(m.kernel("k").unwrap(), LaunchDims::new(8, 32), &[x, y])
            .unwrap();
        (gpu.read_u32s(y, 256).unwrap(), gpu.stats().total_cycles())
    };
    let (o1, c1) = run();
    let (o2, c2) = run();
    assert_eq!(o1, o2);
    assert_eq!(c1, c2);
}

/// Constant-space loads read the constant bank through the L1 constant
/// cache, and L1C faults corrupt subsequent hits (the paper's future-work
/// extension).
#[test]
fn constant_cache_loads_and_faults() {
    let m = Module::assemble(
        r#"
.kernel cread
.params 1
    S2R  R1, SR_TID.X
    SHL  R2, R1, 2
    LDC  R3, [R2]        ; c[tid]
    LDC  R4, [R2+128]    ; c[tid + 32]
    IADD R3, R3, R4
    IADD R5, R0, R2
    STG  [R5], R3
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    let vals: Vec<u32> = (0..64).collect();
    let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    gpu.write_const(0, &bytes).unwrap();
    let out = gpu.malloc(32 * 4).unwrap();
    gpu.launch(m.kernel("cread").unwrap(), LaunchDims::new(1, 32), &[out])
        .unwrap();
    let got = gpu.read_u32s(out, 32).unwrap();
    let expect: Vec<u32> = (0..32).map(|i| i + (i + 32)).collect();
    assert_eq!(got, expect);

    // Reads past the written extent are demand-zero, misalignment traps.
    let m2 = Module::assemble(
        ".kernel far\n.params 1\n MOV R1, 0x8000\n LDC R2, [R1]\n STG [R0], R2\n EXIT\n",
    )
    .unwrap();
    let mut gpu = small_gpu();
    let vals: Vec<u8> = vec![1; 64];
    gpu.write_const(0, &vals).unwrap();
    let out = gpu.malloc(128).unwrap();
    gpu.write_u32s(out, &[9]).unwrap();
    gpu.launch(m2.kernel("far").unwrap(), LaunchDims::new(1, 1), &[out])
        .unwrap();
    assert_eq!(gpu.read_u32s(out, 1).unwrap()[0], 0);
}

/// An armed L1 constant-cache fault is resolved and recorded.
#[test]
fn l1_const_fault_records() {
    let m = Module::assemble(
        r#"
.kernel cspin
.params 1
    S2R  R1, SR_TID.X
    SHL  R2, R1, 2
    MOV  R4, 0
cl: LDC  R3, [R2]
    IADD R4, R4, 1
    ISETP.LT P0, R4, 50
@P0 BRA cl
    IADD R5, R0, R2
    STG  [R5], R3
    EXIT
"#,
    )
    .unwrap();
    let mut gpu = small_gpu();
    gpu.write_const(0, &[0xAA; 128]).unwrap();
    let out = gpu.malloc(128).unwrap();
    gpu.launch(m.kernel("cspin").unwrap(), LaunchDims::new(1, 32), &[out])
        .unwrap();
    let golden_cycles = gpu.stats().total_cycles();

    let mut gpu = small_gpu();
    gpu.write_const(0, &[0xAA; 128]).unwrap();
    let out = gpu.malloc(128).unwrap();
    // Flip data bits of the first lines of SM0's constant cache mid-run.
    let bpl = 64 * 8 + u64::from(gpufi_sim::TAG_BITS);
    let bits: Vec<u64> = (0..8u64)
        .map(|l| l * bpl + u64::from(gpufi_sim::TAG_BITS))
        .collect();
    gpu.arm_faults(InjectionPlan::single(
        golden_cycles / 2,
        FaultTarget::L1Const {
            core_lot: 0,
            replicate: 4,
            bits,
        },
    ));
    gpu.set_watchdog(golden_cycles * 2);
    gpu.launch(m.kernel("cspin").unwrap(), LaunchDims::new(1, 32), &[out])
        .unwrap();
    let rec = &gpu.injection_records()[0];
    assert_eq!(rec.structure, "L1 constant cache");
    assert!(rec.applied, "the hot constant line must be valid");
}
