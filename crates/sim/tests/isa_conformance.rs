//! ISA conformance: every SASS-lite operation executed end-to-end through
//! the simulator, validated against independently computed expectations.
//!
//! Each case runs a one-warp kernel that applies the instruction under
//! test to per-lane inputs and stores the result; the harness compares
//! against a Rust closure.

use gpufi_isa::Module;
use gpufi_sim::{Gpu, GpuConfig, LaunchDims};

/// Runs `body` (SASS-lite text) with per-lane inputs in `R4` (from buffer
/// `a`) and `R5` (from buffer `b`), expecting the result in `R6`.
fn run_binary_case(body: &str, a: &[u32; 32], b: &[u32; 32]) -> Vec<u32> {
    let src = format!(
        r#"
.kernel case
.params 2
    S2R  R1, SR_TID.X
    SHL  R2, R1, 2
    IADD R3, R0, R2
    LDG  R4, [R3]
    LDG  R5, [R3+128]
    {body}
    IADD R16, R1, 0
    SHL  R16, R16, 2
    IADD R16, R0, R16
    STG  [R16+256], R6
    EXIT
"#
    );
    let m = Module::assemble(&src).unwrap_or_else(|e| panic!("case assembles: {e}\n{src}"));
    let mut cfg = GpuConfig::rtx2060();
    cfg.num_sms = 1;
    let mut gpu = Gpu::new(cfg);
    let buf = gpu.malloc(3 * 128).unwrap();
    gpu.write_u32s(buf, a).unwrap();
    gpu.write_u32s(buf + 128, b).unwrap();
    gpu.launch(m.kernel("case").unwrap(), LaunchDims::new(1, 32), &[buf, 0])
        .unwrap();
    gpu.read_u32s(buf + 256, 32).unwrap()
}

fn lanes_u32() -> [u32; 32] {
    let mut a = [0u32; 32];
    for (i, v) in a.iter_mut().enumerate() {
        *v = (i as u32).wrapping_mul(0x9e37_79b9).wrapping_add(7);
    }
    a
}

fn lanes_f32() -> ([u32; 32], [f32; 32]) {
    let mut bits = [0u32; 32];
    let mut vals = [0f32; 32];
    for i in 0..32 {
        let v = (i as f32 - 12.5) * 0.75;
        vals[i] = v;
        bits[i] = v.to_bits();
    }
    (bits, vals)
}

fn check(body: &str, a: &[u32; 32], b: &[u32; 32], expect: impl Fn(u32, u32) -> u32) {
    let out = run_binary_case(body, a, b);
    for lane in 0..32 {
        assert_eq!(
            out[lane],
            expect(a[lane], b[lane]),
            "lane {lane} of `{body}` (a={:#x}, b={:#x})",
            a[lane],
            b[lane]
        );
    }
}

#[test]
fn integer_arithmetic() {
    let a = lanes_u32();
    let mut b = lanes_u32();
    b.rotate_left(5);
    check("IADD R6, R4, R5", &a, &b, |x, y| x.wrapping_add(y));
    check("ISUB R6, R4, R5", &a, &b, |x, y| x.wrapping_sub(y));
    check("IMUL R6, R4, R5", &a, &b, |x, y| x.wrapping_mul(y));
    check("IMIN R6, R4, R5", &a, &b, |x, y| {
        ((x as i32).min(y as i32)) as u32
    });
    check("IMAX R6, R4, R5", &a, &b, |x, y| {
        ((x as i32).max(y as i32)) as u32
    });
    check("IMAD R6, R4, R5, R4", &a, &b, |x, y| {
        x.wrapping_mul(y).wrapping_add(x)
    });
}

#[test]
fn bitwise_and_shifts() {
    let a = lanes_u32();
    let mut b = lanes_u32();
    b.rotate_left(9);
    check("AND R6, R4, R5", &a, &b, |x, y| x & y);
    check("OR  R6, R4, R5", &a, &b, |x, y| x | y);
    check("XOR R6, R4, R5", &a, &b, |x, y| x ^ y);
    check("NOT R6, R4", &a, &b, |x, _| !x);
    check("SHL R6, R4, R5", &a, &b, |x, y| x << (y & 31));
    check("SHR R6, R4, R5", &a, &b, |x, y| x >> (y & 31));
    check("SAR R6, R4, R5", &a, &b, |x, y| {
        ((x as i32) >> (y & 31)) as u32
    });
    check("SHL R6, R4, 3", &a, &b, |x, _| x << 3);
}

#[test]
fn float_arithmetic() {
    let (a, _) = lanes_f32();
    let (mut b, _) = lanes_f32();
    b.rotate_left(3);
    let f = |x: u32| f32::from_bits(x);
    check("FADD R6, R4, R5", &a, &b, |x, y| (f(x) + f(y)).to_bits());
    check("FSUB R6, R4, R5", &a, &b, |x, y| (f(x) - f(y)).to_bits());
    check("FMUL R6, R4, R5", &a, &b, |x, y| (f(x) * f(y)).to_bits());
    check("FDIV R6, R4, R5", &a, &b, |x, y| (f(x) / f(y)).to_bits());
    check("FMIN R6, R4, R5", &a, &b, |x, y| f(x).min(f(y)).to_bits());
    check("FMAX R6, R4, R5", &a, &b, |x, y| f(x).max(f(y)).to_bits());
    check("FFMA R6, R4, R5, R4", &a, &b, |x, y| {
        f(x).mul_add(f(y), f(x)).to_bits()
    });
}

#[test]
fn float_unary_and_conversions() {
    let (a, _) = lanes_f32();
    let b = lanes_u32();
    let f = |x: u32| f32::from_bits(x);
    check("FABS R6, R4", &a, &b, |x, _| f(x).abs().to_bits());
    check("FNEG R6, R4", &a, &b, |x, _| (-f(x)).to_bits());
    check("FFLOOR R6, R4", &a, &b, |x, _| f(x).floor().to_bits());
    check("FRCP R6, R4", &a, &b, |x, _| (1.0 / f(x)).to_bits());
    check("FSQRT R6, R4", &a, &b, |x, _| f(x).sqrt().to_bits());
    check("FEX2 R6, R4", &a, &b, |x, _| f(x).exp2().to_bits());
    check("FLG2 R6, R4", &a, &b, |x, _| f(x).log2().to_bits());
    check("F2I R6, R4", &a, &b, |x, _| (f(x) as i32) as u32);
    check("I2F R6, R4", &a, &b, |x, _| (x as i32 as f32).to_bits());
}

#[test]
fn predicates_and_select() {
    let a = lanes_u32();
    let mut b = lanes_u32();
    b.rotate_left(7);
    check(
        "ISETP.LT P0, R4, R5\n    SEL R6, R4, R5, P0",
        &a,
        &b,
        |x, y| if (x as i32) < (y as i32) { x } else { y },
    );
    check(
        "ISETP.EQ P1, R4, R4\n    MOV R6, 0\n@P1 MOV R6, 1",
        &a,
        &b,
        |_, _| 1,
    );
    check(
        "ISETP.NE P2, R4, R4\n    MOV R6, 0\n@!P2 MOV R6, 9",
        &a,
        &b,
        |_, _| 9,
    );
    let (fa, _) = lanes_f32();
    check(
        "FSETP.GT P3, R4, R5\n    MOV R6, 0\n@P3 MOV R6, 1",
        &fa,
        &{
            let mut fb = fa;
            fb.rotate_left(1);
            fb
        },
        |x, y| u32::from(f32::from_bits(x) > f32::from_bits(y)),
    );
}

#[test]
fn mov_and_special_regs() {
    let a = lanes_u32();
    let b = lanes_u32();
    check("MOV R6, R5", &a, &b, |_, y| y);
    check("MOV R6, 0xdeadbeef", &a, &b, |_, _| 0xdead_beef);
    // S2R needs per-lane expectations; check directly.
    let out = run_binary_case("S2R R6, SR_LANEID", &a, &b);
    for (lane, v) in out.iter().enumerate() {
        assert_eq!(*v, lane as u32);
    }
    let out = run_binary_case("S2R R6, SR_NTID.X", &a, &b);
    assert!(out.iter().all(|&v| v == 32));
    let out = run_binary_case("S2R R6, SR_WARPID", &a, &b);
    assert!(out.iter().all(|&v| v == 0));
    let out = run_binary_case("S2R R6, SR_NCTAID.X", &a, &b);
    assert!(out.iter().all(|&v| v == 1));
}
