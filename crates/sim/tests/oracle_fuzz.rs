//! Differential fuzzing: the cycle-level simulator against the
//! functional reference interpreter over hundreds of random SASS-lite
//! kernels (straight-line, divergent, barrier-synchronized, shared- and
//! local-memory, const-bank, mixed int/float ALU).
//!
//! A single divergence fails the test and prints the first divergent
//! location (structure, address/register, thread) plus a minimal repro
//! (kernel disassembly, launch geometry, arguments).

use gpufi_sim::oracle::fuzz::{fuzz_sweep, gen_case, gen_trap_case, run_case, trap_sweep};
use gpufi_sim::Trap;

/// The headline acceptance bar: ≥500 seeded random kernels, zero
/// divergences.
#[test]
fn fuzz_500_kernels_sim_matches_oracle() {
    let ran = fuzz_sweep(0xF00D_2026, 500);
    assert_eq!(ran, 500);
}

/// A different seed band, exercising generator paths the first sweep's
/// RNG stream may have skipped.
#[test]
fn fuzz_alternate_seed_band() {
    let ran = fuzz_sweep(0x5EED_CAFE, 150);
    assert_eq!(ran, 150);
}

/// The generator is deterministic: the same seed yields the same kernel
/// source and launch geometry (campaign reproducibility depends on it).
#[test]
fn fuzz_cases_are_deterministic() {
    let a = gen_case(42);
    let b = gen_case(42);
    assert_eq!(a.source, b.source);
    assert_eq!(a.in_words, b.in_words);
    assert_eq!(a.const_words, b.const_words);
    assert_eq!((a.grid, a.block), (b.grid, b.block));
    let c = gen_case(43);
    assert_ne!(a.source, c.source, "distinct seeds should differ");
}

/// Single-case entry point used when bisecting a failing seed.
#[test]
fn fuzz_single_case_runs_clean() {
    let case = gen_case(7);
    if let Err(report) = run_case(&case) {
        panic!("seed 7 diverged:\n{report}\nsource:\n{}", case.source);
    }
}

/// Trap corpus: kernels that fault through the address shapes register
/// faults produce (near-`u32::MAX` bases, wrapping negative offsets, null
/// pages).  Both engines must raise the same trap *kind* on every one —
/// `run_trap_case` asserts the expected kind against the timing engine
/// and the attached mirror latches any sim-vs-oracle kind disagreement.
#[test]
fn trap_corpus_kinds_agree_across_engines() {
    let ran = trap_sweep(0xBAD_ADD2, 200);
    assert_eq!(ran, 200);
}

/// The trap generator covers all four architectural trap kinds within a
/// modest seed window (so the sweep above is actually exercising each
/// trap path, not one lucky variant).
#[test]
fn trap_corpus_covers_every_kind() {
    let mut smem = false;
    let mut lmem = false;
    let mut mis = false;
    let mut inv = false;
    for seed in 0..64u64 {
        match gen_trap_case(seed).expected {
            Trap::SmemOutOfBounds { .. } => smem = true,
            Trap::LmemOutOfBounds { .. } => lmem = true,
            Trap::Misaligned { .. } => mis = true,
            Trap::InvalidAddress { .. } => inv = true,
            other => panic!("unexpected expected trap {other:?}"),
        }
    }
    assert!(smem && lmem && mis && inv, "trap corpus missing a kind");
}
