//! Model-based property tests: the set-associative cache must behave like
//! a simple reference model (a bounded map with per-set LRU), and fault
//! flips must change exactly the targeted bit.

use gpufi_sim::mem::Cache;
use gpufi_sim::{CacheConfig, TAG_BITS};
use proptest::prelude::*;

const LINE: usize = 16;

fn cfg() -> CacheConfig {
    CacheConfig {
        sets: 4,
        ways: 2,
        line_bytes: LINE as u32,
    }
}

/// Reference model: per-set vector of (line_addr, data, dirty) with LRU
/// order (front = most recent).
#[derive(Default)]
struct Model {
    sets: Vec<Vec<(u64, Vec<u8>, bool)>>,
}

impl Model {
    fn new() -> Self {
        Model {
            sets: (0..4).map(|_| Vec::new()).collect(),
        }
    }

    fn set_of(la: u64) -> usize {
        (la % 4) as usize
    }

    fn read(&mut self, la: u64) -> Option<Vec<u8>> {
        let set = &mut self.sets[Self::set_of(la)];
        let pos = set.iter().position(|(a, _, _)| *a == la)?;
        let entry = set.remove(pos);
        let data = entry.1.clone();
        set.insert(0, entry);
        Some(data)
    }

    fn write(&mut self, la: u64, offset: usize, bytes: &[u8], dirty: bool) -> bool {
        let set = &mut self.sets[Self::set_of(la)];
        let Some(pos) = set.iter().position(|(a, _, _)| *a == la) else {
            return false;
        };
        let mut entry = set.remove(pos);
        entry.1[offset..offset + bytes.len()].copy_from_slice(bytes);
        entry.2 |= dirty;
        set.insert(0, entry);
        true
    }

    fn fill(&mut self, la: u64, data: &[u8], dirty: bool) -> Option<(u64, Vec<u8>)> {
        let set = &mut self.sets[Self::set_of(la)];
        // Refill in place, no writeback.
        if let Some(pos) = set.iter().position(|(a, _, _)| *a == la) {
            set.remove(pos);
            set.insert(0, (la, data.to_vec(), dirty));
            return None;
        }
        let mut evicted = None;
        if set.len() == 2 {
            let victim = set.pop().expect("full set");
            if victim.2 {
                evicted = Some((victim.0, victim.1));
            }
        }
        set.insert(0, (la, data.to_vec(), dirty));
        evicted
    }
}

#[derive(Debug, Clone)]
enum Step {
    Read(u64),
    Write(u64, usize, u8, bool),
    Fill(u64, u8, bool),
    Invalidate(u64),
}

fn step() -> impl Strategy<Value = Step> {
    let la = 0u64..32;
    prop_oneof![
        la.clone().prop_map(Step::Read),
        (la.clone(), 0usize..LINE, any::<u8>(), any::<bool>())
            .prop_map(|(a, o, v, d)| Step::Write(a, o, v, d)),
        (la.clone(), any::<u8>(), any::<bool>()).prop_map(|(a, v, d)| Step::Fill(a, v, d)),
        la.prop_map(Step::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The cache agrees with the reference model on hits, data, and dirty
    /// writebacks, for arbitrary operation sequences.
    #[test]
    fn cache_matches_reference_model(steps in prop::collection::vec(step(), 1..120)) {
        let mut cache = Cache::new(cfg());
        let mut model = Model::new();
        for s in steps {
            match s {
                Step::Read(la) => {
                    let mut buf = vec![0u8; LINE];
                    let hit = cache.read(la, 0, &mut buf);
                    let expect = model.read(la);
                    prop_assert_eq!(hit, expect.is_some(), "hit mismatch at {}", la);
                    if let Some(data) = expect {
                        prop_assert_eq!(&buf, &data, "data mismatch at {}", la);
                    }
                }
                Step::Write(la, offset, value, dirty) => {
                    let hit = cache.write(la, offset as u32, &[value], dirty);
                    let expect = model.write(la, offset, &[value], dirty);
                    prop_assert_eq!(hit, expect, "write-hit mismatch at {}", la);
                }
                Step::Fill(la, fill_byte, dirty) => {
                    let data = vec![fill_byte; LINE];
                    // Pre-state: evicting an already-present line is a
                    // refill; both sides handle it the same way because
                    // fill always installs fresh.
                    let wb = cache.fill(la, &data, dirty);
                    let expect = model.fill(la, &data, dirty);
                    match (wb, expect) {
                        (None, None) => {}
                        (Some(w), Some((ea, ed))) => {
                            prop_assert_eq!(w.line_addr, ea, "victim addr");
                            prop_assert_eq!(w.data, ed, "victim data");
                        }
                        (w, e) => prop_assert!(false, "writeback mismatch: {:?} vs {:?}", w, e.map(|x| x.0)),
                    }
                }
                Step::Invalidate(la) => {
                    cache.invalidate(la);
                    let set = &mut model.sets[Model::set_of(la)];
                    set.retain(|(a, _, _)| *a != la);
                }
            }
        }
    }

    /// Flipping a data bit changes exactly that bit of the stored line;
    /// flipping it twice restores the original.
    #[test]
    fn data_flip_is_involutive_and_local(
        la in 0u64..8,
        bit in 0u64..(LINE as u64 * 8),
        fill_byte in any::<u8>(),
    ) {
        let mut cache = Cache::new(cfg());
        cache.fill(la, &[fill_byte; LINE], false);
        // The fill landed somewhere in la's set; find its flat line index
        // by probing each line's bit space.
        let bpl = LINE as u64 * 8 + u64::from(TAG_BITS);
        let mut flipped_line = None;
        for line in 0..8u64 {
            let outcome = cache.flip_bit(line * bpl + u64::from(TAG_BITS) + bit);
            if outcome == gpufi_sim::FlipOutcome::Data {
                flipped_line = Some(line);
                break;
            }
        }
        let line = flipped_line.expect("one valid line exists");
        let mut buf = vec![0u8; LINE];
        prop_assert!(cache.read(la, 0, &mut buf));
        let byte = (bit / 8) as usize;
        for (i, b) in buf.iter().enumerate() {
            if i == byte {
                prop_assert_eq!(*b, fill_byte ^ (1 << (bit % 8)), "targeted byte");
            } else {
                prop_assert_eq!(*b, fill_byte, "untouched byte {}", i);
            }
        }
        // Second flip restores.
        cache.flip_bit(line * bpl + u64::from(TAG_BITS) + bit);
        prop_assert!(cache.read(la, 0, &mut buf));
        prop_assert!(buf.iter().all(|b| *b == fill_byte));
    }

    /// A tag flip makes the old address miss and some aliased address hit,
    /// preserving the data bytes.
    #[test]
    fn tag_flip_aliases_without_corrupting_data(
        la in 0u64..8,
        tag_bit in 0u64..16, // keep aliases in a sane range
        fill_byte in any::<u8>(),
    ) {
        let mut cache = Cache::new(cfg());
        cache.fill(la, &[fill_byte; LINE], false);
        let bpl = LINE as u64 * 8 + u64::from(TAG_BITS);
        let mut ok = false;
        for line in 0..8u64 {
            if cache.flip_bit(line * bpl + tag_bit) == gpufi_sim::FlipOutcome::Tag {
                ok = true;
                break;
            }
        }
        prop_assert!(ok);
        prop_assert!(!cache.probe(la), "old address must miss");
        // The alias keeps the set (tag flips don't move lines across sets):
        // line_addr' = (tag ^ (1<<b)) * sets + set.
        let set = la % 4;
        let tag = la / 4;
        let alias = (tag ^ (1 << tag_bit)) * 4 + set;
        prop_assert!(cache.probe(alias), "alias {} must hit", alias);
        let mut buf = vec![0u8; LINE];
        cache.read(alias, 0, &mut buf);
        prop_assert!(buf.iter().all(|b| *b == fill_byte), "data preserved");
    }
}
