//! **BFS — Breadth-First Search** (Rodinia `bfs`).
//!
//! Rodinia's two-kernel frontier expansion: kernel 1 visits the neighbours
//! of every frontier node (divergent, data-dependent edge loops), kernel 2
//! commits the next frontier and raises the host-visible stop flag.  The
//! host loops until the frontier drains.

use crate::input::{u32s_to_bytes, InputRng};
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel bfs_kernel1
.params 7            ; R0=offsets R1=edges R2=frontier R3=visited R4=cost R5=next R6=n
    S2R  R7, SR_TID.X
    S2R  R8, SR_CTAID.X
    S2R  R9, SR_NTID.X
    IMAD R7, R8, R9, R7
    ISETP.GE P0, R7, R6
@P0 EXIT
    SHL  R10, R7, 2
    IADD R11, R2, R10
    LDG  R12, [R11]        ; frontier[tid]
    SSY  fend
    ISETP.EQ P1, R12, 0
@P1 BRA fend
    MOV  R13, 0
    STG  [R11], R13        ; leave the frontier
    IADD R14, R4, R10
    LDG  R15, [R14]
    IADD R15, R15, 1       ; neighbour cost
    IADD R16, R0, R10
    LDG  R17, [R16]        ; edge start
    LDG  R18, [R16+4]      ; edge end
    SSY  eend
eloop:
    ISETP.GE P2, R17, R18
@P2 BRA eend
    SHL  R19, R17, 2
    IADD R19, R1, R19
    LDG  R20, [R19]        ; neighbour id
    SHL  R21, R20, 2
    IADD R22, R3, R21
    LDG  R23, [R22]        ; visited[nb]
    ISETP.EQ P3, R23, 0
@P3 IADD R24, R4, R21
@P3 STG  [R24], R15
@P3 IADD R25, R5, R21
@P3 MOV  R26, 1
@P3 STG  [R25], R26
    IADD R17, R17, 1
    BRA  eloop
eend:
    SYNC
fend:
    SYNC
    EXIT

.kernel bfs_kernel2
.params 5            ; R0=frontier R1=visited R2=next R3=stop R4=n
    S2R  R5, SR_TID.X
    S2R  R6, SR_CTAID.X
    S2R  R7, SR_NTID.X
    IMAD R5, R6, R7, R5
    ISETP.GE P0, R5, R4
@P0 EXIT
    SHL  R8, R5, 2
    IADD R9, R2, R8
    LDG  R10, [R9]         ; next[tid]
    ISETP.NE P1, R10, 0
@P1 MOV  R11, 1
@P1 IADD R12, R1, R8
@P1 STG  [R12], R11       ; visited
@P1 IADD R13, R0, R8
@P1 STG  [R13], R11       ; new frontier
@P1 MOV  R14, 0
@P1 STG  [R9], R14        ; clear next
@P1 STG  [R3], R11        ; stop flag (benign same-value race)
    EXIT
"#;

const N: u32 = 256;
const BLOCK: u32 = 64;
const UNREACHED: u32 = 0x3fff_ffff;

/// The BFS benchmark: a 256-node random graph in CSR form.
#[derive(Debug)]
pub struct Bfs {
    module: Module,
}

impl Bfs {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Bfs {
            module: Module::assemble(SRC).expect("BFS kernels assemble"),
        }
    }

    /// The deterministic CSR graph: (offsets, edges).
    fn graph(&self) -> (Vec<u32>, Vec<u32>) {
        let mut rng = InputRng::new(0xbf09);
        let mut offsets = Vec::with_capacity(N as usize + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for _ in 0..N {
            let degree = 2 + rng.below(4);
            for _ in 0..degree {
                edges.push(rng.below(N));
            }
            offsets.push(edges.len() as u32);
        }
        (offsets, edges)
    }

    /// CPU reference: level-synchronous BFS costs from node 0.
    pub fn cpu_reference(&self) -> Vec<u32> {
        let (offsets, edges) = self.graph();
        let mut cost = vec![UNREACHED; N as usize];
        let mut visited = vec![false; N as usize];
        cost[0] = 0;
        visited[0] = true;
        let mut frontier = vec![0usize];
        while !frontier.is_empty() {
            let mut nextf = Vec::new();
            for &node in &frontier {
                let level = cost[node];
                for &edge in &edges[offsets[node] as usize..offsets[node + 1] as usize] {
                    let nb = edge as usize;
                    if !visited[nb] {
                        cost[nb] = level + 1;
                        if !nextf.contains(&nb) {
                            nextf.push(nb);
                        }
                    }
                }
            }
            for &nb in &nextf {
                visited[nb] = true;
            }
            frontier = nextf;
        }
        cost
    }
}

impl Default for Bfs {
    fn default() -> Self {
        Bfs::new()
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let (offsets, edges) = self.graph();
        let d_off = gpu.malloc((offsets.len() * 4) as u32)?;
        let d_edges = gpu.malloc((edges.len() * 4) as u32)?;
        let d_frontier = gpu.malloc(N * 4)?;
        let d_visited = gpu.malloc(N * 4)?;
        let d_cost = gpu.malloc(N * 4)?;
        let d_next = gpu.malloc(N * 4)?;
        let d_stop = gpu.malloc(4)?;
        gpu.write_u32s(d_off, &offsets)?;
        gpu.write_u32s(d_edges, &edges)?;
        let mut frontier = vec![0u32; N as usize];
        frontier[0] = 1;
        gpu.write_u32s(d_frontier, &frontier)?;
        let mut visited = vec![0u32; N as usize];
        visited[0] = 1;
        gpu.write_u32s(d_visited, &visited)?;
        let mut cost = vec![UNREACHED; N as usize];
        cost[0] = 0;
        gpu.write_u32s(d_cost, &cost)?;

        let k1 = self.module.kernel("bfs_kernel1").expect("kernel exists");
        let k2 = self.module.kernel("bfs_kernel2").expect("kernel exists");
        let dims = LaunchDims::new(N / BLOCK, BLOCK);
        // Iteration cap: a fault-corrupted stop flag must not hang the host
        // (the watchdog still bounds total cycles, but the cap keeps
        // iteration counts sane).
        for _ in 0..N {
            gpu.write_u32s(d_stop, &[0])?;
            gpu.launch(
                k1,
                dims,
                &[d_off, d_edges, d_frontier, d_visited, d_cost, d_next, N],
            )?;
            gpu.launch(k2, dims, &[d_frontier, d_visited, d_next, d_stop, N])?;
            if gpu.read_u32s(d_stop, 1)?[0] == 0 {
                break;
            }
        }
        Ok(u32s_to_bytes(&gpu.read_u32s(d_cost, N as usize)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::bytes_to_u32s;
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = Bfs::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_u32s(&w.run(&mut gpu).unwrap());
        assert_eq!(out, w.cpu_reference());
    }

    #[test]
    fn source_has_cost_zero_and_most_nodes_reached() {
        let w = Bfs::new();
        let costs = w.cpu_reference();
        assert_eq!(costs[0], 0);
        let reached = costs.iter().filter(|&&c| c != UNREACHED).count();
        assert!(reached > N as usize / 2, "only {reached} reached");
    }
}
