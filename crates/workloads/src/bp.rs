//! **BP — Backpropagation** (Rodinia `backprop`).
//!
//! Two kernels, matching Rodinia's structure: `layerforward` computes each
//! hidden unit's activation with a shared-memory reduction and a sigmoid
//! (special-function units), and `adjust_weights` applies the gradient
//! update to the input→hidden weight matrix.

use crate::input::{f32s_to_bytes, InputRng};
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

/// log2(e), used to build `exp(-x)` from the `FEX2` SFU op.
const LOG2E: f32 = std::f32::consts::LOG2_E;

const SRC: &str = r#"
.kernel layerforward
.params 4            ; R0=input R1=weights R2=hidden R3=IN  (CTA j = hidden unit)
.smem 256
    S2R  R4, SR_TID.X       ; t
    S2R  R5, SR_CTAID.X     ; hidden unit j
    ; partial = sum over i = t, t+64, ... of input[i] * w[j*IN + i]
    MOV  R6, 0              ; partial (f32 0.0)
    MOV  R7, R4             ; i = t
floop:
    ISETP.GE P0, R7, R3
@P0 BRA fdone
    SHL  R8, R7, 2
    IADD R9, R0, R8
    LDG  R10, [R9]          ; input[i]
    IMAD R11, R5, R3, R7    ; j*IN + i
    SHL  R11, R11, 2
    IADD R11, R1, R11
    LDG  R12, [R11]         ; w[j*IN+i]
    FFMA R6, R10, R12, R6
    IADD R7, R7, 64
    BRA  floop
fdone:
    SHL  R13, R4, 2
    STS  [R13], R6
    BAR
    MOV  R14, 32
red:
    ISETP.LT P1, R4, R14
@P1 IADD R15, R4, R14
@P1 SHL  R15, R15, 2
@P1 LDS  R16, [R15]
@P1 LDS  R17, [R13]
@P1 FADD R17, R17, R16
@P1 STS  [R13], R17
    BAR
    SHR  R14, R14, 1
    ISETP.GT P2, R14, 0
@P2 BRA red
    ISETP.NE P3, R4, 0
@P3 EXIT
    LDS  R18, [R13]         ; net input
    FMUL R19, R18, 1.4426950408889634f
    FNEG R19, R19
    FEX2 R19, R19           ; exp(-net)
    FADD R19, R19, 1.0f
    FRCP R19, R19           ; sigmoid
    SHL  R20, R5, 2
    IADD R20, R2, R20
    STG  [R20], R19
    EXIT

.kernel adjust_weights
.params 5            ; R0=input R1=weights R2=delta R3=IN R4=HID (CTA j, 64 threads)
    S2R  R5, SR_TID.X
    S2R  R6, SR_CTAID.X     ; hidden unit j
    SHL  R7, R6, 2
    IADD R7, R2, R7
    LDG  R8, [R7]           ; delta[j]
    FMUL R8, R8, 0.3f       ; eta * delta[j]
    MOV  R9, R5             ; i = t
aloop:
    ISETP.GE P0, R9, R3
@P0 BRA adone
    SHL  R10, R9, 2
    IADD R11, R0, R10
    LDG  R12, [R11]         ; input[i]
    IMAD R13, R6, R3, R9
    SHL  R13, R13, 2
    IADD R13, R1, R13
    LDG  R14, [R13]         ; w
    FFMA R14, R8, R12, R14  ; w += eta*delta[j]*input[i]
    STG  [R13], R14
    IADD R9, R9, 64
    BRA  aloop
adone:
    EXIT
"#;

const IN: u32 = 256;
const HID: u32 = 16;
const BLOCK: u32 = 64;

/// The BP benchmark: a 256→16 layer forward pass plus one weight update.
#[derive(Debug)]
pub struct Backprop {
    module: Module,
}

impl Backprop {
    /// Creates the benchmark (fixed 256-input, 16-hidden layer, matching
    /// Rodinia's default layer shape scaled for campaign throughput).
    pub fn new() -> Self {
        Backprop {
            module: Module::assemble(SRC).expect("BP kernels assemble"),
        }
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = InputRng::new(0xb003);
        let input = rng.f32_vec(IN as usize, 0.0, 1.0);
        let weights = rng.f32_vec((IN * HID) as usize, -0.5, 0.5);
        let target = rng.f32_vec(HID as usize, 0.0, 1.0);
        (input, weights, target)
    }

    fn hidden_reference(&self, input: &[f32], weights: &[f32]) -> Vec<f32> {
        (0..HID as usize)
            .map(|j| {
                // Mirror the GPU's per-thread strided accumulation and tree
                // reduction exactly.
                let mut partial = [0f32; BLOCK as usize];
                for (t, p) in partial.iter_mut().enumerate() {
                    let mut i = t;
                    while i < IN as usize {
                        *p = input[i].mul_add(weights[j * IN as usize + i], *p);
                        i += BLOCK as usize;
                    }
                }
                let mut stride = (BLOCK / 2) as usize;
                while stride > 0 {
                    for t in 0..stride {
                        partial[t] += partial[t + stride];
                    }
                    stride /= 2;
                }
                let net = partial[0];
                1.0 / ((-net * LOG2E).exp2() + 1.0)
            })
            .collect()
    }

    /// CPU reference: hidden activations followed by the updated weights.
    pub fn cpu_reference(&self) -> Vec<f32> {
        let (input, mut weights, target) = self.inputs();
        let hidden = self.hidden_reference(&input, &weights);
        let delta: Vec<f32> = hidden
            .iter()
            .zip(&target)
            .map(|(h, t)| (t - h) * h * (1.0 - h))
            .collect();
        for j in 0..HID as usize {
            let eta_delta = delta[j] * 0.3;
            for i in 0..IN as usize {
                let w = &mut weights[j * IN as usize + i];
                *w = eta_delta.mul_add(input[i], *w);
            }
        }
        let mut out = hidden;
        out.extend_from_slice(&weights);
        out
    }
}

impl Default for Backprop {
    fn default() -> Self {
        Backprop::new()
    }
}

impl Workload for Backprop {
    fn name(&self) -> &'static str {
        "BP"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let (input, weights, target) = self.inputs();
        let d_in = gpu.malloc(IN * 4)?;
        let d_w = gpu.malloc(IN * HID * 4)?;
        let d_h = gpu.malloc(HID * 4)?;
        let d_delta = gpu.malloc(HID * 4)?;
        gpu.write_f32s(d_in, &input)?;
        gpu.write_f32s(d_w, &weights)?;

        let fwd = self.module.kernel("layerforward").expect("kernel exists");
        gpu.launch(fwd, LaunchDims::new(HID, BLOCK), &[d_in, d_w, d_h, IN])?;

        // Host: output error deltas (Rodinia computes these on the CPU).
        let hidden = gpu.read_f32s(d_h, HID as usize)?;
        let delta: Vec<f32> = hidden
            .iter()
            .zip(&target)
            .map(|(h, t)| (t - h) * h * (1.0 - h))
            .collect();
        gpu.write_f32s(d_delta, &delta)?;

        let adj = self.module.kernel("adjust_weights").expect("kernel exists");
        gpu.launch(
            adj,
            LaunchDims::new(HID, BLOCK),
            &[d_in, d_w, d_delta, IN, HID],
        )?;

        let mut out = f32s_to_bytes(&gpu.read_f32s(d_h, HID as usize)?);
        out.extend(f32s_to_bytes(&gpu.read_f32s(d_w, (IN * HID) as usize)?));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = Backprop::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-3);
    }

    #[test]
    fn two_kernels() {
        let w = Backprop::new();
        assert_eq!(w.module().kernels().len(), 2);
    }
}
