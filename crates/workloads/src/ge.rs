//! **GE — Gaussian Elimination** (Rodinia `gaussian`).
//!
//! Rodinia's per-column kernel pair: `fan1` computes the column of
//! multipliers for pivot `t`, `fan2` applies them to the trailing
//! submatrix and the right-hand side.  The host launches the pair `n`
//! times and back-substitutes on the CPU, as the original does.

use crate::input::{f32s_to_bytes, InputRng};
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel fan1
.params 4            ; R0=A R1=M R2=n R3=t
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R4, R5, R6, R4    ; r
    ISETP.GE P0, R4, R2
@P0 EXIT
    ISETP.LE P1, R4, R3
@P1 EXIT
    IMAD R7, R4, R2, R3    ; r*n + t
    SHL  R7, R7, 2
    IADD R7, R0, R7
    LDG  R8, [R7]          ; A[r][t]
    IMAD R9, R3, R2, R3    ; t*n + t
    SHL  R9, R9, 2
    IADD R9, R0, R9
    LDG  R10, [R9]         ; A[t][t]
    FDIV R8, R8, R10
    SHL  R11, R4, 2
    IADD R11, R1, R11
    STG  [R11], R8         ; M[r]
    EXIT

.kernel fan2
.params 5            ; R0=A R1=b R2=M R3=n R4=t  (2-D CTAs of 8x8)
    S2R  R5, SR_TID.X
    S2R  R6, SR_TID.Y
    S2R  R7, SR_CTAID.X
    S2R  R8, SR_CTAID.Y
    S2R  R9, SR_NTID.X
    IMAD R10, R7, R9, R5   ; column candidate offset
    S2R  R11, SR_NTID.Y
    IMAD R12, R8, R11, R6  ; row candidate offset
    IADD R13, R4, R10      ; c = t + x
    IADD R14, R4, 1
    IADD R14, R14, R12     ; r = t + 1 + y
    ISETP.GE P0, R13, R3
@P0 EXIT
    ISETP.GE P1, R14, R3
@P1 EXIT
    SHL  R15, R14, 2
    IADD R15, R2, R15
    LDG  R16, [R15]        ; M[r]
    IMAD R17, R14, R3, R13
    SHL  R17, R17, 2
    IADD R17, R0, R17      ; &A[r][c]
    IMAD R18, R4, R3, R13
    SHL  R18, R18, 2
    IADD R18, R0, R18      ; &A[t][c]
    LDG  R19, [R17]
    LDG  R20, [R18]
    FNEG R21, R16
    FFMA R19, R21, R20, R19
    STG  [R17], R19
    ; lanes on the pivot column also update the right-hand side
    ISETP.NE P2, R13, R4
@P2 EXIT
    SHL  R22, R14, 2
    IADD R22, R1, R22      ; &b[r]
    SHL  R23, R4, 2
    IADD R23, R1, R23      ; &b[t]
    LDG  R24, [R22]
    LDG  R25, [R23]
    FFMA R24, R21, R25, R24
    STG  [R22], R24
    EXIT
"#;

const N: usize = 32;
const TILE: u32 = 8;

/// The GE benchmark: a 32×32 dense system `Ax = b`.
#[derive(Debug)]
pub struct Gaussian {
    module: Module,
}

impl Gaussian {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Gaussian {
            module: Module::assemble(SRC).expect("GE kernels assemble"),
        }
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let mut rng = InputRng::new(0x6e0c);
        let mut a = rng.f32_vec(N * N, 0.0, 1.0);
        for i in 0..N {
            a[i * N + i] += N as f32;
        }
        let b = rng.f32_vec(N, -1.0, 1.0);
        (a, b)
    }

    fn back_substitute(a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut x = vec![0f32; N];
        for i in (0..N).rev() {
            let mut acc = b[i];
            for j in i + 1..N {
                acc = (-a[i * N + j]).mul_add(x[j], acc);
            }
            x[i] = acc / a[i * N + i];
        }
        x
    }

    /// CPU reference: the eliminated matrix, updated RHS and solution.
    pub fn cpu_reference(&self) -> Vec<f32> {
        let (mut a, mut b) = self.inputs();
        let mut m = [0f32; N];
        for t in 0..N {
            for (r, mr) in m.iter_mut().enumerate().take(N).skip(t + 1) {
                *mr = a[r * N + t] / a[t * N + t];
            }
            for r in t + 1..N {
                for c in t..N {
                    a[r * N + c] = (-m[r]).mul_add(a[t * N + c], a[r * N + c]);
                }
                b[r] = (-m[r]).mul_add(b[t], b[r]);
            }
        }
        let x = Self::back_substitute(&a, &b);
        let mut out = a;
        out.extend_from_slice(&b);
        out.extend_from_slice(&x);
        out
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Gaussian::new()
    }
}

impl Workload for Gaussian {
    fn name(&self) -> &'static str {
        "GE"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let (a, b) = self.inputs();
        let d_a = gpu.malloc((N * N * 4) as u32)?;
        let d_b = gpu.malloc((N * 4) as u32)?;
        let d_m = gpu.malloc((N * 4) as u32)?;
        gpu.write_f32s(d_a, &a)?;
        gpu.write_f32s(d_b, &b)?;
        let fan1 = self.module.kernel("fan1").expect("kernel exists");
        let fan2 = self.module.kernel("fan2").expect("kernel exists");
        let n = N as u32;
        for t in 0..n {
            gpu.launch(fan1, LaunchDims::new(1, n), &[d_a, d_m, n, t])?;
            gpu.launch(
                fan2,
                LaunchDims::new((n / TILE, n / TILE), (TILE, TILE)),
                &[d_a, d_b, d_m, n, t],
            )?;
        }
        let a_out = gpu.read_f32s(d_a, N * N)?;
        let b_out = gpu.read_f32s(d_b, N)?;
        let x = Self::back_substitute(&a_out, &b_out);
        let mut out = f32s_to_bytes(&a_out);
        out.extend(f32s_to_bytes(&b_out));
        out.extend(f32s_to_bytes(&x));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = Gaussian::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-3);
    }

    #[test]
    fn solution_satisfies_system() {
        let w = Gaussian::new();
        let (a, b) = w.inputs();
        let full = w.cpu_reference();
        let x = &full[N * N + N..];
        for i in 0..N {
            let mut acc = 0f64;
            for j in 0..N {
                acc += f64::from(a[i * N + j]) * f64::from(x[j]);
            }
            assert!(
                (acc - f64::from(b[i])).abs() < 1e-3,
                "row {i}: Ax={acc} b={}",
                b[i]
            );
        }
    }
}
