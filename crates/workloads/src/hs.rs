//! **HS — HotSpot** (Rodinia `hotspot`).
//!
//! Iterative 2-D thermal stencil: each cell relaxes toward its four
//! neighbours plus the local power dissipation.  The port keeps Rodinia's
//! structure: 2-D CTAs staging the tile in shared memory behind a barrier,
//! the read-only power grid on the texture path, and host-driven
//! iterations with buffer swapping.

use crate::input::InputRng;
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel hotspot
.params 5            ; R0=temp_in R1=power R2=temp_out R3=W R4=H
.smem 256
    S2R  R5, SR_TID.X
    S2R  R6, SR_TID.Y
    S2R  R7, SR_CTAID.X
    S2R  R8, SR_CTAID.Y
    S2R  R9, SR_NTID.X
    IMAD R10, R7, R9, R5    ; x
    S2R  R11, SR_NTID.Y
    IMAD R12, R8, R11, R6   ; y
    IMAD R13, R12, R3, R10  ; idx = y*W + x
    SHL  R14, R13, 2
    IADD R15, R0, R14
    LDG  R16, [R15]         ; own temperature
    IMAD R17, R6, R9, R5    ; shared slot = ty*8 + tx
    SHL  R17, R17, 2
    STS  [R17], R16
    BAR
    ; clamped neighbour coordinates
    ISUB R18, R10, 1
    IMAX R18, R18, 0        ; x-1
    IADD R19, R10, 1
    ISUB R20, R3, 1
    IMIN R19, R19, R20      ; x+1
    ISUB R21, R12, 1
    IMAX R21, R21, 0        ; y-1
    IADD R22, R12, 1
    ISUB R23, R4, 1
    IMIN R22, R22, R23      ; y+1
    IMAD R24, R12, R3, R18
    SHL  R24, R24, 2
    IADD R24, R0, R24
    LDG  R25, [R24]         ; west
    IMAD R24, R12, R3, R19
    SHL  R24, R24, 2
    IADD R24, R0, R24
    LDG  R26, [R24]         ; east
    IMAD R24, R21, R3, R10
    SHL  R24, R24, 2
    IADD R24, R0, R24
    LDG  R27, [R24]         ; north
    IMAD R24, R22, R3, R10
    SHL  R24, R24, 2
    IADD R24, R0, R24
    LDG  R28, [R24]         ; south
    IADD R24, R1, R14
    LDT  R29, [R24]         ; power (texture path)
    LDS  R30, [R17]         ; own value from the shared tile
    FADD R31, R25, R26
    FADD R31, R31, R27
    FADD R31, R31, R28
    FFMA R31, R30, -4.0f, R31
    FADD R31, R31, R29
    FFMA R31, R31, 0.1f, R30
    IADD R24, R2, R14
    STG  [R24], R31
    EXIT
"#;

const W: u32 = 32;
const H: u32 = 32;
const TILE: u32 = 8;
const ITERS: usize = 4;

/// The HS benchmark: a 32×32 grid relaxed for four iterations.
#[derive(Debug)]
pub struct HotSpot {
    module: Module,
}

impl HotSpot {
    /// Creates the benchmark.
    pub fn new() -> Self {
        HotSpot {
            module: Module::assemble(SRC).expect("HS kernel assembles"),
        }
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let mut rng = InputRng::new(0x4504);
        let temp = rng.f32_vec((W * H) as usize, 20.0, 80.0);
        let power = rng.f32_vec((W * H) as usize, 0.0, 2.0);
        (temp, power)
    }

    /// CPU reference: the final temperature grid.
    pub fn cpu_reference(&self) -> Vec<f32> {
        let (mut temp, power) = self.inputs();
        let mut next = temp.clone();
        let (w, h) = (W as usize, H as usize);
        for _ in 0..ITERS {
            for y in 0..h {
                for x in 0..w {
                    let idx = y * w + x;
                    let own = temp[idx];
                    let west = temp[y * w + x.saturating_sub(1)];
                    let east = temp[y * w + (x + 1).min(w - 1)];
                    let north = temp[y.saturating_sub(1) * w + x];
                    let south = temp[(y + 1).min(h - 1) * w + x];
                    let mut sum = west + east;
                    sum += north;
                    sum += south;
                    sum = own.mul_add(-4.0, sum);
                    sum += power[idx];
                    next[idx] = sum.mul_add(0.1, own);
                }
            }
            std::mem::swap(&mut temp, &mut next);
        }
        temp
    }
}

impl Default for HotSpot {
    fn default() -> Self {
        HotSpot::new()
    }
}

impl Workload for HotSpot {
    fn name(&self) -> &'static str {
        "HS"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let (temp, power) = self.inputs();
        let bytes = W * H * 4;
        let mut d_a = gpu.malloc(bytes)?;
        let mut d_b = gpu.malloc(bytes)?;
        let d_p = gpu.malloc(bytes)?;
        gpu.write_f32s(d_a, &temp)?;
        gpu.write_f32s(d_p, &power)?;
        let kernel = self.module.kernel("hotspot").expect("kernel exists");
        for _ in 0..ITERS {
            gpu.launch(
                kernel,
                LaunchDims::new((W / TILE, H / TILE), (TILE, TILE)),
                &[d_a, d_p, d_b, W, H],
            )?;
            std::mem::swap(&mut d_a, &mut d_b);
        }
        let mut out = vec![0u8; bytes as usize];
        gpu.memcpy_d2h(d_a, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = HotSpot::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-4);
    }

    #[test]
    fn runs_on_titan_without_l1d() {
        let w = HotSpot::new();
        let mut gpu = Gpu::new(GpuConfig::gtx_titan());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-4);
    }
}
