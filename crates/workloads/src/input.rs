//! Deterministic input generation shared by all benchmarks.
//!
//! Inputs must be identical across runs (golden vs. faulty) and across
//! platforms, so everything derives from a seeded xorshift generator —
//! no external data files, matching the paper's fixed benchmark inputs.

/// A small, fast, deterministic PRNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct InputRng {
    state: u64,
}

impl InputRng {
    /// Creates a generator; `seed` 0 is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        InputRng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Next `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u32) -> u32 {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % u64::from(bound)) as u32
        }
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.unit_f32() * (hi - lo)
    }

    /// A vector of uniform floats in `[lo, hi)`.
    pub fn f32_vec(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.f32_in(lo, hi)).collect()
    }
}

/// Relative-tolerance float comparison used by the CPU-reference tests.
pub fn approx_eq(a: f32, b: f32, rel: f32) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs()).max(1e-6);
    (a - b).abs() <= rel * scale
}

/// Asserts element-wise approximate equality of two float slices.
///
/// # Panics
///
/// Panics with the first mismatching index when the slices differ in
/// length or any element exceeds the relative tolerance.
pub fn assert_f32_slices_close(actual: &[f32], expect: &[f32], rel: f32) {
    assert_eq!(actual.len(), expect.len(), "length mismatch");
    for (i, (a, e)) in actual.iter().zip(expect).enumerate() {
        assert!(
            approx_eq(*a, *e, rel),
            "element {i}: got {a}, expected {e} (rel {rel})"
        );
    }
}

/// Reinterprets a float slice as its little-endian byte image (the result
/// format every workload returns).
pub fn f32s_to_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|f| f.to_le_bytes()).collect()
}

/// Reinterprets a `u32` slice as its little-endian byte image.
pub fn u32s_to_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|f| f.to_le_bytes()).collect()
}

/// Parses the byte image back into floats (test helper).
pub fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// Parses the byte image back into `u32`s (test helper).
pub fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u32> = {
            let mut r = InputRng::new(7);
            (0..10).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = InputRng::new(7);
            (0..10).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = InputRng::new(8);
            (0..10).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn unit_f32_in_range() {
        let mut r = InputRng::new(3);
        for _ in 0..1000 {
            let v = r.unit_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = InputRng::new(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn byte_roundtrips() {
        let v = vec![1.5f32, -2.25, 0.0];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&v)), v);
        let u = vec![1u32, 0xdeadbeef];
        assert_eq!(bytes_to_u32s(&u32s_to_bytes(&u)), u);
    }

    #[test]
    fn approx_eq_semantics() {
        assert!(approx_eq(1.0, 1.0005, 1e-3));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(!approx_eq(f32::NAN, 1.0, 1.0));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }
}
