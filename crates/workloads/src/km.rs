//! **KM — K-Means** (Rodinia `kmeans`).
//!
//! The GPU computes the assignment step — nearest centroid per point, with
//! centroids read through the texture path — while the host recomputes the
//! centroids between iterations, matching Rodinia's split.

use crate::input::{f32s_to_bytes, u32s_to_bytes, InputRng};
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel kmeans_assign
.params 5            ; R0=points R1=centroids R2=membership R3=n R4=k
    S2R  R5, SR_TID.X
    S2R  R6, SR_CTAID.X
    S2R  R7, SR_NTID.X
    IMAD R5, R6, R7, R5    ; point index
    ISETP.GE P0, R5, R3
@P0 EXIT
    SHL  R8, R5, 4         ; 4 dims × 4 bytes
    IADD R8, R0, R8
    LDG  R9,  [R8]
    LDG  R10, [R8+4]
    LDG  R11, [R8+8]
    LDG  R12, [R8+12]
    MOV  R13, 0            ; cluster index
    MOV  R14, 0x7f7fffff   ; best distance = f32::MAX
    MOV  R15, 0            ; best cluster
cl:
    ISETP.GE P1, R13, R4
@P1 BRA cdone
    SHL  R16, R13, 4
    IADD R16, R1, R16
    LDT  R17, [R16]
    LDT  R18, [R16+4]
    LDT  R19, [R16+8]
    LDT  R20, [R16+12]
    FSUB R17, R9, R17
    FSUB R18, R10, R18
    FSUB R19, R11, R19
    FSUB R20, R12, R20
    MOV  R21, 0
    FFMA R21, R17, R17, R21
    FFMA R21, R18, R18, R21
    FFMA R21, R19, R19, R21
    FFMA R21, R20, R20, R21
    FSETP.LT P2, R21, R14
@P2 MOV R14, R21
@P2 MOV R15, R13
    IADD R13, R13, 1
    BRA  cl
cdone:
    SHL  R22, R5, 2
    IADD R22, R2, R22
    STG  [R22], R15
    EXIT
"#;

const N: u32 = 512;
const K: u32 = 8;
const DIM: usize = 4;
const BLOCK: u32 = 64;
const ITERS: usize = 3;

/// The KM benchmark: 512 four-dimensional points, 8 clusters, 3 rounds.
#[derive(Debug)]
pub struct KMeans {
    module: Module,
}

impl KMeans {
    /// Creates the benchmark.
    pub fn new() -> Self {
        KMeans {
            module: Module::assemble(SRC).expect("KM kernel assembles"),
        }
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let mut rng = InputRng::new(0x6b05);
        let points = rng.f32_vec(N as usize * DIM, 0.0, 10.0);
        // Initial centroids: the first K points (Rodinia's initialisation).
        let centroids = points[..K as usize * DIM].to_vec();
        (points, centroids)
    }

    fn assign(points: &[f32], centroids: &[f32]) -> Vec<u32> {
        (0..N as usize)
            .map(|i| {
                let p = &points[i * DIM..i * DIM + DIM];
                let mut best = f32::MAX;
                let mut best_c = 0u32;
                for c in 0..K as usize {
                    let q = &centroids[c * DIM..c * DIM + DIM];
                    let mut acc = 0f32;
                    for d in 0..DIM {
                        let diff = p[d] - q[d];
                        acc = diff.mul_add(diff, acc);
                    }
                    if acc < best {
                        best = acc;
                        best_c = c as u32;
                    }
                }
                best_c
            })
            .collect()
    }

    fn refit(points: &[f32], membership: &[u32], centroids: &mut [f32]) {
        let mut sums = vec![0f32; K as usize * DIM];
        let mut counts = vec![0u32; K as usize];
        for (i, &m) in membership.iter().enumerate() {
            let m = m as usize % K as usize;
            counts[m] += 1;
            for d in 0..DIM {
                sums[m * DIM + d] += points[i * DIM + d];
            }
        }
        for c in 0..K as usize {
            if counts[c] > 0 {
                for d in 0..DIM {
                    centroids[c * DIM + d] = sums[c * DIM + d] / counts[c] as f32;
                }
            }
        }
    }

    /// CPU reference: final memberships followed by final centroids (as
    /// raw bytes, matching [`Workload::run`]).
    pub fn cpu_reference(&self) -> Vec<u8> {
        let (points, mut centroids) = self.inputs();
        let mut membership = Vec::new();
        for it in 0..ITERS {
            membership = Self::assign(&points, &centroids);
            if it + 1 < ITERS {
                Self::refit(&points, &membership, &mut centroids);
            }
        }
        let mut out = u32s_to_bytes(&membership);
        out.extend(f32s_to_bytes(&centroids));
        out
    }
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans::new()
    }
}

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "KM"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let (points, mut centroids) = self.inputs();
        let d_p = gpu.malloc(N * DIM as u32 * 4)?;
        let d_c = gpu.malloc(K * DIM as u32 * 4)?;
        let d_m = gpu.malloc(N * 4)?;
        gpu.write_f32s(d_p, &points)?;
        gpu.write_f32s(d_c, &centroids)?;
        let kernel = self.module.kernel("kmeans_assign").expect("kernel exists");
        let mut membership = Vec::new();
        for it in 0..ITERS {
            gpu.launch(
                kernel,
                LaunchDims::new(N / BLOCK, BLOCK),
                &[d_p, d_c, d_m, N, K],
            )?;
            membership = gpu.read_u32s(d_m, N as usize)?;
            if it + 1 < ITERS {
                // Host-side refit, as in Rodinia.
                Self::refit(&points, &membership, &mut centroids);
                gpu.write_f32s(d_c, &centroids)?;
            }
        }
        let mut out = u32s_to_bytes(&membership);
        out.extend(f32s_to_bytes(&centroids));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = KMeans::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = w.run(&mut gpu).unwrap();
        // Memberships are integers; distances are computed in the same
        // order on both sides, so the whole image must match exactly.
        assert_eq!(out, w.cpu_reference());
    }

    #[test]
    fn memberships_in_range() {
        let w = KMeans::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = w.run(&mut gpu).unwrap();
        let members = crate::input::bytes_to_u32s(&out[..N as usize * 4]);
        assert!(members.iter().all(|&m| m < K));
    }
}
