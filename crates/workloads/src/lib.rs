//! # gpufi-workloads — the paper's twelve benchmarks, ported to SASS-lite
//!
//! The gpuFI-4 evaluation uses twelve CUDA applications from the Rodinia
//! suite and the Nvidia CUDA SDK (§V.B).  This crate ports each kernel's
//! *algorithm* to the SASS-lite ISA at campaign-friendly problem sizes,
//! keeping the structural traits that drive per-benchmark vulnerability
//! differences: shared-memory reductions and tiles, barriers, 2-D
//! stencils, wavefronts, host-side iteration loops, texture-path reads and
//! irregular frontier parallelism.
//!
//! | Code | Benchmark | Origin | Structure exercised |
//! |------|-----------|--------|---------------------|
//! | VA | Vector addition | CUDA SDK | streaming global loads/stores |
//! | SP | Scalar product | CUDA SDK | shared-memory tree reduction |
//! | BP | Backpropagation | Rodinia | reduction + weight update, SFU sigmoid |
//! | HS | HotSpot | Rodinia | 2-D stencil, shared tile, texture power grid, host iterations |
//! | KM | K-Means | Rodinia | distance argmin, texture centroids, host refit loop |
//! | SRAD1 | Speckle-reducing diffusion v1 | Rodinia | reduce + 2 stencil kernels |
//! | SRAD2 | Speckle-reducing diffusion v2 | Rodinia | texture-path stencil pair |
//! | LUD | LU decomposition | Rodinia | tiled diagonal/perimeter/internal kernels |
//! | BFS | Breadth-first search | Rodinia | frontier kernels, host stop-flag loop |
//! | PATHF | PathFinder | Rodinia | per-row dynamic programming, shared halo |
//! | NW | Needleman-Wunsch | Rodinia | anti-diagonal wavefront, many small launches |
//! | GE | Gaussian elimination | Rodinia | Fan1/Fan2 per-column kernels |
//!
//! Every workload is deterministic: inputs come from a fixed-seed
//! generator ([`input::InputRng`]) and each type exposes a
//! `cpu_reference()` used by its unit tests.
//!
//! # Example
//!
//! ```
//! use gpufi_core::Workload;
//! use gpufi_sim::{Gpu, GpuConfig};
//! use gpufi_workloads::VectorAdd;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let va = VectorAdd::new(256);
//! let mut gpu = Gpu::new(GpuConfig::rtx2060());
//! let bytes = va.run(&mut gpu)?;
//! assert_eq!(bytes.len(), 256 * 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod input;

mod bfs;
mod bp;
mod ge;
mod hs;
mod km;
mod lud;
mod nw;
mod pathfinder;
mod sp;
mod srad1;
mod srad2;
mod va;

pub use bfs::Bfs;
pub use bp::Backprop;
pub use ge::Gaussian;
pub use hs::HotSpot;
pub use km::KMeans;
pub use lud::Lud;
pub use nw::NeedlemanWunsch;
pub use pathfinder::PathFinder;
pub use sp::ScalarProd;
pub use srad1::Srad1;
pub use srad2::Srad2;
pub use va::VectorAdd;

use gpufi_core::Workload;

/// The paper's twelve benchmarks at their campaign sizes, in the order of
/// the paper's figures: HS, KM, SRAD1, SRAD2, LUD, BFS, PATHF, NW, GE, BP,
/// VA, SP.
pub fn paper_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(HotSpot::default()),
        Box::new(KMeans::default()),
        Box::new(Srad1::default()),
        Box::new(Srad2::default()),
        Box::new(Lud::default()),
        Box::new(Bfs::default()),
        Box::new(PathFinder::default()),
        Box::new(NeedlemanWunsch::default()),
        Box::new(Gaussian::default()),
        Box::new(Backprop::default()),
        Box::new(VectorAdd::default()),
        Box::new(ScalarProd::default()),
    ]
}

/// Looks up one of the paper benchmarks by its short code (`"VA"`, `"HS"`,
/// …), case-insensitively.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    paper_suite()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_unique_benchmarks() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 12);
        let mut names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("va").is_some());
        assert!(by_name("PATHF").is_some());
        assert!(by_name("nope").is_none());
    }
}
