//! **LUD — LU Decomposition** (Rodinia `lud`).
//!
//! Rodinia's tiled right-looking factorisation with its three kernels per
//! step: `lud_diagonal` factors the pivot tile (one CTA, barriers between
//! elimination steps), `lud_perim_row` / `lud_perim_col` solve the row and
//! column panels against the pivot tile, and `lud_internal` applies the
//! trailing-submatrix update.

use crate::input::InputRng;
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel lud_diagonal
.params 2            ; R0=A R1=k  (one CTA of 8 threads; thread = tile row)
    S2R  R2, SR_TID.X
    IMUL R3, R1, 264       ; pivot tile base = k*(8*32) + k*8
    MOV  R4, 0             ; i
iloop:
    ISETP.GE P0, R4, 7
@P0 BRA idone
    IMUL R5, R2, 32
    IADD R5, R5, R3
    IADD R5, R5, R4
    SHL  R5, R5, 2
    IADD R5, R0, R5        ; &A[r][i]
    IMUL R6, R4, 33
    IADD R6, R6, R3
    SHL  R6, R6, 2
    IADD R6, R0, R6        ; &A[i][i]
    ISETP.GT P1, R2, R4
@P1 LDG  R7, [R5]
@P1 LDG  R8, [R6]
@P1 FDIV R7, R7, R8
@P1 STG  [R5], R7          ; multiplier in place
    BAR
    IADD R9, R4, 1         ; j
jloop:
    ISETP.GE P2, R9, 8
@P2 BRA jdone
    IMUL R10, R2, 32
    IADD R10, R10, R3
    IADD R10, R10, R9
    SHL  R10, R10, 2
    IADD R10, R0, R10      ; &A[r][j]
    IMUL R11, R4, 32
    IADD R11, R11, R3
    IADD R11, R11, R9
    SHL  R11, R11, 2
    IADD R11, R0, R11      ; &A[i][j]
@P1 LDG  R12, [R10]
@P1 LDG  R13, [R11]
@P1 LDG  R14, [R5]
@P1 FNEG R14, R14
@P1 FFMA R12, R14, R13, R12
@P1 STG  [R10], R12
    IADD R9, R9, 1
    BRA  jloop
jdone:
    BAR
    IADD R4, R4, 1
    BRA  iloop
idone:
    EXIT

.kernel lud_perim_row
.params 2            ; R0=A R1=k  (CTA b -> row tile (k, k+1+b); thread = column)
    S2R  R2, SR_TID.X
    S2R  R3, SR_CTAID.X
    IADD R4, R1, 1
    IADD R4, R4, R3        ; jt
    IMUL R5, R1, 256
    SHL  R6, R4, 3
    IADD R5, R5, R6        ; tile base
    IMUL R7, R1, 264       ; pivot tile base
    MOV  R8, 0             ; i
iloop:
    ISETP.GE P0, R8, 7
@P0 BRA done
    IMUL R9, R8, 32
    IADD R9, R9, R5
    IADD R9, R9, R2
    SHL  R9, R9, 2
    IADD R9, R0, R9
    LDG  R10, [R9]         ; A[i][c]
    IADD R11, R8, 1        ; r
rloop:
    ISETP.GE P1, R11, 8
@P1 BRA rdone
    IMUL R12, R11, 32
    IADD R12, R12, R7
    IADD R12, R12, R8
    SHL  R12, R12, 2
    IADD R12, R0, R12
    LDG  R13, [R12]        ; multiplier M[r][i]
    IMUL R14, R11, 32
    IADD R14, R14, R5
    IADD R14, R14, R2
    SHL  R14, R14, 2
    IADD R14, R0, R14
    LDG  R15, [R14]
    FNEG R16, R13
    FFMA R15, R16, R10, R15
    STG  [R14], R15
    IADD R11, R11, 1
    BRA  rloop
rdone:
    IADD R8, R8, 1
    BRA  iloop
done:
    EXIT

.kernel lud_perim_col
.params 2            ; R0=A R1=k  (CTA b -> col tile (k+1+b, k); thread = row)
    S2R  R2, SR_TID.X
    S2R  R3, SR_CTAID.X
    IADD R4, R1, 1
    IADD R4, R4, R3        ; it
    SHL  R5, R4, 3
    IMUL R5, R5, 32
    SHL  R6, R1, 3
    IADD R5, R5, R6        ; tile base
    IMUL R7, R1, 264       ; pivot tile base
    MOV  R8, 0             ; c
cloop:
    ISETP.GE P0, R8, 8
@P0 BRA done
    IMUL R9, R2, 32
    IADD R9, R9, R5
    IADD R9, R9, R8
    SHL  R9, R9, 2
    IADD R9, R0, R9        ; &A[r][c]
    LDG  R10, [R9]
    MOV  R11, 0            ; m
mloop:
    ISETP.GE P1, R11, R8
@P1 BRA mdone
    IMUL R12, R2, 32
    IADD R12, R12, R5
    IADD R12, R12, R11
    SHL  R12, R12, 2
    IADD R12, R0, R12
    LDG  R13, [R12]        ; A[r][m]
    IMUL R14, R11, 32
    IADD R14, R14, R7
    IADD R14, R14, R8
    SHL  R14, R14, 2
    IADD R14, R0, R14
    LDG  R15, [R14]        ; U[m][c]
    FNEG R15, R15
    FFMA R10, R15, R13, R10
    IADD R11, R11, 1
    BRA  mloop
mdone:
    IMUL R16, R8, 33
    IADD R16, R16, R7
    SHL  R16, R16, 2
    IADD R16, R0, R16
    LDG  R17, [R16]        ; U[c][c]
    FDIV R10, R10, R17
    STG  [R9], R10
    IADD R8, R8, 1
    BRA  cloop
done:
    EXIT

.kernel lud_internal
.params 2            ; R0=A R1=k  (2-D grid; CTA (bj,bi) -> tile (k+1+bi, k+1+bj))
    S2R  R2, SR_TID.X
    S2R  R3, SR_CTAID.X    ; bj
    S2R  R4, SR_CTAID.Y    ; bi
    IADD R5, R1, 1
    IADD R6, R5, R4        ; it
    IADD R7, R5, R3        ; jt
    SHR  R8, R2, 3         ; r
    AND  R9, R2, 7         ; c
    IMUL R10, R6, 256
    SHL  R11, R7, 3
    IADD R10, R10, R11     ; A tile base
    IMUL R12, R6, 256
    SHL  R13, R1, 3
    IADD R12, R12, R13     ; L tile base
    IMUL R14, R1, 256
    IADD R14, R14, R11     ; U tile base
    MOV  R15, 0            ; dot
    MOV  R16, 0            ; m
sloop:
    ISETP.GE P0, R16, 8
@P0 BRA sdone
    IMUL R17, R8, 32
    IADD R17, R17, R12
    IADD R17, R17, R16
    SHL  R17, R17, 2
    IADD R17, R0, R17
    LDG  R18, [R17]        ; L[r][m]
    IMUL R19, R16, 32
    IADD R19, R19, R14
    IADD R19, R19, R9
    SHL  R19, R19, 2
    IADD R19, R0, R19
    LDG  R20, [R19]        ; U[m][c]
    FFMA R15, R18, R20, R15
    IADD R16, R16, 1
    BRA  sloop
sdone:
    IMUL R21, R8, 32
    IADD R21, R21, R10
    IADD R21, R21, R9
    SHL  R21, R21, 2
    IADD R21, R0, R21
    LDG  R22, [R21]
    FSUB R22, R22, R15
    STG  [R21], R22
    EXIT
"#;

const N: usize = 32;
const B: usize = 8;
const NB: usize = N / B;

/// The LUD benchmark: a 32×32 in-place tiled LU factorisation.
#[derive(Debug)]
pub struct Lud {
    module: Module,
}

impl Lud {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Lud {
            module: Module::assemble(SRC).expect("LUD kernels assemble"),
        }
    }

    fn input(&self) -> Vec<f32> {
        let mut rng = InputRng::new(0x1d08);
        let mut a = rng.f32_vec(N * N, 0.0, 1.0);
        for i in 0..N {
            a[i * N + i] += N as f32; // diagonally dominant: stable without pivoting
        }
        a
    }

    /// CPU reference mirroring the tiled GPU algorithm operation-for-
    /// operation (so the float rounding matches).
    pub fn cpu_reference(&self) -> Vec<f32> {
        let mut a = self.input();
        for k in 0..NB {
            let pb = k * B * N + k * B;
            // diagonal tile
            for i in 0..B - 1 {
                for r in i + 1..B {
                    a[pb + r * N + i] /= a[pb + i * N + i];
                }
                for j in i + 1..B {
                    for r in i + 1..B {
                        let m = a[pb + r * N + i];
                        a[pb + r * N + j] = (-m).mul_add(a[pb + i * N + j], a[pb + r * N + j]);
                    }
                }
            }
            // row panels
            for jt in k + 1..NB {
                let tb = k * B * N + jt * B;
                for c in 0..B {
                    for i in 0..B - 1 {
                        let aic = a[tb + i * N + c];
                        for r in i + 1..B {
                            let m = a[pb + r * N + i];
                            a[tb + r * N + c] = (-m).mul_add(aic, a[tb + r * N + c]);
                        }
                    }
                }
            }
            // column panels
            for it in k + 1..NB {
                let tb = it * B * N + k * B;
                for r in 0..B {
                    for c in 0..B {
                        let mut acc = a[tb + r * N + c];
                        for m in 0..c {
                            let u = a[pb + m * N + c];
                            acc = (-u).mul_add(a[tb + r * N + m], acc);
                        }
                        a[tb + r * N + c] = acc / a[pb + c * N + c];
                    }
                }
            }
            // trailing update
            for it in k + 1..NB {
                for jt in k + 1..NB {
                    let tb = it * B * N + jt * B;
                    let lb = it * B * N + k * B;
                    let ub = k * B * N + jt * B;
                    for r in 0..B {
                        for c in 0..B {
                            let mut dot = 0f32;
                            for m in 0..B {
                                dot = a[lb + r * N + m].mul_add(a[ub + m * N + c], dot);
                            }
                            a[tb + r * N + c] -= dot;
                        }
                    }
                }
            }
        }
        a
    }
}

impl Default for Lud {
    fn default() -> Self {
        Lud::new()
    }
}

impl Workload for Lud {
    fn name(&self) -> &'static str {
        "LUD"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let a = self.input();
        let d_a = gpu.malloc((N * N * 4) as u32)?;
        gpu.write_f32s(d_a, &a)?;
        let diag = self.module.kernel("lud_diagonal").expect("kernel exists");
        let prow = self.module.kernel("lud_perim_row").expect("kernel exists");
        let pcol = self.module.kernel("lud_perim_col").expect("kernel exists");
        let intl = self.module.kernel("lud_internal").expect("kernel exists");
        for k in 0..NB as u32 {
            gpu.launch(diag, LaunchDims::new(1, B as u32), &[d_a, k])?;
            let rest = NB as u32 - k - 1;
            if rest > 0 {
                gpu.launch(prow, LaunchDims::new(rest, B as u32), &[d_a, k])?;
                gpu.launch(pcol, LaunchDims::new(rest, B as u32), &[d_a, k])?;
                gpu.launch(
                    intl,
                    LaunchDims::new((rest, rest), (B * B) as u32),
                    &[d_a, k],
                )?;
            }
        }
        let mut out = vec![0u8; N * N * 4];
        gpu.memcpy_d2h(d_a, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = Lud::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-3);
    }

    #[test]
    fn factorisation_reconstructs_input() {
        // L (unit lower) × U must reproduce the original matrix.
        let w = Lud::new();
        let lu = w.cpu_reference();
        let a = w.input();
        for i in 0..N {
            for j in 0..N {
                let mut s = 0f64;
                for m in 0..N {
                    let l = if m < i {
                        f64::from(lu[i * N + m])
                    } else if m == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if m <= j {
                        f64::from(lu[m * N + j])
                    } else {
                        0.0
                    };
                    s += l * u;
                }
                let expect = f64::from(a[i * N + j]);
                assert!(
                    (s - expect).abs() < 1e-2 * expect.abs().max(1.0),
                    "A[{i}][{j}]: {s} vs {expect}"
                );
            }
        }
    }
}
