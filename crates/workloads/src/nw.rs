//! **NW — Needleman-Wunsch** (Rodinia `nw`).
//!
//! Global sequence alignment filled along anti-diagonal wavefronts: the
//! host launches one small kernel per anti-diagonal (94 launches for a
//! 48×48 alignment), which is exactly the many-invocations-per-static-
//! kernel shape the paper's campaign methodology targets (§VI.A).

use crate::input::{u32s_to_bytes, InputRng};
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel nw_diagonal
.params 5            ; R0=score R1=ref R2=d R3=i_start R4=count  (pitch = 49, penalty = 3)
    S2R  R6, SR_TID.X
    S2R  R7, SR_CTAID.X
    S2R  R8, SR_NTID.X
    IMAD R6, R7, R8, R6
    ISETP.GE P0, R6, R4
@P0 EXIT
    IADD R9, R3, R6        ; i
    ISUB R10, R2, R9       ; j = d - i
    IMAD R11, R9, 49, R10  ; idx = i*pitch + j
    SHL  R11, R11, 2
    IADD R12, R0, R11      ; &score[i][j]
    ISUB R15, R12, 196     ; &score[i-1][j]  (pitch*4 = 196)
    LDG  R16, [R15-4]      ; north-west
    LDG  R17, [R15]        ; north
    LDG  R18, [R12-4]      ; west
    IADD R19, R1, R11
    LDG  R20, [R19]        ; substitution score
    IADD R16, R16, R20
    ISUB R17, R17, 3
    ISUB R18, R18, 3
    IMAX R21, R16, R17
    IMAX R21, R21, R18
    STG  [R12], R21
    EXIT
"#;

const N: usize = 48;
const PITCH: usize = N + 1;
const PENALTY: i32 = 3;
const BLOCK: u32 = 32;

/// The NW benchmark: a 48×48 global alignment DP matrix.
#[derive(Debug)]
pub struct NeedlemanWunsch {
    module: Module,
}

impl NeedlemanWunsch {
    /// Creates the benchmark.
    pub fn new() -> Self {
        NeedlemanWunsch {
            module: Module::assemble(SRC).expect("NW kernel assembles"),
        }
    }

    /// Substitution matrix (only cells `[1..][1..]` are read).
    fn reference_matrix(&self) -> Vec<i32> {
        let mut rng = InputRng::new(0x7b0b);
        (0..PITCH * PITCH)
            .map(|_| rng.below(9) as i32 - 4)
            .collect()
    }

    fn initial_scores(&self) -> Vec<i32> {
        let mut score = vec![0i32; PITCH * PITCH];
        for (j, s) in score.iter_mut().enumerate().take(PITCH) {
            *s = -(j as i32) * PENALTY;
        }
        for i in 0..PITCH {
            score[i * PITCH] = -(i as i32) * PENALTY;
        }
        score
    }

    /// CPU reference: the filled score matrix.
    pub fn cpu_reference(&self) -> Vec<i32> {
        let refm = self.reference_matrix();
        let mut score = self.initial_scores();
        for i in 1..=N {
            for j in 1..=N {
                let idx = i * PITCH + j;
                let nw = score[(i - 1) * PITCH + j - 1] + refm[idx];
                let up = score[(i - 1) * PITCH + j] - PENALTY;
                let left = score[i * PITCH + j - 1] - PENALTY;
                score[idx] = nw.max(up).max(left);
            }
        }
        score
    }
}

impl Default for NeedlemanWunsch {
    fn default() -> Self {
        NeedlemanWunsch::new()
    }
}

impl Workload for NeedlemanWunsch {
    fn name(&self) -> &'static str {
        "NW"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let refm = self.reference_matrix();
        let score = self.initial_scores();
        let bytes = (PITCH * PITCH * 4) as u32;
        let d_score = gpu.malloc(bytes)?;
        let d_ref = gpu.malloc(bytes)?;
        gpu.write_u32s(
            d_score,
            &score.iter().map(|&v| v as u32).collect::<Vec<_>>(),
        )?;
        gpu.write_u32s(d_ref, &refm.iter().map(|&v| v as u32).collect::<Vec<_>>())?;
        let kernel = self.module.kernel("nw_diagonal").expect("kernel exists");
        for d in 2..=(2 * N) as u32 {
            let i_start = 1.max(d as i64 - N as i64) as u32;
            let i_end = (N as u32).min(d - 1);
            if i_end < i_start {
                continue;
            }
            let count = i_end - i_start + 1;
            gpu.launch(
                kernel,
                LaunchDims::new(count.div_ceil(BLOCK), BLOCK),
                &[d_score, d_ref, d, i_start, count],
            )?;
        }
        Ok(u32s_to_bytes(&gpu.read_u32s(d_score, PITCH * PITCH)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::bytes_to_u32s;
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = NeedlemanWunsch::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_u32s(&w.run(&mut gpu).unwrap());
        let expect: Vec<u32> = w.cpu_reference().iter().map(|&v| v as u32).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn boundary_rows_untouched() {
        let w = NeedlemanWunsch::new();
        let m = w.cpu_reference();
        assert_eq!(m[0], 0);
        assert_eq!(m[1], -PENALTY);
        assert_eq!(m[PITCH], -PENALTY);
    }
}
