//! **PATHF — PathFinder** (Rodinia `pathfinder`).
//!
//! Row-by-row dynamic programming over a cost grid: each cell adds its
//! weight to the cheapest of the three parents above it.  The previous row
//! is staged in shared memory; lanes at the CTA boundary fall back to
//! (clamped) global reads, selected branchlessly.

use crate::input::{u32s_to_bytes, InputRng};
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel pathfinder_step
.params 4            ; R0=row_data R1=prev R2=next R3=cols
.smem 256
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R7, R5, R6, R4    ; j
    SHL  R8, R7, 2
    IADD R9, R1, R8
    LDG  R10, [R9]         ; prev[j]
    SHL  R11, R4, 2
    STS  [R11], R10
    BAR
    ; left parent
    ISUB R12, R7, 1
    IMAX R12, R12, 0
    SHL  R13, R12, 2
    IADD R13, R1, R13
    LDG  R14, [R13]        ; clamped global left
    ISUB R15, R4, 1
    IMAX R15, R15, 0
    SHL  R15, R15, 2
    LDS  R16, [R15]        ; clamped shared left
    ISETP.GT P0, R4, 0
    SEL  R14, R16, R14, P0
    ; right parent
    IADD R17, R7, 1
    ISUB R18, R3, 1
    IMIN R17, R17, R18
    SHL  R19, R17, 2
    IADD R19, R1, R19
    LDG  R20, [R19]        ; clamped global right
    ISUB R22, R6, 1
    IADD R21, R4, 1
    IMIN R21, R21, R22
    SHL  R21, R21, 2
    LDS  R23, [R21]        ; clamped shared right
    ISETP.LT P1, R4, R22
    SEL  R20, R23, R20, P1
    LDS  R24, [R11]        ; centre parent
    IMIN R25, R14, R20
    IMIN R25, R25, R24
    IADD R26, R0, R8
    LDG  R27, [R26]        ; weight
    IADD R27, R27, R25
    IADD R28, R2, R8
    STG  [R28], R27
    EXIT
"#;

const COLS: u32 = 256;
const ROWS: usize = 12;
const BLOCK: u32 = 64;

/// The PATHF benchmark: a 12×256 DP grid.
#[derive(Debug)]
pub struct PathFinder {
    module: Module,
}

impl PathFinder {
    /// Creates the benchmark.
    pub fn new() -> Self {
        PathFinder {
            module: Module::assemble(SRC).expect("PATHF kernel assembles"),
        }
    }

    fn grid(&self) -> Vec<u32> {
        let mut rng = InputRng::new(0xbf0a);
        (0..ROWS * COLS as usize).map(|_| rng.below(10)).collect()
    }

    /// CPU reference: the final DP row.
    pub fn cpu_reference(&self) -> Vec<u32> {
        let data = self.grid();
        let cols = COLS as usize;
        let mut prev: Vec<u32> = data[..cols].to_vec();
        for row in 1..ROWS {
            let mut next = vec![0u32; cols];
            for j in 0..cols {
                let l = prev[j.saturating_sub(1)];
                let r = prev[(j + 1).min(cols - 1)];
                let c = prev[j];
                next[j] = data[row * cols + j] + l.min(r).min(c);
            }
            prev = next;
        }
        prev
    }
}

impl Default for PathFinder {
    fn default() -> Self {
        PathFinder::new()
    }
}

impl Workload for PathFinder {
    fn name(&self) -> &'static str {
        "PATHF"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let data = self.grid();
        let d_data = gpu.malloc(ROWS as u32 * COLS * 4)?;
        let mut d_prev = gpu.malloc(COLS * 4)?;
        let mut d_next = gpu.malloc(COLS * 4)?;
        gpu.write_u32s(d_data, &data)?;
        gpu.write_u32s(d_prev, &data[..COLS as usize])?;
        let kernel = self
            .module
            .kernel("pathfinder_step")
            .expect("kernel exists");
        for row in 1..ROWS as u32 {
            let row_ptr = d_data + row * COLS * 4;
            gpu.launch(
                kernel,
                LaunchDims::new(COLS / BLOCK, BLOCK),
                &[row_ptr, d_prev, d_next, COLS],
            )?;
            std::mem::swap(&mut d_prev, &mut d_next);
        }
        Ok(u32s_to_bytes(&gpu.read_u32s(d_prev, COLS as usize)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::bytes_to_u32s;
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = PathFinder::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_u32s(&w.run(&mut gpu).unwrap());
        assert_eq!(out, w.cpu_reference());
    }

    #[test]
    fn costs_are_monotone_in_rows() {
        // Every path cost is at least the weight of its own column chain.
        let w = PathFinder::new();
        let final_row = w.cpu_reference();
        assert!(final_row.iter().all(|&c| c < 10 * ROWS as u32));
    }
}
