//! **SP — Scalar Product** (Nvidia CUDA SDK `scalarProd`).
//!
//! Each CTA computes the dot product of its slice of two vectors via a
//! shared-memory tree reduction with barriers; the result buffer holds one
//! partial product per CTA.

use crate::input::InputRng;
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel scalar_prod
.params 3            ; R0=a R1=b R2=partials   (n = gridDim.x * 64)
.smem 256
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R7, R5, R6, R4   ; global element index
    SHL  R8, R7, 2
    IADD R9, R0, R8
    LDG  R10, [R9]
    IADD R9, R1, R8
    LDG  R11, [R9]
    FMUL R10, R10, R11
    SHL  R12, R4, 2       ; shared-memory slot
    STS  [R12], R10
    BAR
    MOV  R13, 32          ; reduction stride
red:
    ISETP.LT P1, R4, R13  ; active reducers
@P1 IADD R14, R4, R13
@P1 SHL  R14, R14, 2
@P1 LDS  R15, [R14]
@P1 LDS  R16, [R12]
@P1 FADD R16, R16, R15
@P1 STS  [R12], R16
    BAR
    SHR  R13, R13, 1
    ISETP.GT P2, R13, 0
@P2 BRA red
    ISETP.NE P3, R4, 0
@P3 EXIT
    LDS  R17, [R12]
    SHL  R18, R5, 2
    IADD R18, R2, R18
    STG  [R18], R17
    EXIT
"#;

const BLOCK: u32 = 64;

/// The SP benchmark.
#[derive(Debug)]
pub struct ScalarProd {
    blocks: u32,
    module: Module,
}

impl ScalarProd {
    /// Creates the benchmark with `blocks` CTAs of 64 elements each.
    pub fn new(blocks: u32) -> Self {
        ScalarProd {
            blocks: blocks.max(1),
            module: Module::assemble(SRC).expect("SP kernel assembles"),
        }
    }

    /// Total element count.
    pub fn len(&self) -> u32 {
        self.blocks * BLOCK
    }

    /// Never empty (`new` enforces at least one block).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let mut rng = InputRng::new(0x5b02);
        let n = self.len() as usize;
        (rng.f32_vec(n, -1.0, 1.0), rng.f32_vec(n, -1.0, 1.0))
    }

    /// CPU reference: per-block dot products, tree-reduction order.
    pub fn cpu_reference(&self) -> Vec<f32> {
        let (a, b) = self.inputs();
        (0..self.blocks as usize)
            .map(|blk| {
                let lo = blk * BLOCK as usize;
                let mut s: Vec<f32> = (0..BLOCK as usize).map(|t| a[lo + t] * b[lo + t]).collect();
                let mut stride = (BLOCK / 2) as usize;
                while stride > 0 {
                    for t in 0..stride {
                        s[t] += s[t + stride];
                    }
                    stride /= 2;
                }
                s[0]
            })
            .collect()
    }
}

impl Default for ScalarProd {
    /// The size used by the reproduction campaigns.
    fn default() -> Self {
        ScalarProd::new(48)
    }
}

impl Workload for ScalarProd {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let (a, b) = self.inputs();
        let bytes = self.len() * 4;
        let da = gpu.malloc(bytes)?;
        let db = gpu.malloc(bytes)?;
        let dp = gpu.malloc(self.blocks * 4)?;
        gpu.write_f32s(da, &a)?;
        gpu.write_f32s(db, &b)?;
        let kernel = self.module.kernel("scalar_prod").expect("kernel exists");
        gpu.launch(kernel, LaunchDims::new(self.blocks, BLOCK), &[da, db, dp])?;
        let mut out = vec![0u8; (self.blocks * 4) as usize];
        gpu.memcpy_d2h(dp, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = ScalarProd::new(4);
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-5);
    }

    #[test]
    fn uses_shared_memory() {
        let w = ScalarProd::new(1);
        assert_eq!(w.module().kernel("scalar_prod").unwrap().smem_bytes(), 256);
    }
}
