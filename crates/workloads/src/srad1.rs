//! **SRAD1 — Speckle Reducing Anisotropic Diffusion v1** (Rodinia
//! `srad_v1`).
//!
//! Three kernels per iteration, matching v1's structure: a shared-memory
//! statistics reduction (for the homogeneity parameter `q0²`), the
//! diffusion-coefficient kernel, and the image-update kernel.

use crate::input::InputRng;
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel srad_reduce
.params 2            ; R0=J R1=partials (2 floats per block: sum, sumsq)
.smem 512
    S2R  R2, SR_TID.X
    S2R  R3, SR_CTAID.X
    S2R  R4, SR_NTID.X
    IMAD R5, R3, R4, R2
    SHL  R6, R5, 2
    IADD R6, R0, R6
    LDG  R7, [R6]          ; J[i]
    FMUL R8, R7, R7        ; J[i]^2
    ; Interleaved banks — thread t owns slots [8t] (sum) and [8t+4]
    ; (sumsq).  Unlike the split [4t]/[4t+256] layout, the 4-byte offset
    ; between banks is not a multiple of the 8-byte thread stride, so the
    ; banks are disjoint for *any* block size, not just the 64 threads we
    ; happen to launch.
    SHL  R9, R2, 3
    STS  [R9], R7
    IADD R10, R9, 4
    STS  [R10], R8
    BAR
    MOV  R11, 32
red:
    ISETP.LT P1, R2, R11
@P1 IADD R12, R2, R11
@P1 SHL  R12, R12, 3
@P1 LDS  R13, [R12]
@P1 LDS  R14, [R9]
@P1 FADD R14, R14, R13
@P1 STS  [R9], R14
@P1 IADD R15, R12, 4
@P1 LDS  R16, [R15]
@P1 LDS  R17, [R10]
@P1 FADD R17, R17, R16
@P1 STS  [R10], R17
    BAR
    SHR  R11, R11, 1
    ISETP.GT P2, R11, 0
@P2 BRA red
    ISETP.NE P3, R2, 0
@P3 EXIT
    LDS  R18, [R9]
    LDS  R19, [R10]
    SHL  R20, R3, 3        ; block*8 bytes
    IADD R20, R1, R20
    STG  [R20], R18
    STG  [R20+4], R19
    EXIT

.kernel srad_coeff
.params 7            ; R0=J R1=c R2=dN R3=dS R4=dW R5=dE R6=q0sqr (f32 bits)
    S2R  R7, SR_TID.X
    S2R  R8, SR_CTAID.X
    S2R  R9, SR_NTID.X
    IMAD R7, R8, R9, R7    ; idx
    AND  R10, R7, 31       ; x  (W = 32)
    SHR  R11, R7, 5        ; y
    ISUB R12, R10, 1
    IMAX R12, R12, 0       ; x-1
    IADD R13, R10, 1
    IMIN R13, R13, 31      ; x+1
    ISUB R14, R11, 1
    IMAX R14, R14, 0       ; y-1
    IADD R15, R11, 1
    IMIN R15, R15, 31      ; y+1
    SHL  R16, R7, 2
    IADD R16, R0, R16
    LDG  R17, [R16]        ; J
    SHL  R18, R14, 5
    IADD R18, R18, R10
    SHL  R18, R18, 2
    IADD R18, R0, R18
    LDG  R19, [R18]        ; J north
    SHL  R20, R15, 5
    IADD R20, R20, R10
    SHL  R20, R20, 2
    IADD R20, R0, R20
    LDG  R21, [R20]        ; J south
    SHL  R22, R11, 5
    IADD R23, R22, R12
    SHL  R23, R23, 2
    IADD R23, R0, R23
    LDG  R24, [R23]        ; J west
    IADD R25, R22, R13
    SHL  R25, R25, 2
    IADD R25, R0, R25
    LDG  R26, [R25]        ; J east
    FSUB R19, R19, R17     ; dN
    FSUB R21, R21, R17     ; dS
    FSUB R24, R24, R17     ; dW
    FSUB R26, R26, R17     ; dE
    MOV  R27, 0
    FFMA R27, R19, R19, R27
    FFMA R27, R21, R21, R27
    FFMA R27, R24, R24, R27
    FFMA R27, R26, R26, R27
    FMUL R28, R17, R17
    FDIV R27, R27, R28     ; G2 = |grad|^2 / J^2
    FADD R29, R19, R21
    FADD R29, R29, R24
    FADD R29, R29, R26
    FDIV R29, R29, R17     ; L = lap / J
    FMUL R30, R27, 0.5f
    FMUL R31, R29, R29
    FFMA R30, R31, -0.0625f, R30   ; num
    FMUL R32, R29, 0.25f
    FADD R32, R32, 1.0f
    FMUL R32, R32, R32             ; den
    FDIV R33, R30, R32             ; q
    FSUB R33, R33, R6              ; q - q0sqr
    FADD R34, R6, 1.0f
    FMUL R34, R6, R34              ; q0sqr*(1+q0sqr)
    FDIV R33, R33, R34
    FADD R33, R33, 1.0f
    FRCP R33, R33                  ; c
    FMAX R33, R33, 0.0f
    FMIN R33, R33, 1.0f
    SHL  R35, R7, 2
    IADD R36, R1, R35
    STG  [R36], R33
    IADD R36, R2, R35
    STG  [R36], R19
    IADD R36, R3, R35
    STG  [R36], R21
    IADD R36, R4, R35
    STG  [R36], R24
    IADD R36, R5, R35
    STG  [R36], R26
    EXIT

.kernel srad_update
.params 6            ; R0=J R1=c R2=dN R3=dS R4=dW R5=dE
    S2R  R7, SR_TID.X
    S2R  R8, SR_CTAID.X
    S2R  R9, SR_NTID.X
    IMAD R7, R8, R9, R7
    AND  R10, R7, 31
    SHR  R11, R7, 5
    IADD R12, R10, 1
    IMIN R12, R12, 31      ; x+1
    IADD R13, R11, 1
    IMIN R13, R13, 31      ; y+1
    SHL  R14, R7, 2
    IADD R15, R1, R14
    LDG  R16, [R15]        ; c own
    SHL  R17, R13, 5
    IADD R17, R17, R10
    SHL  R17, R17, 2
    IADD R17, R1, R17
    LDG  R18, [R17]        ; c south
    SHL  R19, R11, 5
    IADD R19, R19, R12
    SHL  R19, R19, 2
    IADD R19, R1, R19
    LDG  R20, [R19]        ; c east
    IADD R21, R2, R14
    LDG  R22, [R21]        ; dN
    IADD R21, R3, R14
    LDG  R23, [R21]        ; dS
    IADD R21, R4, R14
    LDG  R24, [R21]        ; dW
    IADD R21, R5, R14
    LDG  R25, [R21]        ; dE
    MOV  R26, 0
    FFMA R26, R16, R22, R26
    FFMA R26, R18, R23, R26
    FFMA R26, R16, R24, R26
    FFMA R26, R20, R25, R26
    IADD R27, R0, R14
    LDG  R28, [R27]        ; J
    FFMA R28, R26, 0.125f, R28     ; J += 0.25*lambda*div (lambda 0.5)
    STG  [R27], R28
    EXIT
"#;

const W: usize = 32;
const N: usize = W * W;
const BLOCK: u32 = 64;
const ITERS: usize = 2;

/// The SRAD1 benchmark: 32×32 image, two diffusion iterations.
#[derive(Debug)]
pub struct Srad1 {
    module: Module,
}

impl Srad1 {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Srad1 {
            module: Module::assemble(SRC).expect("SRAD1 kernels assemble"),
        }
    }

    fn input(&self) -> Vec<f32> {
        InputRng::new(0x5106).f32_vec(N, 1.0, 2.0)
    }

    /// The q0² statistic the host derives from the reduction partials,
    /// guarded against corrupted (zero/NaN) statistics.
    fn q0sqr(partials: &[f32]) -> f32 {
        let n = N as f32;
        let mut sum = 0f32;
        let mut sumsq = 0f32;
        for p in partials.chunks_exact(2) {
            sum += p[0];
            sumsq += p[1];
        }
        let mean = sum / n;
        let meansq = sumsq / n;
        let denom = mean * mean;
        if !denom.is_normal() {
            return 1.0;
        }
        ((meansq - denom) / denom).max(0.0)
    }

    fn cpu_step(j: &mut [f32], q0sqr: f32) {
        let mut c = vec![0f32; N];
        let (mut dn, mut ds, mut dw, mut de) =
            (vec![0f32; N], vec![0f32; N], vec![0f32; N], vec![0f32; N]);
        for y in 0..W {
            for x in 0..W {
                let i = y * W + x;
                let jc = j[i];
                dn[i] = j[y.saturating_sub(1) * W + x] - jc;
                ds[i] = j[(y + 1).min(W - 1) * W + x] - jc;
                dw[i] = j[y * W + x.saturating_sub(1)] - jc;
                de[i] = j[y * W + (x + 1).min(W - 1)] - jc;
                let mut g2 = 0f32;
                g2 = dn[i].mul_add(dn[i], g2);
                g2 = ds[i].mul_add(ds[i], g2);
                g2 = dw[i].mul_add(dw[i], g2);
                g2 = de[i].mul_add(de[i], g2);
                g2 /= jc * jc;
                let l = (((dn[i] + ds[i]) + dw[i]) + de[i]) / jc;
                let num = (l * l).mul_add(-0.0625, g2 * 0.5);
                let den = {
                    let d = l * 0.25 + 1.0;
                    d * d
                };
                let q = num / den;
                let cc = 1.0 / (1.0 + (q - q0sqr) / (q0sqr * (1.0 + q0sqr)));
                // Not `clamp`: the kernel's FMAX/FMIN chain maps NaN to 0,
                // `clamp` would keep it NaN.
                #[allow(clippy::manual_clamp)]
                {
                    c[i] = cc.max(0.0).min(1.0);
                }
            }
        }
        for y in 0..W {
            for x in 0..W {
                let i = y * W + x;
                let cs = c[(y + 1).min(W - 1) * W + x];
                let ce = c[y * W + (x + 1).min(W - 1)];
                let mut div = 0f32;
                div = c[i].mul_add(dn[i], div);
                div = cs.mul_add(ds[i], div);
                div = c[i].mul_add(dw[i], div);
                div = ce.mul_add(de[i], div);
                j[i] = div.mul_add(0.125, j[i]);
            }
        }
    }

    /// CPU reference: the final image.
    pub fn cpu_reference(&self) -> Vec<f32> {
        let mut j = self.input();
        for _ in 0..ITERS {
            // Mirror the GPU reduction: per-block tree sums, then host adds
            // the partials in block order.
            let mut partials = Vec::new();
            for blk in j.chunks_exact(BLOCK as usize) {
                let mut s: Vec<f32> = blk.to_vec();
                let mut sq: Vec<f32> = blk.iter().map(|v| v * v).collect();
                let mut stride = (BLOCK / 2) as usize;
                while stride > 0 {
                    for t in 0..stride {
                        s[t] += s[t + stride];
                        sq[t] += sq[t + stride];
                    }
                    stride /= 2;
                }
                partials.push(s[0]);
                partials.push(sq[0]);
            }
            let q0 = Self::q0sqr(&partials);
            Self::cpu_step(&mut j, q0);
        }
        j
    }
}

impl Default for Srad1 {
    fn default() -> Self {
        Srad1::new()
    }
}

impl Workload for Srad1 {
    fn name(&self) -> &'static str {
        "SRAD1"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let j = self.input();
        let blocks = N as u32 / BLOCK;
        let d_j = gpu.malloc(N as u32 * 4)?;
        let d_c = gpu.malloc(N as u32 * 4)?;
        let d_dn = gpu.malloc(N as u32 * 4)?;
        let d_ds = gpu.malloc(N as u32 * 4)?;
        let d_dw = gpu.malloc(N as u32 * 4)?;
        let d_de = gpu.malloc(N as u32 * 4)?;
        let d_part = gpu.malloc(blocks * 8)?;
        gpu.write_f32s(d_j, &j)?;
        let k_red = self.module.kernel("srad_reduce").expect("kernel exists");
        let k_coeff = self.module.kernel("srad_coeff").expect("kernel exists");
        let k_upd = self.module.kernel("srad_update").expect("kernel exists");
        for _ in 0..ITERS {
            gpu.launch(k_red, LaunchDims::new(blocks, BLOCK), &[d_j, d_part])?;
            let partials = gpu.read_f32s(d_part, blocks as usize * 2)?;
            let q0 = Self::q0sqr(&partials);
            gpu.launch(
                k_coeff,
                LaunchDims::new(blocks, BLOCK),
                &[d_j, d_c, d_dn, d_ds, d_dw, d_de, q0.to_bits()],
            )?;
            gpu.launch(
                k_upd,
                LaunchDims::new(blocks, BLOCK),
                &[d_j, d_c, d_dn, d_ds, d_dw, d_de],
            )?;
        }
        let mut out = vec![0u8; N * 4];
        gpu.memcpy_d2h(d_j, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = Srad1::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-3);
    }

    #[test]
    fn q0_is_robust_to_degenerate_stats() {
        assert_eq!(Srad1::q0sqr(&[0.0, 0.0]), 1.0);
        assert!(Srad1::q0sqr(&[f32::NAN, 1.0]) == 1.0);
    }
}
