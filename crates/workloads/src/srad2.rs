//! **SRAD2 — Speckle Reducing Anisotropic Diffusion v2** (Rodinia
//! `srad_v2`).
//!
//! Same diffusion as [`Srad1`](crate::Srad1) but with v2's two-kernel
//! organisation: `srad_cuda_1` derives the directional derivatives and the
//! diffusion coefficient (image reads on the texture path), `srad_cuda_2`
//! applies the update (coefficient/derivative reads on the texture path).
//! The homogeneity statistic comes from a host-side read-back, as v2's
//! driver does.

use crate::input::InputRng;
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel srad_cuda_1
.params 7            ; R0=J R1=c R2=dN R3=dS R4=dW R5=dE R6=q0sqr
    S2R  R7, SR_TID.X
    S2R  R8, SR_CTAID.X
    S2R  R9, SR_NTID.X
    IMAD R7, R8, R9, R7
    AND  R10, R7, 31
    SHR  R11, R7, 5
    ISUB R12, R10, 1
    IMAX R12, R12, 0
    IADD R13, R10, 1
    IMIN R13, R13, 31
    ISUB R14, R11, 1
    IMAX R14, R14, 0
    IADD R15, R11, 1
    IMIN R15, R15, 31
    SHL  R16, R7, 2
    IADD R16, R0, R16
    LDT  R17, [R16]        ; J (texture)
    SHL  R18, R14, 5
    IADD R18, R18, R10
    SHL  R18, R18, 2
    IADD R18, R0, R18
    LDT  R19, [R18]
    SHL  R20, R15, 5
    IADD R20, R20, R10
    SHL  R20, R20, 2
    IADD R20, R0, R20
    LDT  R21, [R20]
    SHL  R22, R11, 5
    IADD R23, R22, R12
    SHL  R23, R23, 2
    IADD R23, R0, R23
    LDT  R24, [R23]
    IADD R25, R22, R13
    SHL  R25, R25, 2
    IADD R25, R0, R25
    LDT  R26, [R25]
    FSUB R19, R19, R17
    FSUB R21, R21, R17
    FSUB R24, R24, R17
    FSUB R26, R26, R17
    MOV  R27, 0
    FFMA R27, R19, R19, R27
    FFMA R27, R21, R21, R27
    FFMA R27, R24, R24, R27
    FFMA R27, R26, R26, R27
    FMUL R28, R17, R17
    FDIV R27, R27, R28
    FADD R29, R19, R21
    FADD R29, R29, R24
    FADD R29, R29, R26
    FDIV R29, R29, R17
    FMUL R30, R27, 0.5f
    FMUL R31, R29, R29
    FFMA R30, R31, -0.0625f, R30
    FMUL R32, R29, 0.25f
    FADD R32, R32, 1.0f
    FMUL R32, R32, R32
    FDIV R33, R30, R32
    FSUB R33, R33, R6
    FADD R34, R6, 1.0f
    FMUL R34, R6, R34
    FDIV R33, R33, R34
    FADD R33, R33, 1.0f
    FRCP R33, R33
    FMAX R33, R33, 0.0f
    FMIN R33, R33, 1.0f
    SHL  R35, R7, 2
    IADD R36, R1, R35
    STG  [R36], R33
    IADD R36, R2, R35
    STG  [R36], R19
    IADD R36, R3, R35
    STG  [R36], R21
    IADD R36, R4, R35
    STG  [R36], R24
    IADD R36, R5, R35
    STG  [R36], R26
    EXIT

.kernel srad_cuda_2
.params 6            ; R0=J R1=c R2=dN R3=dS R4=dW R5=dE
    S2R  R7, SR_TID.X
    S2R  R8, SR_CTAID.X
    S2R  R9, SR_NTID.X
    IMAD R7, R8, R9, R7
    AND  R10, R7, 31
    SHR  R11, R7, 5
    IADD R12, R10, 1
    IMIN R12, R12, 31
    IADD R13, R11, 1
    IMIN R13, R13, 31
    SHL  R14, R7, 2
    IADD R15, R1, R14
    LDT  R16, [R15]        ; c own (texture)
    SHL  R17, R13, 5
    IADD R17, R17, R10
    SHL  R17, R17, 2
    IADD R17, R1, R17
    LDT  R18, [R17]        ; c south
    SHL  R19, R11, 5
    IADD R19, R19, R12
    SHL  R19, R19, 2
    IADD R19, R1, R19
    LDT  R20, [R19]        ; c east
    IADD R21, R2, R14
    LDT  R22, [R21]
    IADD R21, R3, R14
    LDT  R23, [R21]
    IADD R21, R4, R14
    LDT  R24, [R21]
    IADD R21, R5, R14
    LDT  R25, [R21]
    MOV  R26, 0
    FFMA R26, R16, R22, R26
    FFMA R26, R18, R23, R26
    FFMA R26, R16, R24, R26
    FFMA R26, R20, R25, R26
    IADD R27, R0, R14
    LDG  R28, [R27]
    FFMA R28, R26, 0.125f, R28
    STG  [R27], R28
    EXIT
"#;

const W: usize = 32;
const N: usize = W * W;
const BLOCK: u32 = 64;
const ITERS: usize = 2;

/// The SRAD2 benchmark: 32×32 image, two diffusion iterations, texture
/// reads.
#[derive(Debug)]
pub struct Srad2 {
    module: Module,
}

impl Srad2 {
    /// Creates the benchmark.
    pub fn new() -> Self {
        Srad2 {
            module: Module::assemble(SRC).expect("SRAD2 kernels assemble"),
        }
    }

    fn input(&self) -> Vec<f32> {
        InputRng::new(0x5207).f32_vec(N, 1.0, 2.0)
    }

    /// Host-side homogeneity statistic from the full image (v2 style),
    /// guarded against corrupted values.
    fn q0sqr(j: &[f32]) -> f32 {
        let n = j.len() as f32;
        let mut sum = 0f32;
        let mut sumsq = 0f32;
        for &v in j {
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n;
        let denom = mean * mean;
        if !denom.is_normal() {
            return 1.0;
        }
        ((sumsq / n - denom) / denom).max(0.0)
    }

    fn cpu_step(j: &mut [f32], q0sqr: f32) {
        // Identical arithmetic to Srad1's step (the kernels compute the
        // same expressions; only the memory paths differ).
        let mut c = vec![0f32; N];
        let (mut dn, mut ds, mut dw, mut de) =
            (vec![0f32; N], vec![0f32; N], vec![0f32; N], vec![0f32; N]);
        for y in 0..W {
            for x in 0..W {
                let i = y * W + x;
                let jc = j[i];
                dn[i] = j[y.saturating_sub(1) * W + x] - jc;
                ds[i] = j[(y + 1).min(W - 1) * W + x] - jc;
                dw[i] = j[y * W + x.saturating_sub(1)] - jc;
                de[i] = j[y * W + (x + 1).min(W - 1)] - jc;
                let mut g2 = 0f32;
                g2 = dn[i].mul_add(dn[i], g2);
                g2 = ds[i].mul_add(ds[i], g2);
                g2 = dw[i].mul_add(dw[i], g2);
                g2 = de[i].mul_add(de[i], g2);
                g2 /= jc * jc;
                let l = (((dn[i] + ds[i]) + dw[i]) + de[i]) / jc;
                let num = (l * l).mul_add(-0.0625, g2 * 0.5);
                let den = {
                    let d = l * 0.25 + 1.0;
                    d * d
                };
                let q = num / den;
                let cc = 1.0 / (1.0 + (q - q0sqr) / (q0sqr * (1.0 + q0sqr)));
                // Not `clamp`: the kernel's FMAX/FMIN chain maps NaN to 0,
                // `clamp` would keep it NaN.
                #[allow(clippy::manual_clamp)]
                {
                    c[i] = cc.max(0.0).min(1.0);
                }
            }
        }
        for y in 0..W {
            for x in 0..W {
                let i = y * W + x;
                let cs = c[(y + 1).min(W - 1) * W + x];
                let ce = c[y * W + (x + 1).min(W - 1)];
                let mut div = 0f32;
                div = c[i].mul_add(dn[i], div);
                div = cs.mul_add(ds[i], div);
                div = c[i].mul_add(dw[i], div);
                div = ce.mul_add(de[i], div);
                j[i] = div.mul_add(0.125, j[i]);
            }
        }
    }

    /// CPU reference: the final image.
    pub fn cpu_reference(&self) -> Vec<f32> {
        let mut j = self.input();
        for _ in 0..ITERS {
            let q0 = Self::q0sqr(&j);
            Self::cpu_step(&mut j, q0);
        }
        j
    }
}

impl Default for Srad2 {
    fn default() -> Self {
        Srad2::new()
    }
}

impl Workload for Srad2 {
    fn name(&self) -> &'static str {
        "SRAD2"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let j = self.input();
        let blocks = N as u32 / BLOCK;
        let d_j = gpu.malloc(N as u32 * 4)?;
        let d_c = gpu.malloc(N as u32 * 4)?;
        let d_dn = gpu.malloc(N as u32 * 4)?;
        let d_ds = gpu.malloc(N as u32 * 4)?;
        let d_dw = gpu.malloc(N as u32 * 4)?;
        let d_de = gpu.malloc(N as u32 * 4)?;
        gpu.write_f32s(d_j, &j)?;
        let k1 = self.module.kernel("srad_cuda_1").expect("kernel exists");
        let k2 = self.module.kernel("srad_cuda_2").expect("kernel exists");
        for _ in 0..ITERS {
            let img = gpu.read_f32s(d_j, N)?;
            let q0 = Self::q0sqr(&img);
            gpu.launch(
                k1,
                LaunchDims::new(blocks, BLOCK),
                &[d_j, d_c, d_dn, d_ds, d_dw, d_de, q0.to_bits()],
            )?;
            gpu.launch(
                k2,
                LaunchDims::new(blocks, BLOCK),
                &[d_j, d_c, d_dn, d_ds, d_dw, d_de],
            )?;
        }
        let mut out = vec![0u8; N * 4];
        gpu.memcpy_d2h(d_j, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = Srad2::new();
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-3);
    }

    #[test]
    fn differs_from_srad1_structure() {
        // v2 has two kernels; v1 has three.
        assert_eq!(Srad2::new().module().kernels().len(), 2);
    }
}
