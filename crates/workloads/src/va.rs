//! **VA — Vector Addition** (Nvidia CUDA SDK `vectorAdd`).
//!
//! The canonical embarrassingly parallel kernel: `c[i] = a[i] + b[i]`.

use crate::input::InputRng;
use gpufi_core::{Workload, WorkloadError};
use gpufi_isa::Module;
use gpufi_sim::{Gpu, LaunchDims};

const SRC: &str = r#"
.kernel vec_add
.params 4            ; R0=a R1=b R2=c R3=n
    S2R  R4, SR_TID.X
    S2R  R5, SR_CTAID.X
    S2R  R6, SR_NTID.X
    IMAD R4, R5, R6, R4
    ISETP.GE P0, R4, R3
@P0 EXIT
    SHL  R5, R4, 2
    IADD R6, R0, R5
    LDG  R7, [R6]
    IADD R8, R1, R5
    LDG  R9, [R8]
    FADD R7, R7, R9
    IADD R10, R2, R5
    STG  [R10], R7
    EXIT
"#;

const BLOCK: u32 = 128;

/// The VA benchmark.
#[derive(Debug)]
pub struct VectorAdd {
    n: u32,
    module: Module,
}

impl VectorAdd {
    /// Creates the benchmark for `n` elements (rounded up to a full block).
    pub fn new(n: u32) -> Self {
        let n = n.max(1).div_ceil(BLOCK) * BLOCK;
        VectorAdd {
            n,
            module: Module::assemble(SRC).expect("VA kernel assembles"),
        }
    }

    /// Element count.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether the vector is empty (never true; `new` enforces ≥ 1 block).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn inputs(&self) -> (Vec<f32>, Vec<f32>) {
        let mut rng = InputRng::new(0xa001);
        let a = rng.f32_vec(self.n as usize, -1.0, 1.0);
        let b = rng.f32_vec(self.n as usize, -1.0, 1.0);
        (a, b)
    }

    /// The CPU golden reference.
    pub fn cpu_reference(&self) -> Vec<f32> {
        let (a, b) = self.inputs();
        a.iter().zip(&b).map(|(x, y)| x + y).collect()
    }
}

impl Default for VectorAdd {
    /// The size used by the reproduction campaigns.
    fn default() -> Self {
        VectorAdd::new(4096)
    }
}

impl Workload for VectorAdd {
    fn name(&self) -> &'static str {
        "VA"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let (a, b) = self.inputs();
        let bytes = self.n * 4;
        let da = gpu.malloc(bytes)?;
        let db = gpu.malloc(bytes)?;
        let dc = gpu.malloc(bytes)?;
        gpu.write_f32s(da, &a)?;
        gpu.write_f32s(db, &b)?;
        let kernel = self.module.kernel("vec_add").expect("kernel exists");
        gpu.launch(
            kernel,
            LaunchDims::new(self.n / BLOCK, BLOCK),
            &[da, db, dc, self.n],
        )?;
        let mut out = vec![0u8; bytes as usize];
        gpu.memcpy_d2h(dc, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{assert_f32_slices_close, bytes_to_f32s};
    use gpufi_sim::GpuConfig;

    #[test]
    fn matches_cpu_reference() {
        let w = VectorAdd::new(256);
        let mut gpu = Gpu::new(GpuConfig::rtx2060());
        let out = bytes_to_f32s(&w.run(&mut gpu).unwrap());
        assert_f32_slices_close(&out, &w.cpu_reference(), 1e-6);
    }

    #[test]
    fn rounds_to_block() {
        assert_eq!(VectorAdd::new(1).len(), 128);
        assert_eq!(VectorAdd::new(129).len(), 256);
    }
}
