//! ACE analysis vs. statistical fault injection.
//!
//! The paper (§II.C) dismisses ACE-style (Architecturally Correct
//! Execution) residency analyses because they come "with the inherent
//! overestimation of the AVF" and cannot classify fault effects.  This
//! reproduction implements **both**: the simulator tracks register
//! def→last-use liveness spans during the golden run (an ACE-style
//! estimate), and the campaign engine measures the same quantity by
//! injection.  This example puts the two side by side.
//!
//! Both numbers are on the *per-thread allocated registers* basis (no
//! `df_reg` derating), so they are directly comparable.
//!
//! ```text
//! cargo run --release --example ace_vs_injection [RUNS]
//! ```

use gpufi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let card = GpuConfig::rtx2060();

    println!(
        "{:<8} {:>10} {:>14} {:>8}   (register file, RTX 2060, {} injections)",
        "bench", "ACE AVF", "injection FR", "ACE/FR", runs
    );

    let mut overestimates = 0usize;
    let mut total = 0usize;
    for w in paper_suite() {
        let golden = profile(w.as_ref(), &card)?;
        // App-level ACE estimate: aggregate liveness spans over all
        // launches, against the total allocated register-cycles.
        let ace_cycles: u64 = golden.app.launches.iter().map(|l| l.ace_reg_cycles).sum();
        let total_reg_cycles: f64 = golden
            .app
            .launches
            .iter()
            .map(|l| l.thread_cycles as f64 * f64::from(l.regs_per_thread))
            .sum();
        let ace = if total_reg_cycles > 0.0 {
            (ace_cycles as f64 / total_reg_cycles).min(1.0)
        } else {
            0.0
        };

        let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, 13);
        let fr = run_campaign(w.as_ref(), &card, &cfg, &golden)?
            .tally
            .failure_ratio();

        let ratio = if fr > 0.0 { ace / fr } else { f64::INFINITY };
        println!("{:<8} {:>10.4} {:>14.4} {:>8.2}", w.name(), ace, fr, ratio);
        total += 1;
        if ace >= fr {
            overestimates += 1;
        }
    }
    println!(
        "\nACE >= injection for {overestimates}/{total} benchmarks — the \
         systematic overestimation\nthe paper cites (ACE counts every live \
         bit as vulnerable; injection observes that\nmany corrupted live \
         values are still architecturally masked downstream)."
    );
    Ok(())
}
