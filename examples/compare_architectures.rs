//! Cross-generation study: run the same benchmark's full analysis on the
//! paper's three GPU generations (Turing / Volta / Kepler) and compare
//! wAVF, occupancy and predicted FIT — a miniature of Figures 3 and 7.
//!
//! ```text
//! cargo run --release --example compare_architectures [BENCH] [RUNS]
//! ```

use gpufi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench_name = args.next().unwrap_or_else(|| "HS".to_string());
    let runs: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(60);

    let benchmark =
        by_name(&bench_name).ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
    println!(
        "benchmark {} — {} injections per kernel x structure\n",
        benchmark.name(),
        runs
    );

    println!(
        "{:<14} {:>10} {:>11} {:>12} {:>10}",
        "card", "wAVF %", "occupancy", "FIT", "cycles"
    );
    for card in GpuConfig::paper_cards() {
        let cfg = AnalysisConfig::new(runs, 7);
        let analysis = analyze(benchmark.as_ref(), &card, &cfg)?;
        println!(
            "{:<14} {:>10.4} {:>11.4} {:>12.4} {:>10}",
            analysis.card,
            100.0 * analysis.wavf,
            analysis.occupancy,
            analysis.fit,
            analysis.golden_cycles
        );
    }
    println!(
        "\nExpected shape (paper Figs. 3 & 7): similar AVF trends across \
         generations;\nthe 28 nm GTX Titan shows the highest FIT because its \
         raw fault rate per bit\nis ~6.7x the 12 nm cards'."
    );
    Ok(())
}
