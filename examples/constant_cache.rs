//! Constant-cache study — the paper's *future work* (§IV.C.1),
//! implemented: a kernel whose coefficients live in the 64 KB constant
//! bank (`LDC` through the per-SM L1 constant cache), examined two ways:
//!
//! 1. a statistical campaign over the whole L1C bit space (like the
//!    paper's campaigns — most flips land on invalid lines and mask), and
//! 2. a *targeted* injection into the hot coefficient line of one SM,
//!    demonstrating the surgical end of the same API.
//!
//! ```text
//! cargo run --release --example constant_cache
//! ```

use gpufi::prelude::*;
use gpufi_isa::Module;

/// Iterative polynomial evaluation; the coefficients are re-read from the
/// constant bank every iteration, so mid-run L1C corruption propagates.
const SRC: &str = r#"
.kernel poly
.params 3            ; R0=x R1=y R2=n
    S2R  R3, SR_TID.X
    S2R  R4, SR_CTAID.X
    S2R  R5, SR_NTID.X
    IMAD R3, R4, R5, R3
    ISETP.GE P0, R3, R2
@P0 EXIT
    SHL  R6, R3, 2
    IADD R7, R0, R6
    LDG  R8, [R7]        ; x
    MOV  R16, 0          ; iteration counter
    MOV  R17, 0          ; accumulator
    MOV  R9, 0
it:
    LDC  R10, [R9+12]    ; c3
    LDC  R11, [R9+8]     ; c2
    LDC  R12, [R9+4]     ; c1
    LDC  R13, [R9]       ; c0
    FFMA R14, R10, R8, R11
    FFMA R14, R14, R8, R12
    FFMA R14, R14, R8, R13
    FADD R17, R17, R14
    IADD R16, R16, 1
    ISETP.LT P1, R16, 24
@P1 BRA it
    IADD R15, R1, R6
    STG  [R15], R17
    EXIT
"#;

const COEFFS: [f32; 4] = [0.5, -1.25, 2.0, 0.75];
const N: u32 = 1024;

struct Poly {
    module: Module,
}

impl Workload for Poly {
    fn name(&self) -> &'static str {
        "POLY"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let x: Vec<f32> = (0..N).map(|i| i as f32 / N as f32 - 0.5).collect();
        gpu.write_const_f32s(0, &COEFFS)?;
        let d_x = gpu.malloc(N * 4)?;
        let d_y = gpu.malloc(N * 4)?;
        gpu.write_f32s(d_x, &x)?;
        gpu.launch(
            self.module.kernel("poly").expect("kernel exists"),
            LaunchDims::new(N / 128, 128),
            &[d_x, d_y, N],
        )?;
        let mut out = vec![0u8; (N * 4) as usize];
        gpu.memcpy_d2h(d_y, &mut out)?;
        Ok(out)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Poly {
        module: Module::assemble(SRC)?,
    };
    let card = GpuConfig::rtx2060();
    let golden = profile(&workload, &card)?;
    println!("golden cycles: {}", golden.total_cycles());

    // 1. Statistical campaigns: the coefficients occupy ONE 64-byte line
    //    of a 64 KB cache, so random L1C flips almost always land on
    //    invalid lines and mask — small structures with small footprints
    //    have small failure ratios, which is the paper's whole point about
    //    per-structure attribution.
    for s in [Structure::L1Const, Structure::RegisterFile] {
        let cfg = CampaignConfig::new(CampaignSpec::new(s), 300, 77);
        let r = run_campaign(&workload, &card, &cfg, &golden)?;
        println!(
            "campaign  {:<18} FR {:.4}  ({})",
            s.name(),
            r.tally.failure_ratio(),
            r.tally
        );
    }

    // 2. Targeted injection: flip bit 30 of coefficient c1 (a mantissa
    //    high bit) inside the hot line of SM 0's constant cache, mid-run.
    //    Only CTAs resident on SM 0 read the corrupted value.
    let line_bits = 64 * 8 + u64::from(gpufi_sim::TAG_BITS);
    let c1_bit = u64::from(gpufi_sim::TAG_BITS) + (4 * 8) + 30; // line 0, byte 4..8, bit 30
    let mut gpu = Gpu::new(card.clone());
    gpu.arm_faults(InjectionPlan::single(
        golden.total_cycles() / 2,
        FaultTarget::L1Const {
            core_lot: 0,
            replicate: 1,
            bits: vec![c1_bit],
        },
    ));
    gpu.set_watchdog(golden.total_cycles() * 2);
    let out = workload.run(&mut gpu)?;
    let rec = &gpu.injection_records()[0];
    println!(
        "\ntargeted  L1C line-0 flip applied: {} (outcome {:?})",
        rec.applied, rec.outcomes
    );
    let corrupted = out
        .chunks_exact(4)
        .zip(golden.output.chunks_exact(4))
        .filter(|(a, b)| a != b)
        .count();
    println!("targeted  corrupted outputs: {corrupted} of {N} (threads on the faulted SM)");
    let _ = line_bits;
    Ok(())
}
