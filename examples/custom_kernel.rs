//! Bring your own kernel: write a SASS-lite kernel from scratch, wrap it
//! in a [`Workload`], and put it through the same injection pipeline as
//! the paper's benchmarks.
//!
//! The kernel computes an exclusive prefix-sum-style transform with a
//! shared-memory staging buffer, so register-file, shared-memory and
//! cache faults all have something to corrupt.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use gpufi::prelude::*;
use gpufi_isa::Module;

/// `out[i] = in[i] + in[i-1]` within each 64-thread CTA (first lane adds 0),
/// staged through shared memory.
const SRC: &str = r#"
.kernel pairsum
.params 2            ; R0=in R1=out
.smem 256
    S2R  R2, SR_TID.X
    S2R  R3, SR_CTAID.X
    S2R  R4, SR_NTID.X
    IMAD R5, R3, R4, R2    ; global index
    SHL  R6, R5, 2
    IADD R7, R0, R6
    LDG  R8, [R7]
    SHL  R9, R2, 2
    STS  [R9], R8
    BAR
    ; left neighbour within the CTA, 0 for lane 0
    ISUB R10, R2, 1
    IMAX R10, R10, 0
    SHL  R10, R10, 2
    LDS  R11, [R10]
    MOV  R12, 0
    ISETP.GT P0, R2, 0
    SEL  R11, R11, R12, P0
    IADD R13, R8, R11
    IADD R14, R1, R6
    STG  [R14], R13
    EXIT
"#;

struct PairSum {
    module: Module,
    n: u32,
}

impl Workload for PairSum {
    fn name(&self) -> &'static str {
        "PAIRSUM"
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn run(&self, gpu: &mut Gpu) -> Result<Vec<u8>, WorkloadError> {
        let input: Vec<u32> = (0..self.n).map(|i| i * 3 + 1).collect();
        let d_in = gpu.malloc(self.n * 4)?;
        let d_out = gpu.malloc(self.n * 4)?;
        gpu.write_u32s(d_in, &input)?;
        gpu.launch(
            self.module.kernel("pairsum").expect("kernel exists"),
            LaunchDims::new(self.n / 64, 64),
            &[d_in, d_out],
        )?;
        let mut out = vec![0u8; (self.n * 4) as usize];
        gpu.memcpy_d2h(d_out, &mut out)?;
        Ok(out)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = PairSum {
        module: Module::assemble(SRC)?,
        n: 1024,
    };
    let card = GpuConfig::rtx2060();
    let golden = profile(&workload, &card)?;
    println!("golden cycles: {}", golden.total_cycles());

    // Verify the kernel on the host before trusting the campaign.
    let expect: Vec<u32> = (0..1024u32)
        .map(|i| {
            let v = i * 3 + 1;
            if i % 64 == 0 {
                v
            } else {
                v + ((i - 1) * 3 + 1)
            }
        })
        .collect();
    let got: Vec<u32> = golden
        .output
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(got, expect, "kernel must match the host reference");
    println!("host reference check: PASSED");

    // Campaign over the CTA's shared-memory staging buffer.
    for structure in [
        Structure::SharedMemory,
        Structure::RegisterFile,
        Structure::L2,
    ] {
        let cfg = CampaignConfig::new(CampaignSpec::new(structure), 150, 9);
        let r = run_campaign(&workload, &card, &cfg, &golden)?;
        println!(
            "{:<16} failure ratio {:.4}  ({})",
            structure.name(),
            r.tally.failure_ratio(),
            r.tally
        );
    }
    Ok(())
}
