//! Multi-bit upset study: sweep the fault cardinality (1-, 2-, 3-, 4-bit
//! flips in the same entry) on one benchmark's register file — the study
//! behind the paper's Figures 5 and 6, generalised to any cardinality.
//!
//! ```text
//! cargo run --release --example multi_bit_study [BENCH] [RUNS]
//! ```

use gpufi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench_name = args.next().unwrap_or_else(|| "SRAD2".to_string());
    let runs: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(150);

    let benchmark =
        by_name(&bench_name).ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
    let card = GpuConfig::rtx2060();
    let golden = profile(benchmark.as_ref(), &card)?;

    println!(
        "{} on {}: {} runs per campaign, register file, same-entry flips\n",
        benchmark.name(),
        card.name,
        runs
    );
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "bits", "masked", "SDC", "crash", "timeout", "FR (eq.1)"
    );

    let mut single_fr = None;
    for bits in 1..=4u32 {
        let spec = CampaignSpec::new(Structure::RegisterFile).bits(bits);
        let cfg = CampaignConfig::new(spec, runs, 2022 + u64::from(bits));
        let r = run_campaign(benchmark.as_ref(), &card, &cfg, &golden)?;
        let t = &r.tally;
        println!(
            "{:>5} {:>8} {:>8} {:>8} {:>8} {:>10.4}",
            bits,
            t.count(FaultEffect::Masked),
            t.count(FaultEffect::Sdc),
            t.count(FaultEffect::Crash),
            t.count(FaultEffect::Timeout),
            t.failure_ratio()
        );
        if bits == 1 {
            single_fr = Some(t.failure_ratio());
        } else if bits == 3 {
            if let Some(s) = single_fr {
                if s > 0.0 {
                    println!(
                        "      triple/single failure-ratio: {:.2}x (paper Fig. 6: ~2x)",
                        t.failure_ratio() / s
                    );
                }
            }
        }
    }
    Ok(())
}
