//! Error-protection design study: the use case the paper motivates —
//! deciding *which* structure to protect (e.g. with ECC/parity) by
//! measuring each structure's contribution to the chip's FIT rate.
//!
//! For one benchmark, this example runs per-structure campaigns and then
//! asks: if we added perfect protection to exactly one structure, how much
//! of the chip FIT would that remove, per protected bit?
//!
//! ```text
//! cargo run --release --example protection_tradeoff [BENCH] [RUNS]
//! ```

use gpufi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bench_name = args.next().unwrap_or_else(|| "HS".to_string());
    let runs: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(80);

    let benchmark =
        by_name(&bench_name).ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
    let card = GpuConfig::rtx2060();
    let cfg = AnalysisConfig::new(runs, 5);
    let analysis = analyze(benchmark.as_ref(), &card, &cfg)?;
    let raw = raw_fit_per_bit(card.process_nm);

    println!(
        "{} on {} — chip FIT {:.4} ({} runs/campaign)\n",
        analysis.benchmark, analysis.card, analysis.fit, runs
    );
    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>16}",
        "structure", "size (Mbit)", "FIT", "FIT %", "FIT removed/Mbit"
    );

    let mut rows: Vec<(String, f64, u64)> = analysis
        .structures
        .iter()
        .map(|s| {
            let fit = s.rates.failure_rate() * raw * s.size_bits as f64;
            (s.structure.name().to_string(), fit, s.size_bits)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    for (name, fit, bits) in &rows {
        let mbit = *bits as f64 / 1e6;
        let share = if analysis.fit > 0.0 {
            fit / analysis.fit
        } else {
            0.0
        };
        let per_mbit = if mbit > 0.0 { fit / mbit } else { 0.0 };
        println!(
            "{:<18} {:>12.2} {:>10.4} {:>9.1}% {:>16.5}",
            name,
            mbit,
            fit,
            100.0 * share,
            per_mbit
        );
    }

    if let Some((best, fit, _)) = rows.first() {
        println!(
            "\n=> protecting the {} first removes {:.1}% of this workload's FIT",
            best,
            if analysis.fit > 0.0 {
                100.0 * fit / analysis.fit
            } else {
                0.0
            }
        );
    }
    println!(
        "\nThis per-structure attribution is exactly what software-level \
         injectors\n(NVBitFI, SASSIFI, ...) cannot produce — the paper's \
         core argument (§I)."
    );
    Ok(())
}
