//! Quickstart: profile a benchmark fault-free, run a small single-bit
//! register-file campaign, and print the fault-effect breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpufi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The target: the paper's VA benchmark on a simulated RTX 2060.
    let benchmark = VectorAdd::new(2048);
    let card = GpuConfig::rtx2060();

    // Step 1 — golden run (the paper's profiling step, §III.C): captures
    // the fault-free output, cycle windows and occupancy statistics.
    let golden = profile(&benchmark, &card)?;
    println!("fault-free cycles : {}", golden.total_cycles());
    println!("static kernels    : {:?}", golden.app.static_kernels());

    // Step 2 — a 200-run single-bit fault-injection campaign on the
    // register file (the paper uses 3 000 runs per campaign).
    let runs = 200;
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), runs, 42);
    let result = run_campaign(&benchmark, &card, &cfg, &golden)?;

    // Step 3 — the classifier's verdicts (§V.B).
    println!("\nfault effects over {runs} injections:");
    for effect in FaultEffect::ALL {
        println!(
            "  {:<12} {:>5}  ({:>5.1} %)",
            effect.name(),
            result.tally.count(effect),
            100.0 * result.tally.fraction(effect)
        );
    }
    println!(
        "\nfailure ratio (eq. 1): {:.4}  (±{:.1}% at 99% confidence)",
        result.tally.failure_ratio(),
        100.0 * margin_of_error(0.99, runs as u64, u64::MAX)
    );
    Ok(())
}
