//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen::<u64>()` and
//! `Rng::gen_range` over half-open `u32`/`u64` ranges.
//!
//! The generator is xoshiro256** seeded through a splitmix64 expansion —
//! statistically solid, deterministic across platforms, and dependency
//! free. Bounded draws use Lemire's multiply-then-reject method, so they
//! are exactly uniform. Streams are *not* bit-compatible with upstream
//! `rand`; the workspace only relies on same-seed reproducibility, never
//! on specific values.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Concrete generators.
pub mod rngs {
    /// xoshiro256** seeded via splitmix64 — the workspace's standard RNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut st);
        }
        // splitmix64 cannot emit four zero words from one stream, but keep
        // the all-zero guard anyway: xoshiro's state must never be zero.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Exactly-uniform draw in `[0, bound)` via Lemire's method.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(bound);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(bound);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + bounded_u64(rng, self.end - self.start)
    }
}

impl SampleRange<u32> for Range<u32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = u64::from(self.end) - u64::from(self.start);
        self.start + bounded_u64(rng, span) as u32
    }
}

/// The user-facing sampling interface (`gen`, `gen_range`).
pub trait Rng: RngCore + Sized {
    /// Draws one value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u32 = r.gen_range(0u32..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0u64..5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }
}
