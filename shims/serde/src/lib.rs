//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types as a
//! forward-compatibility marker but never serializes anything at runtime.
//! This shim provides the two names in both namespaces — the no-op derive
//! macros (re-exported from the local `serde_derive` shim) and marker
//! traits with blanket impls — so `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` both compile without touching
//! the network.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; every type trivially satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; every type trivially satisfies it.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
