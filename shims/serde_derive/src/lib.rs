//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatibility marker — nothing serializes at runtime — so the
//! derives expand to nothing. This keeps the build hermetic: no network,
//! no vendored upstream sources.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
