//! # gpufi — a Rust reproduction of gpuFI-4 (ISPASS 2022)
//!
//! *gpuFI-4: A Microarchitecture-Level Framework for Assessing the
//! Cross-Layer Resilience of Nvidia GPUs* — Sartzetakis, Papadimitriou,
//! Gizopoulos, University of Athens.
//!
//! This façade crate re-exports the whole stack:
//!
//! * [`isa`] — the SASS-lite instruction set and assembler;
//! * [`sim`] — a from-scratch cycle-level SIMT GPU simulator (the
//!   GPGPU-Sim 4.0 stand-in) for the RTX 2060, Quadro GV100 and
//!   GTX Titan chips;
//! * [`faults`] — transient-fault models and the mask generator
//!   (single/multi-bit, all six target structures);
//! * [`core`] — golden-run profiling, campaign control and the
//!   Masked / SDC / Crash / Timeout / Performance classifier;
//! * [`metrics`] — AVF (equations 1–3), derating factors, FIT rates and
//!   campaign statistics;
//! * [`workloads`] — the paper's twelve Rodinia / CUDA-SDK benchmarks.
//!
//! The [`prelude`] pulls in the names an injection study typically needs.
//!
//! # Quickstart
//!
//! ```
//! use gpufi::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let benchmark = VectorAdd::new(512);
//! let card = GpuConfig::rtx2060();
//!
//! // 1. Fault-free golden run.
//! let golden = profile(&benchmark, &card)?;
//!
//! // 2. A 16-run single-bit campaign on the register file.
//! let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 16, 42);
//! let result = run_campaign(&benchmark, &card, &cfg, &golden)?;
//! assert_eq!(result.tally.total(), 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gpufi_core as core;
pub use gpufi_faults as faults;
pub use gpufi_isa as isa;
pub use gpufi_metrics as metrics;
pub use gpufi_sim as sim;
pub use gpufi_workloads as workloads;

/// The names an injection study typically needs, in one import.
pub mod prelude {
    pub use gpufi_core::{
        analyze, analyze_with_golden, campaign_fingerprint, classify, detail_of, profile,
        run_campaign, run_campaign_with_hook, run_worker, AnalysisConfig, AppAnalysis,
        CampaignConfig, CampaignError, CampaignResult, CampaignStats, Coordinator, DistError,
        FaultHook, GoldenProfile, JobSpec, RunDetail, RunJournal, RunRecord, ServeOptions,
        WorkerOptions, WorkerReport, Workload, WorkloadError,
    };
    pub use gpufi_faults::{CampaignSpec, MaskGenerator, MultiBitMode, Structure};
    pub use gpufi_isa::Module;
    pub use gpufi_metrics::{
        avf_kernel, chip_fit, df_reg, df_smem, margin_of_error, raw_fit_per_bit, sample_size, wavf,
        FaultEffect, KernelAvf, StructureResult, Tally,
    };
    pub use gpufi_sim::{
        CheckpointStore, Dim3, FaultTarget, Gpu, GpuConfig, InjectionPlan, LaunchDims, Scope,
        Snapshot, Trap,
    };
    pub use gpufi_workloads::{
        by_name, paper_suite, Backprop, Bfs, Gaussian, HotSpot, KMeans, Lud, NeedlemanWunsch,
        PathFinder, ScalarProd, Srad1, Srad2, VectorAdd,
    };
}
