//! Validation of checkpoint-and-fork execution: forking each injection run
//! from a golden-run snapshot must never change what the campaign
//! concludes, only how long it takes.

use gpufi::prelude::*;
use gpufi::sim::Gpu;

/// Checkpoint forking and cold starts must classify every run identically —
/// same effect, same cycle count, same applied flag — with taint early exit
/// both on and off, across workloads that cover single-kernel,
/// host-control-flow (BFS's stop-flag loop reads device memory between
/// launches) and multi-kernel whole-application (`kernel: None`) campaigns.
/// Only the `ckpt_skipped_cycles` marker may differ.
#[test]
fn checkpoint_matches_full_simulation() {
    let card = GpuConfig::rtx2060();
    let workloads: [(Box<dyn Workload>, usize); 3] = [
        (Box::new(VectorAdd::new(256)), 120),
        (Box::new(Bfs::new()), 24),
        (Box::new(Srad1::default()), 16),
    ];
    for (w, runs) in &workloads {
        let golden = profile(w.as_ref(), &card).unwrap();
        let spec = CampaignSpec::new(Structure::RegisterFile);
        for early_exit in [true, false] {
            let mut forked_cfg = CampaignConfig::new(spec.clone(), *runs, 17);
            let mut cold_cfg = CampaignConfig::new(spec.clone(), *runs, 17).no_checkpoints();
            if !early_exit {
                forked_cfg = forked_cfg.no_early_exit();
                cold_cfg = cold_cfg.no_early_exit();
            }
            let forked = run_campaign(w.as_ref(), &card, &forked_cfg, &golden).unwrap();
            let cold = run_campaign(w.as_ref(), &card, &cold_cfg, &golden).unwrap();
            let tag = format!("{} (early_exit={early_exit})", w.name());
            assert_eq!(forked.tally, cold.tally, "{tag}: tallies diverge");
            for (i, (a, b)) in forked.records.iter().zip(&cold.records).enumerate() {
                assert_eq!(a.effect, b.effect, "{tag} run {i}: effect");
                assert_eq!(a.cycles, b.cycles, "{tag} run {i}: cycles");
                assert_eq!(a.applied, b.applied, "{tag} run {i}: applied");
                assert_eq!(a.early_exit, b.early_exit, "{tag} run {i}: early_exit");
                assert_eq!(b.ckpt_skipped_cycles, 0, "{tag} run {i}: cold forked");
            }
            assert_eq!(cold.stats.checkpoints, 0, "{tag}: cold mode took snapshots");
            assert_eq!(cold.stats.restores, 0, "{tag}: cold mode restored");
            assert!(
                forked.stats.checkpoints > 0,
                "{tag}: no snapshots were recorded"
            );
            assert!(
                forked.stats.restores > 0,
                "{tag}: no run forked from a checkpoint in {runs}"
            );
        }
    }
}

/// Recording snapshots must not perturb the golden execution, and resuming
/// from *any* snapshot — at several strides — must finish with the golden
/// output, cycle count and statistics.
#[test]
fn snapshot_fidelity_across_strides() {
    let card = GpuConfig::rtx2060();
    let workloads: [Box<dyn Workload>; 2] = [Box::new(VectorAdd::new(256)), Box::new(Bfs::new())];
    for w in &workloads {
        let golden = profile(w.as_ref(), &card).unwrap();
        let total = golden.total_cycles();
        for div in [3, 7, 16] {
            let interval = (total / div).max(1);
            let mut rec = Gpu::new(card.clone());
            rec.record_checkpoints(interval, 1 << 30);
            let out = w.run(&mut rec).unwrap();
            assert_eq!(
                out,
                golden.output,
                "{} stride {interval}: recording perturbed the output",
                w.name()
            );
            assert_eq!(
                rec.stats(),
                &golden.app,
                "{} stride {interval}: recording perturbed the statistics",
                w.name()
            );
            let store = std::sync::Arc::new(rec.finish_checkpoint_recording());
            assert!(!store.is_empty(), "{} stride {interval}", w.name());
            for idx in 0..store.len() {
                let mut gpu = Gpu::new(card.clone());
                gpu.resume_from(&store, idx);
                let out = w.run(&mut gpu).unwrap();
                let tag = format!(
                    "{} stride {interval} snapshot {idx} (cycle {})",
                    w.name(),
                    store.snapshot_cycle(idx)
                );
                assert_eq!(out, golden.output, "{tag}: output diverged");
                assert_eq!(gpu.stats(), &golden.app, "{tag}: statistics diverged");
                assert_eq!(gpu.cycle(), total, "{tag}: cycle count diverged");
            }
        }
    }
}

/// A checkpoint budget too small for even one snapshot degrades the store
/// to a single early snapshot — and restoring from it must still replay
/// to the exact golden output, cycles and statistics.
#[test]
fn restore_works_when_only_the_first_snapshot_survives() {
    let card = GpuConfig::rtx2060();
    let w = VectorAdd::new(256);
    let golden = profile(&w, &card).unwrap();
    let mut rec = Gpu::new(card.clone());
    // Stride of 1 cycle against a 1-byte budget: maximal re-striding
    // pressure, every push over the first triggers halving.
    rec.record_checkpoints(1, 1);
    w.run(&mut rec).unwrap();
    let store = std::sync::Arc::new(rec.finish_checkpoint_recording());
    assert_eq!(store.len(), 1, "budget of 1 byte must keep exactly one");
    let mut gpu = Gpu::new(card);
    gpu.resume_from(&store, 0);
    let out = w.run(&mut gpu).unwrap();
    assert_eq!(out, golden.output);
    assert_eq!(gpu.cycle(), golden.total_cycles());
    assert_eq!(gpu.stats(), &golden.app);
}

/// `Gpu::snapshot` / `Gpu::restore` round-trip between launches: restoring
/// a snapshot into a fresh device and running the workload again matches
/// running it twice back-to-back on one device.
#[test]
fn explicit_snapshot_restore_roundtrip() {
    let card = GpuConfig::rtx2060();
    let w = VectorAdd::new(256);

    let mut twice = Gpu::new(card.clone());
    w.run(&mut twice).unwrap();
    let snap = twice.snapshot();
    let out_twice = w.run(&mut twice).unwrap();

    let mut restored = Gpu::new(card.clone());
    restored.restore(&snap);
    assert_eq!(restored.cycle(), snap.cycle());
    let out_restored = w.run(&mut restored).unwrap();

    assert_eq!(out_restored, out_twice);
    assert_eq!(restored.stats(), twice.stats());
    assert_eq!(restored.cycle(), twice.cycle());
}
