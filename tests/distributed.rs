//! Validation of the distributed campaign service: sharding a campaign's
//! run indices across worker processes over range leases must never change
//! what the campaign concludes — the merged result is byte-identical,
//! record for record, to the single-process engine — even when workers
//! die mid-lease or the coordinator resumes from a torn merge journal.

use gpufi::core::campaign_csv;
use gpufi::prelude::*;
use std::thread;

fn resolver(name: &str) -> Option<Box<dyn Workload>> {
    gpufi::workloads::by_name(name)
}

/// Runs `job` on a fresh coordinator with `workers` in-process workers
/// (each its own thread, connecting over real TCP) and returns the merged
/// result plus each worker's outcome.
fn run_distributed(
    job: &JobSpec,
    opts: &ServeOptions,
    workers: Vec<WorkerOptions>,
) -> (CampaignResult, Vec<Result<WorkerReport, DistError>>) {
    let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.addr().to_string();
    let handles: Vec<_> = workers
        .into_iter()
        .map(|w| {
            let addr = addr.clone();
            thread::spawn(move || run_worker(&addr, &w, &resolver))
        })
        .collect();
    let result = coordinator.run(job, opts).unwrap();
    coordinator.shutdown();
    let reports = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (result, reports)
}

/// The acceptance bar: a GE register-file campaign sharded across two
/// local workers merges into the exact records, tally and CSV of the
/// single-process run — per-run determinism survives distribution.
#[test]
fn two_workers_match_serial_byte_identically() {
    let workload = resolver("GE").unwrap();
    let card = GpuConfig::rtx2060();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 40, 13);
    let golden = profile(workload.as_ref(), &card).unwrap();
    let serial = run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap();

    let job = JobSpec::from_config("GE", "rtx2060", &cfg);
    let (merged, reports) = run_distributed(
        &job,
        &ServeOptions::default(),
        vec![WorkerOptions::default(), WorkerOptions::default()],
    );

    assert_eq!(merged.records, serial.records, "records diverge");
    assert_eq!(merged.tally, serial.tally, "tallies diverge");
    assert_eq!(
        campaign_csv(&merged),
        campaign_csv(&serial),
        "CSV not byte-identical"
    );
    assert_eq!(merged.stats.workers, 2, "both workers must register");
    assert_eq!(merged.stats.lease_reissues, 0);
    let total_runs: usize = reports.iter().map(|r| r.as_ref().unwrap().runs).sum();
    assert_eq!(total_runs, 40, "every run executed exactly once");
    for r in &reports {
        assert!(r.as_ref().unwrap().leases > 0, "a worker sat idle");
    }
}

/// A worker that silently drops its connection mid-lease (the in-process
/// stand-in for SIGKILL) loses nothing: its unfinished indices are
/// reissued to the survivor and the merged result is still bit-identical.
#[test]
fn dead_worker_leases_are_reissued_without_loss() {
    let workload = resolver("VA").unwrap();
    let card = GpuConfig::rtx2060();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 60, 5);
    let golden = profile(workload.as_ref(), &card).unwrap();
    let serial = run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap();

    let job = JobSpec::from_config("VA", "rtx2060", &cfg);
    let chaos = WorkerOptions {
        fail_after_results: Some(3),
        ..WorkerOptions::default()
    };
    let (merged, reports) = run_distributed(
        &job,
        &ServeOptions::default(),
        vec![chaos, WorkerOptions::default()],
    );

    assert_eq!(merged.records, serial.records, "records diverge");
    assert!(
        merged.stats.lease_reissues >= 1,
        "the dead worker's lease was never reclaimed"
    );
    assert!(
        matches!(reports[0], Err(DistError::Fatal(_))),
        "chaos worker should report its own demise: {:?}",
        reports[0]
    );
    assert!(reports[1].is_ok(), "survivor failed: {:?}", reports[1]);
}

/// One coordinator dispatches several campaigns in sequence (the
/// `--matrix` path) over the *same* connected workers; every job matches
/// its single-process twin.
#[test]
fn sequential_jobs_reuse_connected_workers() {
    let workload = resolver("VA").unwrap();
    let card = GpuConfig::rtx2060();
    let golden = profile(workload.as_ref(), &card).unwrap();

    let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.addr().to_string();
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || run_worker(&addr, &WorkerOptions::default(), &resolver))
        })
        .collect();

    for structure in [Structure::RegisterFile, Structure::L1Data] {
        let cfg = CampaignConfig::new(CampaignSpec::new(structure), 24, 11);
        let serial = run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap();
        let job = JobSpec::from_config("VA", "rtx2060", &cfg);
        let merged = coordinator.run(&job, &ServeOptions::default()).unwrap();
        assert_eq!(
            merged.records, serial.records,
            "{structure:?}: records diverge"
        );
    }
    coordinator.shutdown();
    let reports: Vec<WorkerReport> = handles
        .into_iter()
        .map(|h| h.join().unwrap().unwrap())
        .collect();
    let jobs_served: usize = reports.iter().map(|r| r.jobs).sum();
    assert_eq!(
        jobs_served, 4,
        "both workers must serve both jobs: {reports:?}"
    );
}

/// Back-to-back dispatches of the *same* job with no pause between them
/// (the benchmark's warm-then-time pattern): `run` must quiesce — deliver
/// every `fin` — before the next generation starts, or the new job line
/// reaches a worker still inside the previous job and kills it.
#[test]
fn back_to_back_jobs_do_not_race_the_fin() {
    let workload = resolver("VA").unwrap();
    let card = GpuConfig::rtx2060();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 24, 7);
    let golden = profile(workload.as_ref(), &card).unwrap();
    let serial = run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap();
    let job = JobSpec::from_config("VA", "rtx2060", &cfg);

    let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.addr().to_string();
    let handle = {
        let addr = addr.clone();
        thread::spawn(move || run_worker(&addr, &WorkerOptions::default(), &resolver))
    };
    for round in 0..3 {
        let merged = coordinator.run(&job, &ServeOptions::default()).unwrap();
        assert_eq!(merged.records, serial.records, "round {round} diverged");
    }
    coordinator.shutdown();
    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.jobs, 3, "the worker must survive all three jobs");
}

/// A coordinator interrupted mid-sweep leaves a merge journal with a torn
/// tail (the in-flight line of a crash); `resume` truncates the torn line,
/// loads the durable prefix and leases out only the missing indices — the
/// final result is still bit-identical to the serial run.
#[test]
fn serve_resumes_from_a_torn_merge_journal() {
    let workload = resolver("VA").unwrap();
    let card = GpuConfig::rtx2060();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 30, 23);
    let golden = profile(workload.as_ref(), &card).unwrap();
    let serial = run_campaign(workload.as_ref(), &card, &cfg, &golden).unwrap();
    let job = JobSpec::from_config("VA", "rtx2060", &cfg);

    let dir = std::env::temp_dir().join("gpufi-distributed-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir
        .join(format!("resume-{}.journal.jsonl", std::process::id()))
        .to_str()
        .unwrap()
        .to_string();

    // First pass: complete the sweep with a merge journal.
    let opts = ServeOptions {
        journal: Some(path.clone()),
        ..ServeOptions::default()
    };
    let (first, _) = run_distributed(&job, &opts, vec![WorkerOptions::default()]);
    assert_eq!(first.records, serial.records);

    // Simulate a coordinator SIGKILL mid-journal: keep the header and the
    // first 12 record lines, then a torn half-line.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    let mut kept: Vec<&str> = Vec::new();
    kept.push(lines.next().unwrap()); // header
    for _ in 0..12 {
        kept.push(lines.next().unwrap());
    }
    let torn = &lines.next().unwrap()[..10];
    std::fs::write(&path, format!("{}\n{torn}", kept.join("\n"))).unwrap();

    // Second pass: resume.  Only the missing runs are executed.
    let opts = ServeOptions {
        journal: Some(path.clone()),
        resume: true,
        ..ServeOptions::default()
    };
    let (resumed, reports) = run_distributed(&job, &opts, vec![WorkerOptions::default()]);
    assert_eq!(resumed.records, serial.records, "records diverge");
    assert_eq!(resumed.stats.resumed, 12, "torn line must not be loaded");
    assert_eq!(
        reports[0].as_ref().unwrap().runs,
        30 - 12,
        "resume re-executed journaled runs"
    );
    std::fs::remove_file(&path).ok();
}

/// The fingerprint handshake: a worker whose job description derives a
/// different campaign identity must fail the job loudly instead of
/// merging records of the wrong campaign.
#[test]
fn fingerprint_mismatch_fails_the_job() {
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 8, 3);
    // The coordinator believes the benchmark is VA, but ships a job the
    // worker resolves to a different campaign: corrupt the bench name
    // after fingerprinting by constructing the job for another seed.
    let job = JobSpec::from_config("no-such-benchmark", "rtx2060", &cfg);

    let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.addr().to_string();
    let handle = {
        let addr = addr.clone();
        thread::spawn(move || run_worker(&addr, &WorkerOptions::default(), &resolver))
    };
    let err = coordinator.run(&job, &ServeOptions::default()).unwrap_err();
    assert!(
        err.to_string().contains("unknown benchmark"),
        "unexpected error: {err}"
    );
    coordinator.shutdown();
    let report = handle.join().unwrap();
    assert!(report.is_err(), "worker should reject the job: {report:?}");
}
