//! Validation of the fault-lifetime early-exit engine: cutting a run short
//! once every fault's lifetime has ended must never change what the
//! campaign concludes, only how long it takes.

use gpufi::prelude::*;

/// Early exit and full simulation must classify every run identically —
/// same effect, same cycle count, same applied flag — across ≥200 runs of
/// two workloads.  Only the `early_exit` marker may differ.
#[test]
fn early_exit_matches_full_simulation() {
    let card = GpuConfig::rtx2060();
    let workloads: [Box<dyn Workload>; 2] =
        [Box::new(VectorAdd::new(256)), Box::new(ScalarProd::new(8))];
    for w in &workloads {
        let golden = profile(w.as_ref(), &card).unwrap();
        let spec = CampaignSpec::new(Structure::RegisterFile);
        let fast_cfg = CampaignConfig::new(spec.clone(), 200, 17);
        let full_cfg = CampaignConfig::new(spec, 200, 17).no_early_exit();
        let fast = run_campaign(w.as_ref(), &card, &fast_cfg, &golden).unwrap();
        let full = run_campaign(w.as_ref(), &card, &full_cfg, &golden).unwrap();
        assert_eq!(fast.tally, full.tally, "{}: tallies diverge", w.name());
        for (i, (a, b)) in fast.records.iter().zip(&full.records).enumerate() {
            assert_eq!(a.effect, b.effect, "{} run {i}: effect", w.name());
            assert_eq!(a.cycles, b.cycles, "{} run {i}: cycles", w.name());
            assert_eq!(a.applied, b.applied, "{} run {i}: applied", w.name());
        }
        // The validation mode never early-exits; the engine should cut at
        // least some expired-fault runs short.
        assert_eq!(full.stats.early_exits, 0);
        assert!(
            fast.stats.early_exits > 0,
            "{}: no run early-exited in 200",
            w.name()
        );
        // Every early exit is a Masked classification by construction.
        for r in fast.records.iter().filter(|r| r.early_exit) {
            assert_eq!(r.effect, FaultEffect::Masked);
            assert_eq!(r.cycles, golden.total_cycles());
        }
    }
}

/// A whole-application campaign (`kernel: None`, multi-kernel benchmark)
/// is deterministic across worker-thread counts under the work-stealing
/// scheduler.
#[test]
fn whole_app_campaign_is_deterministic_across_thread_counts() {
    let w = Srad1::default();
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let serial = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec.clone(), 8, 5).with_threads(1),
        &golden,
    )
    .unwrap();
    let parallel = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec, 8, 5).with_threads(4),
        &golden,
    )
    .unwrap();
    assert_eq!(serial.records, parallel.records);
    assert_eq!(serial.tally, parallel.tally);
}

/// Seed 0 must be a first-class campaign seed: the old per-run seed mix
/// collapsed `seed * C ^ run` to the bare run index at seed 0, making
/// seeds 0 and 1 draw overlapping fault masks.
#[test]
fn seed_zero_is_a_distinct_campaign() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let spec = CampaignSpec::new(Structure::RegisterFile);
    let zero = run_campaign(
        &w,
        &card,
        &CampaignConfig::new(spec.clone(), 20, 0),
        &golden,
    )
    .unwrap();
    let one = run_campaign(&w, &card, &CampaignConfig::new(spec, 20, 1), &golden).unwrap();
    assert_ne!(zero.records, one.records, "seed 0 must differ from seed 1");
}

/// Campaign statistics reflect what actually ran.
#[test]
fn campaign_stats_are_populated() {
    let w = VectorAdd::new(256);
    let card = GpuConfig::rtx2060();
    let golden = profile(&w, &card).unwrap();
    let cfg = CampaignConfig::new(CampaignSpec::new(Structure::RegisterFile), 30, 3);
    let r = run_campaign(&w, &card, &cfg, &golden).unwrap();
    assert!(r.stats.wall_ms > 0.0);
    assert!(r.stats.runs_per_sec > 0.0);
    assert!(r.stats.threads >= 1);
    assert_eq!(
        r.stats.applied,
        r.records.iter().filter(|x| x.applied).count()
    );
    assert_eq!(
        r.stats.early_exits,
        r.records.iter().filter(|x| x.early_exit).count()
    );
    let n = r.records.len() as f64;
    assert!((r.stats.applied_rate - r.stats.applied as f64 / n).abs() < 1e-12);
    assert!((r.stats.early_exit_rate - r.stats.early_exits as f64 / n).abs() < 1e-12);
}
