//! The fuzzer's well-formedness contract, checked statically: every
//! kernel the differential fuzzer generates must pass the full lint
//! suite.  The generator promises initialized registers, convergent
//! (never divergent) barriers, race-free shared-memory exchanges and
//! forward-only branches — exactly the properties the static analyzer
//! verifies — so a finding on a generated kernel is either a generator
//! bug or an analyzer false positive, and both must fail loudly.

use gpufi::isa::analysis::lint_module;
use gpufi::isa::Module;
use gpufi::sim::oracle::fuzz::gen_case;

#[test]
fn seeded_fuzz_corpus_is_lint_clean() {
    let mut dirty = Vec::new();
    for seed in 0..120u64 {
        let case = gen_case(seed);
        let module = Module::assemble(&case.source).expect("fuzzer emits valid asm");
        for (kernel, f) in lint_module(&module) {
            dirty.push(format!("seed {seed} {kernel}: [{}] {f}", f.kind()));
        }
    }
    assert!(
        dirty.is_empty(),
        "lint findings in the fuzz corpus:\n{}",
        dirty.join("\n")
    );
}
