//! Pins every paper workload's golden output to an FNV-1a checksum.
//!
//! The campaign classifier compares each faulty run's output bytes
//! against the golden run's, so any drift in a workload's fault-free
//! result silently re-baselines every SDC classification.  These pins
//! turn such a drift into a loud test failure: if one fires, either a
//! workload or the simulator changed behaviour — decide explicitly
//! whether that was intended before updating the constant.
//!
//! Checksums are over the exact `Vec<u8>` a fault-free `Workload::run`
//! returns on the default RTX 2060 chip at the default (campaign) sizes.

use gpufi::prelude::*;

/// 64-bit FNV-1a over the output bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `(benchmark, fnv1a(output), output length)` for the default sizes on
/// RTX 2060, in the paper's figure order.
const GOLDEN: [(&str, u64, usize); 12] = [
    ("HS", 0xf081292467ed22b6, 4096),
    ("KM", 0x303f5385ab20d94a, 2176),
    ("SRAD1", 0xb567098ad1d9f1c7, 4096),
    ("SRAD2", 0x7499c893da4d14f9, 4096),
    ("LUD", 0xb0254b6da9706b7a, 4096),
    ("BFS", 0xaa0404fe9e5bafc3, 1024),
    ("PATHF", 0xa0191ae6c6bd60c0, 1024),
    ("NW", 0x3bfd3e7c30fb7f6b, 9604),
    ("GE", 0xb656c85c5732205b, 4352),
    ("BP", 0xa9f312491af2c1a9, 16448),
    ("VA", 0x9f7611fbbf674326, 16384),
    ("SP", 0xb1ebcdf32f6a783f, 192),
];

#[test]
fn every_workload_output_checksum_is_pinned() {
    let card = GpuConfig::rtx2060();
    let suite = gpufi::workloads::paper_suite();
    assert_eq!(suite.len(), GOLDEN.len());
    for (w, &(name, sum, len)) in suite.iter().zip(&GOLDEN) {
        assert_eq!(w.name(), name, "suite order changed");
        let golden = profile(w.as_ref(), &card).unwrap();
        assert_eq!(
            golden.output.len(),
            len,
            "{name}: output length drifted — result buffer shape changed"
        );
        assert_eq!(
            fnv1a(&golden.output),
            sum,
            "{name}: golden output bytes drifted (checksum 0x{:016x}) — \
             every SDC classification would silently re-baseline",
            fnv1a(&golden.output)
        );
    }
}

/// The profile path and a plain run produce identical bytes — the pinned
/// checksums guard both.
#[test]
fn profile_output_equals_plain_run() {
    let card = GpuConfig::rtx2060();
    let w = VectorAdd::default();
    let golden = profile(&w, &card).unwrap();
    let mut gpu = gpufi::sim::Gpu::new(card);
    let out = w.run(&mut gpu).unwrap();
    assert_eq!(out, golden.output);
}
